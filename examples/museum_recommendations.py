#!/usr/bin/env python3
"""Museum analytics: exhibition popularity for recommendations.

The paper's third motivating scenario: "information on the behavior of past
visitors to a museum with multiple exhibitions may be used for making
recommendations to new visitors and for planning" (Section 1).

This example builds a *custom* floor plan with the public API — two wings
of exhibition halls around a lobby — deploys readers at the hall entrances,
simulates visitors with itineraries biased by exhibition appeal, and then:

1. ranks exhibitions by interval flow per opening-hour block;
2. derives a "visit next" recommendation list (popular overall but not
   currently crowded, using a snapshot query for crowding).

Run with::

    python examples/museum_recommendations.py
"""

import argparse
import random

from repro import Deployment, Device, FlowEngine
from repro.geometry import Point, Polygon
from repro.indoor import Door, DoorGraph, FloorPlan, Poi, Room
from repro.tracking import (
    itinerary_trajectory,
    random_point_in_room,
    simulate_trajectories,
)

EXHIBITIONS = (
    ("antiquity", 9.0),
    ("impressionists", 6.0),
    ("modern-art", 5.0),
    ("photography", 3.0),
    ("ceramics", 2.0),
    ("maps", 1.0),
)


def build_museum() -> FloorPlan:
    """A lobby with three exhibition halls on each side."""
    rooms = [
        Room("lobby", Polygon.rectangle(0, 0, 60, 10), kind="hallway", name="lobby")
    ]
    doors = []
    for i, (name, _) in enumerate(EXHIBITIONS):
        side = i % 2
        slot = i // 2
        x0 = slot * 20.0
        if side == 0:
            polygon = Polygon.rectangle(x0, 10, x0 + 20, 26)
            door_at = Point(x0 + 10.0, 10.0)
        else:
            polygon = Polygon.rectangle(x0, -16, x0 + 20, 0)
            door_at = Point(x0 + 10.0, 0.0)
        rooms.append(Room(name, polygon, kind="exhibition", name=name))
        doors.append(Door(f"d-{name}", door_at, name, "lobby"))
    return FloorPlan(rooms, doors)


def deploy_readers(plan: FloorPlan) -> Deployment:
    devices = [
        Device.at(f"rfid-{door.door_id}", door.position, 1.5) for door in plan.doors
    ]
    devices.append(Device.at("rfid-entrance", Point(30.0, 5.0), 1.5))
    deployment = Deployment(devices)
    deployment.validate_non_overlapping()
    return deployment


def simulate_visitors(plan: FloorPlan, count: int, opening_hours: float, seed: int):
    """Visitors walk lobby -> a few exhibitions (appeal-weighted) -> out."""
    graph = DoorGraph(plan)
    lobby = plan.room("lobby")
    names = [name for name, _ in EXHIBITIONS]
    appeals = [appeal for _, appeal in EXHIBITIONS]
    trajectories = []
    for i in range(count):
        rng = random.Random(f"{seed}:{i}")
        arrival = rng.uniform(0.0, opening_hours * 3600.0 * 0.8)
        stops = [(random_point_in_room(lobby, rng), rng.uniform(60.0, 300.0))]
        for name in rng.choices(names, weights=appeals, k=rng.randint(2, 4)):
            hall = plan.room(name)
            stops.append(
                (random_point_in_room(hall, rng), rng.uniform(300.0, 1500.0))
            )
        stops.append((random_point_in_room(lobby, rng), rng.uniform(30.0, 120.0)))
        trajectories.append(
            itinerary_trajectory(f"v{i}", graph, stops, speed=1.0, t_start=arrival)
        )
    return simulate_trajectories(trajectories, deploy_readers(plan))


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--visitors", type=int, default=150)
    parser.add_argument("--hours", type=float, default=6.0)
    args = parser.parse_args()

    plan = build_museum()
    print(
        f"Simulating {args.visitors} museum visitors over {args.hours} opening hours..."
    )
    result = simulate_visitors(plan, args.visitors, args.hours, seed=77)
    print(f"  {len(result.ott)} tracking records")

    pois = [
        Poi(
            poi_id=name,
            polygon=plan.room(name).polygon.scaled_about_centroid(0.9),
            room_id=name,
            name=name,
            category="exhibition",
        )
        for name, _ in EXHIBITIONS
    ]
    engine = FlowEngine(plan, deploy_readers(plan), result.ott, pois, v_max=1.0)
    start, end = result.ott.time_span()

    print("\nExhibition popularity by 2-hour block (mean snapshot occupancy):")
    block = 7200.0
    t = start
    while t < end:
        block_end = min(t + block, end)
        samples = [t + f * (block_end - t) for f in (0.2, 0.5, 0.8)]
        flows: dict[str, float] = {}
        for sample_t in samples:
            for name, flow in engine.snapshot_flows(sample_t).items():
                flows[name] = flows.get(name, 0.0) + flow / len(samples)
        ranked = sorted(flows.items(), key=lambda item: -item[1])[:3]
        rows = ", ".join(f"{name} ({flow:.1f})" for name, flow in ranked)
        print(f"  {int(t // 3600):02d}h-{int(block_end // 3600):02d}h: {rows}")
        t += block

    print("\n'Visit next' recommendations at closing-time minus 2h:")
    now = end - 7200.0
    # Popularity: accumulated snapshot occupancy so far; crowding: now.
    popularity: dict[str, float] = {}
    t = start + 600.0
    while t < now:
        for name, flow in engine.snapshot_flows(t).items():
            popularity[name] = popularity.get(name, 0.0) + flow
        t += 1200.0
    crowding = engine.snapshot_flows(now)
    scored = sorted(
        pois,
        key=lambda poi: popularity.get(poi.poi_id, 0.0)
        / (1.0 + crowding.get(poi.poi_id, 0.0)),
        reverse=True,
    )
    for poi in scored[:3]:
        print(
            f"  {poi.name:16s} popularity={popularity.get(poi.poi_id, 0.0):7.1f} "
            f"currently-inside~{crowding.get(poi.poi_id, 0.0):5.1f}"
        )


if __name__ == "__main__":
    main()
