#!/usr/bin/env python3
"""Airport flow analysis: finding bottlenecks from Bluetooth tracking.

The paper's second motivating scenario: "identify possible bottlenecks that
slow down movement in an airport" (Section 2.2), evaluated on Bluetooth
tracking data from Copenhagen Airport.  This example uses the simulated
CPH data set (see DESIGN.md, Substitutions) to:

1. run snapshot top-k queries through the day to see where passengers
   concentrate hour by hour;
2. run an interval query over the peak hour to rank the busiest areas; and
3. flag bottleneck candidates — high-flow POIs in *transit* areas
   (security, corridor) rather than destinations (shops, gates).

Run with::

    python examples/airport_bottlenecks.py
    python examples/airport_bottlenecks.py --passengers 400
"""

import argparse

from repro.datagen import CphConfig, build_cph_dataset


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--passengers", type=int, default=250)
    parser.add_argument("--hours", type=float, default=8.0, help="horizon")
    args = parser.parse_args()

    print(f"Simulating CPH with {args.passengers} passengers over {args.hours} h...")
    dataset = build_cph_dataset(
        CphConfig(
            num_passengers=args.passengers,
            horizon=args.hours * 3600.0,
            seed=33,
        )
    )
    print(
        f"  {len(dataset.ott)} Bluetooth tracking records for "
        f"{dataset.ott.object_count} tracked passengers "
        f"({len(dataset.deployment)} radios)"
    )
    engine = dataset.engine()
    start, end = dataset.time_span()

    print("\nHourly snapshot: the 3 most occupied areas (Problem 1):")
    hour = 3600.0
    t = start + hour / 2.0
    while t < end:
        result = engine.snapshot_topk(t, 3, method="join")
        rows = ", ".join(
            f"{entry.poi.name} ({entry.flow:.1f})"
            for entry in result
            if entry.flow > 0
        )
        print(f"  h{int((t - start) // hour) + 1:02d}: {rows or '(quiet)'}")
        t += hour

    # Peak hour: the hour with the most raw records.
    def records_in(window_start):
        return sum(
            1 for r in dataset.ott if r.overlaps(window_start, window_start + hour)
        )

    hours = [start + i * hour for i in range(int((end - start) // hour) or 1)]
    peak = max(hours, key=records_in)
    # A short window keeps the uncertainty regions discriminative; an
    # hour-long window would let every passenger "possibly visit"
    # everything (see the paper's Section 3.2 — regions grow with the
    # window).
    mid_peak = peak + hour / 2.0
    print(
        f"\nPeak hour h{int((peak - start) // hour) + 1:02d}: "
        f"top-10 areas by interval flow over a 5-minute slice (Problem 2):"
    )
    result = engine.interval_topk(mid_peak, mid_peak + 300.0, 10, method="join")
    for entry in result:
        print(f"  {entry.poi.name:30s} flow={entry.flow:7.2f} [{entry.poi.category}]")

    # Bottleneck scan: average snapshot occupancy of transit areas across
    # the peak hour, compared with the busiest destination.
    transit_categories = {"security", "hallway", "hall"}
    samples = [peak + offset for offset in (600.0, 1800.0, 3000.0)]
    transit_load: dict[str, float] = {}
    busiest_destination = 0.0
    for t in samples:
        for poi_id, flow in engine.snapshot_flows(t).items():
            poi = next(p for p in dataset.pois if p.poi_id == poi_id)
            if poi.category in transit_categories:
                transit_load[poi_id] = transit_load.get(poi_id, 0.0) + flow
            else:
                busiest_destination = max(busiest_destination, flow)
    print("\nBottleneck candidates (sustained snapshot load in transit areas):")
    flagged = sorted(transit_load.items(), key=lambda item: -item[1])[:3]
    pois_by_id = {p.poi_id: p for p in dataset.pois}
    if flagged and flagged[0][1] > 0:
        for poi_id, load in flagged:
            print(
                f"  !! {pois_by_id[poi_id].name:28s} "
                f"avg occupancy ~{load / len(samples):6.2f} "
                f"(busiest destination ~{busiest_destination:.2f})"
            )
    else:
        print("  none — flows concentrate in destination areas")


if __name__ == "__main__":
    main()
