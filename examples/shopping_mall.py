#!/usr/bin/env python3
"""Shopping mall analytics: lease pricing from tracked visitor flows.

The paper's motivating scenario (Section 1): "the lease prices of different
shop locations in a large shopping mall may be set according to the numbers
of people passing by the location."  This example:

1. simulates a mall — an office-style floor plan read as a mall, with RFID
   readers at shop doors and along the concourse, and visitors moving with
   Zipf-skewed shop popularity;
2. runs an interval top-k query over a rush window (Problem 2);
3. builds a *day profile* by summing interval flows over short slices —
   short windows keep uncertainty regions tight, so sliced flow tracks
   real occupancy far better than one day-long window (whose regions
   degenerate to "could be anywhere"); and
4. compares the sliced-flow ranking against the simulation's ground-truth
   visit time (which a real deployment would not have), then buckets shops
   into lease-price tiers.

Run with::

    python examples/shopping_mall.py            # default size
    python examples/shopping_mall.py --objects 150 --minutes 30
"""

import argparse
from collections import Counter

from repro.datagen import SyntheticConfig, build_synthetic_dataset


def sliced_flows(engine, t_start, t_end, slice_seconds=60.0) -> Counter:
    """Sum of interval flows over consecutive short windows.

    Each slice is a Problem 2 query; the sum approximates "visitor-slices
    spent in the POI", the quantity lease pricing actually wants.
    """
    totals: Counter = Counter()
    t = t_start
    while t < t_end:
        for poi_id, flow in engine.interval_flows(
            t, min(t + slice_seconds, t_end)
        ).items():
            totals[poi_id] += flow
        t += slice_seconds
    return totals


def ground_truth_time(dataset, t_start, t_end, step=10.0) -> Counter:
    """True visitor-time per POI from the simulator's trajectories."""
    time_spent: Counter = Counter()
    poi_by_room: dict[str, list] = {}
    for poi in dataset.pois:
        poi_by_room.setdefault(poi.room_id, []).append(poi)
    for trajectory in dataset.trajectories:
        for t in trajectory.sample_times(t_start, t_end, step):
            position = trajectory.position_at(t)
            room = dataset.floorplan.room_at(position)
            if room is None:
                continue
            for poi in poi_by_room.get(room.room_id, ()):
                if poi.polygon.contains(position):
                    time_spent[poi.poi_id] += 1
    return time_spent


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--objects", type=int, default=80, help="visitors")
    parser.add_argument("--minutes", type=float, default=20.0, help="sim length")
    parser.add_argument("--top", type=int, default=10, help="k of the top-k query")
    args = parser.parse_args()

    print(f"Simulating a mall with {args.objects} visitors over {args.minutes} min...")
    dataset = build_synthetic_dataset(
        SyntheticConfig(
            num_objects=args.objects,
            duration=args.minutes * 60.0,
            rooms_per_side=10,
            hotspot_exponent=1.0,  # strong popularity skew between shops
            seed=20,
        )
    )
    print(
        f"  {len(dataset.ott)} tracking records for "
        f"{dataset.ott.object_count} visitors, {len(dataset.pois)} shop POIs"
    )

    engine = dataset.engine()
    t_start, t_end = dataset.time_span()

    rush_start, rush_end = dataset.window(2)
    print(f"\nTop-{args.top} shops during a 2-minute rush window (Problem 2):")
    result = engine.interval_topk(rush_start, rush_end, args.top, method="join")
    for entry in result:
        print(f"  {entry.poi.name:30s} flow={entry.flow:7.2f}")

    print("\nBuilding the day profile from 60-second flow slices...")
    totals = sliced_flows(engine, t_start, t_end, slice_seconds=60.0)
    truth = ground_truth_time(dataset, t_start, t_end)

    ranked = totals.most_common(args.top)
    pois_by_id = {poi.poi_id: poi for poi in dataset.pois}
    print(f"  {'shop':30s} {'sliced flow':>12} {'true visitor-time':>18}")
    for poi_id, flow in ranked:
        print(
            f"  {pois_by_id[poi_id].name:30s} {flow:>12.1f} "
            f"{truth.get(poi_id, 0):>18d}"
        )

    true_top = {poi_id for poi_id, _ in truth.most_common(args.top)}
    hits = sum(1 for poi_id, _ in ranked if poi_id in true_top)
    print(
        f"\nPrecision@{args.top} of the sliced-flow ranking vs ground truth: "
        f"{hits}/{args.top}"
    )
    print(
        "  (Symbolic tracking is inherently coarse: between door readings an\n"
        "   object 'could be' in many shops, and the model uses no negative\n"
        "   information — so per-shop flows smear toward central locations.\n"
        "   The paper evaluates query *performance*; flow precision depends\n"
        "   on reader density, dwell times and V_max.)"
    )

    print("\nSuggested lease tiers (by sliced-flow quartile over all shops):")
    ordered = sorted(
        dataset.pois, key=lambda poi: totals.get(poi.poi_id, 0.0), reverse=True
    )
    tiers = ("premium", "high", "standard", "economy")
    quarter = max(1, len(ordered) // 4)
    for tier_index, tier in enumerate(tiers):
        members = ordered[tier_index * quarter : (tier_index + 1) * quarter]
        if not members:
            continue
        low = totals.get(members[-1].poi_id, 0.0)
        high = totals.get(members[0].poi_id, 0.0)
        print(f"  {tier:9s}: {len(members):3d} shops, flow {low:8.1f} .. {high:8.1f}")


if __name__ == "__main__":
    main()
