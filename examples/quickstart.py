#!/usr/bin/env python3
"""Quickstart: from raw symbolic readings to top-k frequently visited POIs.

Builds a miniature two-room-plus-hallway floor plan, hand-crafts an Object
Tracking Table in the style of the paper's Table 2, and runs both query
types with both algorithms.  Everything prints to stdout; run with::

    python examples/quickstart.py
"""

from repro import Deployment, Device, FlowEngine, ObjectTrackingTable, TrackingRecord
from repro.geometry import Point, Polygon
from repro.indoor import Door, FloorPlan, Poi, Room


def build_floorplan() -> FloorPlan:
    """Two rooms on either side of a short hallway."""
    rooms = [
        Room("hall", Polygon.rectangle(0, 0, 30, 6), kind="hallway", name="hallway"),
        Room("cafe", Polygon.rectangle(0, 6, 15, 16), name="cafe"),
        Room("shop", Polygon.rectangle(15, 6, 30, 16), name="gift shop"),
    ]
    doors = [
        Door("d-cafe", Point(7.5, 6), "cafe", "hall"),
        Door("d-shop", Point(22.5, 6), "shop", "hall"),
    ]
    return FloorPlan(rooms, doors)


def build_deployment(plan: FloorPlan) -> Deployment:
    """An RFID reader at each door and one mid-hallway."""
    return Deployment(
        [
            Device.at("rfid-cafe", plan.door("d-cafe").position, 1.5),
            Device.at("rfid-shop", plan.door("d-shop").position, 1.5),
            Device.at("rfid-hall", Point(15.0, 2.0), 1.5),
        ]
    )


def build_ott() -> ObjectTrackingTable:
    """Hand-written tracking records, one row per detection episode.

    Visitor ``anna`` walks hall -> cafe -> hall -> shop; visitor ``bo``
    goes straight to the shop and stays; ``cai`` only crosses the hallway.
    """
    rows = [
        # (object, device, t_s, t_e)
        ("anna", "rfid-hall", 0.0, 2.0),
        ("anna", "rfid-cafe", 10.0, 12.0),  # enters the cafe
        ("anna", "rfid-cafe", 300.0, 302.0),  # leaves the cafe
        ("anna", "rfid-hall", 310.0, 312.0),
        ("anna", "rfid-shop", 320.0, 322.0),  # enters the shop
        ("bo", "rfid-hall", 5.0, 7.0),
        ("bo", "rfid-shop", 15.0, 17.0),  # enters the shop, stays
        ("cai", "rfid-hall", 100.0, 102.0),
    ]
    table = ObjectTrackingTable()
    for record_id, (obj, dev, t_s, t_e) in enumerate(rows):
        table.append(TrackingRecord(record_id, obj, dev, t_s, t_e))
    return table.freeze()


def build_pois(plan: FloorPlan) -> list[Poi]:
    return [
        Poi("poi-cafe", Polygon.rectangle(1, 7, 14, 15), "cafe", name="cafe"),
        Poi("poi-shop", Polygon.rectangle(16, 7, 29, 15), "shop", name="gift shop"),
        Poi("poi-hall", Polygon.rectangle(1, 1, 29, 5), "hall", name="hallway"),
    ]


def main() -> None:
    plan = build_floorplan()
    deployment = build_deployment(plan)
    ott = build_ott()
    pois = build_pois(plan)

    print("Object Tracking Table (cf. paper Table 2):")
    print(f"  {'ID':>3} {'object':>6} {'device':>10} {'t_s':>7} {'t_e':>7}")
    for record in ott:
        print(
            f"  {record.record_id:>3} {record.object_id:>6} "
            f"{str(record.device_id):>10} {record.t_s:>7.1f} {record.t_e:>7.1f}"
        )

    engine = FlowEngine(plan, deployment, ott, pois, v_max=1.2)

    print("\nSnapshot top-k at t=316 s (anna between the hall and shop readers):")
    for method in ("iterative", "join"):
        result = engine.snapshot_topk(t=316.0, k=3, method=method)
        rows = ", ".join(f"{e.poi.name}={e.flow:.2f}" for e in result)
        print(f"  [{method:9s}] {rows}")

    print("\nInterval top-k over [0, 400] s (whole scenario):")
    for method in ("iterative", "join"):
        result = engine.interval_topk(t_start=0.0, t_end=400.0, k=3, method=method)
        rows = ", ".join(f"{e.poi.name}={e.flow:.2f}" for e in result)
        print(f"  [{method:9s}] {rows}")

    print("\nWhere could anna have been at t=316 s? (uncertainty region)")
    print("  (last seen leaving the hall reader at t=312, next seen at the")
    print("   shop reader at t=320 -- the region is a tight lens between them)")
    region = engine.snapshot_region_of("anna", 316.0)
    for poi in pois:
        presence = engine.estimator.presence(region, poi)
        print(f"  presence in {poi.name:10s}: {presence:.2f}")


if __name__ == "__main__":
    main()
