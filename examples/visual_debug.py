#!/usr/bin/env python3
"""Visual debugging: render uncertainty regions over the floor plan.

Produces three SVG files (under ``docs/assets/`` when run inside the
repository, else the working directory):

* ``viz_snapshot.svg`` — one object's snapshot uncertainty region with its
  true (simulated) position marked;
* ``viz_interval.svg`` — the same object's interval uncertainty region
  with its true path overlaid;
* ``viz_topology.svg`` — the Euclidean-only region versus the
  topology-checked one, making the paper's Figure 8 effect visible.

Run with::

    python examples/visual_debug.py
"""

from pathlib import Path

from repro.core import snapshot_contexts, snapshot_region
from repro.datagen import SyntheticConfig, build_synthetic_dataset
from repro.viz import SvgCanvas


def _out(name: str) -> str:
    """Place output beside the committed copies in docs/assets when the
    repo layout is visible from the working directory."""
    assets = Path("docs") / "assets"
    return str(assets / name) if assets.is_dir() else name


def main() -> None:
    dataset = build_synthetic_dataset(
        SyntheticConfig(num_objects=25, duration=900.0, rooms_per_side=6, seed=4)
    )
    engine = dataset.engine()
    t = dataset.mid_time()

    # Pick an object that is INACTIVE at t (its region is the interesting
    # two-ring intersection) and whose region is not empty.
    contexts = snapshot_contexts(engine.artree, t)
    context = next(
        (c for c in contexts if c.rd_cov is None), contexts[0] if contexts else None
    )
    if context is None:
        raise SystemExit("no trackable object at the query time; reseed")
    object_id = context.object_id
    trajectory = dataset.trajectory_of(object_id)
    truth = trajectory.position_at(t)

    # --- snapshot region -------------------------------------------------
    canvas = SvgCanvas.for_floorplan(dataset.floorplan)
    canvas.draw_floorplan(dataset.floorplan, label_rooms=False)
    canvas.draw_deployment(dataset.deployment)
    region = engine.snapshot_region_of(object_id, t)
    canvas.draw_region(region, fill="#d62728")
    canvas.draw_marker(truth.x, truth.y, label=f"{object_id} (truth)")
    print("wrote", canvas.save(_out("viz_snapshot.svg")))

    # --- interval region --------------------------------------------------
    start, end = t - 120.0, t + 120.0
    canvas = SvgCanvas.for_floorplan(dataset.floorplan)
    canvas.draw_floorplan(dataset.floorplan, label_rooms=False)
    canvas.draw_deployment(dataset.deployment)
    uncertainty = engine.interval_region_of(object_id, start, end)
    if uncertainty is not None:
        canvas.draw_region(uncertainty.region, fill="#ff7f0e")
        print(
            f"  interval UR has {len(uncertainty.episodes)} episodes "
            f"({', '.join(e.kind for e in uncertainty.episodes[:8])}...)"
        )
    canvas.draw_trajectory(trajectory)
    print("wrote", canvas.save(_out("viz_interval.svg")))

    # --- topology check comparison ----------------------------------------
    canvas = SvgCanvas.for_floorplan(dataset.floorplan)
    canvas.draw_floorplan(dataset.floorplan, label_rooms=False)
    unchecked = snapshot_region(
        context, engine.deployment, engine.v_max, None, engine.inner_allowance
    )
    checked = snapshot_region(
        context,
        engine.deployment,
        engine.v_max,
        engine.topology,
        engine.inner_allowance,
    )
    canvas.draw_region(unchecked, fill="#1f77b4", opacity=0.25)
    canvas.draw_region(checked, fill="#d62728", opacity=0.45)
    canvas.draw_marker(truth.x, truth.y, label="truth")
    print("wrote", canvas.save(_out("viz_topology.svg")))
    print(
        "  blue = Euclidean-only region, red = after the indoor topology "
        "check (must contain the truth marker)"
    )


if __name__ == "__main__":
    main()
