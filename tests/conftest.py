"""Shared fixtures: small but realistic datasets, built once per session.

The heavyweight fixtures (simulated datasets) are session-scoped; tests
must treat them as immutable.
"""

from __future__ import annotations

import pytest

from repro.datagen import (
    CphConfig,
    SyntheticConfig,
    build_cph_dataset,
    build_synthetic_dataset,
)
from repro.indoor import (
    DoorGraph,
    IndoorDistanceOracle,
    deploy_office_devices,
    office_building,
    partition_rooms_into_pois,
)


SMALL_SYNTHETIC = SyntheticConfig(
    num_objects=40,
    duration=1200.0,
    rooms_per_side=6,
    seed=11,
)

SMALL_CPH = CphConfig(num_passengers=120, horizon=6 * 3600.0, seed=13)


@pytest.fixture(scope="session")
def office_plan():
    return office_building(rooms_per_side=6)


@pytest.fixture(scope="session")
def office_deployment(office_plan):
    return deploy_office_devices(office_plan, detection_range=1.5)


@pytest.fixture(scope="session")
def office_graph(office_plan):
    return DoorGraph(office_plan)


@pytest.fixture(scope="session")
def office_oracle(office_plan, office_graph):
    return IndoorDistanceOracle(office_plan, office_graph)


@pytest.fixture(scope="session")
def office_pois(office_plan):
    return partition_rooms_into_pois(office_plan, count=30, seed=3)


@pytest.fixture(scope="session")
def synthetic_dataset():
    return build_synthetic_dataset(SMALL_SYNTHETIC)


@pytest.fixture(scope="session")
def synthetic_engine(synthetic_dataset):
    return synthetic_dataset.engine()


@pytest.fixture(scope="session")
def cph_dataset():
    return build_cph_dataset(SMALL_CPH)


@pytest.fixture(scope="session")
def cph_engine(cph_dataset):
    return cph_dataset.engine()
