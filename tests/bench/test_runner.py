"""The standalone bench runner: emits valid schema-versioned baselines."""

import json
import pathlib
import sys

from repro.obs.export import OBS_SCHEMA_VERSION, parse_snapshot

BENCHMARKS_DIR = pathlib.Path(__file__).resolve().parents[2] / "benchmarks"


def _runner():
    if str(BENCHMARKS_DIR) not in sys.path:
        sys.path.insert(0, str(BENCHMARKS_DIR))
    import runner

    return runner


def test_runner_emits_schema_versioned_baselines(tmp_path):
    runner = _runner()
    exit_code = runner.main(
        [
            "--scale",
            "0.01",
            "--repeats",
            "1",
            "--out",
            str(tmp_path),
            "--only",
            "query_matrix",
            "--only",
            "obs_overhead",
        ]
    )
    assert exit_code == 0
    files = sorted(tmp_path.glob("BENCH_*.json"))
    assert [f.name for f in files] == [
        "BENCH_obs_overhead.json",
        "BENCH_query_matrix.json",
    ]
    for file in files:
        payload = json.loads(file.read_text())
        assert payload["schema_version"] == OBS_SCHEMA_VERSION
        assert payload["machine"]["python"]
        assert payload["scale"] == 0.01
        parse_snapshot(json.dumps(payload["observability"]))

    matrix = json.loads((tmp_path / "BENCH_query_matrix.json").read_text())
    assert set(matrix["results"]) == {
        "snapshot_iterative_ms",
        "snapshot_join_ms",
        "interval_iterative_ms",
        "interval_join_ms",
    }
    assert matrix["observability"]["spans"], "per-phase timings must be embedded"

    overhead = json.loads((tmp_path / "BENCH_obs_overhead.json").read_text())
    assert overhead["results"]["estimated_disabled_overhead_percent"] < 2.0
