"""Tests for the benchmark harness (figure registry, context, reporting)."""

import pytest

from repro.bench import (
    ABLATIONS,
    FIGURES,
    BenchContext,
    FigureResult,
    SeriesPoint,
    format_ablation,
    format_figure,
    run_figure,
)
from repro.bench.ablations import AblationRow

TINY = dict(scale=0.01, repeats=1)


class TestContext:
    def test_validation(self):
        with pytest.raises(ValueError):
            BenchContext(scale=0.0)
        with pytest.raises(ValueError):
            BenchContext(repeats=0)

    def test_dataset_caching(self):
        ctx = BenchContext(**TINY)
        first_dataset, first_engine = ctx.synthetic()
        second_dataset, second_engine = ctx.synthetic()
        assert first_dataset is second_dataset
        assert first_engine is second_engine

    def test_different_parameters_different_datasets(self):
        ctx = BenchContext(**TINY)
        small, _ = ctx.synthetic(detection_range=1.0)
        large, _ = ctx.synthetic(detection_range=2.5)
        assert small is not large

    def test_scale_applied(self):
        ctx = BenchContext(scale=0.01, repeats=1)
        dataset, _ = ctx.synthetic()
        assert dataset.ott.object_count == 10  # 1000 * 0.01

    def test_time_ms_positive(self):
        ctx = BenchContext(**TINY)
        assert ctx.time_ms(lambda: sum(range(1000))) >= 0.0

    def test_compare_methods_runs_both(self):
        ctx = BenchContext(**TINY)
        seen = []
        iterative_ms, join_ms = ctx.compare_methods(
            lambda method: seen.append(method)
        )
        assert set(seen) == {"iterative", "join"}
        assert iterative_ms >= 0.0 and join_ms >= 0.0


class TestFigureRegistry:
    def test_all_paper_figures_present(self):
        expected = {
            "fig10a", "fig10b", "fig11a", "fig11b",
            "fig12a", "fig12b", "fig12c", "fig12d",
            "fig13a", "fig13b", "fig14a", "fig14b", "fig14c",
        }
        assert set(FIGURES) == expected

    def test_unknown_figure_raises(self):
        with pytest.raises(KeyError):
            run_figure("fig99", BenchContext(**TINY))

    def test_run_one_snapshot_figure(self):
        ctx = BenchContext(**TINY)
        result = run_figure("fig10a", ctx, params=(1, 5))
        assert isinstance(result, FigureResult)
        assert result.figure_id == "fig10a"
        assert [point.param for point in result.points] == [1, 5]
        for point in result.points:
            assert point.iterative_ms >= 0.0
            assert point.join_ms >= 0.0

    def test_run_one_interval_figure(self):
        ctx = BenchContext(**TINY, default_window_minutes=2.0)
        result = run_figure("fig12d", ctx, params=(1, 2))
        assert len(result.points) == 2

    def test_default_params_match_paper_sweeps(self):
        assert FIGURES["fig12c"].default_params == (1000, 2000, 3000, 4000, 5000)
        assert FIGURES["fig11a"].default_params == (1.0, 1.5, 2.0, 2.5)


class TestAblations:
    def test_registry(self):
        assert set(ABLATIONS) == {
            "ablation_segment_mbrs",
            "ablation_topology_check",
            "ablation_grid_resolution",
            "ablation_rtree_fanout",
        }

    def test_segment_mbr_ablation_runs(self):
        ctx = BenchContext(**TINY, default_window_minutes=2.0)
        rows = ABLATIONS["ablation_segment_mbrs"](ctx)
        assert [row.label for row in rows] == [
            "synthetic/coarse-mbr",
            "synthetic/segment-mbrs",
            "cph/coarse-mbr",
            "cph/segment-mbrs",
        ]

    def test_topology_ablation_reports_overcredit(self):
        ctx = BenchContext(**TINY)
        rows = ABLATIONS["ablation_topology_check"](ctx)
        labels = [row.label for row in rows]
        assert "overcredit" in labels
        overcredit = next(row for row in rows if row.label == "overcredit")
        # Euclidean-only flows can only over-credit, never under-credit.
        assert overcredit.metrics["flow_excess"] >= -1e-6


class TestReporting:
    def sample_result(self):
        return FigureResult(
            figure_id="fig10a",
            title="Snapshot / k",
            param_name="k",
            points=(
                SeriesPoint(1, 10.0, 5.0),
                SeriesPoint(10, 12.0, 6.0),
            ),
            scale=0.1,
        )

    def test_format_figure_contains_rows(self):
        text = format_figure(self.sample_result())
        assert "fig10a" in text
        assert "iterative (ms)" in text
        assert "2.00x" in text  # speedup column

    def test_speedup(self):
        point = SeriesPoint(1, 10.0, 5.0)
        assert point.speedup == 2.0
        assert SeriesPoint(1, 10.0, 0.0).speedup == float("inf")

    def test_as_rows(self):
        rows = self.sample_result().as_rows()
        assert rows == [(1, 10.0, 5.0), (10, 12.0, 6.0)]

    def test_format_ablation(self):
        rows = [AblationRow("variant-a", 12.5, {"metric": 3})]
        text = format_ablation("my-ablation", rows)
        assert "variant-a" in text
        assert "metric=3" in text


class TestCli:
    def test_list(self, capsys):
        from repro.bench.__main__ import main

        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "fig10a" in out
        assert "ablation_segment_mbrs" in out

    def test_no_arguments_shows_help(self, capsys):
        from repro.bench.__main__ import main

        assert main([]) == 2

    def test_unknown_figure(self, capsys):
        from repro.bench.__main__ import main

        assert main(["--figure", "nope"]) == 2

    def test_quick_params_subset(self):
        from repro.bench.__main__ import _quick_params

        assert _quick_params((1, 2, 3, 4, 5)) == (1, 3, 5)
        assert _quick_params((1, 2)) == (1, 2)
