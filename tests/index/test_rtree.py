"""Unit and property tests for the R-tree."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import Mbr, Point
from repro.index import RTree


def random_box(rng: random.Random, span: float = 100.0) -> Mbr:
    x = rng.uniform(0, span)
    y = rng.uniform(0, span)
    return Mbr(x, y, x + rng.uniform(0.1, 10.0), y + rng.uniform(0.1, 10.0))


def brute_force(items, probe):
    return {name for box, name in items if box.intersects(probe)}


class TestConstruction:
    def test_rejects_tiny_fanout(self):
        with pytest.raises(ValueError):
            RTree(max_entries=1)

    def test_rejects_bad_min_entries(self):
        with pytest.raises(ValueError):
            RTree(max_entries=8, min_entries=5)

    def test_empty_tree(self):
        tree = RTree()
        assert len(tree) == 0
        assert tree.search(Mbr(0, 0, 100, 100)) == []

    def test_height_grows_with_inserts(self):
        tree = RTree(max_entries=4)
        for i in range(100):
            tree.insert(Mbr(i, i, i + 1, i + 1), i)
        assert tree.height > 1
        assert len(tree) == 100


class TestSearchCorrectness:
    @pytest.mark.parametrize("builder", ["insert", "bulk"])
    @pytest.mark.parametrize("count", [0, 1, 5, 63, 200])
    def test_matches_brute_force(self, builder, count):
        rng = random.Random(count)
        items = [(random_box(rng), f"item{i}") for i in range(count)]
        if builder == "insert":
            tree = RTree(max_entries=6)
            for box, name in items:
                tree.insert(box, name)
        else:
            tree = RTree.bulk_load(items, max_entries=6)
        assert len(tree) == count
        for _ in range(25):
            probe = random_box(rng, span=110.0)
            assert set(tree.search(probe)) == brute_force(items, probe)

    def test_point_probe(self):
        tree = RTree(max_entries=4)
        tree.insert(Mbr(0, 0, 10, 10), "a")
        tree.insert(Mbr(20, 20, 30, 30), "b")
        probe = Mbr.around(Point(5, 5), 0.0, 0.0)
        assert tree.search(probe) == ["a"]

    def test_items_returns_everything(self):
        items = [(Mbr(i, 0, i + 1, 1), i) for i in range(50)]
        tree = RTree.bulk_load(items, max_entries=4)
        assert sorted(tree.items()) == list(range(50))


class TestStructuralInvariants:
    def _check_node(self, tree, node, is_root=True):
        if not is_root:
            assert len(node.entries) <= tree.max_entries
        for entry in node.entries:
            if node.is_leaf:
                assert entry.is_leaf_entry
            else:
                assert not entry.is_leaf_entry
                child_box = entry.child.mbr()
                # Parent entry MBR covers the child's actual extent.
                assert entry.mbr.contains_mbr(child_box)
                self._check_node(tree, entry.child, is_root=False)

    @pytest.mark.parametrize("builder", ["insert", "bulk"])
    def test_mbr_containment_invariant(self, builder):
        rng = random.Random(9)
        items = [(random_box(rng), i) for i in range(150)]
        if builder == "insert":
            tree = RTree(max_entries=5)
            for box, name in items:
                tree.insert(box, name)
        else:
            tree = RTree.bulk_load(items, max_entries=5)
        self._check_node(tree, tree.root)

    def test_bulk_load_leaves_at_same_depth(self):
        items = [(Mbr(i, 0, i + 1, 1), i) for i in range(100)]
        tree = RTree.bulk_load(items, max_entries=4)

        depths = set()

        def walk(node, depth):
            if node.is_leaf:
                depths.add(depth)
            else:
                for entry in node.entries:
                    walk(entry.child, depth + 1)

        walk(tree.root, 0)
        assert len(depths) == 1

    def test_entry_validation(self):
        from repro.index import RTreeEntry

        with pytest.raises(ValueError):
            RTreeEntry(Mbr(0, 0, 1, 1))  # neither item nor child


@st.composite
def item_sets(draw):
    count = draw(st.integers(min_value=0, max_value=60))
    items = []
    for i in range(count):
        x = draw(st.floats(min_value=0, max_value=100))
        y = draw(st.floats(min_value=0, max_value=100))
        w = draw(st.floats(min_value=0.0, max_value=10.0))
        h = draw(st.floats(min_value=0.0, max_value=10.0))
        items.append((Mbr(x, y, x + w, y + h), i))
    return items


class TestProperties:
    @settings(max_examples=30, deadline=None)
    @given(item_sets(), st.integers(min_value=0, max_value=1000))
    def test_search_equals_brute_force(self, items, seed):
        rng = random.Random(seed)
        tree = RTree.bulk_load(items, max_entries=4)
        probe = random_box(rng)
        assert set(tree.search(probe)) == brute_force(items, probe)

    @settings(max_examples=30, deadline=None)
    @given(item_sets())
    def test_full_probe_finds_everything(self, items):
        tree = RTree.bulk_load(items, max_entries=4)
        probe = Mbr(-1, -1, 200, 200)
        assert sorted(tree.search(probe)) == sorted(i for _, i in items)
