"""Tests for the count-augmented aggregate R-tree."""

import random

import pytest

from repro.geometry import Mbr
from repro.index import AggregateRTree


def random_items(count, seed=0):
    rng = random.Random(seed)
    items = []
    for i in range(count):
        x, y = rng.uniform(0, 100), rng.uniform(0, 100)
        items.append((Mbr(x, y, x + rng.uniform(0.5, 8), y + rng.uniform(0.5, 8)), i))
    return items


def subtree_size(entry):
    if entry.is_leaf_entry:
        return 1
    return sum(subtree_size(child) for child in entry.child.entries)


class TestCounts:
    @pytest.mark.parametrize("count", [1, 7, 64, 300])
    def test_counts_match_subtree_sizes(self, count):
        tree = AggregateRTree.build(random_items(count), max_entries=5)
        stack = [tree.root]
        while stack:
            node = stack.pop()
            for entry in node.entries:
                assert tree.count(entry) == subtree_size(entry)
                if not entry.is_leaf_entry:
                    stack.append(entry.child)

    def test_root_counts_sum_to_total(self):
        tree = AggregateRTree.build(random_items(200), max_entries=6)
        total = sum(tree.count(entry) for entry in tree.root.entries)
        assert total == 200

    def test_leaf_entry_counts_one(self):
        tree = AggregateRTree.build(random_items(3), max_entries=8)
        for entry in tree.root.entries:
            assert tree.count(entry) == 1

    def test_counts_refresh_after_insert(self):
        tree = AggregateRTree.build(random_items(50), max_entries=4)
        before = sum(tree.count(entry) for entry in tree.root.entries)
        tree.insert(Mbr(0, 0, 1, 1), "extra")
        after = sum(tree.count(entry) for entry in tree.root.entries)
        assert before == 50
        assert after == 51

    def test_search_still_works(self):
        items = random_items(80, seed=4)
        tree = AggregateRTree.build(items, max_entries=5)
        probe = Mbr(10, 10, 40, 40)
        expected = {name for box, name in items if box.intersects(probe)}
        assert set(tree.search(probe)) == expected
