# repro: allow-file(context-bypass): this file tests the AR-tree mutators themselves
"""Incremental AR-tree maintenance: delta buffer, compaction, open tails.

The LSM-style invariant under test: an AR-tree grown record by record
through ``append_record``/``patch_tail`` — across any number of automatic
or explicit compactions — answers ``point_query``/``range_query``/
``entries_for`` identically to a tree bulk-loaded from the final table.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.index import ARTree
from repro.tracking import LiveTrackingTable, ObjectTrackingTable, TrackingRecord


def rec(record_id, object_id, device_id, t_s, t_e):
    return TrackingRecord(record_id, object_id, device_id, t_s, t_e)


def entry_ids(entries):
    return [(e.t1, e.t2, e.record.record_id) for e in entries]


def assert_equivalent(incremental, bulk, times, windows, object_ids):
    for t in times:
        assert entry_ids(incremental.point_query(t)) == entry_ids(
            bulk.point_query(t)
        ), f"point_query({t})"
    for t_start, t_end in windows:
        assert entry_ids(incremental.range_query(t_start, t_end)) == entry_ids(
            bulk.range_query(t_start, t_end)
        ), f"range_query({t_start}, {t_end})"
    for object_id in object_ids:
        assert entry_ids(incremental.entries_for(object_id)) == entry_ids(
            bulk.entries_for(object_id)
        ), f"entries_for({object_id})"


def grow(records, *, fanout=4, delta_threshold=3):
    """Append every record into a fresh tree, returning (tree, table)."""
    table = LiveTrackingTable()
    tree = ARTree(fanout=fanout, delta_threshold=delta_threshold)
    for record in records:
        predecessor = table.last_record(record.object_id)
        table.append(record)
        tree.append_record(record, predecessor)
    return tree, table


STREAM = [
    rec(0, "o1", "d1", 10.0, 20.0),
    rec(1, "o2", "d1", 5.0, 8.0),
    rec(2, "o1", "d2", 30.0, 40.0),
    rec(3, "o2", "d4", 50.0, 70.0),
    rec(4, "o1", "d3", 55.0, 60.0),
    rec(5, "o3", "d2", 12.0, 18.0),
    rec(6, "o3", "d1", 22.0, 31.0),
]

PROBE_TIMES = [0.0, 5.0, 7.5, 10.0, 20.0, 25.0, 31.0, 50.5, 60.0, 70.0, 99.0]
PROBE_WINDOWS = [(0.0, 100.0), (6.0, 6.5), (19.0, 31.0), (55.0, 56.0), (90.0, 95.0)]


class TestIncrementalAppend:
    def test_matches_bulk_load(self):
        tree, table = grow(STREAM)
        bulk = ARTree.build(table.freeze(), fanout=4)
        assert len(tree) == len(bulk) == len(STREAM)
        assert_equivalent(tree, bulk, PROBE_TIMES, PROBE_WINDOWS, ["o1", "o2", "o3"])

    def test_auto_compaction_triggered(self):
        tree, _ = grow(STREAM, delta_threshold=2)
        assert tree.compactions >= 1
        assert tree.delta_size <= 2

    def test_no_compaction_below_threshold(self):
        tree, _ = grow(STREAM, delta_threshold=100)
        assert tree.compactions == 0
        assert tree.delta_size == len(STREAM)

    def test_explicit_compact_preserves_queries(self):
        tree, table = grow(STREAM, delta_threshold=100)
        tree.compact()
        assert tree.delta_size == 0
        bulk = ARTree.build(table.freeze(), fanout=4)
        assert_equivalent(tree, bulk, PROBE_TIMES, PROBE_WINDOWS, ["o1", "o2", "o3"])

    def test_append_closes_previous_augmented_tail(self):
        tree, _ = grow(STREAM[:1])
        (only,) = tree.entries_for("o1")
        assert (only.t1, only.t2) == (10.0, 20.0)
        tree.append_record(STREAM[2], STREAM[0])
        first, second = tree.entries_for("o1")
        assert (second.t1, second.t2) == (20.0, 40.0)

    def test_rejects_wrong_predecessor(self):
        tree, table = grow(STREAM)
        with pytest.raises(ValueError, match="predecessor"):
            tree.append_record(rec(9, "o1", "d1", 80.0, 90.0), STREAM[0])

    def test_rejects_overlap_with_predecessor(self):
        tree, table = grow(STREAM)
        with pytest.raises(ValueError, match="overlaps"):
            tree.append_record(rec(9, "o1", "d1", 58.0, 90.0), STREAM[4])


class TestOpenTails:
    def test_patch_advances_and_closes(self):
        tree, table = grow(STREAM, delta_threshold=2)
        opened = rec(9, "o1", "d4", 80.0, 82.0)
        table.append(opened, open=True)
        tree.append_record(opened, STREAM[4], open=True)

        extended = table.extend_episode("o1", 88.0)
        tree.patch_tail(extended, open=True)
        tail = tree.entries_for("o1")[-1]
        assert (tail.t1, tail.t2) == (60.0, 88.0)

        closed = table.close_episode("o1", 90.0)
        tree.patch_tail(closed, open=False)
        bulk = ARTree.build(table.freeze(), fanout=4)
        assert_equivalent(
            tree, bulk, PROBE_TIMES + [85.0, 90.0], PROBE_WINDOWS, ["o1", "o2", "o3"]
        )

    def test_open_tail_survives_compaction(self):
        tree, table = grow(STREAM, delta_threshold=100)
        opened = rec(9, "o2", "d2", 80.0, 81.0)
        table.append(opened, open=True)
        tree.append_record(opened, STREAM[3], open=True)
        tree.compact()
        # The open entry is pinned in the delta, still patchable.
        assert tree.delta_size == 1
        extended = table.extend_episode("o2", 95.0)
        tree.patch_tail(extended, open=True)
        assert tree.entries_for("o2")[-1].t2 == 95.0

    def test_append_while_open_rejected(self):
        tree, table = grow(STREAM)
        opened = rec(9, "o1", "d4", 80.0, 82.0)
        table.append(opened, open=True)
        tree.append_record(opened, STREAM[4], open=True)
        with pytest.raises(ValueError, match="open episode"):
            tree.append_record(rec(10, "o1", "d1", 90.0, 91.0), opened)

    def test_patch_without_open_episode_rejected(self):
        tree, _ = grow(STREAM)
        with pytest.raises(ValueError, match="no open episode"):
            tree.patch_tail(rec(4, "o1", "d3", 55.0, 61.0), open=False)

    def test_patch_backwards_rejected(self):
        tree, table = grow(STREAM)
        opened = rec(9, "o1", "d4", 80.0, 85.0)
        table.append(opened, open=True)
        tree.append_record(opened, STREAM[4], open=True)
        with pytest.raises(ValueError, match="backwards"):
            tree.patch_tail(rec(9, "o1", "d4", 80.0, 83.0), open=False)


# ----------------------------------------------------------------------
# Property: incremental ≡ bulk for arbitrary valid streams
# ----------------------------------------------------------------------

OBJECTS = ("a", "b", "c")
DEVICES = ("d1", "d2", "d3")


@st.composite
def record_streams(draw):
    """A valid interleaved stream: per-object episodes in time order."""
    steps = draw(
        st.lists(
            st.tuples(
                st.sampled_from(OBJECTS),
                st.sampled_from(DEVICES),
                st.floats(0.125, 8.0),  # gap to previous episode
                st.floats(0.0, 16.0),  # episode duration
                st.booleans(),  # leave open (if last for the object)?
            ),
            min_size=1,
            max_size=24,
        )
    )
    clock = {name: 0.0 for name in OBJECTS}
    records, open_flags = [], []
    for record_id, (obj, dev, gap, duration, leave_open) in enumerate(steps):
        t_s = clock[obj] + gap
        t_e = t_s + duration
        clock[obj] = t_e
        records.append(rec(record_id, obj, dev, t_s, t_e))
        open_flags.append(leave_open)
    return records, open_flags


@given(
    stream=record_streams(),
    fanout=st.integers(2, 8),
    delta_threshold=st.integers(1, 12),
    extend_by=st.floats(0.0, 4.0),
)
@settings(max_examples=60, deadline=None)
def test_incremental_equals_bulk_load(stream, fanout, delta_threshold, extend_by):
    records, open_flags = stream
    table = LiveTrackingTable()
    tree = ARTree(fanout=fanout, delta_threshold=delta_threshold)
    last_index = {}
    for i, record in enumerate(records):
        last_index[record.object_id] = i
    for i, record in enumerate(records):
        predecessor = table.last_record(record.object_id)
        # Only an object's final record may stay open (no successor follows).
        leave_open = open_flags[i] and last_index[record.object_id] == i
        table.append(record, open=leave_open)
        tree.append_record(record, predecessor, open=leave_open)
    for object_id in sorted(table.open_object_ids):
        current = table.open_record(object_id)
        extended = table.extend_episode(object_id, current.t_e + extend_by)
        tree.patch_tail(extended, open=True)
        closed = table.close_episode(object_id)
        tree.patch_tail(closed, open=False)

    bulk = ARTree.build(table.freeze(), fanout=fanout)
    t_lo, t_hi = table.time_span()
    probes = [t_lo - 1.0, t_lo, (t_lo + t_hi) / 2, t_hi, t_hi + 1.0] + [
        r.t_s for r in records[:8]
    ] + [r.t_e for r in records[:8]]
    windows = [(t_lo, t_hi), (t_lo - 1.0, t_lo + 1.0), ((t_lo + t_hi) / 2, t_hi)]
    assert len(tree) == len(bulk) == len(records)
    assert_equivalent(tree, bulk, probes, windows, OBJECTS)
