"""Tests for the AR-tree temporal index."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.index import ARLeafEntry, ARTree
from repro.tracking import ObjectTrackingTable, TrackingRecord


def make_ott(records):
    return ObjectTrackingTable(records).freeze()


def simple_ott():
    """Two objects, à la the paper's Table 2 / Figure 1."""
    return make_ott(
        [
            TrackingRecord(0, "o1", "d1", 10.0, 20.0),
            TrackingRecord(1, "o1", "d2", 30.0, 40.0),
            TrackingRecord(2, "o1", "d3", 55.0, 60.0),
            TrackingRecord(3, "o2", "d1", 5.0, 8.0),
            TrackingRecord(4, "o2", "d4", 50.0, 70.0),
        ]
    )


def brute_force_point(ott, t):
    """Reference: augmented intervals covering t, from the raw OTT."""
    results = []
    for object_id in ott.object_ids:
        previous = None
        for record in ott.records_for(object_id):
            t1 = previous.t_e if previous is not None else record.t_s
            if (previous is None and t1 <= t <= record.t_e) or (
                previous is not None and t1 < t <= record.t_e
            ):
                results.append(record.record_id)
            previous = record
    return sorted(results)


class TestBuild:
    def test_size_matches_record_count(self):
        tree = ARTree.build(simple_ott())
        assert len(tree) == 5

    def test_empty_ott(self):
        tree = ARTree.build(make_ott([]))
        assert len(tree) == 0
        assert tree.point_query(5.0) == []
        assert tree.range_query(0.0, 100.0) == []

    def test_rejects_tiny_fanout(self):
        with pytest.raises(ValueError):
            ARTree(fanout=1)


class TestLeafEntrySemantics:
    def test_first_record_interval_closed_at_start(self):
        entry = ARLeafEntry(t1=10.0, t2=20.0, predecessor=None, record=None)
        # With no predecessor, t1 itself is covered.
        assert entry.covers(10.0)
        assert entry.covers(20.0)
        assert not entry.covers(9.99)

    def test_with_predecessor_interval_open_at_start(self):
        pre = TrackingRecord(0, "o", "d", 0.0, 10.0)
        cur = TrackingRecord(1, "o", "d2", 15.0, 20.0)
        entry = ARLeafEntry(t1=10.0, t2=20.0, predecessor=pre, record=cur)
        assert not entry.covers(10.0)  # belongs to the predecessor's entry
        assert entry.covers(10.01)
        assert entry.covers(20.0)

    def test_overlap(self):
        pre = TrackingRecord(0, "o", "d", 0.0, 10.0)
        cur = TrackingRecord(1, "o", "d2", 15.0, 20.0)
        entry = ARLeafEntry(t1=10.0, t2=20.0, predecessor=pre, record=cur)
        assert entry.overlaps(5.0, 12.0)
        assert entry.overlaps(20.0, 30.0)
        assert not entry.overlaps(21.0, 30.0)


class TestEntriesFor:
    def test_returns_all_entries_of_an_object_in_time_order(self):
        tree = ARTree.build(simple_ott())
        entries = tree.entries_for("o1")
        assert [e.record.record_id for e in entries] == [0, 1, 2]
        assert all(e.object_id == "o1" for e in entries)
        assert [(e.t1, e.t2) for e in entries] == sorted(
            (e.t1, e.t2) for e in entries
        )

    def test_unknown_object_yields_empty_tuple(self):
        tree = ARTree.build(simple_ott())
        assert tree.entries_for("ghost") == ()
        assert ARTree.build(make_ott([])).entries_for("o1") == ()

    def test_agrees_with_point_queries(self):
        tree = ARTree.build(simple_ott())
        for t in (10.0, 25.0, 58.0):
            by_point = {
                (e.object_id, e.record.record_id) for e in tree.point_query(t)
            }
            for object_id in ("o1", "o2"):
                covered = [
                    e for e in tree.entries_for(object_id) if e.covers(t)
                ]
                assert len(covered) <= 1
                for entry in covered:
                    assert (object_id, entry.record.record_id) in by_point


class TestPointQuery:
    def test_active_time(self):
        tree = ARTree.build(simple_ott())
        entries = tree.point_query(15.0)
        by_object = {entry.object_id: entry for entry in entries}
        assert by_object["o1"].record.record_id == 0
        assert by_object["o1"].record.covers(15.0)

    def test_inactive_time_returns_gap_entry(self):
        tree = ARTree.build(simple_ott())
        entries = tree.point_query(25.0)
        by_object = {entry.object_id: entry for entry in entries}
        o1 = by_object["o1"]
        assert not o1.record.covers(25.0)
        assert o1.predecessor.record_id == 0
        assert o1.record.record_id == 1

    def test_before_first_record_not_covered(self):
        tree = ARTree.build(simple_ott())
        assert all(e.object_id != "o1" for e in tree.point_query(3.0))

    def test_after_last_record_not_covered(self):
        tree = ARTree.build(simple_ott())
        assert tree.point_query(80.0) == []

    @pytest.mark.parametrize("t", [5.0, 8.0, 10.0, 20.0, 25.0, 30.0, 55.0, 70.0])
    def test_matches_brute_force(self, t):
        ott = simple_ott()
        tree = ARTree.build(ott)
        got = sorted(entry.record.record_id for entry in tree.point_query(t))
        assert got == brute_force_point(ott, t)


class TestRangeQuery:
    def test_returns_overlapping_chain(self):
        tree = ARTree.build(simple_ott())
        entries = [e for e in tree.range_query(25.0, 58.0) if e.object_id == "o1"]
        record_ids = sorted(e.record.record_id for e in entries)
        # Gap entry of rd1 (covers 25), rd1 itself, gap+rd2 (covers 55-58).
        assert record_ids == [1, 2]

    def test_rejects_inverted_window(self):
        tree = ARTree.build(simple_ott())
        with pytest.raises(ValueError):
            tree.range_query(10.0, 5.0)

    def test_window_spanning_everything(self):
        tree = ARTree.build(simple_ott())
        assert len(tree.range_query(0.0, 100.0)) == 5


@st.composite
def random_otts(draw):
    object_count = draw(st.integers(min_value=1, max_value=5))
    records = []
    record_id = 0
    for obj in range(object_count):
        t = draw(st.floats(min_value=0.0, max_value=20.0))
        for _ in range(draw(st.integers(min_value=1, max_value=8))):
            start = t + draw(st.floats(min_value=0.01, max_value=10.0))
            end = start + draw(st.floats(min_value=0.0, max_value=10.0))
            records.append(
                TrackingRecord(record_id, f"o{obj}", f"d{record_id % 3}", start, end)
            )
            record_id += 1
            t = end
    return make_ott(records)


class TestProperties:
    @settings(max_examples=50, deadline=None)
    @given(random_otts(), st.floats(min_value=0.0, max_value=120.0))
    def test_point_query_matches_brute_force(self, ott, t):
        tree = ARTree.build(ott, fanout=3)
        got = sorted(entry.record.record_id for entry in tree.point_query(t))
        assert got == brute_force_point(ott, t)

    @settings(max_examples=50, deadline=None)
    @given(
        random_otts(),
        st.floats(min_value=0.0, max_value=100.0),
        st.floats(min_value=0.0, max_value=30.0),
    )
    def test_range_query_superset_of_interior_point_queries(
        self, ott, start, length
    ):
        end = start + length
        tree = ARTree.build(ott, fanout=3)
        window_ids = {
            (e.object_id, e.record.record_id) for e in tree.range_query(start, end)
        }
        for t in (start, (start + end) / 2.0, end):
            for entry in tree.point_query(t):
                assert (entry.object_id, entry.record.record_id) in window_ids

    @settings(max_examples=50, deadline=None)
    @given(random_otts())
    def test_at_most_one_entry_per_object_per_point(self, ott):
        tree = ARTree.build(ott, fanout=3)
        start, end = ott.time_span()
        for t in (start, (start + end) / 2, end):
            entries = tree.point_query(t)
            objects = [e.object_id for e in entries]
            assert len(objects) == len(set(objects))
