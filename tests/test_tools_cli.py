"""End-to-end tests for the ``repro.tools`` command-line front end."""

import pytest

from repro.tools import main


@pytest.fixture(scope="module")
def data_dir(tmp_path_factory):
    out = tmp_path_factory.mktemp("cli-data")
    code = main(
        [
            "generate",
            "--kind",
            "synthetic",
            "--objects",
            "15",
            "--minutes",
            "10",
            "--seed",
            "5",
            "--out",
            str(out),
        ]
    )
    assert code == 0
    return out


class TestGenerate:
    def test_files_written(self, data_dir):
        assert (data_dir / "model.json").exists()
        assert (data_dir / "ott.csv").exists()

    def test_cph_kind(self, tmp_path, capsys):
        code = main(
            [
                "generate",
                "--kind",
                "cph",
                "--objects",
                "10",
                "--minutes",
                "60",
                "--out",
                str(tmp_path / "cph"),
            ]
        )
        assert code == 0
        assert "records" in capsys.readouterr().out

    def test_detection_range_forwarded(self, tmp_path, capsys):
        code = main(
            [
                "generate",
                "--objects",
                "5",
                "--minutes",
                "5",
                "--detection-range",
                "2.5",
                "--out",
                str(tmp_path / "r25"),
            ]
        )
        assert code == 0
        from repro.indoor import load_indoor_model

        _, deployment, _ = load_indoor_model(tmp_path / "r25" / "model.json")
        assert all(device.radius == 2.5 for device in deployment)


class TestInfo:
    def test_summary(self, data_dir, capsys):
        assert main(["info", str(data_dir)]) == 0
        out = capsys.readouterr().out
        assert "records:" in out
        assert "objects:     15" in out

    def test_missing_directory(self, tmp_path, capsys):
        assert main(["info", str(tmp_path / "nowhere")]) == 1
        assert "error:" in capsys.readouterr().err


class TestQuery:
    def test_snapshot_query(self, data_dir, capsys):
        assert main(["query", str(data_dir), "--snapshot", "300", "--k", "3"]) == 0
        out = capsys.readouterr().out
        assert "top-3 POIs at t=300" in out
        assert out.count("flow=") == 3

    def test_interval_query_iterative(self, data_dir, capsys):
        code = main(
            [
                "query",
                str(data_dir),
                "--interval",
                "200",
                "400",
                "--k",
                "2",
                "--method",
                "iterative",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "top-2 POIs during [200, 400]" in out

    def test_methods_agree_through_cli(self, data_dir, capsys):
        main(["query", str(data_dir), "--snapshot", "300", "--k", "5"])
        join_out = capsys.readouterr().out
        main(
            [
                "query",
                str(data_dir),
                "--snapshot",
                "300",
                "--k",
                "5",
                "--method",
                "iterative",
            ]
        )
        iterative_out = capsys.readouterr().out
        # Same flows line by line (labels differ only in the method name).
        join_flows = [line.split("flow=")[1] for line in join_out.splitlines() if "flow=" in line]
        iter_flows = [line.split("flow=")[1] for line in iterative_out.splitlines() if "flow=" in line]
        assert join_flows == iter_flows

    def test_no_topology_flag(self, data_dir, capsys):
        code = main(
            [
                "query",
                str(data_dir),
                "--snapshot",
                "300",
                "--k",
                "2",
                "--no-topology-check",
            ]
        )
        assert code == 0

    def test_requires_a_query(self, data_dir):
        with pytest.raises(SystemExit):
            main(["query", str(data_dir), "--k", "3"])
