"""The HTTP surface end to end: a real listener, a real client.

One server per module (booted via :class:`ServerHandle` on its own
thread) with a small synthetic workload ingested up front; the tests
walk the endpoint catalogue, the error mapping and the SSE stream, and
compare served results against an in-process reference engine —
bit-identically, since that is the service's contract.
"""

from __future__ import annotations

import threading
import urllib.request

import pytest

from repro.core.queries import IntervalTopKQuery, SnapshotTopKQuery
from repro.datagen.config import SyntheticConfig
from repro.serve.app import ServeConfig, ServerHandle
from repro.serve.client import ServeClient, ServeHttpError
from repro.serve.scenario import build_engine, build_venue, record_stream
from repro.serve.wire import QuerySpec

CONFIG = SyntheticConfig(
    num_objects=16,
    duration=600.0,
    rooms_per_side=4,
    poi_count=12,
    seed=11,
)

T_MID = CONFIG.duration / 2.0


@pytest.fixture(scope="module")
def workload():
    return list(record_stream(CONFIG))


@pytest.fixture(scope="module")
def reference_engine(workload):
    engine = build_engine(build_venue(CONFIG))
    engine.ingest(workload)
    return engine


@pytest.fixture(scope="module")
def server(workload):
    handle = ServerHandle(build_engine(build_venue(CONFIG)), ServeConfig())
    with handle:
        client = ServeClient(handle.base_url)
        client.ingest(records=workload)
        yield handle


@pytest.fixture()
def client(server):
    return ServeClient(server.base_url)


class TestQueries:
    @pytest.mark.parametrize("method", ["join", "iterative"])
    def test_snapshot_matches_in_process_engine_bitwise(
        self, client, reference_engine, method
    ):
        served = client.query(
            QuerySpec(query=SnapshotTopKQuery(t=T_MID, k=5), method=method)
        )
        expected = reference_engine.snapshot_topk(T_MID, 5, method=method)
        assert served.poi_ids == expected.poi_ids
        assert served.flows == expected.flows

    @pytest.mark.parametrize("method", ["join", "iterative"])
    def test_interval_matches_in_process_engine_bitwise(
        self, client, reference_engine, method
    ):
        served = client.query(
            QuerySpec(
                query=IntervalTopKQuery(t_start=100.0, t_end=T_MID, k=4),
                method=method,
            )
        )
        expected = reference_engine.interval_topk(100.0, T_MID, 4, method=method)
        assert served.poi_ids == expected.poi_ids
        assert served.flows == expected.flows

    def test_deferred_job_lifecycle(self, client, reference_engine):
        job_id = client.submit_query(
            QuerySpec(query=SnapshotTopKQuery(t=T_MID, k=3))
        )
        result = client.wait_job(job_id)
        expected = reference_engine.snapshot_topk(T_MID, 3)
        assert result.poi_ids == expected.poi_ids
        assert result.flows == expected.flows
        payload = client.job(job_id)
        assert payload["status"] == "done"
        assert payload["kind"] == "query"

    def test_failing_deferred_job_records_the_error(self, client):
        # k exceeding nothing — use an inverted window smuggled past the
        # client-side dataclass by posting raw JSON.
        import json

        raw = json.dumps(
            {
                "wire_version": 1,
                "kind": "query",
                "mode": "interval",
                "t_start": 10.0,
                "t_end": 0.0,
                "k": 1,
                "method": "join",
            }
        ).encode()
        request = urllib.request.Request(
            f"{client.base_url}/queries?sync=false",
            data=raw,
            method="POST",
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=30)
        assert excinfo.value.code == 400  # decode fails before job creation


class TestErrorMapping:
    def test_encoded_path_params_decode_exactly_once(self, client):
        # A double-encoded slash (%252F) must reach the handler as the
        # single-decoded "mon%2F1" — decoding twice would turn it into
        # "mon/1" and could alter which route matches.
        import json

        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(
                f"{client.base_url}/monitors/mon%252F1", timeout=30
            )
        assert excinfo.value.code == 404
        body = json.loads(excinfo.value.read())
        assert "mon%2F1" in body["message"]

    def test_encoded_slash_in_path_param_does_not_split_the_route(self, client):
        # "%2F" inside an id must stay inside the parameter: the request
        # should resolve the monitors route (unknown id → 404 with the
        # decoded id), not fall through as a two-segment path.
        import json

        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(
                f"{client.base_url}/monitors/a%2Fb", timeout=30
            )
        assert excinfo.value.code == 404
        body = json.loads(excinfo.value.read())
        assert "unknown monitor" in body["message"]
        assert "a/b" in body["message"]

    def test_unknown_route_is_404(self, client):
        with pytest.raises(ServeHttpError) as excinfo:
            client._request("GET", "/nope")
        assert excinfo.value.status == 404

    def test_wrong_method_is_405(self, client):
        with pytest.raises(ServeHttpError) as excinfo:
            client._request("GET", "/queries")
        assert excinfo.value.status == 405

    def test_malformed_body_is_400(self, client):
        request = urllib.request.Request(
            f"{client.base_url}/queries", data=b"not json", method="POST"
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=30)
        assert excinfo.value.code == 400

    def test_unknown_job_is_404(self, client):
        with pytest.raises(ServeHttpError) as excinfo:
            client.job("job-999999")
        assert excinfo.value.status == 404

    def test_bad_query_flag_is_400(self, client):
        import json

        payload = json.dumps(
            {
                "wire_version": 1,
                "kind": "query",
                "mode": "snapshot",
                "t": 1.0,
                "k": 1,
                "method": "join",
            }
        ).encode()
        request = urllib.request.Request(
            f"{client.base_url}/queries?sync=maybe", data=payload, method="POST"
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=30)
        assert excinfo.value.code == 400

    def test_unknown_ingest_field_is_400(self, client):
        with pytest.raises(ServeHttpError) as excinfo:
            client._request("POST", "/ingest", {"record": []})
        assert excinfo.value.status == 400
        assert "unknown ingest fields" in excinfo.value.message

    def test_record_validation_error_is_400(self, client):
        with pytest.raises(ServeHttpError) as excinfo:
            client._request(
                "POST",
                "/ingest",
                {
                    "records": [
                        {
                            "wire_version": 1,
                            "kind": "record",
                            "record_id": 1,
                            "object_id": "o",
                            "device_id": "d",
                            "t_s": 5.0,
                            "t_e": 1.0,
                        }
                    ]
                },
            )
        assert excinfo.value.status == 400
        assert "precedes" in excinfo.value.message


class TestHealthAndMetrics:
    def test_health_reports_engine_identity(self, client):
        payload = client.health()
        assert payload["live"] is True
        assert payload["generation"] > 0  # the module workload is ingested
        assert set(payload["jobs"]) == {"pending", "done", "error"}

    def test_metrics_exports_obs_and_engine_stats(self, client):
        import repro.obs as obs

        # Instrumentation is off by default; the latency histograms only
        # record while the flag is up (the server thread shares it).
        obs.enable()
        try:
            client.query(QuerySpec(query=SnapshotTopKQuery(t=T_MID, k=2)))
            payload = client.metrics()
        finally:
            obs.disable()
        assert "engine" in payload and "obs" in payload
        assert isinstance(payload["engine"], dict)
        metric_names = set(payload["obs"].get("metrics", {}))
        assert any(name.startswith("serve.latency.") for name in metric_names)


class TestMonitors:
    def test_monitor_crud_and_stream(self, client, reference_engine):
        monitor_id = client.create_monitor(kind="snapshot", k=3)
        try:
            assert client.monitor(monitor_id)["kind"] == "snapshot"
            assert any(
                m["monitor_id"] == monitor_id for m in client.monitors()
            )

            streamed = []
            consumer = threading.Thread(
                target=lambda: streamed.extend(
                    client.stream(monitor_id, max_events=2)
                ),
                daemon=True,
            )
            consumer.start()
            first = client.tick_monitor(monitor_id, T_MID)
            second = client.tick_monitor(monitor_id, T_MID + 60.0)
            consumer.join(timeout=30.0)
            assert not consumer.is_alive()
            assert streamed == [first, second]
            # The first tick reports the whole top-k as entered, and the
            # result matches the reference engine bitwise.
            expected = reference_engine.snapshot_topk(T_MID, 3)
            assert first.result.poi_ids == expected.poi_ids
            assert first.result.flows == expected.flows
            assert set(first.entered) == set(expected.poi_ids)
        finally:
            client.drop_monitor(monitor_id)

    def test_interval_monitor_needs_window_over_http(self, client):
        with pytest.raises(ServeHttpError) as excinfo:
            client.create_monitor(kind="interval", k=2)
        assert excinfo.value.status == 400

    def test_unknown_monitor_is_404_everywhere(self, client):
        with pytest.raises(ServeHttpError) as excinfo:
            client.monitor("mon-424242")
        assert excinfo.value.status == 404
        with pytest.raises(ServeHttpError) as excinfo:
            client.tick_monitor("mon-424242", 1.0)
        assert excinfo.value.status == 404
        with pytest.raises(ServeHttpError) as excinfo:
            client.drop_monitor("mon-424242")
        assert excinfo.value.status == 404
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(
                f"{client.base_url}/monitors/mon-424242/stream", timeout=30
            )
        assert excinfo.value.code == 404

    def test_backwards_tick_is_400(self, client):
        monitor_id = client.create_monitor(kind="snapshot", k=2)
        try:
            client.tick_monitor(monitor_id, T_MID)
            with pytest.raises(ServeHttpError) as excinfo:
                client.tick_monitor(monitor_id, T_MID - 50.0)
            assert excinfo.value.status == 400
            assert "backwards" in excinfo.value.message
        finally:
            client.drop_monitor(monitor_id)


class TestStreamLifecycle:
    """Shutdown and idle-connection behavior of the SSE streams.

    Each test boots its own (small) server: these scenarios tear the
    server down or tune the heartbeat, which the module-scoped fixture
    server must not be subjected to.
    """

    SMALL = SyntheticConfig(
        num_objects=4,
        duration=120.0,
        rooms_per_side=2,
        poi_count=4,
        seed=7,
    )

    def _handle(self, **config_kwargs) -> ServerHandle:
        return ServerHandle(
            build_engine(build_venue(self.SMALL)), ServeConfig(**config_kwargs)
        )

    def test_stop_with_connected_stream_subscriber_does_not_deadlock(self):
        # Regression: stop() must cancel stream tasks *before* waiting
        # for connection handlers (wait_closed() on 3.12+ waits for
        # them, and a stream handler blocks on its subscriber queue
        # until the actor stops — which happens after the server stops).
        import time

        handle = self._handle()
        handle.start()
        response = None
        try:
            client = ServeClient(handle.base_url)
            monitor_id = client.create_monitor(kind="snapshot", k=2)
            response = urllib.request.urlopen(
                f"{handle.base_url}/monitors/{monitor_id}/stream", timeout=30
            )
            thread = handle._thread
            started = time.monotonic()
            handle.stop()
            assert time.monotonic() - started < 20.0
            assert thread is not None and not thread.is_alive()
        finally:
            if response is not None:
                response.close()
            handle.stop()

    def test_idle_stream_emits_heartbeat_comment_frames(self):
        with self._handle(sse_heartbeat_seconds=0.1) as handle:
            client = ServeClient(handle.base_url)
            monitor_id = client.create_monitor(kind="snapshot", k=2)
            with urllib.request.urlopen(
                f"{handle.base_url}/monitors/{monitor_id}/stream", timeout=30
            ) as response:
                for raw_line in response:
                    line = raw_line.decode("utf-8").strip()
                    if line:
                        assert line == ": heartbeat"
                        break

    def test_dead_stream_connection_is_reaped_without_ticks(self):
        import time

        with self._handle(sse_heartbeat_seconds=0.1) as handle:
            client = ServeClient(handle.base_url)
            monitor_id = client.create_monitor(kind="snapshot", k=2)
            response = urllib.request.urlopen(
                f"{handle.base_url}/monitors/{monitor_id}/stream", timeout=30
            )
            assert client.monitor(monitor_id)["subscribers"] == 1
            response.close()
            # No ticks ever flow; only the heartbeat can detect the dead
            # socket and unsubscribe the connection.
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline:
                if client.monitor(monitor_id)["subscribers"] == 0:
                    break
                time.sleep(0.05)
            assert client.monitor(monitor_id)["subscribers"] == 0


class TestIngestOverHttp:
    def test_open_extend_close_episode_lifecycle(self, client, workload):
        last_t = max(record.t_e for record in workload)
        next_id = max(record.record_id for record in workload) + 1
        from repro.tracking.records import TrackingRecord

        open_record = TrackingRecord(
            record_id=next_id,
            object_id="http-visitor",
            device_id=workload[0].device_id,
            t_s=last_t + 1.0,
            t_e=last_t + 1.0,
        )
        before = client.health()["generation"]
        client.ingest(open_episode=open_record)
        client.ingest(extend=("http-visitor", last_t + 4.0))
        outcome = client.ingest(close=("http-visitor", last_t + 5.0))
        assert outcome["generation"] > before

    def test_double_close_maps_to_400(self, client):
        with pytest.raises(ServeHttpError) as excinfo:
            client.ingest(close=("http-visitor", None))
        assert excinfo.value.status == 400
