"""The engine actor: single-writer ordering, monitors, subscriber queues.

Most tests drive a fake engine that records the call sequence — the
actor's job is *ordering and ownership*, not query semantics — plus a
final test against a real live engine to pin the facade's type fit.
"""

from __future__ import annotations

import asyncio
import threading

import pytest

from repro.core.queries import (
    RankedPoi,
    SnapshotTopKQuery,
    IntervalTopKQuery,
    TopKResult,
)
from repro.geometry import Polygon
from repro.indoor.poi import Poi
from repro.serve.actor import EngineActor, IngestBatch
from repro.serve.wire import QuerySpec
from repro.tracking.records import TrackingRecord


def _poi(poi_id: str) -> Poi:
    return Poi(
        poi_id=poi_id,
        polygon=Polygon.rectangle(0.0, 0.0, 1.0, 1.0),
        room_id="r",
        name=poi_id,
        category="room",
    )


def _record(record_id: int, object_id: str, t_s: float, t_e: float) -> TrackingRecord:
    return TrackingRecord(
        record_id=record_id,
        object_id=object_id,
        device_id="dev",
        t_s=t_s,
        t_e=t_e,
    )


class FakeEngine:
    """A ServableEngine that logs every call with its executing thread."""

    def __init__(self) -> None:
        self.calls: list[tuple[str, str]] = []
        self._generation = 0
        self.closed = 0

    def _log(self, name: str) -> None:
        self.calls.append((name, threading.current_thread().name))

    @property
    def is_live(self) -> bool:
        return True

    @property
    def generation(self) -> int:
        return self._generation

    def snapshot_topk(self, t, k, pois=None, method="join"):
        self._log(f"snapshot:{t}:{k}:{method}")
        return TopKResult(entries=(RankedPoi(poi=_poi("a"), flow=float(t)),))

    def interval_topk(
        self, t_start, t_end, k, pois=None, method="join", use_segment_mbrs=True
    ):
        self._log(f"interval:{t_start}:{t_end}:{k}:{method}")
        return TopKResult(entries=(RankedPoi(poi=_poi("b"), flow=t_end),))

    def ingest(self, records):
        batch = list(records)
        self._log(f"ingest:{len(batch)}")
        self._generation += len(batch)
        return len(batch)

    def ingest_open(self, record):
        self._log("ingest_open")
        self._generation += 1

    def extend_episode(self, object_id, t_e):
        self._log(f"extend:{object_id}:{t_e}")
        self._generation += 1
        return _record(99, str(object_id), 0.0, t_e)

    def close_episode(self, object_id, t_e=None):
        self._log(f"close:{object_id}:{t_e}")
        self._generation += 1
        return _record(99, str(object_id), 0.0, t_e or 1.0)

    def stats(self):
        self._log("stats")
        return {"calls": len(self.calls)}

    def checkpoint(self):
        self._log("checkpoint")
        return 7

    def close(self):
        self._log("close")
        self.closed += 1


class TestOrdering:
    def test_operations_run_in_submission_order_on_one_thread(self):
        async def scenario():
            engine = FakeEngine()
            actor = EngineActor(engine)
            await actor.start()
            # Interleave queries and ingests concurrently; gather order
            # is submission order because submit() awaits queue.put in
            # coroutine scheduling order.
            await actor.ingest(IngestBatch(records=(_record(1, "o", 0.0, 1.0),)))
            await actor.query(QuerySpec(query=SnapshotTopKQuery(t=5.0, k=2)))
            await actor.ingest(IngestBatch(records=(_record(2, "o", 1.0, 2.0),)))
            await actor.query(
                QuerySpec(
                    query=IntervalTopKQuery(t_start=0.0, t_end=2.0, k=1),
                    method="iterative",
                )
            )
            await actor.stop()
            return engine

        engine = asyncio.run(scenario())
        names = [name for name, _ in engine.calls]
        assert names == [
            "ingest:1",
            "snapshot:5.0:2:join",
            "ingest:1",
            "interval:0.0:2.0:1:iterative",
            "close",
        ]
        threads = {thread for _, thread in engine.calls}
        assert len(threads) == 1
        assert "engine-actor" in threads.pop()

    def test_atomic_batch_composes_all_episode_ops(self):
        async def scenario():
            engine = FakeEngine()
            actor = EngineActor(engine)
            await actor.start()
            outcome = await actor.ingest(
                IngestBatch(
                    records=(_record(1, "o", 0.0, 1.0),),
                    open_episode=_record(2, "p", 1.0, 1.0),
                    extend=("p", 3.0),
                    close=("p", 4.0),
                )
            )
            await actor.stop()
            return engine, outcome

        engine, outcome = asyncio.run(scenario())
        names = [name for name, _ in engine.calls if name != "close"]
        assert names == ["ingest:1", "ingest_open", "extend:p:3.0", "close:p:4.0"]
        assert outcome.ingested == 2  # batch + open episode
        assert outcome.generation == 4

    def test_errors_propagate_and_do_not_kill_the_actor(self):
        async def scenario():
            engine = FakeEngine()
            actor = EngineActor(engine)
            await actor.start()

            def boom():
                raise ValueError("seeded failure")

            with pytest.raises(ValueError, match="seeded failure"):
                await actor.submit(boom)
            # The actor keeps serving after a failed operation.
            stats = await actor.stats()
            await actor.stop()
            return stats

        stats = asyncio.run(scenario())
        assert stats["calls"] >= 1

    def test_stop_rejects_new_work_and_closes_engine_once(self):
        async def scenario():
            engine = FakeEngine()
            actor = EngineActor(engine)
            await actor.start()
            await actor.stop()
            await actor.stop()  # idempotent
            with pytest.raises(RuntimeError, match="stopped"):
                await actor.stats()
            return engine

        engine = asyncio.run(scenario())
        assert engine.closed == 1

    def test_stop_can_leave_the_engine_open(self):
        async def scenario():
            engine = FakeEngine()
            actor = EngineActor(engine)
            await actor.start()
            await actor.stop(close_engine=False)
            return engine

        engine = asyncio.run(scenario())
        assert engine.closed == 0


class TestMonitors:
    def test_create_tick_and_broadcast(self):
        async def scenario():
            engine = FakeEngine()
            actor = EngineActor(engine)
            await actor.start()
            monitor_id = actor.create_monitor(kind="snapshot", k=1)
            subscriber = actor.subscribe(monitor_id)
            update = await actor.tick_monitor(monitor_id, 10.0)
            queued = await subscriber.queue.get()
            await actor.stop()
            sentinel = await subscriber.queue.get()
            return monitor_id, update, queued, sentinel

        monitor_id, update, queued, sentinel = asyncio.run(scenario())
        assert monitor_id == "mon-1"
        assert queued == update
        assert update.entered == ("a",)
        assert sentinel is None  # stop() ends every stream

    def test_interval_monitor_requires_window(self):
        async def scenario():
            actor = EngineActor(FakeEngine())
            await actor.start()
            with pytest.raises(ValueError, match="window_seconds"):
                actor.create_monitor(kind="interval", k=1)
            with pytest.raises(ValueError, match="window_seconds"):
                actor.create_monitor(kind="snapshot", k=1, window_seconds=5.0)
            with pytest.raises(ValueError, match="kind"):
                actor.create_monitor(kind="hourly", k=1)
            await actor.stop()

        asyncio.run(scenario())

    def test_ingest_tick_advances_all_monitors_atomically(self):
        async def scenario():
            engine = FakeEngine()
            actor = EngineActor(engine)
            await actor.start()
            actor.create_monitor(kind="snapshot", k=1)
            actor.create_monitor(kind="interval", k=1, window_seconds=4.0)
            outcome = await actor.ingest(
                IngestBatch(records=(_record(1, "o", 0.0, 1.0),), tick_t=6.0)
            )
            await actor.stop()
            return engine, outcome

        engine, outcome = asyncio.run(scenario())
        assert [mid for mid, _ in outcome.updates] == ["mon-1", "mon-2"]
        names = [name for name, _ in engine.calls]
        # The tick evaluations happen inside the same actor submission,
        # directly after the batch's ingest — nothing can interleave.
        assert names[:3] == ["ingest:1", "snapshot:6.0:1:join", "interval:2.0:6.0:1:join"]

    def test_slow_subscriber_drops_newest_and_counts(self):
        async def scenario():
            engine = FakeEngine()
            actor = EngineActor(engine)
            await actor.start()
            monitor_id = actor.create_monitor(kind="snapshot", k=1)
            subscriber = actor.subscribe(monitor_id, queue_size=2)
            for t in (1.0, 2.0, 3.0, 4.0, 5.0):
                await actor.tick_monitor(monitor_id, t)
            drained = []
            while not subscriber.queue.empty():
                drained.append(subscriber.queue.get_nowait())
            info = actor.monitor_info(monitor_id)
            await actor.stop()
            return subscriber, drained, info

        subscriber, drained, info = asyncio.run(scenario())
        # Queue bound 2: the first two updates queued, three dropped.
        assert [u.t for u in drained] == [1.0, 2.0]
        assert subscriber.dropped == 3
        assert info["updates_published"] == 5
        assert info["dropped_updates"] == 3

    def test_drop_monitor_ends_streams(self):
        async def scenario():
            actor = EngineActor(FakeEngine())
            await actor.start()
            monitor_id = actor.create_monitor(kind="snapshot", k=1)
            subscriber = actor.subscribe(monitor_id)
            assert actor.drop_monitor(monitor_id)
            assert not actor.drop_monitor(monitor_id)
            sentinel = subscriber.queue.get_nowait()
            with pytest.raises(KeyError):
                await actor.tick_monitor(monitor_id, 1.0)
            await actor.stop()
            return sentinel

        assert asyncio.run(scenario()) is None


class TestRealEngine:
    def test_actor_serves_a_live_flow_engine(self, synthetic_dataset):
        from repro.core.engine import LiveFlowEngine

        records = tuple(synthetic_dataset.ott)

        async def scenario():
            engine = LiveFlowEngine(
                synthetic_dataset.floorplan,
                synthetic_dataset.deployment,
                synthetic_dataset.pois,
                v_max=synthetic_dataset.v_max,
                detection_slack=2.0 * synthetic_dataset.sampling_interval,
            )
            actor = EngineActor(engine)
            await actor.start()
            outcome = await actor.ingest(IngestBatch(records=records))
            served = await actor.query(
                QuerySpec(query=SnapshotTopKQuery(t=600.0, k=5))
            )
            await actor.stop()
            return outcome, served

        outcome, served = asyncio.run(scenario())
        reference = synthetic_dataset.engine().snapshot_topk(600.0, 5)
        assert outcome.ingested == len(records)
        assert served.poi_ids == reference.poi_ids
        assert served.flows == reference.flows
