"""The concurrency battery: serving must not change a single bit.

Several client threads hammer ``POST /ingest`` (disjoint per-object
record streams, each in time order — the only order the live table
requires) while query threads issue ``POST /queries`` against the moving
engine.  When the dust settles, the served top-k must be bit-identical
to a serial in-process reference: the actor serializes every mutation,
and the canonical contribution order makes the result independent of
how the per-object streams interleaved.

Runs with contracts armed (``REPRO_CONTRACTS=1``) across both query
methods and both storage backends.
"""

from __future__ import annotations

import threading

import pytest

from repro.core.queries import IntervalTopKQuery, SnapshotTopKQuery
from repro.datagen.config import SyntheticConfig
from repro.serve.app import ServeConfig, ServerHandle
from repro.serve.client import ServeClient
from repro.serve.scenario import build_engine, build_venue, record_stream
from repro.serve.wire import QuerySpec

CONFIG = SyntheticConfig(
    num_objects=12,
    duration=600.0,
    rooms_per_side=4,
    poi_count=10,
    seed=11,
)

INGEST_THREADS = 4
QUERY_THREADS = 2
CHUNK = 5

QUERY_TIMES = (150.0, 300.0, 450.0, 600.0)
INTERVAL = (100.0, 500.0)


def _per_thread_streams(records):
    """Partition the workload into per-object streams, then into threads.

    Each object's records stay together and in time order (the live
    table's contract); whole objects are dealt round-robin to threads so
    the streams are disjoint and may interleave arbitrarily.
    """
    by_object: dict = {}
    for record in records:
        by_object.setdefault(record.object_id, []).append(record)
    streams = [[] for _ in range(INGEST_THREADS)]
    for index, object_records in enumerate(by_object.values()):
        streams[index % INGEST_THREADS].extend(object_records)
    return streams


@pytest.fixture(scope="module")
def workload():
    return list(record_stream(CONFIG))


@pytest.fixture(scope="module")
def reference_engine(workload):
    engine = build_engine(build_venue(CONFIG))
    engine.ingest(workload)
    return engine


@pytest.mark.parametrize("method", ["join", "iterative"])
@pytest.mark.parametrize("backend", ["memory", "sqlite"])
def test_concurrent_ingest_and_query_is_bit_identical_to_serial(
    workload, reference_engine, method, backend, tmp_path, monkeypatch
):
    monkeypatch.setenv("REPRO_CONTRACTS", "1")

    storage = tmp_path / "venue.sqlite" if backend == "sqlite" else None
    engine = build_engine(build_venue(CONFIG), storage=storage)
    errors: list[BaseException] = []
    start = threading.Barrier(INGEST_THREADS + QUERY_THREADS)
    ingest_done = threading.Event()

    with ServerHandle(engine, ServeConfig()) as handle:
        client_factory = lambda: ServeClient(handle.base_url)  # noqa: E731

        def ingest_worker(stream):
            client = client_factory()
            try:
                start.wait(timeout=30.0)
                for offset in range(0, len(stream), CHUNK):
                    client.ingest(records=stream[offset : offset + CHUNK])
            except BaseException as exc:  # noqa: BLE001 — collected for the assert
                errors.append(exc)

        def query_worker():
            client = client_factory()
            try:
                start.wait(timeout=30.0)
                while not ingest_done.is_set():
                    # Mid-ingest answers are some consistent prefix of the
                    # stream; they only need to be well-formed here.
                    result = client.query(
                        QuerySpec(
                            query=SnapshotTopKQuery(t=QUERY_TIMES[0], k=3),
                            method=method,
                        )
                    )
                    assert len(result.poi_ids) <= 3
            except BaseException as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [
            threading.Thread(target=ingest_worker, args=(stream,), daemon=True)
            for stream in _per_thread_streams(workload)
        ] + [
            threading.Thread(target=query_worker, daemon=True)
            for _ in range(QUERY_THREADS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads[:INGEST_THREADS]:
            thread.join(timeout=120.0)
        ingest_done.set()
        for thread in threads[INGEST_THREADS:]:
            thread.join(timeout=120.0)

        assert not errors, errors
        assert all(not thread.is_alive() for thread in threads)

        client = client_factory()
        assert client.health()["generation"] == len(workload)

        for t in QUERY_TIMES:
            served = client.query(
                QuerySpec(query=SnapshotTopKQuery(t=t, k=5), method=method)
            )
            expected = reference_engine.snapshot_topk(t, 5, method=method)
            assert served.poi_ids == expected.poi_ids
            assert served.flows == expected.flows

        served = client.query(
            QuerySpec(
                query=IntervalTopKQuery(
                    t_start=INTERVAL[0], t_end=INTERVAL[1], k=5
                ),
                method=method,
            )
        )
        expected = reference_engine.interval_topk(
            INTERVAL[0], INTERVAL[1], 5, method=method
        )
        assert served.poi_ids == expected.poi_ids
        assert served.flows == expected.flows
