"""The job store's bounded retention.

A long-running server settles an unbounded stream of deferred queries;
the store must not retain every encoded result forever.  Terminal jobs
evict oldest-first beyond ``max_terminal``; pending jobs — still queued
behind the actor — are never evicted.
"""

from __future__ import annotations

from repro.serve.jobs import DEFAULT_MAX_TERMINAL, JobStore


class TestJobStoreEviction:
    def test_terminal_jobs_evict_oldest_first_beyond_the_cap(self):
        store = JobStore(max_terminal=2)
        first = store.create("query")
        store.finish(first.job_id, {"n": 1})
        second = store.create("query")
        store.finish(second.job_id, {"n": 2})
        third = store.create("query")
        store.fail(third.job_id, "boom")

        assert store.get(first.job_id) is None  # evicted → 404 upstream
        assert store.get(second.job_id) is not None
        assert store.get(second.job_id).status == "done"
        assert store.get(third.job_id) is not None
        assert store.get(third.job_id).status == "error"
        assert len(store) == 2

    def test_pending_jobs_are_never_evicted(self):
        store = JobStore(max_terminal=1)
        pending = store.create("query")
        for _ in range(5):
            job = store.create("query")
            store.finish(job.job_id, {})

        survivor = store.get(pending.job_id)
        assert survivor is not None and survivor.status == "pending"
        assert store.counts() == {"pending": 1, "done": 1, "error": 0}

    def test_default_cap_is_generous_but_finite(self):
        store = JobStore()
        assert store.max_terminal == DEFAULT_MAX_TERMINAL
        for _ in range(DEFAULT_MAX_TERMINAL + 10):
            job = store.create("query")
            store.finish(job.job_id, {})
        assert len(store) == DEFAULT_MAX_TERMINAL
