"""The wire codecs: bit-identical round trips and loud rejections.

The property tests pin the service's float contract down to the byte
pattern of the IEEE-754 doubles: ``decode(loads(dumps(encode(x))))``
must reproduce every timestamp and flow bit for bit (``-0.0`` and
subnormals included), because served query results are compared exactly
against in-process results elsewhere in the suite.
"""

from __future__ import annotations

import struct

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.monitor import TopKUpdate
from repro.core.queries import (
    IntervalTopKQuery,
    RankedPoi,
    SnapshotTopKQuery,
    TopKResult,
)
from repro.geometry import Polygon
from repro.indoor.poi import Poi
from repro.serve.wire import (
    WIRE_SCHEMA_VERSION,
    QuerySpec,
    WireError,
    decode_poi,
    decode_query,
    decode_record,
    decode_result,
    decode_update,
    dumps,
    encode_poi,
    encode_query,
    encode_record,
    encode_result,
    encode_update,
    loads,
)
from repro.tracking.records import TrackingRecord


def bits(value: float) -> bytes:
    """The exact IEEE-754 byte pattern (distinguishes 0.0 from -0.0)."""
    return struct.pack("<d", value)


# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------

# Full finite double range: the wire must carry any finite timestamp or
# flow, not just "reasonable" ones.
finite = st.floats(allow_nan=False, allow_infinity=False)
# Episode times are bounded so t_s + dt stays finite.
episode_time = st.floats(
    min_value=-1e15, max_value=1e15, allow_nan=False, allow_infinity=False
)
wire_id = st.one_of(
    st.text(max_size=12), st.integers(min_value=-(2**40), max_value=2**40)
)


@st.composite
def records(draw) -> TrackingRecord:
    t_s = draw(episode_time)
    duration = draw(st.floats(min_value=0.0, max_value=1e15, allow_nan=False))
    return TrackingRecord(
        record_id=draw(st.integers(min_value=0, max_value=2**53)),
        object_id=draw(wire_id),
        device_id=draw(wire_id),
        t_s=t_s,
        t_e=t_s + duration,
    )


@st.composite
def query_specs(draw) -> QuerySpec:
    k = draw(st.integers(min_value=1, max_value=1000))
    method = draw(st.sampled_from(["join", "iterative"]))
    if draw(st.booleans()):
        return QuerySpec(
            query=SnapshotTopKQuery(t=draw(finite), k=k), method=method
        )
    t_start = draw(episode_time)
    length = draw(st.floats(min_value=0.0, max_value=1e15, allow_nan=False))
    return QuerySpec(
        query=IntervalTopKQuery(t_start=t_start, t_end=t_start + length, k=k),
        method=method,
    )


@st.composite
def pois(draw) -> Poi:
    x0 = draw(st.floats(min_value=-1e6, max_value=1e6, allow_nan=False))
    y0 = draw(st.floats(min_value=-1e6, max_value=1e6, allow_nan=False))
    width = draw(st.floats(min_value=1e-3, max_value=1e3, allow_nan=False))
    height = draw(st.floats(min_value=1e-3, max_value=1e3, allow_nan=False))
    return Poi(
        poi_id=draw(st.text(max_size=10)),
        polygon=Polygon.rectangle(x0, y0, x0 + width, y0 + height),
        room_id=draw(st.text(max_size=10)),
        name=draw(st.text(max_size=10)),
        category=draw(st.text(max_size=10)),
    )


@st.composite
def results(draw) -> TopKResult:
    entries = draw(
        st.lists(
            st.tuples(pois(), finite),
            max_size=4,
        )
    )
    return TopKResult(
        entries=tuple(RankedPoi(poi=poi, flow=flow) for poi, flow in entries)
    )


@st.composite
def updates(draw) -> TopKUpdate:
    poi_id = st.text(max_size=8)
    rank = st.integers(min_value=1, max_value=100)
    return TopKUpdate(
        t=draw(finite),
        result=draw(results()),
        entered=tuple(draw(st.lists(poi_id, max_size=3))),
        exited=tuple(draw(st.lists(poi_id, max_size=3))),
        rank_changes=tuple(
            draw(st.lists(st.tuples(poi_id, rank, rank), max_size=3))
        ),
    )


# ----------------------------------------------------------------------
# Round-trip properties (through actual JSON text, not just dicts)
# ----------------------------------------------------------------------


class TestRoundTrips:
    @given(records())
    def test_record_round_trip_is_bit_identical(self, record):
        decoded = decode_record(loads(dumps(encode_record(record))))
        assert decoded == record
        assert bits(decoded.t_s) == bits(record.t_s)
        assert bits(decoded.t_e) == bits(record.t_e)
        assert type(decoded.object_id) is type(record.object_id)

    @given(query_specs())
    def test_query_round_trip_is_bit_identical(self, spec):
        decoded = decode_query(loads(dumps(encode_query(spec))))
        assert decoded == spec
        if isinstance(spec.query, SnapshotTopKQuery):
            assert bits(decoded.query.t) == bits(spec.query.t)
        else:
            assert bits(decoded.query.t_start) == bits(spec.query.t_start)
            assert bits(decoded.query.t_end) == bits(spec.query.t_end)

    @given(pois())
    def test_poi_round_trip_preserves_geometry(self, poi):
        decoded = decode_poi(loads(dumps(encode_poi(poi))))
        assert decoded.poi_id == poi.poi_id
        assert decoded.room_id == poi.room_id
        assert decoded.name == poi.name
        assert decoded.category == poi.category
        assert [
            (bits(v.x), bits(v.y)) for v in decoded.polygon.vertices
        ] == [(bits(v.x), bits(v.y)) for v in poi.polygon.vertices]

    @settings(max_examples=50)
    @given(results())
    def test_result_round_trip_is_bit_identical(self, result):
        decoded = decode_result(loads(dumps(encode_result(result))))
        assert len(decoded) == len(result)
        for ours, theirs in zip(decoded.entries, result.entries):
            assert bits(ours.flow) == bits(theirs.flow)
            assert ours.poi.poi_id == theirs.poi.poi_id

    @settings(max_examples=50)
    @given(updates())
    def test_update_round_trip_preserves_change_sets(self, update):
        decoded = decode_update(loads(dumps(encode_update(update))))
        assert bits(decoded.t) == bits(update.t)
        assert decoded.entered == update.entered
        assert decoded.exited == update.exited
        assert decoded.rank_changes == update.rank_changes
        assert decoded.changed == update.changed
        assert [bits(f) for f in decoded.result.flows] == [
            bits(f) for f in update.result.flows
        ]

    @given(records())
    def test_dumps_is_canonical(self, record):
        # Same payload, same bytes: sorted keys + compact separators.
        payload = encode_record(record)
        assert dumps(payload) == dumps(dict(reversed(list(payload.items()))))


# ----------------------------------------------------------------------
# Envelope and validation rejections
# ----------------------------------------------------------------------


class TestRejections:
    def sample_record_payload(self):
        return encode_record(
            TrackingRecord(
                record_id=1, object_id="o", device_id="d", t_s=0.0, t_e=1.0
            )
        )

    def test_version_mismatch_is_rejected(self):
        payload = self.sample_record_payload()
        payload["wire_version"] = WIRE_SCHEMA_VERSION + 1
        with pytest.raises(WireError, match="wire_version"):
            decode_record(payload)

    def test_kind_mismatch_is_rejected(self):
        payload = self.sample_record_payload()
        with pytest.raises(WireError, match="expected kind"):
            decode_query(payload)

    def test_non_finite_floats_are_rejected(self):
        payload = self.sample_record_payload()
        payload["t_s"] = float("inf")
        with pytest.raises(WireError, match="finite"):
            decode_record(payload)

    def test_booleans_are_not_numbers_or_ids(self):
        payload = self.sample_record_payload()
        payload["t_e"] = True
        with pytest.raises(WireError, match="t_e"):
            decode_record(payload)
        payload = self.sample_record_payload()
        payload["object_id"] = False
        with pytest.raises(WireError, match="object_id"):
            decode_record(payload)

    def test_inverted_episode_is_rejected_as_wire_error(self):
        payload = self.sample_record_payload()
        payload["t_e"] = -1.0
        with pytest.raises(WireError, match="precedes"):
            decode_record(payload)

    def test_unknown_query_mode_and_method_are_rejected(self):
        spec = QuerySpec(query=SnapshotTopKQuery(t=0.0, k=1))
        payload = encode_query(spec)
        payload["mode"] = "cube"
        with pytest.raises(WireError, match="mode"):
            decode_query(payload)
        payload = encode_query(spec)
        payload["method"] = "magic"
        with pytest.raises(WireError, match="method"):
            decode_query(payload)

    def test_inverted_window_is_rejected_as_wire_error(self):
        payload = encode_query(
            QuerySpec(query=IntervalTopKQuery(t_start=0.0, t_end=1.0, k=1))
        )
        payload["t_end"] = -5.0
        with pytest.raises(WireError):
            decode_query(payload)

    def test_non_object_json_is_rejected(self):
        with pytest.raises(WireError, match="JSON"):
            loads("[1, 2")
        with pytest.raises(WireError, match="object"):
            loads("[1, 2]")

    def test_degenerate_polygon_is_rejected(self):
        poi = Poi(
            poi_id="p",
            polygon=Polygon.rectangle(0.0, 0.0, 1.0, 1.0),
            room_id="r",
            name="n",
            category="c",
        )
        payload = encode_poi(poi)
        payload["polygon"] = payload["polygon"][:2]
        with pytest.raises(WireError, match="polygon"):
            decode_poi(payload)
