"""The E2E recovery demo: kill the server mid-stream, restart, compare.

A real ``python -m repro.serve`` subprocess over a sqlite store takes
half the workload and is killed with SIGKILL — no drain, no checkpoint,
no goodbye.  A fresh process over the same store must recover the durable
prefix, accept the rest of the stream (including idempotent redelivery
of records the dead process already persisted), and answer queries
bit-identically to an uninterrupted in-process run of the same workload.
"""

from __future__ import annotations

import os
import re
import signal
import subprocess
import sys
import time

import pytest

from repro.core.queries import IntervalTopKQuery, SnapshotTopKQuery
from repro.datagen.config import SyntheticConfig
from repro.serve.client import ServeClient
from repro.serve.scenario import build_engine, build_venue, record_stream
from repro.serve.wire import QuerySpec

CONFIG = SyntheticConfig(
    num_objects=12,
    duration=600.0,
    rooms_per_side=4,
    poi_count=10,
    seed=11,
)

VENUE_FLAGS = [
    "--rooms", str(CONFIG.rooms_per_side),
    "--poi-count", str(CONFIG.poi_count),
    "--seed", str(CONFIG.seed),
    "--detection-range", str(CONFIG.detection_range),
    "--hallway-spacing", str(CONFIG.hallway_spacing),
    "--v-max", str(CONFIG.speed),
]

PORT_LINE = re.compile(r"repro\.serve listening on http://[\d.]+:(\d+)")


def _boot(storage, extra_env=None):
    """Start ``python -m repro.serve`` and wait for the port line."""
    env = dict(os.environ)
    env["PYTHONPATH"] = "src"
    env.update(extra_env or {})
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro.serve",
            "--port", "0",
            "--storage", str(storage),
            *VENUE_FLAGS,
        ],
        cwd=os.path.dirname(os.path.dirname(os.path.dirname(__file__))),
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    deadline = time.monotonic() + 60.0
    lines = []
    while time.monotonic() < deadline:
        line = proc.stdout.readline()
        if not line:
            break
        lines.append(line)
        match = PORT_LINE.search(line)
        if match:
            return proc, int(match.group(1))
    proc.kill()
    proc.wait()
    raise AssertionError(f"server never printed its port line: {lines!r}")


@pytest.fixture(scope="module")
def workload():
    return list(record_stream(CONFIG))


@pytest.fixture(scope="module")
def reference_engine(workload):
    engine = build_engine(build_venue(CONFIG))
    engine.ingest(workload)
    return engine


def _assert_bitwise_equal(client, reference_engine):
    t_mid = CONFIG.duration / 2.0
    served = client.query(QuerySpec(query=SnapshotTopKQuery(t=t_mid, k=5)))
    expected = reference_engine.snapshot_topk(t_mid, 5)
    assert served.poi_ids == expected.poi_ids
    assert served.flows == expected.flows
    served = client.query(
        QuerySpec(
            query=IntervalTopKQuery(t_start=100.0, t_end=500.0, k=5),
            method="iterative",
        )
    )
    expected = reference_engine.interval_topk(100.0, 500.0, 5, method="iterative")
    assert served.poi_ids == expected.poi_ids
    assert served.flows == expected.flows


def test_sigkill_then_restart_answers_bit_identically(
    tmp_path, workload, reference_engine
):
    storage = tmp_path / "venue.sqlite"
    half = len(workload) // 2

    # --- first life: ingest half the stream, then die without warning.
    proc, port = _boot(storage)
    try:
        client = ServeClient(f"http://127.0.0.1:{port}")
        outcome = client.ingest(records=workload[:half])
        assert outcome["ingested"] == half
    finally:
        proc.kill()  # SIGKILL: no drain, no checkpoint
        proc.wait(timeout=30)
    assert storage.exists()

    # --- second life: same store, same venue flags.
    proc, port = _boot(storage)
    try:
        client = ServeClient(f"http://127.0.0.1:{port}")
        health = client.health()
        # The durable prefix survived the crash.
        assert health["generation"] == half
        # The producer re-sends its *whole* stream after the crash; the
        # already-persisted half is absorbed idempotently.
        outcome = client.ingest(records=workload)
        assert outcome["ingested"] == len(workload) - half
        assert client.health()["generation"] == len(workload)
        _assert_bitwise_equal(client, reference_engine)

        # --- graceful exit this time: SIGTERM drains and checkpoints.
        proc.send_signal(signal.SIGTERM)
        remainder = proc.stdout.read()
        assert proc.wait(timeout=30) == 0
        assert "shutting down (drain + checkpoint)" in remainder
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=30)

    # --- third life: the graceful shutdown left a fully-folded store.
    proc, port = _boot(storage)
    try:
        client = ServeClient(f"http://127.0.0.1:{port}")
        assert client.health()["generation"] == len(workload)
        _assert_bitwise_equal(client, reference_engine)
    finally:
        proc.send_signal(signal.SIGTERM)
        assert proc.wait(timeout=30) == 0
