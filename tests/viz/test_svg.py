"""Tests for the SVG renderer."""

import xml.etree.ElementTree as ET

import pytest

from repro.geometry import Circle, EmptyRegion, Point
from repro.viz import SvgCanvas


def render(canvas):
    """Parse the produced SVG — catches malformed markup outright."""
    text = canvas.to_svg()
    return text, ET.fromstring(text)


class TestCanvas:
    def test_rejects_bad_scale(self, office_plan):
        with pytest.raises(ValueError):
            SvgCanvas(office_plan.bounds, scale=0.0)

    def test_dimensions_follow_bounds(self, office_plan):
        canvas = SvgCanvas.for_floorplan(office_plan, scale=4.0)
        assert canvas.width_px == pytest.approx(
            (office_plan.bounds.width + 4.0) * 4.0
        )

    def test_empty_canvas_is_valid_svg(self, office_plan):
        _, root = render(SvgCanvas.for_floorplan(office_plan))
        assert root.tag.endswith("svg")


class TestDrawing:
    def test_floorplan_renders_every_room(self, office_plan):
        canvas = SvgCanvas.for_floorplan(office_plan)
        text, root = render(canvas.draw_floorplan(office_plan))
        polygons = [e for e in root.iter() if e.tag.endswith("polygon")]
        assert len(polygons) == len(office_plan.rooms)
        # Room labels present.
        assert "R0T" in text

    def test_doors_rendered_as_circles(self, office_plan):
        canvas = SvgCanvas.for_floorplan(office_plan)
        _, root = render(canvas.draw_floorplan(office_plan, label_rooms=False))
        circles = [e for e in root.iter() if e.tag.endswith("circle")]
        assert len(circles) == len(office_plan.doors)

    def test_deployment(self, office_plan, office_deployment):
        canvas = SvgCanvas.for_floorplan(office_plan)
        _, root = render(canvas.draw_deployment(office_deployment))
        circles = [e for e in root.iter() if e.tag.endswith("circle")]
        # Two circles per device (range + center dot).
        assert len(circles) == 2 * len(office_deployment)

    def test_pois(self, office_plan, office_pois):
        canvas = SvgCanvas.for_floorplan(office_plan)
        _, root = render(canvas.draw_pois(office_pois))
        polygons = [e for e in root.iter() if e.tag.endswith("polygon")]
        assert len(polygons) == len(office_pois)

    def test_region_rasterised(self, office_plan):
        canvas = SvgCanvas.for_floorplan(office_plan)
        region = Circle(Point(20.0, 4.0), 5.0)
        _, root = render(canvas.draw_region(region))
        rects = [e for e in root.iter() if e.tag.endswith("rect")]
        assert len(rects) > 10  # background + many cells

    def test_empty_region_draws_nothing(self, office_plan):
        canvas = SvgCanvas.for_floorplan(office_plan)
        before = canvas.to_svg()
        canvas.draw_region(EmptyRegion())
        assert canvas.to_svg() == before

    def test_region_outside_canvas_draws_nothing(self, office_plan):
        canvas = SvgCanvas.for_floorplan(office_plan)
        before = canvas.to_svg()
        canvas.draw_region(Circle(Point(10_000.0, 10_000.0), 3.0))
        assert canvas.to_svg() == before

    def test_trajectory(self, office_plan, synthetic_dataset):
        canvas = SvgCanvas.for_floorplan(synthetic_dataset.floorplan)
        trajectory = synthetic_dataset.trajectories[0]
        _, root = render(canvas.draw_trajectory(trajectory))
        polylines = [e for e in root.iter() if e.tag.endswith("polyline")]
        assert len(polylines) == 1

    def test_marker_with_label_escapes_text(self, office_plan):
        canvas = SvgCanvas.for_floorplan(office_plan)
        text, _ = render(canvas.draw_marker(5.0, 5.0, label="<object&1>"))
        assert "&lt;object&amp;1&gt;" in text

    def test_chaining(self, office_plan, office_deployment, office_pois):
        canvas = SvgCanvas.for_floorplan(office_plan)
        result = (
            canvas.draw_floorplan(office_plan)
            .draw_deployment(office_deployment)
            .draw_pois(office_pois)
        )
        assert result is canvas


class TestOutput:
    def test_save(self, tmp_path, office_plan):
        canvas = SvgCanvas.for_floorplan(office_plan)
        canvas.draw_floorplan(office_plan)
        path = canvas.save(tmp_path / "plan.svg")
        assert path.exists()
        ET.parse(path)  # well-formed on disk

    def test_full_scene_renders(self, synthetic_dataset, synthetic_engine):
        """A realistic debugging scene: plan + devices + one object's UR."""
        dataset = synthetic_dataset
        t = dataset.mid_time()
        object_id = dataset.ott.object_ids[0]
        canvas = SvgCanvas.for_floorplan(dataset.floorplan)
        canvas.draw_floorplan(dataset.floorplan, label_rooms=False)
        canvas.draw_deployment(dataset.deployment)
        region = synthetic_engine.snapshot_region_of(object_id, t)
        if region is not None:
            canvas.draw_region(region)
            truth = dataset.trajectory_of(object_id).position_at(t)
            canvas.draw_marker(truth.x, truth.y, label=str(object_id))
        ET.fromstring(canvas.to_svg())
