"""The streaming generator: equivalence with the batch pipeline + CLI."""

from __future__ import annotations

import pytest

from repro.datagen import (
    SyntheticConfig,
    build_synthetic_dataset,
    build_synthetic_ott_streamed,
    stream_synthetic_records,
)
from repro.datagen.__main__ import main


TINY = SyntheticConfig(num_objects=12, duration=400.0, rooms_per_side=6, seed=5)


class TestStreamEquivalence:
    def test_streamed_table_is_identical_to_batch(self):
        batch = build_synthetic_dataset(TINY).ott
        streamed = build_synthetic_ott_streamed(TINY)
        assert list(streamed) == list(batch)  # record ids included

    def test_records_arrive_in_table_order(self):
        previous = None
        seen_ids = set()
        for record in stream_synthetic_records(TINY):
            assert record.record_id not in seen_ids
            seen_ids.add(record.record_id)
            key = (str(record.object_id), record.t_s)
            if previous is not None:
                assert key >= previous
            previous = key

    def test_population_scales_without_rebuilding_earlier_objects(self):
        # Per-object RNG streams: a prefix population is a prefix of the
        # larger population's records (object-wise).
        small = {
            record.object_id: record
            for record in stream_synthetic_records(TINY)
            if record.record_id < 10**9
        }
        bigger_config = SyntheticConfig(
            num_objects=TINY.num_objects + 5,
            duration=TINY.duration,
            rooms_per_side=TINY.rooms_per_side,
            seed=TINY.seed,
        )
        bigger_first = {}
        for record in stream_synthetic_records(bigger_config):
            bigger_first.setdefault(record.object_id, record)
        for object_id, record in small.items():
            assert object_id in bigger_first

    def test_zero_objects_is_empty(self):
        config = SyntheticConfig(
            num_objects=0, duration=100.0, rooms_per_side=6, seed=1
        )
        assert list(stream_synthetic_records(config)) == []


class TestCli:
    def test_writes_csv(self, tmp_path, capsys):
        out = tmp_path / "ott.csv"
        code = main(
            [
                "--objects",
                "8",
                "--duration",
                "200",
                "--rooms-per-side",
                "6",
                "--seed",
                "5",
                "--out",
                str(out),
            ]
        )
        assert code == 0
        lines = out.read_text().splitlines()
        assert lines[0] == "record_id,object_id,device_id,t_s,t_e"
        assert len(lines) > 1
        summary = capsys.readouterr().err
        assert "objects=8" in summary
        assert f"records={len(lines) - 1}" in summary

    def test_summary_only_run(self, capsys):
        assert main(
            [
                "--objects",
                "4",
                "--duration",
                "100",
                "--rooms-per-side",
                "6",
            ]
        ) == 0
        assert "objects=4" in capsys.readouterr().err

    def test_scale_knob(self, capsys):
        assert main(
            [
                "--scale",
                "0.004",
                "--duration",
                "100",
                "--rooms-per-side",
                "6",
            ]
        ) == 0
        # 1000 * 0.004 = 4 objects
        assert "objects=4" in capsys.readouterr().err

    def test_rejects_negative_objects(self):
        with pytest.raises(SystemExit):
            main(["--objects", "-1"])
