"""Tests for workload configurations."""

import pytest

from repro.datagen import (
    PAPER_DETECTION_RANGES,
    PAPER_K_VALUES,
    PAPER_OBJECT_COUNTS,
    PAPER_POI_PERCENTAGES,
    PAPER_WINDOW_MINUTES,
    TOTAL_POIS,
    CphConfig,
    SyntheticConfig,
)


class TestPaperConstants:
    """The sweeps must match the paper's Table 4."""

    def test_object_counts(self):
        assert PAPER_OBJECT_COUNTS == (1000, 2000, 3000, 4000, 5000)

    def test_detection_ranges(self):
        assert PAPER_DETECTION_RANGES == (1.0, 1.5, 2.0, 2.5)

    def test_poi_percentages(self):
        assert PAPER_POI_PERCENTAGES == (20, 40, 60, 80, 100)

    def test_k_range(self):
        assert min(PAPER_K_VALUES) == 1
        assert max(PAPER_K_VALUES) == 50

    def test_window_minutes(self):
        assert min(PAPER_WINDOW_MINUTES) == 1
        assert max(PAPER_WINDOW_MINUTES) == 60

    def test_total_pois(self):
        assert TOTAL_POIS == 75


class TestSyntheticConfig:
    def test_defaults_match_paper(self):
        config = SyntheticConfig()
        assert config.num_objects == 1000
        assert config.detection_range == 1.5
        assert config.poi_count == 75

    def test_vmax_equals_speed(self):
        config = SyntheticConfig(speed=1.3)
        assert config.v_max == 1.3

    def test_scaled(self):
        config = SyntheticConfig(num_objects=1000).scaled(0.1)
        assert config.num_objects == 100

    def test_scaled_at_least_one(self):
        assert SyntheticConfig(num_objects=10).scaled(0.001).num_objects == 1

    def test_scaled_rejects_non_positive(self):
        with pytest.raises(ValueError):
            SyntheticConfig().scaled(0.0)

    def test_frozen(self):
        with pytest.raises(AttributeError):
            SyntheticConfig().num_objects = 5


class TestCphConfig:
    def test_paper_sized(self):
        config = CphConfig().paper_sized()
        assert config.num_passengers == 10_000
        assert config.horizon == 7 * 24 * 3600.0

    def test_scaled(self):
        assert CphConfig(num_passengers=1000).scaled(0.25).num_passengers == 250

    def test_scaled_rejects_non_positive(self):
        with pytest.raises(ValueError):
            CphConfig().scaled(-1.0)
