"""Tests for the simulated Copenhagen Airport data set."""

import pytest

from repro.datagen import CphConfig, build_cph_dataset


@pytest.fixture(scope="module")
def airport():
    return build_cph_dataset(
        CphConfig(num_passengers=60, horizon=4 * 3600.0, seed=21)
    )


class TestBuild:
    def test_population(self, airport):
        assert len(airport.trajectories) == 60
        assert airport.ott.object_count <= 60  # some may evade all radios
        assert airport.ott.object_count > 30  # but most are seen

    def test_sparse_tracking(self, airport):
        """The defining property of the CPH data: few records per passenger."""
        records_per_passenger = len(airport.ott) / max(1, airport.ott.object_count)
        assert records_per_passenger < 40

    def test_poi_universe(self, airport):
        assert len(airport.pois) == 75
        categories = {poi.category for poi in airport.pois}
        assert "shop" in categories
        assert "gate" in categories

    def test_deterministic(self):
        config = CphConfig(num_passengers=20, horizon=2 * 3600.0, seed=3)
        a = build_cph_dataset(config)
        b = build_cph_dataset(config)
        assert [(r.object_id, r.device_id, r.t_s) for r in a.ott] == [
            (r.object_id, r.device_id, r.t_s) for r in b.ott
        ]

    def test_bluetooth_devices(self, airport):
        assert all(device.kind == "bluetooth" for device in airport.deployment)

    def test_non_overlapping_deployment(self, airport):
        airport.deployment.validate_non_overlapping()


class TestItineraries:
    def test_passengers_start_in_hall(self, airport):
        hall = airport.floorplan.room("hall").polygon
        for trajectory in airport.trajectories[:20]:
            assert hall.contains(trajectory.position_at(trajectory.t_start))

    def test_passengers_end_at_a_gate(self, airport):
        gates = [
            room.polygon
            for room in airport.floorplan.iter_rooms(kind="gate")
        ]
        for trajectory in airport.trajectories[:20]:
            final = trajectory.position_at(trajectory.t_end)
            assert any(gate.contains(final) for gate in gates)

    def test_arrivals_spread_over_horizon(self, airport):
        starts = sorted(t.t_start for t in airport.trajectories)
        assert starts[-1] - starts[0] > 3600.0

    def test_speed_bounded(self, airport):
        for trajectory in airport.trajectories[:20]:
            assert trajectory.max_speed() <= airport.v_max + 1e-9


class TestQueries:
    def test_engine_round_trip(self, airport):
        engine = airport.engine()
        result = engine.snapshot_topk(airport.mid_time(), 5)
        assert len(result) == 5

    def test_security_area_is_busy(self, airport):
        """Every passenger passes security: its POIs should carry flow."""
        engine = airport.engine()
        start, end = airport.window(60)
        flows = engine.interval_flows(start, end)
        security_pois = [
            poi.poi_id for poi in airport.pois if poi.room_id == "security"
        ]
        if security_pois:  # POI partitioning may or may not carve security
            assert any(flows.get(poi_id, 0.0) > 0.0 for poi_id in security_pois)
