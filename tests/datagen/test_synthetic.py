"""Tests for the synthetic data generator."""

import pytest

from repro.datagen import SyntheticConfig, build_synthetic_dataset


@pytest.fixture(scope="module")
def tiny():
    return build_synthetic_dataset(
        SyntheticConfig(num_objects=10, duration=600.0, rooms_per_side=4, seed=1)
    )


class TestBuild:
    def test_all_objects_tracked(self, tiny):
        assert tiny.ott.object_count == 10
        assert len(tiny.trajectories) == 10

    def test_poi_count(self, tiny):
        assert len(tiny.pois) == 75

    def test_pois_inside_plan(self, tiny):
        for poi in tiny.pois:
            room = tiny.floorplan.room(poi.room_id)
            assert room.polygon.mbr.contains_mbr(poi.polygon.mbr)

    def test_vmax_equals_speed(self, tiny):
        assert tiny.v_max == SyntheticConfig().speed

    def test_deterministic(self):
        config = SyntheticConfig(
            num_objects=5, duration=300.0, rooms_per_side=4, seed=9
        )
        a = build_synthetic_dataset(config)
        b = build_synthetic_dataset(config)
        assert [(r.object_id, r.device_id, r.t_s, r.t_e) for r in a.ott] == [
            (r.object_id, r.device_id, r.t_s, r.t_e) for r in b.ott
        ]

    def test_detection_range_respected(self):
        config = SyntheticConfig(
            num_objects=3, duration=300.0, rooms_per_side=4, detection_range=2.5
        )
        dataset = build_synthetic_dataset(config)
        assert all(device.radius == 2.5 for device in dataset.deployment)

    def test_same_movement_across_detection_ranges(self):
        """The detection range changes what readers see, not how objects move."""
        base = dict(num_objects=3, duration=300.0, rooms_per_side=4, seed=5)
        small = build_synthetic_dataset(SyntheticConfig(detection_range=1.0, **base))
        large = build_synthetic_dataset(SyntheticConfig(detection_range=2.0, **base))
        t = 150.0
        for i in range(3):
            assert small.trajectory_of(f"o{i}").position_at(t) == large.trajectory_of(
                f"o{i}"
            ).position_at(t)

    def test_larger_range_more_records_or_equal_density(self):
        base = dict(num_objects=8, duration=600.0, rooms_per_side=4, seed=5)
        small = build_synthetic_dataset(SyntheticConfig(detection_range=1.0, **base))
        large = build_synthetic_dataset(SyntheticConfig(detection_range=2.5, **base))
        # Larger ranges see objects longer; the total covered time grows.
        covered_small = sum(r.duration for r in small.ott)
        covered_large = sum(r.duration for r in large.ott)
        assert covered_large > covered_small


class TestDatasetHelpers:
    def test_time_span_and_mid_time(self, tiny):
        start, end = tiny.time_span()
        assert start < tiny.mid_time() < end

    def test_window_clipped_to_span(self, tiny):
        start, end = tiny.window(10_000)
        span = tiny.time_span()
        assert start >= span[0]
        assert end <= span[1]

    def test_poi_subset_sizes(self, tiny):
        assert len(tiny.poi_subset(20)) == 15
        assert len(tiny.poi_subset(100)) == 75

    def test_poi_subset_deterministic(self, tiny):
        a = [poi.poi_id for poi in tiny.poi_subset(40, seed=4)]
        b = [poi.poi_id for poi in tiny.poi_subset(40, seed=4)]
        assert a == b

    def test_poi_subset_validation(self, tiny):
        with pytest.raises(ValueError):
            tiny.poi_subset(0)
        with pytest.raises(ValueError):
            tiny.poi_subset(150)

    def test_trajectory_of(self, tiny):
        assert tiny.trajectory_of("o0").object_id == "o0"
        with pytest.raises(KeyError):
            tiny.trajectory_of("ghost")
