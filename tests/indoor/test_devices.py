"""Tests for devices and deployments."""

import pytest

from repro.geometry import Circle, Mbr, Point
from repro.indoor import Deployment, Device, thin_non_overlapping


def dev(device_id, x, y, radius=1.0):
    return Device.at(device_id, Point(x, y), radius)


class TestDevice:
    def test_at_constructor(self):
        device = dev("d1", 1.0, 2.0, 3.0)
        assert device.center == Point(1.0, 2.0)
        assert device.radius == 3.0
        assert device.range == Circle(Point(1.0, 2.0), 3.0)

    def test_kind_default(self):
        assert dev("d", 0, 0).kind == "rfid"


class TestDeployment:
    def test_duplicate_ids_rejected(self):
        with pytest.raises(ValueError):
            Deployment([dev("d", 0, 0), dev("d", 10, 10)])

    def test_lookup(self):
        deployment = Deployment([dev("a", 0, 0), dev("b", 10, 0)])
        assert deployment.device("a").center == Point(0, 0)
        assert "a" in deployment
        assert "zzz" not in deployment
        assert len(deployment) == 2

    def test_devices_near(self):
        deployment = Deployment([dev("a", 0, 0), dev("b", 50, 0)])
        found = deployment.devices_near(Mbr(-2, -2, 2, 2))
        assert [d.device_id for d in found] == ["a"]

    def test_devices_covering(self):
        deployment = Deployment([dev("a", 0, 0, 2.0), dev("b", 10, 0, 2.0)])
        covering = deployment.devices_covering(Point(1.0, 0.0))
        assert [d.device_id for d in covering] == ["a"]
        assert deployment.devices_covering(Point(5.0, 0.0)) == []

    def test_max_radius(self):
        deployment = Deployment([dev("a", 0, 0, 1.0), dev("b", 10, 0, 2.5)])
        assert deployment.max_radius == 2.5
        assert Deployment([]).max_radius == 0.0

    def test_validate_non_overlapping_passes_when_disjoint(self):
        Deployment([dev("a", 0, 0), dev("b", 10, 0)]).validate_non_overlapping()

    def test_validate_non_overlapping_rejects_overlap(self):
        deployment = Deployment([dev("a", 0, 0, 2.0), dev("b", 3, 0, 2.0)])
        with pytest.raises(ValueError):
            deployment.validate_non_overlapping()


class TestThinning:
    def test_keeps_all_when_disjoint(self):
        devices = [dev("a", 0, 0), dev("b", 10, 0), dev("c", 20, 0)]
        assert thin_non_overlapping(devices) == devices

    def test_drops_later_overlappers(self):
        devices = [dev("a", 0, 0, 2.0), dev("b", 1, 0, 2.0), dev("c", 10, 0, 2.0)]
        kept = [d.device_id for d in thin_non_overlapping(devices)]
        assert kept == ["a", "c"]

    def test_deterministic_prefix_preference(self):
        devices = [dev("a", 0, 0, 3.0), dev("b", 4, 0, 3.0), dev("c", 8, 0, 3.0)]
        kept = [d.device_id for d in thin_non_overlapping(devices)]
        assert kept == ["a", "c"]

    def test_result_is_valid_deployment(self):
        devices = [dev(f"d{i}", i * 1.5, 0, 1.0) for i in range(20)]
        Deployment(thin_non_overlapping(devices)).validate_non_overlapping()
