"""Tests for the indoor distance oracle and point distance fields."""

import math

import numpy as np
import pytest

from repro.geometry import Point, Polygon
from repro.indoor import (
    Door,
    DoorGraph,
    FloorPlan,
    IndoorDistanceOracle,
    Room,
)


@pytest.fixture(scope="module")
def corridor_oracle():
    rooms = [
        Room("a", Polygon.rectangle(0, 0, 10, 10)),
        Room("b", Polygon.rectangle(10, 0, 20, 10)),
        Room("c", Polygon.rectangle(20, 0, 30, 10)),
    ]
    doors = [
        Door("ab", Point(10, 5), "a", "b"),
        Door("bc", Point(20, 5), "b", "c"),
    ]
    return IndoorDistanceOracle(FloorPlan(rooms, doors))


class TestScalarDistances:
    def test_same_room_is_euclidean(self, corridor_oracle):
        assert corridor_oracle.distance(Point(1, 1), Point(4, 5)) == 5.0

    def test_adjacent_room_goes_through_door(self, corridor_oracle):
        got = corridor_oracle.distance(Point(5, 5), Point(15, 5))
        assert got == pytest.approx(10.0)

    def test_detour_through_door_longer_than_euclid(self, corridor_oracle):
        start, goal = Point(9, 1), Point(11, 1)
        euclid = start.distance_to(goal)
        indoor = corridor_oracle.distance(start, goal)
        # Must route via the door at (10, 5).
        expected = start.distance_to(Point(10, 5)) + Point(10, 5).distance_to(goal)
        assert indoor == pytest.approx(expected)
        assert indoor > euclid

    def test_two_hop_distance(self, corridor_oracle):
        got = corridor_oracle.distance(Point(5, 5), Point(25, 5))
        assert got == pytest.approx(20.0)

    def test_outside_plan_is_inf(self, corridor_oracle):
        assert corridor_oracle.distance(Point(-5, 5), Point(5, 5)) == math.inf
        assert corridor_oracle.distance(Point(5, 5), Point(-5, 5)) == math.inf

    def test_indoor_dominates_euclidean(self, corridor_oracle):
        rng = np.random.default_rng(2)
        for _ in range(50):
            a = Point(rng.uniform(0, 30), rng.uniform(0, 10))
            b = Point(rng.uniform(0, 30), rng.uniform(0, 10))
            indoor = corridor_oracle.distance(a, b)
            assert indoor >= a.distance_to(b) - 1e-9


class TestPointDistanceField:
    def test_door_distance(self, corridor_oracle):
        field = corridor_oracle.field_from(Point(5, 5))
        assert field.door_distance("ab") == pytest.approx(5.0)
        assert field.door_distance("bc") == pytest.approx(15.0)
        assert field.door_distance("nope") == math.inf

    def test_field_matches_oracle(self, corridor_oracle):
        source = Point(3, 7)
        field = corridor_oracle.field_from(source)
        rng = np.random.default_rng(7)
        for _ in range(30):
            target = Point(rng.uniform(0, 30), rng.uniform(0, 10))
            assert field.distance_to(target) == pytest.approx(
                corridor_oracle.distance(source, target)
            )

    def test_distances_in_room_matches_scalar(self, corridor_oracle):
        field = corridor_oracle.field_from(Point(5, 5))
        rng = np.random.default_rng(9)
        xs = rng.uniform(20.5, 29.5, 40)
        ys = rng.uniform(0.5, 9.5, 40)
        vector = field.distances_in_room("c", xs, ys)
        for x, y, d in zip(xs, ys, vector):
            assert d == pytest.approx(field.distance_to(Point(float(x), float(y))))

    def test_distances_to_many_matches_scalar(self, corridor_oracle):
        field = corridor_oracle.field_from(Point(15, 5))
        rng = np.random.default_rng(11)
        xs = rng.uniform(-2, 32, 60)
        ys = rng.uniform(-2, 12, 60)
        vector = field.distances_to_many(xs, ys)
        for x, y, d in zip(xs, ys, vector):
            scalar = field.distance_to(Point(float(x), float(y)))
            if math.isinf(scalar):
                assert math.isinf(d)
            else:
                assert d == pytest.approx(scalar)

    def test_distances_to_many_empty_batch(self, corridor_oracle):
        field = corridor_oracle.field_from(Point(5, 5))
        assert len(field.distances_to_many(np.zeros(0), np.zeros(0))) == 0

    def test_source_on_door_reaches_both_rooms_directly(self, corridor_oracle):
        field = corridor_oracle.field_from(Point(10, 5))
        # Straight into either room, no extra door hops.
        assert field.distance_to(Point(8, 5)) == pytest.approx(2.0)
        assert field.distance_to(Point(12, 5)) == pytest.approx(2.0)


class TestRoomGroups:
    def test_groups_cover_all_points(self, corridor_oracle):
        rng = np.random.default_rng(3)
        xs = rng.uniform(0, 30, 50)
        ys = rng.uniform(0, 10, 50)
        groups = corridor_oracle.room_groups(xs, ys)
        covered = set()
        for room_id, indices in groups:
            assert room_id is not None  # all interior points here
            covered.update(int(i) for i in indices)
        assert covered == set(range(50))

    def test_cache_hit_by_identity(self, corridor_oracle):
        xs = np.array([5.0, 15.0])
        ys = np.array([5.0, 5.0])
        first = corridor_oracle.room_groups(xs, ys)
        second = corridor_oracle.room_groups(xs, ys)
        assert first is second

    def test_single_room_fast_path(self, corridor_oracle):
        xs = np.linspace(1.0, 9.0, 10)
        ys = np.full(10, 5.0)
        groups = corridor_oracle.room_groups(xs, ys)
        assert len(groups) == 1
        assert groups[0][0] == "a"
        assert len(groups[0][1]) == 10

    def test_points_outside_any_room(self, corridor_oracle):
        xs = np.array([-5.0, 5.0])
        ys = np.array([-5.0, 5.0])
        groups = dict(
            (room_id, set(int(i) for i in idx))
            for room_id, idx in corridor_oracle.room_groups(xs, ys)
        )
        assert 0 in groups.get(None, set())
        assert 1 in groups.get("a", set())
