"""Tests for floor plans, rooms and doors."""

import pytest

from repro.geometry import Mbr, Point, Polygon
from repro.indoor import Door, FloorPlan, Room


def two_room_plan():
    rooms = [
        Room("a", Polygon.rectangle(0, 0, 10, 10)),
        Room("b", Polygon.rectangle(10, 0, 20, 10)),
    ]
    doors = [Door("d", Point(10, 5), "a", "b")]
    return FloorPlan(rooms, doors)


class TestRoom:
    def test_rejects_non_convex_room(self):
        l_shape = Polygon(
            [
                Point(0, 0),
                Point(2, 0),
                Point(2, 1),
                Point(1, 1),
                Point(1, 2),
                Point(0, 2),
            ]
        )
        with pytest.raises(ValueError):
            Room("bad", l_shape)

    def test_room_kinds(self):
        room = Room("h", Polygon.rectangle(0, 0, 5, 1), kind="hallway")
        assert room.kind == "hallway"


class TestDoor:
    def test_rejects_self_loop(self):
        with pytest.raises(ValueError):
            Door("d", Point(0, 0), "a", "a")

    def test_connects_and_other_room(self):
        door = Door("d", Point(1, 0), "a", "b")
        assert door.connects("a")
        assert door.connects("b")
        assert not door.connects("c")
        assert door.other_room("a") == "b"
        assert door.other_room("b") == "a"
        with pytest.raises(KeyError):
            door.other_room("c")


class TestFloorPlanValidation:
    def test_rejects_duplicate_room_ids(self):
        rooms = [
            Room("a", Polygon.rectangle(0, 0, 1, 1)),
            Room("a", Polygon.rectangle(2, 0, 3, 1)),
        ]
        with pytest.raises(ValueError):
            FloorPlan(rooms, [])

    def test_rejects_unknown_door_room(self):
        rooms = [Room("a", Polygon.rectangle(0, 0, 1, 1))]
        with pytest.raises(ValueError):
            FloorPlan(rooms, [Door("d", Point(1, 0.5), "a", "ghost")])

    def test_rejects_door_off_boundary(self):
        rooms = [
            Room("a", Polygon.rectangle(0, 0, 10, 10)),
            Room("b", Polygon.rectangle(10, 0, 20, 10)),
        ]
        with pytest.raises(ValueError):
            FloorPlan(rooms, [Door("d", Point(5, 5), "a", "b")])

    def test_rejects_empty_plan(self):
        with pytest.raises(ValueError):
            FloorPlan([], [])

    def test_rejects_duplicate_door_ids(self):
        rooms = [
            Room("a", Polygon.rectangle(0, 0, 10, 10)),
            Room("b", Polygon.rectangle(10, 0, 20, 10)),
        ]
        doors = [
            Door("d", Point(10, 5), "a", "b"),
            Door("d", Point(10, 7), "a", "b"),
        ]
        with pytest.raises(ValueError):
            FloorPlan(rooms, doors)


class TestLookups:
    def test_room_and_door_access(self):
        plan = two_room_plan()
        assert plan.room("a").room_id == "a"
        assert plan.door("d").door_id == "d"
        assert "a" in plan
        assert "zzz" not in plan

    def test_doors_of_room(self):
        plan = two_room_plan()
        assert [d.door_id for d in plan.doors_of_room("a")] == ["d"]
        assert [d.door_id for d in plan.doors_of_room("b")] == ["d"]

    def test_bounds(self):
        assert two_room_plan().bounds == Mbr(0, 0, 20, 10)

    def test_room_at_interior_point(self):
        plan = two_room_plan()
        assert plan.room_at(Point(5, 5)).room_id == "a"
        assert plan.room_at(Point(15, 5)).room_id == "b"

    def test_rooms_at_shared_wall(self):
        plan = two_room_plan()
        rooms = {room.room_id for room in plan.rooms_at(Point(10, 5))}
        assert rooms == {"a", "b"}

    def test_room_at_outside_is_none(self):
        assert two_room_plan().room_at(Point(100, 100)) is None

    def test_contains_point(self):
        plan = two_room_plan()
        assert plan.contains_point(Point(1, 1))
        assert not plan.contains_point(Point(-5, 0.5))

    def test_iter_rooms_by_kind(self):
        rooms = [
            Room("a", Polygon.rectangle(0, 0, 10, 10), kind="shop"),
            Room("b", Polygon.rectangle(10, 0, 20, 10), kind="gate"),
        ]
        plan = FloorPlan(rooms, [Door("d", Point(10, 5), "a", "b")])
        assert [r.room_id for r in plan.iter_rooms(kind="shop")] == ["a"]
        assert len(list(plan.iter_rooms())) == 2

    def test_rooms_intersecting(self):
        plan = two_room_plan()
        found = {r.room_id for r in plan.rooms_intersecting(Mbr(0, 0, 5, 5))}
        assert found == {"a"}
