"""Tests for POIs and the POI R-tree."""

from repro.geometry import Mbr, Polygon
from repro.indoor import Poi, build_poi_index


def make_poi(i, x):
    return Poi(
        poi_id=f"p{i}",
        polygon=Polygon.rectangle(x, 0, x + 2, 2),
        room_id="r",
        name=f"poi {i}",
    )


class TestPoi:
    def test_area(self):
        assert make_poi(0, 0).area() == 4.0

    def test_fields(self):
        poi = Poi(
            poi_id="p",
            polygon=Polygon.rectangle(0, 0, 1, 1),
            room_id="r1",
            name="espresso bar",
            category="shop",
        )
        assert poi.room_id == "r1"
        assert poi.category == "shop"


class TestPoiIndex:
    def test_indexes_all(self):
        pois = [make_poi(i, i * 5) for i in range(20)]
        tree = build_poi_index(pois)
        assert len(tree) == 20

    def test_spatial_lookup(self):
        pois = [make_poi(i, i * 5) for i in range(20)]
        tree = build_poi_index(pois)
        found = tree.search(Mbr(0, 0, 6, 2))
        assert {poi.poi_id for poi in found} == {"p0", "p1"}

    def test_empty(self):
        tree = build_poi_index([])
        assert tree.search(Mbr(0, 0, 100, 100)) == []
