"""Tests for the floor-plan / deployment / POI builders."""

import pytest

from repro.geometry import Point
from repro.indoor import (
    DoorGraph,
    airport_pier,
    deploy_airport_devices,
    deploy_office_devices,
    office_building,
    partition_rooms_into_pois,
)


class TestOfficeBuilding:
    def test_room_count(self):
        plan = office_building(rooms_per_side=5)
        # 10 rooms + 1 hallway.
        assert len(plan.rooms) == 11

    def test_every_room_has_a_door_to_the_hallway(self):
        plan = office_building(rooms_per_side=4)
        for room in plan.rooms:
            if room.kind == "hallway":
                continue
            doors = plan.doors_of_room(room.room_id)
            assert len(doors) == 1
            assert doors[0].other_room(room.room_id) == "H"

    def test_connected(self):
        assert DoorGraph(office_building(rooms_per_side=3)).is_connected()

    def test_rejects_zero_rooms(self):
        with pytest.raises(ValueError):
            office_building(rooms_per_side=0)

    def test_doors_on_shared_walls(self):
        plan = office_building(rooms_per_side=3)
        hallway = plan.room("H").polygon
        for door in plan.doors:
            # Every door sits on the hallway boundary.
            assert any(
                edge.distance_to_point(door.position) < 1e-6
                for edge in hallway.edges()
            )


class TestOfficeDeployment:
    @pytest.mark.parametrize("detection_range", [1.0, 1.5, 2.0, 2.5])
    def test_non_overlapping_at_all_paper_ranges(self, detection_range):
        plan = office_building(rooms_per_side=6)
        deployment = deploy_office_devices(plan, detection_range=detection_range)
        deployment.validate_non_overlapping()

    def test_reader_at_every_door(self):
        plan = office_building(rooms_per_side=4)
        deployment = deploy_office_devices(plan, detection_range=1.5)
        for door in plan.doors:
            assert f"dev-{door.door_id}" in deployment

    def test_hallway_readers_present(self):
        plan = office_building(rooms_per_side=6)
        deployment = deploy_office_devices(plan, detection_range=1.5)
        hallway_devices = [d for d in deployment if str(d.device_id).startswith("dev-H")]
        assert len(hallway_devices) >= 3

    def test_hallway_spacing_controls_density(self):
        plan = office_building(rooms_per_side=8)
        dense = deploy_office_devices(plan, 1.0, hallway_spacing=12.0)
        sparse = deploy_office_devices(plan, 1.0, hallway_spacing=36.0)
        assert len(dense) > len(sparse)

    def test_rejects_non_positive_range(self):
        plan = office_building(rooms_per_side=2)
        with pytest.raises(ValueError):
            deploy_office_devices(plan, detection_range=0.0)


class TestAirportPier:
    def test_structure(self):
        plan = airport_pier(num_shops=5, num_gates=4)
        kinds = {room.kind for room in plan.rooms}
        assert {"hall", "security", "hallway", "shop", "gate"} <= kinds
        assert len(list(plan.iter_rooms(kind="shop"))) == 5
        assert len(list(plan.iter_rooms(kind="gate"))) == 4

    def test_connected(self):
        assert DoorGraph(airport_pier()).is_connected()

    def test_passenger_path_exists(self):
        plan = airport_pier()
        graph = DoorGraph(plan)
        hall = plan.room("hall").polygon.centroid()
        gate = plan.room("gate3").polygon.centroid()
        assert graph.route(hall, gate) is not None

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            airport_pier(num_shops=0)


class TestAirportDeployment:
    def test_non_overlapping(self):
        plan = airport_pier()
        deploy_airport_devices(plan).validate_non_overlapping()

    def test_sparser_than_office(self):
        # Bluetooth coverage is partial: far fewer devices than rooms.
        plan = airport_pier(num_shops=10, num_gates=10)
        deployment = deploy_airport_devices(plan)
        assert len(deployment) < len(plan.rooms)

    def test_security_device_present(self):
        deployment = deploy_airport_devices(airport_pier())
        assert "bt-security" in deployment


class TestPoiPartitioning:
    def test_exact_count(self):
        plan = office_building(rooms_per_side=6)
        pois = partition_rooms_into_pois(plan, count=75)
        assert len(pois) == 75

    def test_unique_ids(self):
        plan = office_building(rooms_per_side=6)
        pois = partition_rooms_into_pois(plan, count=40)
        assert len({poi.poi_id for poi in pois}) == 40

    def test_pois_inside_their_rooms(self):
        plan = office_building(rooms_per_side=5)
        for poi in partition_rooms_into_pois(plan, count=30):
            room = plan.room(poi.room_id)
            for vertex in poi.polygon.vertices:
                assert room.polygon.contains(vertex)

    def test_deterministic_for_seed(self):
        plan = office_building(rooms_per_side=4)
        a = partition_rooms_into_pois(plan, count=20, seed=5)
        b = partition_rooms_into_pois(plan, count=20, seed=5)
        assert [p.polygon.mbr for p in a] == [p.polygon.mbr for p in b]

    def test_different_areas(self):
        plan = office_building(rooms_per_side=6)
        pois = partition_rooms_into_pois(plan, count=75)
        areas = {round(poi.area(), 3) for poi in pois}
        assert len(areas) > 10  # "with different areas"

    def test_rejects_zero_count(self):
        plan = office_building(rooms_per_side=2)
        with pytest.raises(ValueError):
            partition_rooms_into_pois(plan, count=0)

    def test_kind_filter(self):
        plan = airport_pier()
        pois = partition_rooms_into_pois(plan, count=20, kinds=("shop",))
        assert all(poi.category == "shop" for poi in pois)
