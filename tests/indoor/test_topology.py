"""Tests for the door graph (routing + connectivity)."""

import pytest

from repro.geometry import Point, Polygon
from repro.indoor import Door, DoorGraph, FloorPlan, Room


def corridor_plan():
    """Three rooms in a row: a - b - c, doors on shared walls."""
    rooms = [
        Room("a", Polygon.rectangle(0, 0, 10, 10)),
        Room("b", Polygon.rectangle(10, 0, 20, 10)),
        Room("c", Polygon.rectangle(20, 0, 30, 10)),
    ]
    doors = [
        Door("ab", Point(10, 5), "a", "b"),
        Door("bc", Point(20, 5), "b", "c"),
    ]
    return FloorPlan(rooms, doors)


def disconnected_plan():
    rooms = [
        Room("a", Polygon.rectangle(0, 0, 10, 10)),
        Room("b", Polygon.rectangle(10, 0, 20, 10)),
        Room("x", Polygon.rectangle(100, 0, 110, 10)),
        Room("y", Polygon.rectangle(110, 0, 120, 10)),
    ]
    doors = [
        Door("ab", Point(10, 5), "a", "b"),
        Door("xy", Point(110, 5), "x", "y"),
    ]
    return FloorPlan(rooms, doors)


class TestDoorDistances:
    def test_adjacent_doors(self):
        graph = DoorGraph(corridor_plan())
        assert graph.door_distance("ab", "bc") == 10.0

    def test_self_distance_zero(self):
        graph = DoorGraph(corridor_plan())
        assert graph.door_distance("ab", "ab") == 0.0

    def test_unreachable_door_is_inf(self):
        graph = DoorGraph(disconnected_plan())
        assert graph.door_distance("ab", "xy") == float("inf")

    def test_unknown_door_raises(self):
        graph = DoorGraph(corridor_plan())
        with pytest.raises(KeyError):
            graph.shortest_from("nope")

    def test_door_path(self):
        graph = DoorGraph(corridor_plan())
        assert graph.door_path("ab", "bc") == ["ab", "bc"]
        assert graph.door_path("ab", "ab") == ["ab"]

    def test_door_path_unreachable_is_none(self):
        graph = DoorGraph(disconnected_plan())
        assert graph.door_path("ab", "xy") is None


class TestRouting:
    def test_same_room_is_straight(self):
        graph = DoorGraph(corridor_plan())
        route = graph.route(Point(1, 1), Point(9, 9))
        assert route == [Point(1, 1), Point(9, 9)]

    def test_adjacent_room_through_door(self):
        graph = DoorGraph(corridor_plan())
        route = graph.route(Point(5, 5), Point(15, 5))
        assert route == [Point(5, 5), Point(10, 5), Point(15, 5)]

    def test_two_hop_route(self):
        graph = DoorGraph(corridor_plan())
        route = graph.route(Point(5, 5), Point(25, 5))
        assert route == [
            Point(5, 5),
            Point(10, 5),
            Point(20, 5),
            Point(25, 5),
        ]

    def test_route_outside_plan_is_none(self):
        graph = DoorGraph(corridor_plan())
        assert graph.route(Point(-5, -5), Point(5, 5)) is None
        assert graph.route(Point(5, 5), Point(500, 5)) is None

    def test_route_between_components_is_none(self):
        graph = DoorGraph(disconnected_plan())
        assert graph.route(Point(5, 5), Point(105, 5)) is None

    def test_route_length_dominates_euclidean(self):
        graph = DoorGraph(corridor_plan())
        start, goal = Point(1, 9), Point(29, 1)
        route = graph.route(start, goal)
        length = sum(a.distance_to(b) for a, b in zip(route, route[1:]))
        assert length >= start.distance_to(goal) - 1e-9


class TestConnectivity:
    def test_connected_plan(self):
        graph = DoorGraph(corridor_plan())
        assert graph.is_connected()
        assert graph.room_components() == [{"a", "b", "c"}]

    def test_disconnected_plan(self):
        graph = DoorGraph(disconnected_plan())
        assert not graph.is_connected()
        components = graph.room_components()
        assert len(components) == 2
        assert {"a", "b"} in components
        assert {"x", "y"} in components
