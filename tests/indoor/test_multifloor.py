"""Tests for the multi-floor extension."""

# repro: allow-file(context-bypass): derives regions directly to test multi-floor deployments

import pytest

from repro.core import FlowEngine, snapshot_contexts, snapshot_region
from repro.geometry import Point, Polygon
from repro.indoor import (
    DoorGraph,
    IndoorDistanceOracle,
    deploy_multi_storey_devices,
    multi_storey_office,
    partition_rooms_into_pois,
    stack_floorplans,
    office_building,
)
from repro.tracking import simulate_random_waypoint


@pytest.fixture(scope="module")
def building():
    return multi_storey_office(levels=3, rooms_per_side=6, stair_count=2)


@pytest.fixture(scope="module")
def deployment(building):
    return deploy_multi_storey_devices(building)


class TestConstruction:
    def test_room_count(self, building):
        # 3 floors x (12 rooms + hallway) + 2 gaps x 2 stairwells.
        assert len(building.rooms) == 3 * 13 + 4

    def test_levels_assigned(self, building):
        assert {room.level for room in building.rooms} == {0, 1, 2}

    def test_connected_across_floors(self, building):
        assert DoorGraph(building).is_connected()

    def test_floor_bands_disjoint(self, building):
        floors: dict[int, list] = {}
        for room in building.rooms:
            if room.kind != "stairwell":
                floors.setdefault(room.level, []).append(room.polygon.mbr)
        for level_a, boxes_a in floors.items():
            for level_b, boxes_b in floors.items():
                if level_a >= level_b:
                    continue
                for box_a in boxes_a:
                    for box_b in boxes_b:
                        assert not box_a.intersects(box_b)

    def test_validation(self):
        with pytest.raises(ValueError):
            multi_storey_office(levels=0)
        with pytest.raises(ValueError):
            multi_storey_office(levels=2, stair_count=0)
        with pytest.raises(ValueError):
            stack_floorplans(
                [office_building(2), office_building(2)],
                stair_positions=[12.0],
                stair_length=20.0,
                gap=10.0,  # gap shorter than the stairs
            )

    def test_single_floor_degenerates(self):
        building = multi_storey_office(levels=1, rooms_per_side=3)
        assert {room.level for room in building.rooms} == {0}
        assert not [r for r in building.rooms if r.kind == "stairwell"]

    def test_bad_stair_position_rejected(self):
        with pytest.raises(ValueError, match="stair positions"):
            stack_floorplans(
                [office_building(2), office_building(2)],
                stair_positions=[-100.0],
            )


class TestDistancesAcrossFloors:
    def test_cross_floor_distance_goes_through_stairs(self, building):
        oracle = IndoorDistanceOracle(building)
        start = building.room("F0:H").polygon.centroid()
        goal = building.room("F1:H").polygon.centroid()
        walk = oracle.distance(start, goal)
        direct = start.distance_to(goal)
        assert walk > direct  # must detour via a stairwell
        assert walk < float("inf")

    def test_stairwell_length_respected(self, building):
        oracle = IndoorDistanceOracle(building)
        # Between the two ends of one stairwell: at least the stair length.
        stairwell = next(r for r in building.rooms if r.kind == "stairwell")
        box = stairwell.polygon.mbr
        low = Point(box.center.x, box.min_y)
        high = Point(box.center.x, box.max_y)
        assert oracle.distance(low, high) == pytest.approx(box.height)
        assert box.height >= 12.0


class TestMovementAcrossFloors:
    @pytest.fixture(scope="class")
    def simulation(self, building, deployment):
        return simulate_random_waypoint(
            building, deployment, num_objects=12, duration=900.0, seed=5
        )

    def test_objects_visit_multiple_levels(self, building, simulation):
        levels = set()
        for trajectory in simulation.trajectories:
            for t in trajectory.sample_times(0.0, 900.0, 30.0):
                room = building.room_at(trajectory.position_at(t))
                if room is not None:
                    levels.add(room.level)
        assert levels == {0, 1, 2}

    def test_stairwell_devices_report(self, building, deployment, simulation):
        stair_devices = {
            f"dev-{door.door_id}"
            for door in building.doors
            if door.door_id.startswith("D-S")
        }
        seen = {record.device_id for record in simulation.ott}
        assert seen & stair_devices

    def test_queries_across_floors(self, building, deployment, simulation):
        pois = partition_rooms_into_pois(building, count=30, seed=3)
        engine = FlowEngine(
            building, deployment, simulation.ott, pois, v_max=1.1,
            detection_slack=2.0,  # the simulation samples at 1 Hz
        )
        start, end = simulation.ott.time_span()
        t = (start + end) / 2.0
        iterative = engine.snapshot_topk(t, 5, method="iterative")
        join = engine.snapshot_topk(t, 5, method="join")
        assert sorted(iterative.flows, reverse=True) == pytest.approx(
            sorted(join.flows, reverse=True), abs=1e-6
        )

    def test_soundness_in_multi_floor_building(
        self, building, deployment, simulation
    ):
        pois = partition_rooms_into_pois(building, count=10, seed=3)
        engine = FlowEngine(
            building, deployment, simulation.ott, pois, v_max=1.1,
            detection_slack=2.0,  # the simulation samples at 1 Hz
        )
        start, end = simulation.ott.time_span()
        checked = 0
        for fraction in (0.3, 0.6, 0.9):
            t = start + fraction * (end - start)
            for context in snapshot_contexts(engine.artree, t):
                region = snapshot_region(
                    context,
                    engine.deployment,
                    engine.v_max,
                    engine.topology,
                    engine.inner_allowance,
                )
                truth = simulation.trajectory_of(context.object_id).position_at(t)
                assert region.contains(truth)
                checked += 1
        assert checked > 10


class TestTopologyCheckAcrossFloors:
    def test_other_floor_reachable_only_via_stairs_in_time(self, building):
        from repro.core import TopologyChecker
        from repro.indoor import Device

        oracle = IndoorDistanceOracle(building)
        checker = TopologyChecker(oracle)
        # A device in the stairwell's lower room on floor 0.
        stair_door = next(
            d for d in building.doors if d.door_id.endswith("-low")
        )
        device = Device.at("probe", stair_door.position, 1.0)
        stairwell_id = (
            stair_door.room_a
            if building.room(stair_door.room_a).kind == "stairwell"
            else stair_door.room_b
        )
        stairwell = building.room(stairwell_id)
        upper_exit = Point(
            stairwell.polygon.mbr.center.x, stairwell.polygon.mbr.max_y
        )
        stair_length = stairwell.polygon.mbr.height
        # Budget just over the stairs: the upper exit is reachable...
        generous = checker.ring_constraint(device, budget=stair_length + 3.0)
        assert generous.contains(upper_exit)
        # ...but with half the budget it is not.
        tight = checker.ring_constraint(device, budget=stair_length / 2.0)
        assert not tight.contains(upper_exit)
