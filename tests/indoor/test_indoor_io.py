"""Round-trip tests for the indoor model JSON I/O."""

import json

import pytest

from repro.indoor import (
    deploy_office_devices,
    indoor_model_from_dict,
    indoor_model_to_dict,
    load_indoor_model,
    office_building,
    partition_rooms_into_pois,
    save_indoor_model,
)


@pytest.fixture(scope="module")
def model():
    plan = office_building(rooms_per_side=3)
    deployment = deploy_office_devices(plan, detection_range=1.5)
    pois = partition_rooms_into_pois(plan, count=12, seed=2)
    return plan, deployment, pois


class TestRoundTrip:
    def test_full_model(self, tmp_path, model):
        plan, deployment, pois = model
        path = tmp_path / "model.json"
        save_indoor_model(path, plan, deployment, pois)
        loaded_plan, loaded_deployment, loaded_pois = load_indoor_model(path)

        assert {r.room_id for r in loaded_plan.rooms} == {
            r.room_id for r in plan.rooms
        }
        assert {d.door_id for d in loaded_plan.doors} == {
            d.door_id for d in plan.doors
        }
        assert len(loaded_deployment) == len(deployment)
        assert [p.poi_id for p in loaded_pois] == [p.poi_id for p in pois]

    def test_geometry_preserved(self, tmp_path, model):
        plan, deployment, pois = model
        path = tmp_path / "model.json"
        save_indoor_model(path, plan, deployment, pois)
        loaded_plan, loaded_deployment, loaded_pois = load_indoor_model(path)
        for room in plan.rooms:
            loaded = loaded_plan.room(room.room_id)
            assert loaded.polygon.vertices == room.polygon.vertices
            assert loaded.kind == room.kind
        for device in deployment:
            loaded = loaded_deployment.device(device.device_id)
            assert loaded.center == device.center
            assert loaded.radius == device.radius
        for original, loaded in zip(pois, loaded_pois):
            assert loaded.polygon.vertices == original.polygon.vertices
            assert loaded.room_id == original.room_id

    def test_partial_model(self, tmp_path, model):
        plan, _, _ = model
        path = tmp_path / "plan_only.json"
        save_indoor_model(path, floorplan=plan)
        loaded_plan, loaded_deployment, loaded_pois = load_indoor_model(path)
        assert loaded_plan is not None
        assert loaded_deployment is None
        assert loaded_pois is None

    def test_loaded_model_is_fully_functional(self, tmp_path, model):
        """The loaded model supports routing and queries, not just equality."""
        from repro.indoor import DoorGraph

        plan, deployment, pois = model
        path = tmp_path / "model.json"
        save_indoor_model(path, plan, deployment, pois)
        loaded_plan, loaded_deployment, _ = load_indoor_model(path)
        assert DoorGraph(loaded_plan).is_connected()
        loaded_deployment.validate_non_overlapping()


class TestValidation:
    def test_unknown_schema_rejected(self):
        with pytest.raises(ValueError, match="schema"):
            indoor_model_from_dict({"schema": "something/else"})

    def test_missing_schema_rejected(self):
        with pytest.raises(ValueError, match="schema"):
            indoor_model_from_dict({})

    def test_dict_is_json_serialisable(self, model):
        plan, deployment, pois = model
        payload = indoor_model_to_dict(plan, deployment, pois)
        json.dumps(payload)  # must not raise

    def test_corrupt_geometry_rejected(self, tmp_path, model):
        plan, _, _ = model
        payload = indoor_model_to_dict(floorplan=plan)
        payload["rooms"][0]["vertices"] = [[0, 0], [1, 1]]  # not a polygon
        with pytest.raises(ValueError):
            indoor_model_from_dict(payload)
