"""The public API surface: imports, exports and docstrings."""

import importlib
import inspect

import pytest

import repro

PACKAGES = [
    "repro",
    "repro.geometry",
    "repro.index",
    "repro.indoor",
    "repro.tracking",
    "repro.core",
    "repro.core.uncertainty",
    "repro.core.algorithms",
    "repro.datagen",
    "repro.bench",
    "repro.viz",
    "repro.evaluation",
    "repro.tools",
]


class TestImports:
    @pytest.mark.parametrize("name", PACKAGES)
    def test_package_imports(self, name):
        module = importlib.import_module(name)
        assert module is not None

    @pytest.mark.parametrize("name", PACKAGES)
    def test_all_exports_resolve(self, name):
        module = importlib.import_module(name)
        for symbol in getattr(module, "__all__", ()):
            assert hasattr(module, symbol), f"{name}.{symbol} missing"

    @pytest.mark.parametrize("name", PACKAGES)
    def test_package_has_docstring(self, name):
        module = importlib.import_module(name)
        assert module.__doc__, f"{name} lacks a docstring"


class TestTopLevel:
    def test_version(self):
        assert repro.__version__

    def test_headline_symbols(self):
        # The symbols the README quickstart uses.
        assert repro.FlowEngine
        assert repro.ObjectTrackingTable
        assert repro.TrackingRecord
        assert repro.Poi

    def test_engine_methods_documented(self):
        for name in (
            "snapshot_topk",
            "interval_topk",
            "snapshot_flows",
            "interval_flows",
            "snapshot_region_of",
            "interval_region_of",
        ):
            method = getattr(repro.FlowEngine, name)
            assert method.__doc__, f"FlowEngine.{name} lacks a docstring"


class TestPublicCallablesDocumented:
    @pytest.mark.parametrize(
        "name", ["repro.geometry", "repro.index", "repro.indoor", "repro.core"]
    )
    def test_exported_classes_and_functions_have_docstrings(self, name):
        module = importlib.import_module(name)
        for symbol in module.__all__:
            obj = getattr(module, symbol)
            if inspect.isclass(obj) or inspect.isfunction(obj):
                assert obj.__doc__, f"{name}.{symbol} lacks a docstring"
