"""Round-trip and failure-injection tests for tracking data I/O."""

import pytest

from repro.storage import MemoryBackend, SQLiteBackend
from repro.tracking import (
    ObjectTrackingTable,
    RawReading,
    TrackingRecord,
    export_records_csv,
    import_records_csv,
    load_ott_csv,
    load_readings_csv,
    save_ott_csv,
    save_readings_csv,
)


def sample_readings():
    return [
        RawReading("o1", "d1", 0.0),
        RawReading("o1", "d1", 1.0),
        RawReading("o2", "d2", 0.5),
    ]


def sample_ott():
    return ObjectTrackingTable(
        [
            TrackingRecord(0, "o1", "d1", 0.0, 10.5),
            TrackingRecord(1, "o1", "d2", 20.0, 30.25),
            TrackingRecord(2, "o2", "d1", 5.0, 5.0),
        ]
    ).freeze()


class TestReadingsRoundTrip:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "readings.csv"
        written = save_readings_csv(sample_readings(), path)
        assert written == 3
        loaded = load_readings_csv(path)
        assert loaded == sample_readings()

    def test_empty_round_trip(self, tmp_path):
        path = tmp_path / "empty.csv"
        save_readings_csv([], path)
        assert load_readings_csv(path) == []

    def test_bad_header_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("who,what,when\na,b,1\n")
        with pytest.raises(ValueError, match="header"):
            load_readings_csv(path)

    def test_bad_value_reports_line(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("object_id,device_id,t\no1,d1,notanumber\n")
        with pytest.raises(ValueError, match=":2:"):
            load_readings_csv(path)


class TestOttRoundTrip:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "ott.csv"
        written = save_ott_csv(sample_ott(), path)
        assert written == 3
        loaded = load_ott_csv(path)
        # Loading goes through the storage seam, which normalises rows to
        # the canonical (t_s, t_e, record_id) stream order.
        original = sorted(
            (
                (r.record_id, r.object_id, r.device_id, r.t_s, r.t_e)
                for r in sample_ott()
            ),
            key=lambda row: (row[3], row[4], row[0]),
        )
        round_tripped = [
            (r.record_id, r.object_id, r.device_id, r.t_s, r.t_e) for r in loaded
        ]
        assert round_tripped == original

    def test_float_times_exact(self, tmp_path):
        """repr-based serialisation keeps timestamps bit-exact."""
        table = ObjectTrackingTable(
            [TrackingRecord(0, "o", "d", 0.1 + 0.2, 1.0 / 3.0 + 1.0)]
        ).freeze()
        path = tmp_path / "precise.csv"
        save_ott_csv(table, path)
        (record,) = list(load_ott_csv(path))
        assert record.t_s == 0.1 + 0.2
        assert record.t_e == 1.0 / 3.0 + 1.0

    def test_loaded_table_is_frozen_and_queryable(self, tmp_path):
        path = tmp_path / "ott.csv"
        save_ott_csv(sample_ott(), path)
        loaded = load_ott_csv(path)
        assert loaded.record_covering("o1", 5.0).record_id == 0
        with pytest.raises(RuntimeError):
            loaded.append(None)

    def test_inconsistent_file_rejected(self, tmp_path):
        path = tmp_path / "overlap.csv"
        path.write_text(
            "record_id,object_id,device_id,t_s,t_e\n"
            "0,o1,d1,0.0,10.0\n"
            "1,o1,d2,5.0,15.0\n"  # overlaps record 0
        )
        with pytest.raises(ValueError):
            load_ott_csv(path)

    def test_bad_header_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("a,b,c,d,e\n")
        with pytest.raises(ValueError, match="header"):
            load_ott_csv(path)

    def test_import_into_backend_counts_appends(self, tmp_path):
        path = tmp_path / "ott.csv"
        save_ott_csv(sample_ott(), path)
        backend = MemoryBackend()
        assert import_records_csv(path, backend) == 3
        assert backend.generation == 3
        # Re-importing the same file is an idempotent no-op resume.
        assert import_records_csv(path, backend) == 0
        assert backend.generation == 3

    def test_import_resumes_a_partial_store(self, tmp_path):
        path = tmp_path / "ott.csv"
        save_ott_csv(sample_ott(), path)
        backend = MemoryBackend()
        # A crashed import left only the first row behind.
        partial = tmp_path / "partial.csv"
        save_ott_csv(list(sample_ott())[:1], partial)
        assert import_records_csv(partial, backend) == 1
        assert import_records_csv(path, backend) == 2

    def test_export_round_trips_through_a_store(self, tmp_path):
        backend = MemoryBackend()
        csv_in = tmp_path / "in.csv"
        csv_out = tmp_path / "out.csv"
        save_ott_csv(sample_ott(), csv_in)
        import_records_csv(csv_in, backend)
        assert export_records_csv(backend, csv_out) == 3
        # The exported file reproduces the store's rows exactly (in
        # canonical stream order) and re-imports as a pure no-op.
        reimport = MemoryBackend()
        assert import_records_csv(csv_out, reimport) == 3
        assert list(reimport.iter_rows()) == list(backend.iter_rows())
        assert import_records_csv(csv_out, backend) == 0

    def test_import_to_sqlite_is_durable(self, tmp_path):
        csv_path = tmp_path / "ott.csv"
        db_path = tmp_path / "ott.sqlite"
        save_ott_csv(sample_ott(), csv_path)
        backend = SQLiteBackend(db_path)
        import_records_csv(csv_path, backend)
        backend.close()

        reopened = SQLiteBackend(db_path)
        loaded = ObjectTrackingTable.from_backend(reopened)
        assert len(loaded) == 3
        assert loaded.record_covering("o1", 5.0).record_id == 0
        reopened.close()

    def test_engine_runs_on_loaded_data(self, tmp_path, synthetic_dataset):
        """Full cycle: simulate, save, load, query."""
        path = tmp_path / "sim.csv"
        save_ott_csv(synthetic_dataset.ott, path)
        loaded = load_ott_csv(path)
        engine = synthetic_dataset.engine()
        from repro.core import FlowEngine

        reloaded_engine = FlowEngine(
            synthetic_dataset.floorplan,
            synthetic_dataset.deployment,
            loaded,
            synthetic_dataset.pois,
            v_max=synthetic_dataset.v_max,
            detection_slack=2.0 * synthetic_dataset.sampling_interval,
        )
        t = synthetic_dataset.mid_time()
        assert reloaded_engine.snapshot_flows(t) == engine.snapshot_flows(t)
