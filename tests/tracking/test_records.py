"""Tests for raw readings and tracking records."""

import pytest

from repro.tracking import RawReading, TrackingRecord


class TestRawReading:
    def test_fields(self):
        reading = RawReading("o1", "d1", 12.5)
        assert reading.object_id == "o1"
        assert reading.device_id == "d1"
        assert reading.t == 12.5

    def test_immutable(self):
        reading = RawReading("o1", "d1", 1.0)
        with pytest.raises(AttributeError):
            reading.t = 2.0


class TestTrackingRecord:
    def test_rejects_inverted_interval(self):
        with pytest.raises(ValueError):
            TrackingRecord(0, "o", "d", 10.0, 5.0)

    def test_zero_duration_allowed(self):
        record = TrackingRecord(0, "o", "d", 5.0, 5.0)
        assert record.duration == 0.0

    def test_duration(self):
        assert TrackingRecord(0, "o", "d", 5.0, 9.0).duration == 4.0

    def test_covers_closed_interval(self):
        record = TrackingRecord(0, "o", "d", 5.0, 9.0)
        assert record.covers(5.0)
        assert record.covers(7.0)
        assert record.covers(9.0)
        assert not record.covers(4.999)
        assert not record.covers(9.001)

    def test_overlaps(self):
        record = TrackingRecord(0, "o", "d", 5.0, 9.0)
        assert record.overlaps(0.0, 5.0)  # touching start
        assert record.overlaps(9.0, 12.0)  # touching end
        assert record.overlaps(6.0, 7.0)  # contained
        assert record.overlaps(0.0, 100.0)  # containing
        assert not record.overlaps(0.0, 4.9)
        assert not record.overlaps(9.1, 12.0)
