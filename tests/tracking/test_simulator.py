"""Tests for the end-to-end simulation pipeline."""

import pytest

from repro.tracking import simulate_random_waypoint, simulate_trajectories


class TestSimulateRandomWaypoint:
    def test_produces_consistent_ott(self, office_plan, office_deployment):
        result = simulate_random_waypoint(
            office_plan, office_deployment, num_objects=8, duration=600.0, seed=2
        )
        assert len(result.trajectories) == 8
        # freeze() validated per-object temporal consistency already; spot
        # check the invariants again.
        for object_id in result.ott.object_ids:
            records = result.ott.records_for(object_id)
            for record in records:
                assert record.t_e >= record.t_s
            for previous, current in zip(records, records[1:]):
                assert current.t_s >= previous.t_e

    def test_all_devices_known(self, office_plan, office_deployment):
        result = simulate_random_waypoint(
            office_plan, office_deployment, num_objects=8, duration=600.0, seed=2
        )
        for record in result.ott:
            assert record.device_id in office_deployment

    def test_deterministic_per_seed(self, office_plan, office_deployment):
        a = simulate_random_waypoint(
            office_plan, office_deployment, num_objects=5, duration=300.0, seed=4
        )
        b = simulate_random_waypoint(
            office_plan, office_deployment, num_objects=5, duration=300.0, seed=4
        )
        assert [(r.object_id, r.device_id, r.t_s, r.t_e) for r in a.ott] == [
            (r.object_id, r.device_id, r.t_s, r.t_e) for r in b.ott
        ]

    def test_object_streams_independent_of_population(
        self, office_plan, office_deployment
    ):
        # o0's trajectory must be identical whether 2 or 5 objects are
        # simulated (per-object RNG streams).
        small = simulate_random_waypoint(
            office_plan, office_deployment, num_objects=2, duration=300.0, seed=4
        )
        large = simulate_random_waypoint(
            office_plan, office_deployment, num_objects=5, duration=300.0, seed=4
        )
        assert small.trajectory_of("o0").position_at(150.0) == large.trajectory_of(
            "o0"
        ).position_at(150.0)

    def test_readings_match_merged_records(self, office_plan, office_deployment):
        result = simulate_random_waypoint(
            office_plan, office_deployment, num_objects=5, duration=600.0, seed=6
        )
        # Every reading time is covered by exactly one record of that
        # object/device.
        for reading in result.readings:
            covering = [
                record
                for record in result.ott.records_for(reading.object_id)
                if record.device_id == reading.device_id
                and record.covers(reading.t)
            ]
            assert len(covering) == 1

    def test_readings_consistent_with_ground_truth(
        self, office_plan, office_deployment
    ):
        result = simulate_random_waypoint(
            office_plan, office_deployment, num_objects=5, duration=600.0, seed=8
        )
        for reading in result.readings[:200]:
            trajectory = result.trajectory_of(reading.object_id)
            position = trajectory.position_at(reading.t)
            device = office_deployment.device(reading.device_id)
            assert device.range.contains(position)

    def test_zero_objects(self, office_plan, office_deployment):
        result = simulate_random_waypoint(
            office_plan, office_deployment, num_objects=0, duration=60.0
        )
        assert len(result.ott) == 0

    def test_negative_objects_rejected(self, office_plan, office_deployment):
        with pytest.raises(ValueError):
            simulate_random_waypoint(
                office_plan, office_deployment, num_objects=-1
            )

    def test_trajectory_of_unknown_object(self, office_plan, office_deployment):
        result = simulate_random_waypoint(
            office_plan, office_deployment, num_objects=1, duration=60.0
        )
        with pytest.raises(KeyError):
            result.trajectory_of("ghost")

    def test_hotspot_exponent_accepted(self, office_plan, office_deployment):
        result = simulate_random_waypoint(
            office_plan,
            office_deployment,
            num_objects=3,
            duration=300.0,
            hotspot_exponent=1.0,
        )
        assert len(result.trajectories) == 3


class TestSimulateTrajectories:
    def test_empty(self, office_deployment):
        result = simulate_trajectories([], office_deployment)
        assert len(result.ott) == 0
        assert result.readings == ()
