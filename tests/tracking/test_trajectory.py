"""Tests for trajectories and legs."""

import pytest

from repro.geometry import Circle, Point
from repro.tracking import Leg, Trajectory


class TestLeg:
    def test_rejects_inverted_times(self):
        with pytest.raises(ValueError):
            Leg(Point(0, 0), Point(1, 0), 5.0, 4.0)

    def test_dwell_detection(self):
        assert Leg(Point(1, 1), Point(1, 1), 0.0, 5.0).is_dwell
        assert not Leg(Point(1, 1), Point(2, 1), 0.0, 5.0).is_dwell

    def test_speed(self):
        leg = Leg(Point(0, 0), Point(10, 0), 0.0, 5.0)
        assert leg.speed() == 2.0
        assert Leg(Point(0, 0), Point(0, 0), 0.0, 5.0).speed() == 0.0

    def test_position_interpolation(self):
        leg = Leg(Point(0, 0), Point(10, 0), 0.0, 10.0)
        assert leg.position_at(0.0) == Point(0, 0)
        assert leg.position_at(5.0) == Point(5, 0)
        assert leg.position_at(10.0) == Point(10, 0)

    def test_position_clamps_outside_span(self):
        leg = Leg(Point(0, 0), Point(10, 0), 2.0, 4.0)
        assert leg.position_at(0.0) == Point(0, 0)
        assert leg.position_at(99.0) == Point(10, 0)


class TestTrajectory:
    def walk(self):
        return Trajectory(
            "o",
            [
                Leg(Point(0, 0), Point(10, 0), 0.0, 10.0),
                Leg(Point(10, 0), Point(10, 0), 10.0, 20.0),  # dwell
                Leg(Point(10, 0), Point(10, 10), 20.0, 30.0),
            ],
        )

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            Trajectory("o", [])

    def test_rejects_time_discontinuity(self):
        with pytest.raises(ValueError):
            Trajectory(
                "o",
                [
                    Leg(Point(0, 0), Point(1, 0), 0.0, 1.0),
                    Leg(Point(1, 0), Point(2, 0), 5.0, 6.0),
                ],
            )

    def test_rejects_teleport(self):
        with pytest.raises(ValueError):
            Trajectory(
                "o",
                [
                    Leg(Point(0, 0), Point(1, 0), 0.0, 1.0),
                    Leg(Point(5, 5), Point(6, 5), 1.0, 2.0),
                ],
            )

    def test_span(self):
        walk = self.walk()
        assert walk.t_start == 0.0
        assert walk.t_end == 30.0

    def test_position_at(self):
        walk = self.walk()
        assert walk.position_at(5.0) == Point(5, 0)
        assert walk.position_at(15.0) == Point(10, 0)  # dwelling
        assert walk.position_at(25.0) == Point(10, 5)

    def test_position_at_boundaries(self):
        walk = self.walk()
        assert walk.position_at(10.0) == Point(10, 0)
        assert walk.position_at(20.0) == Point(10, 0)

    def test_max_speed(self):
        assert self.walk().max_speed() == 1.0

    def test_mbr_covers_path(self):
        box = self.walk().mbr()
        assert box.contains_point(Point(0, 0))
        assert box.contains_point(Point(10, 10))

    def test_sample_times_include_leg_boundaries(self):
        times = self.walk().sample_times(0.0, 30.0, step=7.0)
        for boundary in (0.0, 10.0, 20.0, 30.0):
            assert boundary in times

    def test_sample_times_clip_to_span(self):
        times = self.walk().sample_times(-100.0, 100.0, step=10.0)
        assert min(times) == 0.0
        assert max(times) == 30.0

    def test_sample_times_empty_outside_span(self):
        assert self.walk().sample_times(100.0, 200.0, step=1.0) == []

    def test_ever_inside(self):
        walk = self.walk()
        near_midpoint = Circle(Point(5, 0), 1.0)
        assert walk.ever_inside(near_midpoint, 0.0, 10.0)
        assert not walk.ever_inside(near_midpoint, 20.0, 30.0)
