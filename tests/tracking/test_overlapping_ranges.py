"""Overlapping detection ranges (paper, Section 3.4 Remark).

With ``exclusive=True`` detection, simultaneous sightings resolve to the
nearest device, so even deployments with overlapping ranges produce a
temporally consistent OTT and the whole pipeline — including soundness of
the uncertainty analysis — keeps working.
"""

# repro: allow-file(context-bypass): derives regions directly from overlapping-range records

import pytest

from repro.core import snapshot_contexts, snapshot_region
from repro.geometry import Point, Polygon
from repro.indoor import Deployment, Device, Door, FloorPlan, Poi, Room
from repro.tracking import (
    Leg,
    Trajectory,
    detect_trajectory,
    merge_readings,
    simulate_trajectories,
)


@pytest.fixture(scope="module")
def overlapping_deployment():
    """Two heavily overlapping readers along a corridor."""
    return Deployment(
        [
            Device.at("a", Point(10, 5), 6.0),
            Device.at("b", Point(18, 5), 6.0),  # overlaps a on [12, 16]
        ]
    )


def corridor_walk():
    return Trajectory("o", [Leg(Point(0, 5), Point(30, 5), 0.0, 30.0)])


class TestExclusiveDetection:
    def test_default_merging_fragments_on_overlap(self, overlapping_deployment):
        """Without exclusive attribution, alternating sightings in the
        overlap zone shred the episodes into many tiny records."""
        readings = detect_trajectory(corridor_walk(), overlapping_deployment, 1.0)
        fragmented = merge_readings(readings).records_for("o")
        exclusive_readings = detect_trajectory(
            corridor_walk(), overlapping_deployment, 1.0, exclusive=True
        )
        clean = merge_readings(exclusive_readings).records_for("o")
        assert len(fragmented) > len(clean)
        assert len(clean) == 2

    def test_exclusive_produces_consistent_ott(self, overlapping_deployment):
        readings = detect_trajectory(
            corridor_walk(), overlapping_deployment, 1.0, exclusive=True
        )
        table = merge_readings(readings)  # freeze() validates consistency
        records = table.records_for("o")
        assert [r.device_id for r in records] == ["a", "b"]

    def test_attribution_goes_to_nearest(self, overlapping_deployment):
        readings = detect_trajectory(
            corridor_walk(), overlapping_deployment, 1.0, exclusive=True
        )
        walk = corridor_walk()
        for reading in readings:
            position = walk.position_at(reading.t)
            nearest = min(
                overlapping_deployment,
                key=lambda device: position.distance_to(device.center),
            )
            # Only ties could differ; none occur on this geometry's ticks.
            assert reading.device_id == nearest.device_id

    def test_one_reading_per_tick_in_overlap_zone(self, overlapping_deployment):
        readings = detect_trajectory(
            corridor_walk(), overlapping_deployment, 1.0, exclusive=True
        )
        ticks = [r.t for r in readings]
        assert len(ticks) == len(set(ticks))

    def test_exclusive_never_invents_readings(self, overlapping_deployment):
        inclusive = detect_trajectory(
            corridor_walk(), overlapping_deployment, 1.0
        )
        exclusive = detect_trajectory(
            corridor_walk(), overlapping_deployment, 1.0, exclusive=True
        )
        inclusive_keys = {(r.device_id, r.t) for r in inclusive}
        for reading in exclusive:
            assert (reading.device_id, reading.t) in inclusive_keys

    def test_coverage_identical_to_inclusive(self, overlapping_deployment):
        """Exclusive mode keeps every covered tick, just single-attributed."""
        inclusive = detect_trajectory(
            corridor_walk(), overlapping_deployment, 1.0
        )
        exclusive = detect_trajectory(
            corridor_walk(), overlapping_deployment, 1.0, exclusive=True
        )
        assert {r.t for r in inclusive} == {r.t for r in exclusive}


class TestEndToEndWithOverlap:
    @pytest.fixture(scope="class")
    def setup(self, overlapping_deployment):
        plan = FloorPlan(
            [Room("c", Polygon.rectangle(0, 0, 30, 10), kind="hallway")], []
        )
        walk = corridor_walk()
        readings = detect_trajectory(
            walk, overlapping_deployment, 1.0, exclusive=True
        )
        ott = merge_readings(readings)
        pois = [
            Poi("west", Polygon.rectangle(1, 1, 10, 9), "c"),
            Poi("east", Polygon.rectangle(20, 1, 29, 9), "c"),
        ]
        from repro.core import FlowEngine

        engine = FlowEngine(plan, overlapping_deployment, ott, pois, v_max=1.0)
        return walk, engine

    def test_queries_run(self, setup):
        _, engine = setup
        result = engine.snapshot_topk(15.0, 2)
        assert len(result) == 2

    def test_soundness_with_overlapping_ranges(self, setup):
        walk, engine = setup
        for t in (5.0, 10.0, 14.0, 15.9, 20.0, 25.0):
            for context in snapshot_contexts(engine.artree, t):
                region = snapshot_region(
                    context, engine.deployment, engine.v_max, engine.topology
                )
                assert region.contains(walk.position_at(t)), f"unsound at t={t}"


class TestSimulatorIntegration:
    def test_simulate_trajectories_exclusive_mode(self, overlapping_deployment):
        result = simulate_trajectories(
            [corridor_walk()], overlapping_deployment, exclusive=True
        )
        # Frozen OTT implies the per-object sequences validated: the
        # overlapping deployment produced consistent records.
        assert len(result.ott.records_for("o")) == 2
