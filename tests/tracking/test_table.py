"""Tests for the Object Tracking Table."""

import pytest

from repro.tracking import ObjectTrackingTable, TrackingRecord


def rec(record_id, obj, dev, t_s, t_e):
    return TrackingRecord(record_id, obj, dev, t_s, t_e)


@pytest.fixture()
def table():
    """The paper's Table 2 shape: one object, gaps between detections."""
    return ObjectTrackingTable(
        [
            rec(0, "o1", "d1", 10.0, 20.0),
            rec(1, "o1", "d2", 30.0, 40.0),
            rec(2, "o1", "d3", 55.0, 60.0),
            rec(3, "o2", "d1", 5.0, 8.0),
        ]
    ).freeze()


class TestLifecycle:
    def test_append_after_freeze_fails(self, table):
        with pytest.raises(RuntimeError):
            table.append(rec(9, "o3", "d1", 0.0, 1.0))

    def test_query_before_freeze_fails(self):
        table = ObjectTrackingTable([rec(0, "o", "d", 0.0, 1.0)])
        with pytest.raises(RuntimeError):
            table.records_for("o")

    def test_freeze_is_idempotent(self, table):
        assert table.freeze() is table

    def test_freeze_sorts_out_of_order_records(self):
        table = ObjectTrackingTable(
            [rec(1, "o", "d2", 30.0, 40.0), rec(0, "o", "d1", 10.0, 20.0)]
        ).freeze()
        assert [r.record_id for r in table.records_for("o")] == [0, 1]

    def test_freeze_rejects_overlapping_records(self):
        table = ObjectTrackingTable(
            [rec(0, "o", "d1", 10.0, 20.0), rec(1, "o", "d2", 15.0, 25.0)]
        )
        with pytest.raises(ValueError):
            table.freeze()

    def test_back_to_back_records_allowed(self):
        ObjectTrackingTable(
            [rec(0, "o", "d1", 10.0, 20.0), rec(1, "o", "d2", 20.0, 25.0)]
        ).freeze()


class TestIntrospection:
    def test_len_and_iter(self, table):
        assert len(table) == 4
        assert len(list(table)) == 4

    def test_object_ids(self, table):
        assert set(table.object_ids) == {"o1", "o2"}
        assert table.object_count == 2

    def test_time_span(self, table):
        assert table.time_span() == (5.0, 60.0)

    def test_time_span_of_empty_table(self):
        with pytest.raises(ValueError):
            ObjectTrackingTable([]).freeze().time_span()

    def test_records_for_unknown_object(self, table):
        assert table.records_for("ghost") == []


class TestTemporalLookups:
    def test_record_covering_active(self, table):
        assert table.record_covering("o1", 15.0).record_id == 0
        assert table.record_covering("o1", 30.0).record_id == 1
        assert table.record_covering("o1", 40.0).record_id == 1

    def test_record_covering_gap_is_none(self, table):
        assert table.record_covering("o1", 25.0) is None
        assert table.record_covering("o1", 5.0) is None
        assert table.record_covering("o1", 99.0) is None

    def test_predecessor(self, table):
        assert table.predecessor("o1", 25.0).record_id == 0
        assert table.predecessor("o1", 50.0).record_id == 1
        assert table.predecessor("o1", 10.0) is None

    def test_successor(self, table):
        assert table.successor("o1", 25.0).record_id == 1
        assert table.successor("o1", 45.0).record_id == 2
        assert table.successor("o1", 70.0) is None

    def test_previous_record(self, table):
        records = table.records_for("o1")
        assert table.previous_record("o1", records[1]).record_id == 0
        assert table.previous_record("o1", records[0]) is None

    def test_records_overlapping(self, table):
        ids = [r.record_id for r in table.records_overlapping("o1", 18.0, 35.0)]
        assert ids == [0, 1]
        assert table.records_overlapping("o1", 21.0, 29.0) == []
