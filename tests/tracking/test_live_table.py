"""LiveTrackingTable: append-time validation, open episodes, generations.

The live table is the streaming counterpart of the frozen
ObjectTrackingTable: the same read API, but every mutation is validated
immediately and stamped with a monotonic generation counter.
"""

import pytest

from repro.tracking import LiveTrackingTable, ObjectTrackingTable, TrackingRecord


def rec(record_id, object_id, device_id, t_s, t_e):
    return TrackingRecord(record_id, object_id, device_id, t_s, t_e)


@pytest.fixture()
def live():
    table = LiveTrackingTable()
    table.append(rec(0, "o1", "d1", 10.0, 20.0))
    table.append(rec(1, "o2", "d1", 12.0, 15.0))
    table.append(rec(2, "o1", "d2", 30.0, 40.0))
    return table


class TestAppendValidation:
    def test_in_order_appends_accepted(self, live):
        assert len(live) == 3
        assert live.records_for("o1") == [
            rec(0, "o1", "d1", 10.0, 20.0),
            rec(2, "o1", "d2", 30.0, 40.0),
        ]

    def test_rejects_overlapping_successor(self, live):
        with pytest.raises(ValueError, match="o1"):
            live.append(rec(3, "o1", "d3", 35.0, 50.0))

    def test_rejects_out_of_order_successor(self, live):
        with pytest.raises(ValueError):
            live.append(rec(3, "o1", "d3", 5.0, 8.0))

    def test_failed_append_leaves_table_unchanged(self, live):
        generation = live.generation
        with pytest.raises(ValueError):
            live.append(rec(3, "o1", "d3", 35.0, 50.0))
        assert len(live) == 3
        assert live.generation == generation

    def test_touching_intervals_accepted(self, live):
        live.append(rec(3, "o1", "d3", 40.0, 45.0))
        assert live.last_record("o1").record_id == 3

    def test_constructor_validates_stream(self):
        with pytest.raises(ValueError):
            LiveTrackingTable(
                [rec(0, "o1", "d1", 10.0, 20.0), rec(1, "o1", "d2", 15.0, 25.0)]
            )

    def test_always_queryable(self):
        table = LiveTrackingTable()
        assert len(table) == 0
        assert table.object_ids == []
        table.append(rec(0, "o1", "d1", 0.0, 1.0))
        assert table.record_covering("o1", 0.5).record_id == 0


class TestOpenEpisodes:
    def test_open_then_extend_then_close(self, live):
        live.append(rec(3, "o1", "d3", 50.0, 52.0), open=True)
        assert live.open_object_ids == frozenset({"o1"})
        assert live.open_record("o1").t_e == 52.0

        updated = live.extend_episode("o1", 58.0)
        assert updated.record_id == 3
        assert updated.t_e == 58.0
        assert live.last_record("o1") == updated

        closed = live.close_episode("o1", 60.0)
        assert closed.t_e == 60.0
        assert live.open_object_ids == frozenset()
        assert live.records_for("o1")[-1] == closed

    def test_close_at_current_extent(self, live):
        live.append(rec(3, "o2", "d2", 20.0, 23.0), open=True)
        closed = live.close_episode("o2")
        assert closed.t_e == 23.0

    def test_append_while_open_rejected(self, live):
        live.append(rec(3, "o1", "d3", 50.0, 52.0), open=True)
        with pytest.raises(ValueError, match="open episode"):
            live.append(rec(4, "o1", "d1", 60.0, 62.0))

    def test_extend_without_open_episode_rejected(self, live):
        with pytest.raises(ValueError, match="no open episode"):
            live.extend_episode("o1", 99.0)

    def test_extend_backwards_rejected(self, live):
        live.append(rec(3, "o1", "d3", 50.0, 55.0), open=True)
        with pytest.raises(ValueError, match="backwards"):
            live.extend_episode("o1", 53.0)

    def test_open_episode_visible_to_reads(self, live):
        live.append(rec(3, "o1", "d3", 50.0, 52.0), open=True)
        live.extend_episode("o1", 70.0)
        assert live.record_covering("o1", 65.0).record_id == 3
        assert live.time_span()[1] == 70.0


class TestGeneration:
    def test_every_mutation_bumps(self):
        table = LiveTrackingTable()
        assert table.generation == 0
        table.append(rec(0, "o1", "d1", 0.0, 1.0))
        table.append(rec(1, "o1", "d2", 2.0, 3.0), open=True)
        assert table.generation == 2
        table.extend_episode("o1", 5.0)
        assert table.generation == 3
        table.close_episode("o1")
        assert table.generation == 4

    def test_reads_do_not_bump(self, live):
        generation = live.generation
        live.records_for("o1")
        live.time_span()
        list(live)
        assert live.generation == generation


class TestFreeze:
    def test_freeze_returns_immutable_snapshot(self, live):
        frozen = live.freeze()
        assert isinstance(frozen, ObjectTrackingTable)
        assert list(frozen) == list(live)
        with pytest.raises(RuntimeError):
            frozen.append(rec(9, "o3", "d1", 0.0, 1.0))

    def test_snapshot_does_not_track_later_appends(self, live):
        frozen = live.freeze()
        live.append(rec(3, "o3", "d1", 0.0, 1.0))
        assert len(frozen) == 3
        assert len(live) == 4

    def test_open_episode_frozen_at_current_extent(self, live):
        live.append(rec(3, "o1", "d3", 50.0, 52.0), open=True)
        live.extend_episode("o1", 66.0)
        frozen = live.freeze()
        assert frozen.records_for("o1")[-1].t_e == 66.0

    def test_batch_parity(self, live):
        """Live reads match a frozen batch table over the same records."""
        frozen = live.freeze()
        for object_id in frozen.object_ids:
            assert live.records_for(object_id) == frozen.records_for(object_id)
            assert live.predecessor(object_id, 31.0) == frozen.predecessor(
                object_id, 31.0
            )
            assert live.successor(object_id, 11.0) == frozen.successor(
                object_id, 11.0
            )
        assert live.time_span() == frozen.time_span()
        assert live.records_overlapping("o1", 12.0, 31.0) == frozen.records_overlapping("o1", 12.0, 31.0)
