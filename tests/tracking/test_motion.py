"""Tests for the motion programs (random waypoint and itineraries)."""

import random

import pytest

from repro.geometry import Point
from repro.indoor import DoorGraph
from repro.tracking import (
    itinerary_trajectory,
    random_point_in_room,
    random_waypoint_trajectory,
    zipf_room_weights,
)


class TestRandomPointInRoom:
    def test_point_inside_room(self, office_plan):
        rng = random.Random(1)
        for room in office_plan.rooms:
            for _ in range(10):
                point = random_point_in_room(room, rng)
                assert room.polygon.contains(point)

    def test_deterministic_for_seeded_rng(self, office_plan):
        room = office_plan.rooms[0]
        a = random_point_in_room(room, random.Random(5))
        b = random_point_in_room(room, random.Random(5))
        assert a == b


class TestZipfWeights:
    def test_uniform_at_zero_exponent(self):
        assert zipf_room_weights(4, exponent=0.0) == [1.0, 1.0, 1.0, 1.0]

    def test_decreasing(self):
        weights = zipf_room_weights(5, exponent=1.0)
        assert weights == sorted(weights, reverse=True)
        assert weights[0] == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            zipf_room_weights(0)
        with pytest.raises(ValueError):
            zipf_room_weights(3, exponent=-1.0)


class TestRandomWaypoint:
    def make(self, plan, graph, seed=3, **kwargs):
        defaults = dict(speed=1.1, duration=600.0, pause_max=30.0)
        defaults.update(kwargs)
        return random_waypoint_trajectory(
            "obj", plan, graph, random.Random(seed), **defaults
        )

    def test_covers_exact_time_span(self, office_plan, office_graph):
        walk = self.make(office_plan, office_graph)
        assert walk.t_start == 0.0
        assert walk.t_end == 600.0

    def test_never_exceeds_speed(self, office_plan, office_graph):
        walk = self.make(office_plan, office_graph, speed=1.1)
        assert walk.max_speed() <= 1.1 + 1e-9

    def test_stays_inside_floor_plan(self, office_plan, office_graph):
        walk = self.make(office_plan, office_graph)
        for t in walk.sample_times(0.0, 600.0, step=5.0):
            assert office_plan.contains_point(walk.position_at(t))

    def test_deterministic(self, office_plan, office_graph):
        a = self.make(office_plan, office_graph, seed=9)
        b = self.make(office_plan, office_graph, seed=9)
        assert len(a.legs) == len(b.legs)
        assert a.position_at(300.0) == b.position_at(300.0)

    def test_different_seeds_differ(self, office_plan, office_graph):
        a = self.make(office_plan, office_graph, seed=1)
        b = self.make(office_plan, office_graph, seed=2)
        assert a.position_at(300.0) != b.position_at(300.0)

    def test_rejects_non_positive_speed(self, office_plan, office_graph):
        with pytest.raises(ValueError):
            self.make(office_plan, office_graph, speed=0.0)

    def test_room_weights_bias_destinations(self, office_plan, office_graph):
        # All weight on room index 1: the object should spend most time
        # around that room (and the hallway on the way).
        weights = [0.0] * len(office_plan.rooms)
        weights[1] = 1.0
        target = office_plan.rooms[1]
        walk = self.make(
            office_plan, office_graph, room_weights=weights, duration=1200.0
        )
        inside = sum(
            1
            for t in walk.sample_times(0.0, 1200.0, 10.0)
            if target.polygon.contains(walk.position_at(t))
        )
        assert inside > 0

    def test_room_weights_length_validated(self, office_plan, office_graph):
        with pytest.raises(ValueError):
            self.make(office_plan, office_graph, room_weights=[1.0])


class TestItinerary:
    def test_visits_stops_in_order(self, office_plan, office_graph):
        rooms = [r for r in office_plan.rooms if r.kind == "room"]
        stops = [
            (rooms[0].polygon.centroid(), 10.0),
            (rooms[3].polygon.centroid(), 20.0),
        ]
        walk = itinerary_trajectory("p", office_graph, stops, speed=1.0)
        # Dwell at the first stop.
        assert walk.position_at(5.0) == stops[0][0]
        # Eventually dwelling at the second stop.
        assert walk.position_at(walk.t_end) == stops[1][0]

    def test_rejects_empty_itinerary(self, office_graph):
        with pytest.raises(ValueError):
            itinerary_trajectory("p", office_graph, [])

    def test_unroutable_stop_raises(self, office_plan, office_graph):
        stops = [
            (office_plan.rooms[0].polygon.centroid(), 1.0),
            (Point(9999.0, 9999.0), 1.0),
        ]
        with pytest.raises(ValueError):
            itinerary_trajectory("p", office_graph, stops)

    def test_speed_respected(self, office_plan, office_graph):
        rooms = [r for r in office_plan.rooms if r.kind == "room"]
        stops = [
            (rooms[0].polygon.centroid(), 0.0),
            (rooms[5].polygon.centroid(), 0.0),
        ]
        walk = itinerary_trajectory("p", office_graph, stops, speed=2.0)
        assert walk.max_speed() <= 2.0 + 1e-9

    def test_single_stop_dwell_only(self, office_plan, office_graph):
        center = office_plan.rooms[0].polygon.centroid()
        walk = itinerary_trajectory("p", office_graph, [(center, 30.0)])
        assert walk.t_end - walk.t_start == 30.0
        assert walk.position_at(15.0) == center
