"""Tests for the analytic proximity detection model.

The key property: analytic per-leg episode computation must agree with a
brute-force clock-stepped simulation of the same trajectory.
"""

import math

import pytest

from repro.geometry import Point
from repro.indoor import Deployment, Device
from repro.tracking import (
    Leg,
    Trajectory,
    detect_all,
    detect_trajectory,
    detection_episodes,
)


def straight_walk(speed=1.0, length=100.0):
    return Trajectory(
        "o", [Leg(Point(0, 0), Point(length, 0), 0.0, length / speed)]
    )


def stepped_reference(trajectory, deployment, interval):
    """Brute force: sample the trajectory position at every global tick."""
    readings = set()
    first_tick = math.ceil(trajectory.t_start / interval)
    last_tick = math.floor(trajectory.t_end / interval)
    for k in range(first_tick, last_tick + 1):
        t = k * interval
        position = trajectory.position_at(t)
        for device in deployment:
            if device.range.contains(position):
                readings.add((device.device_id, round(t, 9)))
    return readings


class TestEpisodes:
    def test_walkthrough_episode(self):
        device = Device.at("d", Point(50, 0), 5.0)
        episodes = detection_episodes(straight_walk(), device)
        assert len(episodes) == 1
        t_in, t_out = episodes[0]
        assert t_in == pytest.approx(45.0)
        assert t_out == pytest.approx(55.0)

    def test_offset_device_shorter_episode(self):
        device = Device.at("d", Point(50, 3.0), 5.0)
        ((t_in, t_out),) = detection_episodes(straight_walk(), device)
        assert t_out - t_in == pytest.approx(8.0)  # chord length 2*sqrt(25-9)

    def test_miss(self):
        device = Device.at("d", Point(50, 10.0), 5.0)
        assert detection_episodes(straight_walk(), device) == []

    def test_dwell_inside_range(self):
        trajectory = Trajectory("o", [Leg(Point(0, 0), Point(0, 0), 5.0, 25.0)])
        device = Device.at("d", Point(1, 0), 3.0)
        assert detection_episodes(trajectory, device) == [(5.0, 25.0)]

    def test_dwell_outside_range(self):
        trajectory = Trajectory("o", [Leg(Point(10, 0), Point(10, 0), 0.0, 9.0)])
        device = Device.at("d", Point(0, 0), 3.0)
        assert detection_episodes(trajectory, device) == []

    def test_touching_legs_coalesce(self):
        # Walk in, dwell inside, walk out: one continuous episode.
        trajectory = Trajectory(
            "o",
            [
                Leg(Point(0, 0), Point(50, 0), 0.0, 50.0),
                Leg(Point(50, 0), Point(50, 0), 50.0, 60.0),
                Leg(Point(50, 0), Point(100, 0), 60.0, 110.0),
            ],
        )
        device = Device.at("d", Point(50, 0), 5.0)
        assert detection_episodes(trajectory, device) == [
            (pytest.approx(45.0), pytest.approx(65.0))
        ]

    def test_reentry_gives_two_episodes(self):
        trajectory = Trajectory(
            "o",
            [
                Leg(Point(0, 0), Point(100, 0), 0.0, 100.0),
                Leg(Point(100, 0), Point(0, 0), 100.0, 200.0),
            ],
        )
        device = Device.at("d", Point(50, 0), 5.0)
        episodes = detection_episodes(trajectory, device)
        assert len(episodes) == 2


class TestReadings:
    def test_matches_stepped_reference(self):
        deployment = Deployment(
            [
                Device.at("a", Point(20, 1), 4.0),
                Device.at("b", Point(60, -2), 6.0),
                Device.at("c", Point(90, 30), 3.0),  # never hit
            ]
        )
        trajectory = Trajectory(
            "o",
            [
                Leg(Point(0, 0), Point(80, 0), 0.0, 80.0),
                Leg(Point(80, 0), Point(80, 0), 80.0, 95.0),
                Leg(Point(80, 0), Point(0, 0), 95.0, 175.0),
            ],
        )
        got = {
            (r.device_id, round(r.t, 9))
            for r in detect_trajectory(trajectory, deployment, 1.0)
        }
        assert got == stepped_reference(trajectory, deployment, 1.0)

    def test_readings_sorted_by_time(self):
        deployment = Deployment([Device.at("a", Point(20, 0), 4.0)])
        readings = detect_trajectory(straight_walk(), deployment, 1.0)
        times = [r.t for r in readings]
        assert times == sorted(times)

    def test_no_duplicate_readings_at_leg_boundaries(self):
        # The boundary between two legs lands exactly on a tick inside a
        # detection range; the reading must appear once.
        deployment = Deployment([Device.at("a", Point(10, 0), 5.0)])
        trajectory = Trajectory(
            "o",
            [
                Leg(Point(0, 0), Point(10, 0), 0.0, 10.0),
                Leg(Point(10, 0), Point(20, 0), 10.0, 20.0),
            ],
        )
        readings = detect_trajectory(trajectory, deployment, 1.0)
        keys = [(r.device_id, r.t) for r in readings]
        assert len(keys) == len(set(keys))

    def test_sampling_interval_validation(self):
        deployment = Deployment([])
        with pytest.raises(ValueError):
            detect_trajectory(straight_walk(), deployment, 0.0)

    def test_coarser_sampling_fewer_readings(self):
        deployment = Deployment([Device.at("a", Point(50, 0), 10.0)])
        fine = detect_trajectory(straight_walk(), deployment, 1.0)
        coarse = detect_trajectory(straight_walk(), deployment, 5.0)
        assert len(coarse) < len(fine)

    def test_detect_all_covers_all_objects(self):
        deployment = Deployment([Device.at("a", Point(20, 0), 5.0)])
        walks = [
            straight_walk(),
            Trajectory("p", [Leg(Point(0, 1), Point(100, 1), 0.0, 100.0)]),
        ]
        readings = detect_all(walks, deployment, 1.0)
        assert {r.object_id for r in readings} == {"o", "p"}
