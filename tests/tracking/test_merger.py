"""Tests for merging raw readings into tracking records."""

import pytest

from repro.tracking import RawReading, merge_readings


def readings(object_id, device_id, times):
    return [RawReading(object_id, device_id, t) for t in times]


class TestMerging:
    def test_consecutive_readings_merge_into_one_record(self):
        table = merge_readings(readings("o", "d", [0.0, 1.0, 2.0, 3.0]))
        records = table.records_for("o")
        assert len(records) == 1
        assert (records[0].t_s, records[0].t_e) == (0.0, 3.0)

    def test_single_reading_yields_point_record(self):
        table = merge_readings(readings("o", "d", [5.0]))
        record = table.records_for("o")[0]
        assert record.t_s == record.t_e == 5.0

    def test_gap_splits_records(self):
        table = merge_readings(readings("o", "d", [0.0, 1.0, 10.0, 11.0]))
        records = table.records_for("o")
        assert [(r.t_s, r.t_e) for r in records] == [(0.0, 1.0), (10.0, 11.0)]

    def test_device_change_splits_records(self):
        raw = readings("o", "d1", [0.0, 1.0]) + readings("o", "d2", [2.0, 3.0])
        table = merge_readings(raw)
        records = table.records_for("o")
        assert [(r.device_id, r.t_s, r.t_e) for r in records] == [
            ("d1", 0.0, 1.0),
            ("d2", 2.0, 3.0),
        ]

    def test_jitter_within_default_gap_tolerated(self):
        # Default max_gap is 1.5 * sampling_interval.
        table = merge_readings(readings("o", "d", [0.0, 1.4, 2.8]))
        assert len(table.records_for("o")) == 1

    def test_custom_max_gap(self):
        table = merge_readings(
            readings("o", "d", [0.0, 3.0, 6.0]), max_gap=5.0
        )
        assert len(table.records_for("o")) == 1

    def test_rejects_non_positive_gap(self):
        with pytest.raises(ValueError):
            merge_readings([], max_gap=0.0)

    def test_multiple_objects_kept_apart(self):
        raw = readings("a", "d", [0.0, 1.0]) + readings("b", "d", [0.0, 1.0])
        table = merge_readings(raw)
        assert table.object_count == 2
        assert len(table) == 2

    def test_unsorted_input_handled(self):
        raw = readings("o", "d", [3.0, 0.0, 2.0, 1.0])
        table = merge_readings(raw)
        records = table.records_for("o")
        assert [(r.t_s, r.t_e) for r in records] == [(0.0, 3.0)]

    def test_result_is_frozen(self):
        table = merge_readings(readings("o", "d", [0.0]))
        with pytest.raises(RuntimeError):
            table.append(None)

    def test_record_ids_unique(self):
        raw = (
            readings("a", "d1", [0.0, 1.0])
            + readings("a", "d2", [5.0])
            + readings("b", "d1", [2.0])
        )
        table = merge_readings(raw)
        ids = [record.record_id for record in table]
        assert len(ids) == len(set(ids))

    def test_empty_input(self):
        table = merge_readings([])
        assert len(table) == 0
