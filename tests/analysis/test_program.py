"""The whole-program project model: parsing, symbols, writes, types."""

from __future__ import annotations

import ast
from pathlib import Path

from repro.analysis.program import (
    ProjectModel,
    iter_python_files,
    module_name_for,
    parse_files,
)


def write_tree(tmp_path: Path, files: dict[str, str]) -> Path:
    for relative, source in files.items():
        target = tmp_path / relative
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(source)
    return tmp_path


PKG = {
    "pkg/__init__.py": "from .shard import ShardState\n",
    "pkg/shard.py": (
        "from .index import ARTree\n"
        "\n"
        "class ShardState:\n"
        "    def __init__(self) -> None:\n"
        "        self.artree = ARTree.build()\n"
        "        self.count = 0\n"
        "\n"
        "    def ingest(self, record: object) -> None:\n"
        "        self.artree.append_record(record)\n"
        "        self.count += 1\n"
    ),
    "pkg/index.py": (
        "class ARTree:\n"
        "    @classmethod\n"
        "    def build(cls) -> 'ARTree':\n"
        "        return cls()\n"
        "\n"
        "    def append_record(self, record: object) -> None:\n"
        "        pass\n"
    ),
}


class TestModuleNames:
    def test_packages_derive_dotted_names(self, tmp_path):
        write_tree(tmp_path, PKG)
        assert module_name_for(tmp_path / "pkg" / "shard.py") == "pkg.shard"
        assert module_name_for(tmp_path / "pkg" / "__init__.py") == "pkg"

    def test_loose_files_use_their_stem(self, tmp_path):
        target = tmp_path / "script.py"
        target.write_text("x = 1\n")
        assert module_name_for(target) == "script"


class TestWalking:
    def test_fixture_and_pycache_dirs_are_skipped(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "src/mod.py": "x = 1\n",
                "src/fixtures/seeded.py": "y = 2\n",
                "src/__pycache__/junk.py": "z = 3\n",
            },
        )
        found = [p.name for p in iter_python_files([tmp_path])]
        assert found == ["mod.py"]

    def test_explicit_file_paths_are_never_skipped(self, tmp_path):
        write_tree(tmp_path, {"fixtures/seeded.py": "y = 2\n"})
        target = tmp_path / "fixtures" / "seeded.py"
        assert list(iter_python_files([target])) == [target]


class TestModel:
    def test_symbols_and_qualnames(self, tmp_path):
        root = write_tree(tmp_path, PKG)
        model = ProjectModel.build([root])
        assert "pkg.shard" in model.modules
        assert "pkg.shard.ShardState" in model.classes
        assert "pkg.shard.ShardState.ingest" in model.functions
        method = model.functions["pkg.shard.ShardState.ingest"]
        assert method.cls == "pkg.shard.ShardState"
        assert method.name == "ingest"

    def test_attribute_write_index(self, tmp_path):
        root = write_tree(tmp_path, PKG)
        model = ProjectModel.build([root])
        writes = {
            (w.function, w.obj, w.attr, w.augmented)
            for w in model.attribute_writes
        }
        assert (
            "pkg.shard.ShardState.__init__",
            "self",
            "artree",
            False,
        ) in writes
        assert (
            "pkg.shard.ShardState.ingest",
            "self",
            "count",
            True,
        ) in writes

    def test_classmethod_constructor_harvests_attr_type(self, tmp_path):
        root = write_tree(tmp_path, PKG)
        model = ProjectModel.build([root])
        shard_cls = model.classes["pkg.shard.ShardState"]
        assert shard_cls.attr_types["artree"] == "ARTree"

    def test_import_resolution_through_relative_imports(self, tmp_path):
        root = write_tree(tmp_path, PKG)
        model = ProjectModel.build([root])
        shard_module = model.modules["pkg.shard"]
        assert (
            model.resolve_name(shard_module, "ARTree")
            == "pkg.index.ARTree"
        )

    def test_syntax_errors_are_collected_not_raised(self, tmp_path):
        write_tree(tmp_path, {"bad.py": "def broken(:\n"})
        model = ProjectModel.build([tmp_path])
        assert len(model.errors) == 1
        assert "bad.py" in model.errors[0]


class TestParallelParse:
    def test_jobs_parse_matches_serial(self, tmp_path):
        root = write_tree(tmp_path, PKG)
        files = list(iter_python_files([root]))
        serial = parse_files(files, jobs=1)
        forked = parse_files(files, jobs=2)
        assert [item[0] for item in serial] == [item[0] for item in forked]
        for (_, _, tree_a), (_, _, tree_b) in zip(serial, forked):
            assert ast.dump(tree_a) == ast.dump(tree_b)

    def test_jobs_parse_reports_errors(self, tmp_path):
        write_tree(tmp_path, {"ok.py": "x = 1\n", "bad.py": "def broken(:\n"})
        errors: list[str] = []
        parsed = parse_files(
            sorted(iter_python_files([tmp_path])), jobs=2, errors=errors
        )
        assert [Path(p).name for p, _, _ in parsed] == ["ok.py"]
        assert len(errors) == 1 and "bad.py" in errors[0]
