"""The repo-specific AST lint pass: rules, suppressions and the CLI.

Violating code lives in string literals here, which the AST rules cannot
see — only the temp files the tests write from them are linted.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.analysis import Diagnostic, LintReport, lint_paths, main
from repro.analysis.linter import FILE_WIDE_LINE, parse_suppressions
from repro.analysis.rules import ALL_RULES, rules_by_name

REPO_ROOT = Path(__file__).resolve().parents[2]


def lint_source(
    tmp_path: Path,
    source: str,
    filename: str = "module.py",
    rule: str | None = None,
) -> LintReport:
    """Write ``source`` under ``tmp_path`` and lint it."""
    target = tmp_path / filename
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(source)
    registry = rules_by_name()
    rules = [registry[rule]] if rule is not None else None
    return lint_paths([target], rules)


def rule_names(report: LintReport) -> list[str]:
    return [diagnostic.rule for diagnostic in report.diagnostics]


# ----------------------------------------------------------------------
# float-equality
# ----------------------------------------------------------------------


class TestFloatEquality:
    def test_flags_equality_against_float_literal(self, tmp_path):
        report = lint_source(tmp_path, "ok = value == 0.0\n")
        assert rule_names(report) == ["float-equality"]

    def test_flags_inequality_and_negative_literals(self, tmp_path):
        report = lint_source(
            tmp_path, "a = x != 1.5\nb = y == -2.25\n"
        )
        assert rule_names(report) == ["float-equality", "float-equality"]

    def test_ignores_integer_and_non_literal_comparisons(self, tmp_path):
        report = lint_source(
            tmp_path, "a = x == 3\nb = x == y\nc = x < 0.5\n"
        )
        assert report.ok

    def test_assert_statements_are_exempt(self, tmp_path):
        # Tests assert exact expected values (including bit-identity
        # determinism checks) on purpose.
        report = lint_source(
            tmp_path, "assert compute() == 0.25\nassert a == b == 0.0\n"
        )
        assert report.ok

    def test_diagnostic_location_and_format(self, tmp_path):
        report = lint_source(tmp_path, "\nflag = x == 0.0\n")
        (diagnostic,) = report.diagnostics
        assert diagnostic.line == 2
        formatted = diagnostic.format()
        assert formatted.endswith(diagnostic.message)
        assert f":{diagnostic.line}:" in formatted
        assert "[float-equality]" in formatted


# ----------------------------------------------------------------------
# unseeded-rng
# ----------------------------------------------------------------------


class TestUnseededRng:
    def test_flags_unseeded_random_instances(self, tmp_path):
        report = lint_source(
            tmp_path,
            "import random\nrng = random.Random()\n",
            rule="unseeded-rng",
        )
        assert rule_names(report) == ["unseeded-rng"]

    def test_flags_global_random_functions(self, tmp_path):
        report = lint_source(
            tmp_path,
            "import random\nvalue = random.uniform(0, 1)\n",
            rule="unseeded-rng",
        )
        assert rule_names(report) == ["unseeded-rng"]

    def test_flags_numpy_legacy_and_unseeded_default_rng(self, tmp_path):
        report = lint_source(
            tmp_path,
            "import numpy as np\n"
            "a = np.random.rand(3)\n"
            "rng = np.random.default_rng()\n",
            rule="unseeded-rng",
        )
        assert rule_names(report) == ["unseeded-rng", "unseeded-rng"]

    def test_accepts_seeded_construction(self, tmp_path):
        report = lint_source(
            tmp_path,
            "import random\n"
            "import numpy as np\n"
            "rng = random.Random(42)\n"
            "gen = np.random.default_rng(7)\n",
            rule="unseeded-rng",
        )
        assert report.ok


# ----------------------------------------------------------------------
# context-bypass
# ----------------------------------------------------------------------


class TestContextBypass:
    def test_flags_direct_import_of_region_builders(self, tmp_path):
        report = lint_source(
            tmp_path,
            "from repro.core.uncertainty.snapshot import snapshot_region\n",
            rule="context-bypass",
        )
        assert rule_names(report) == ["context-bypass"]

    def test_flags_bare_builder_call(self, tmp_path):
        report = lint_source(
            tmp_path,
            "region = interval_uncertainty(context, deployment, 1.0)\n",
            rule="context-bypass",
        )
        assert rule_names(report) == ["context-bypass"]

    def test_context_method_calls_are_fine(self, tmp_path):
        # The approved path: attribute calls through an EvaluationContext.
        report = lint_source(
            tmp_path,
            "region = ctx.snapshot_region(context)\n"
            "uncertainty = engine.ctx.interval_uncertainty(context)\n",
            rule="context-bypass",
        )
        assert report.ok

    def test_package_init_reexports_are_exempt(self, tmp_path):
        report = lint_source(
            tmp_path,
            "from .snapshot import snapshot_region\n",
            filename="__init__.py",
            rule="context-bypass",
        )
        assert report.ok

    def test_uncertainty_package_itself_is_exempt(self, tmp_path):
        report = lint_source(
            tmp_path,
            "from .snapshot import snapshot_region\n"
            "region = snapshot_region(context, deployment, 1.0)\n",
            filename="core/uncertainty/interval.py",
            rule="context-bypass",
        )
        assert report.ok

    def test_flags_direct_shard_mutation(self, tmp_path):
        report = lint_source(
            tmp_path,
            "shard.ingest_batch(records)\n"
            "shard.ingest_open_episode(record)\n"
            "shard.extend_open_episode('o1', 5.0)\n"
            "shard.close_open_episode('o1')\n",
            rule="context-bypass",
        )
        assert rule_names(report) == ["context-bypass"] * 4

    def test_coordinator_and_engine_may_mutate_shards(self, tmp_path):
        for filename in ("core/coordinator.py", "core/engine.py", "core/shard.py"):
            report = lint_source(
                tmp_path,
                "count = shard.ingest_batch(records)\n",
                filename=filename,
                rule="context-bypass",
            )
            assert report.ok, filename

    def test_shard_mutation_suppressible_with_pragma(self, tmp_path):
        report = lint_source(
            tmp_path,
            "# repro: allow(context-bypass): exercising the seam directly\n"
            "shard.ingest_batch(records)\n",
            rule="context-bypass",
        )
        assert report.ok

    def test_engine_no_longer_allowed_to_patch_artree(self, tmp_path):
        # The AR-tree mutator seam moved from the engine into ShardState.
        report = lint_source(
            tmp_path,
            "tree.append_record(record, None)\n",
            filename="core/engine.py",
            rule="context-bypass",
        )
        assert rule_names(report) == ["context-bypass"]

    def test_flags_direct_storage_backend_writes(self, tmp_path):
        report = lint_source(
            tmp_path,
            "backend.append_row(record)\n"
            "backend.rewrite_tail_row(record, open=True)\n",
            rule="context-bypass",
        )
        assert rule_names(report) == ["context-bypass"] * 2
        assert all(
            "storage backend" in d.message for d in report.diagnostics
        )

    def test_storage_and_table_modules_may_write_backends(self, tmp_path):
        for filename in (
            "repro/storage/sqlite.py",
            "repro/storage/memory.py",
            "tracking/table.py",
        ):
            report = lint_source(
                tmp_path,
                "stored = backend.append_row(record, open=True)\n"
                "backend.rewrite_tail_row(record, open=False)\n",
                filename=filename,
                rule="context-bypass",
            )
            assert report.ok, filename

    def test_storage_write_suppressible_with_pragma(self, tmp_path):
        report = lint_source(
            tmp_path,
            "# repro: allow(context-bypass): the import seam is the writer\n"
            "backend.append_row(record)\n",
            rule="context-bypass",
        )
        assert report.ok


# ----------------------------------------------------------------------
# mutable-default
# ----------------------------------------------------------------------


class TestMutableDefault:
    def test_flags_literal_and_constructor_defaults(self, tmp_path):
        report = lint_source(
            tmp_path,
            "def f(items=[]):\n    return items\n"
            "def g(mapping=dict()):\n    return mapping\n",
            rule="mutable-default",
        )
        assert rule_names(report) == ["mutable-default", "mutable-default"]

    def test_flags_keyword_only_and_lambda_defaults(self, tmp_path):
        report = lint_source(
            tmp_path,
            "def f(*, seen=set()):\n    return seen\n"
            "g = lambda acc={}: acc\n",
            rule="mutable-default",
        )
        assert rule_names(report) == ["mutable-default", "mutable-default"]

    def test_accepts_none_and_immutable_defaults(self, tmp_path):
        report = lint_source(
            tmp_path,
            "def f(items=None, pair=(1, 2), name='x'):\n    return items\n",
            rule="mutable-default",
        )
        assert report.ok


# ----------------------------------------------------------------------
# wall-clock
# ----------------------------------------------------------------------


class TestWallClock:
    def test_flags_clock_reads_in_core(self, tmp_path):
        report = lint_source(
            tmp_path,
            "import time\nstarted = time.perf_counter()\n",
            filename="repro/core/hot.py",
            rule="wall-clock",
        )
        assert rule_names(report) == ["wall-clock"]

    def test_flags_datetime_now_in_geometry(self, tmp_path):
        report = lint_source(
            tmp_path,
            "import datetime\nstamp = datetime.datetime.now()\n",
            filename="repro/geometry/area.py",
            rule="wall-clock",
        )
        assert rule_names(report) == ["wall-clock"]

    def test_other_packages_may_read_clocks(self, tmp_path):
        report = lint_source(
            tmp_path,
            "import time\nstarted = time.perf_counter()\n",
            filename="repro/bench/harness.py",
            rule="wall-clock",
        )
        assert report.ok


# ----------------------------------------------------------------------
# serve-seam
# ----------------------------------------------------------------------


SERVE_SEAM_FIXTURE = (
    Path(__file__).resolve().parent / "fixtures" / "serve_seam_violation.py"
)


class TestServeSeam:
    def lint_fixture(self, tmp_path, filename="repro/serve/handlers.py"):
        return lint_source(
            tmp_path,
            SERVE_SEAM_FIXTURE.read_text(),
            filename=filename,
            rule="serve-seam",
        )

    def test_flags_seeded_lines_exactly(self, tmp_path):
        report = self.lint_fixture(tmp_path)
        lines = sorted(d.line for d in report.diagnostics)
        assert lines == [38, 42, 46, 50, 54]
        assert all(d.rule == "serve-seam" for d in report.diagnostics)

    def test_actor_receivers_stay_clean(self, tmp_path):
        # Lines 30/34 call query()/ingest() *through the actor* — the
        # sanctioned seam — and must not be flagged.
        report = self.lint_fixture(tmp_path)
        assert not {30, 34}.intersection(d.line for d in report.diagnostics)

    def test_messages_distinguish_the_three_categories(self, tmp_path):
        report = self.lint_fixture(tmp_path)
        by_line = {d.line: d.message for d in report.diagnostics}
        assert "queries the engine" in by_line[38]
        assert "mutates the engine" in by_line[42]
        assert "internals" in by_line[50]
        assert "internals" in by_line[54]

    def test_rule_is_scoped_to_repro_serve(self, tmp_path):
        report = self.lint_fixture(tmp_path, filename="repro/core/module.py")
        assert report.ok

    def test_actor_client_and_smoke_modules_are_exempt(self, tmp_path):
        for exempt in ("actor.py", "client.py", "smoke.py"):
            report = self.lint_fixture(
                tmp_path, filename=f"repro/serve/{exempt}"
            )
            assert report.ok, exempt

    def test_shipped_serve_package_is_clean(self):
        registry = rules_by_name()
        report = lint_paths(
            [REPO_ROOT / "src" / "repro" / "serve"],
            [registry["serve-seam"]],
        )
        assert report.ok, "\n".join(d.format() for d in report.diagnostics)


# ----------------------------------------------------------------------
# Suppressions
# ----------------------------------------------------------------------


class TestSuppressions:
    def test_same_line_pragma(self, tmp_path):
        report = lint_source(
            tmp_path,
            "ok = x == 0.0  # repro: allow(float-equality): sentinel is exact\n",
        )
        assert report.ok
        assert report.suppressed == 1

    def test_preceding_line_pragma(self, tmp_path):
        report = lint_source(
            tmp_path,
            "# repro: allow(float-equality): sentinel is exact\nok = x == 0.0\n",
        )
        assert report.ok
        assert report.suppressed == 1

    def test_file_level_pragma_covers_every_occurrence(self, tmp_path):
        report = lint_source(
            tmp_path,
            "# repro: allow-file(float-equality): exactness fixture\n"
            "a = x == 0.0\n"
            "b = y == 1.0\n",
        )
        assert report.ok
        assert report.suppressed == 2

    def test_pragma_names_multiple_rules(self, tmp_path):
        report = lint_source(
            tmp_path,
            "import random\n"
            "v = random.random() == 0.5  "
            "# repro: allow(float-equality, unseeded-rng): test stub\n",
        )
        assert report.ok
        assert report.suppressed == 2

    def test_pragma_for_another_rule_does_not_cover(self, tmp_path):
        report = lint_source(
            tmp_path,
            "ok = x == 0.0  # repro: allow(unseeded-rng): wrong rule\n",
        )
        assert rule_names(report) == ["float-equality"]

    def test_two_pragmas_in_one_comment_both_apply(self, tmp_path):
        # Regression: the parser used to stop at the first pragma of a
        # line, silently dropping every later one.
        report = lint_source(
            tmp_path,
            "import random\n"
            "v = random.random() == 0.5  "
            "# repro: allow(float-equality): exact  "
            "# repro: allow(unseeded-rng): stub\n",
        )
        assert report.ok
        assert report.suppressed == 2


class TestPragmaParser:
    def test_comma_separated_rules_share_the_justification(self):
        parsed = parse_suppressions(
            "x = 1  # repro: allow(rule-a, rule-b): one reason for both\n"
        )
        assert parsed.by_line[1] == frozenset({"rule-a", "rule-b"})
        assert parsed.justifications[(1, "rule-a")] == "one reason for both"
        assert parsed.justifications[(1, "rule-b")] == "one reason for both"

    def test_multiple_pragmas_keep_their_own_justifications(self):
        parsed = parse_suppressions(
            "x = 1  # repro: allow(rule-a): reason a  "
            "# repro: allow(rule-b): reason b\n"
        )
        assert parsed.by_line[1] == frozenset({"rule-a", "rule-b"})
        assert parsed.justifications[(1, "rule-a")] == "reason a"
        assert parsed.justifications[(1, "rule-b")] == "reason b"

    def test_missing_justification_is_recorded_empty(self):
        parsed = parse_suppressions("x = 1  # repro: allow(rule-a)\n")
        assert parsed.by_line[1] == frozenset({"rule-a"})
        assert parsed.justifications[(1, "rule-a")] == ""

    def test_file_wide_justifications(self):
        parsed = parse_suppressions(
            "# repro: allow-file(rule-a): whole-file fixture\n"
        )
        assert parsed.file_wide == frozenset({"rule-a"})
        assert (
            parsed.justifications[(FILE_WIDE_LINE, "rule-a")]
            == "whole-file fixture"
        )

    def test_justification_for_diagnostic(self):
        parsed = parse_suppressions(
            "# repro: allow(rule-a): documented reason\n" "x = 1\n"
        )
        covered = Diagnostic(
            path="f.py", line=2, column=1, rule="rule-a", message="m"
        )
        uncovered = Diagnostic(
            path="f.py", line=2, column=1, rule="rule-b", message="m"
        )
        assert parsed.covers(covered)
        assert parsed.justification_for(covered) == "documented reason"
        assert not parsed.covers(uncovered)
        assert parsed.justification_for(uncovered) is None

    def test_empty_rule_list_is_ignored(self):
        parsed = parse_suppressions("x = 1  # repro: allow(): nothing\n")
        assert parsed.by_line == {}


# ----------------------------------------------------------------------
# Framework and CLI
# ----------------------------------------------------------------------


class TestFramework:
    def test_every_rule_documents_its_paper_invariant(self):
        for rule in ALL_RULES:
            assert rule.name
            assert rule.description
            assert rule.paper_ref

    def test_syntax_errors_are_reported_and_fail(self, tmp_path):
        report = lint_source(tmp_path, "def broken(:\n")
        assert not report.ok
        assert report.errors and "module.py" in report.errors[0]

    def test_directories_are_walked_recursively(self, tmp_path):
        (tmp_path / "pkg").mkdir()
        (tmp_path / "pkg" / "deep.py").write_text("flag = x == 0.0\n")
        report = lint_paths([tmp_path])
        assert rule_names(report) == ["float-equality"]

    def test_cli_exit_codes(self, tmp_path, capsys):
        clean = tmp_path / "clean.py"
        clean.write_text("value = 1\n")
        dirty = tmp_path / "dirty.py"
        dirty.write_text("flag = x == 0.0\n")

        assert main([str(clean)]) == 0
        assert main([str(dirty)]) == 1
        out = capsys.readouterr().out
        assert "[float-equality]" in out
        assert main([str(tmp_path / "missing.py")]) == 2
        assert main(["--rule", "no-such-rule", str(clean)]) == 2

    def test_cli_rule_filter_and_listing(self, tmp_path, capsys):
        dirty = tmp_path / "dirty.py"
        dirty.write_text("flag = x == 0.0\n")
        assert main(["--rule", "unseeded-rng", str(dirty)]) == 0
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule in ALL_RULES:
            assert rule.name in out

    def test_repo_sources_and_tests_are_clean(self):
        # The acceptance bar of the tooling PR: the shipped code passes its
        # own linter (pre-existing violations fixed or suppressed with a
        # justification).
        report = lint_paths([REPO_ROOT / "src", REPO_ROOT / "tests"])
        assert report.ok, "\n".join(d.format() for d in report.diagnostics)
