"""The v2 driver: caching, baselines, output formats and the CLI."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

import repro.analysis.driver as driver_module
from repro.analysis import main
from repro.analysis.checkers import ALL_CHECKERS
from repro.analysis.driver import (
    AnalysisCache,
    analyze,
    load_baseline,
    render_json,
    render_sarif,
    subtract_baseline,
    write_baseline_file,
)
from repro.analysis.rules import ALL_RULES

VIOLATING = (
    "class ARTree:\n"
    "    def append_record(self, record: object) -> None:\n"
    "        pass\n"
    "\n"
    "class Store:\n"
    "    def __init__(self) -> None:\n"
    "        self.artree = ARTree()\n"
    "\n"
    "    def bad(self, record: object) -> None:\n"
    "        self.artree.append_record(record)\n"
)

CLEAN = "def double(x: float) -> float:\n    return x * 2.0\n"


def write_tree(tmp_path: Path, files: dict[str, str]) -> Path:
    for relative, source in files.items():
        target = tmp_path / relative
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(source)
    return tmp_path


class TestAnalyze:
    def test_rules_and_checkers_share_one_run(self, tmp_path):
        root = write_tree(
            tmp_path, {"proj/store.py": VIOLATING, "proj/util.py": CLEAN}
        )
        report = analyze(
            [root], rules=ALL_RULES, checkers=list(ALL_CHECKERS)
        )
        rules_hit = {d.rule for d in report.diagnostics}
        assert "cache-coherence" in rules_hit
        assert "shard-safety" in rules_hit
        assert report.files_checked == 2

    def test_checker_findings_respect_pragmas(self, tmp_path):
        suppressed = VIOLATING.replace(
            "        self.artree.append_record(record)\n",
            "        # repro: allow(cache-coherence, shard-safety): fixture\n"
            "        self.artree.append_record(record)\n",
        )
        root = write_tree(tmp_path, {"proj/store.py": suppressed})
        report = analyze([root], checkers=list(ALL_CHECKERS))
        assert report.diagnostics == []
        assert report.suppressed == 2


class TestCache:
    def test_warm_run_parses_nothing(self, tmp_path, monkeypatch):
        root = write_tree(tmp_path, {"proj/store.py": VIOLATING})
        cache_path = tmp_path / "cache.json"

        calls: list[int] = []
        real_parse = driver_module.parse_files

        def counting_parse(files, **kwargs):
            calls.append(len(files))
            return real_parse(files, **kwargs)

        monkeypatch.setattr(driver_module, "parse_files", counting_parse)

        cold_cache = AnalysisCache(cache_path)
        cold = analyze(
            [root],
            rules=ALL_RULES,
            checkers=list(ALL_CHECKERS),
            cache=cold_cache,
        )
        cold_cache.save()
        assert calls == [1]

        warm_cache = AnalysisCache(cache_path)
        warm = analyze(
            [root],
            rules=ALL_RULES,
            checkers=list(ALL_CHECKERS),
            cache=warm_cache,
        )
        assert calls == [1, 0]
        assert [d.format() for d in warm.diagnostics] == [
            d.format() for d in cold.diagnostics
        ]
        assert warm.suppressed == cold.suppressed

    def test_edit_invalidates_only_that_file(self, tmp_path):
        root = write_tree(
            tmp_path, {"proj/store.py": VIOLATING, "proj/util.py": CLEAN}
        )
        cache_path = tmp_path / "cache.json"
        cache = AnalysisCache(cache_path)
        first = analyze(
            [root], rules=ALL_RULES, checkers=list(ALL_CHECKERS), cache=cache
        )
        cache.save()
        (root / "proj/util.py").write_text(CLEAN + "\nY = 1.0\n")
        cache = AnalysisCache(cache_path)
        second = analyze(
            [root], rules=ALL_RULES, checkers=list(ALL_CHECKERS), cache=cache
        )
        assert {d.rule for d in second.diagnostics} == {
            d.rule for d in first.diagnostics
        }

    def test_corrupt_cache_is_discarded(self, tmp_path):
        cache_path = tmp_path / "cache.json"
        cache_path.write_text("{not json")
        cache = AnalysisCache(cache_path)
        root = write_tree(tmp_path, {"proj/util.py": CLEAN})
        report = analyze([root], rules=ALL_RULES, cache=cache)
        assert report.ok


class TestBaseline:
    def test_round_trip_subtracts_known_findings(self, tmp_path):
        root = write_tree(tmp_path, {"proj/store.py": VIOLATING})
        report = analyze([root], checkers=list(ALL_CHECKERS))
        assert report.diagnostics
        baseline_path = tmp_path / "baseline.json"
        write_baseline_file(baseline_path, report.diagnostics)
        baseline = load_baseline(baseline_path)
        kept, dropped = subtract_baseline(report.diagnostics, baseline)
        assert kept == []
        assert dropped == len(report.diagnostics)

    def test_new_findings_survive_the_baseline(self, tmp_path):
        root = write_tree(tmp_path, {"proj/store.py": VIOLATING})
        report = analyze([root], checkers=list(ALL_CHECKERS))
        baseline_path = tmp_path / "baseline.json"
        write_baseline_file(baseline_path, report.diagnostics[:1])
        baseline = load_baseline(baseline_path)
        kept, dropped = subtract_baseline(report.diagnostics, baseline)
        assert dropped == 1
        assert len(kept) == len(report.diagnostics) - 1


class TestFormats:
    def test_json_document_round_trips(self, tmp_path):
        root = write_tree(tmp_path, {"proj/store.py": VIOLATING})
        report = analyze([root], checkers=list(ALL_CHECKERS))
        payload = json.loads(render_json(report))
        assert payload["version"] == 1
        assert payload["summary"]["findings"] == len(report.diagnostics)
        assert payload["summary"]["ok"] is False
        first = payload["findings"][0]
        assert set(first) == {"path", "line", "column", "rule", "message"}

    def test_sarif_document_shape(self, tmp_path):
        root = write_tree(tmp_path, {"proj/store.py": VIOLATING})
        report = analyze([root], checkers=list(ALL_CHECKERS))
        payload = json.loads(
            render_sarif(report, rules=ALL_RULES, checkers=ALL_CHECKERS)
        )
        assert payload["version"] == "2.1.0"
        run = payload["runs"][0]
        assert run["tool"]["driver"]["name"] == "repro-analysis"
        rule_ids = {meta["id"] for meta in run["tool"]["driver"]["rules"]}
        assert {"shard-safety", "cache-coherence", "determinism"} <= rule_ids
        result = run["results"][0]
        assert result["ruleId"] in rule_ids
        location = result["locations"][0]["physicalLocation"]
        assert location["region"]["startLine"] >= 1


class TestCli:
    def run(self, argv, capsys):
        code = main(argv)
        captured = capsys.readouterr()
        return code, captured.out, captured.err

    def test_check_all_flags_violations(self, tmp_path, capsys):
        root = write_tree(tmp_path, {"proj/store.py": VIOLATING})
        code, out, _err = self.run(
            ["--check-all", "--no-cache", str(root)], capsys
        )
        assert code == 1
        assert "[cache-coherence]" in out

    def test_json_format_round_trip(self, tmp_path, capsys):
        root = write_tree(tmp_path, {"proj/store.py": VIOLATING})
        code, out, _err = self.run(
            ["--check-all", "--no-cache", "--format", "json", str(root)],
            capsys,
        )
        assert code == 1
        payload = json.loads(out)
        assert payload["summary"]["findings"] > 0

    def test_baseline_gate_passes_on_known_findings(self, tmp_path, capsys):
        root = write_tree(tmp_path, {"proj/store.py": VIOLATING})
        baseline = tmp_path / "baseline.json"
        code, _out, err = self.run(
            [
                "--check-all",
                "--no-cache",
                "--write-baseline",
                str(baseline),
                str(root),
            ],
            capsys,
        )
        assert code == 0
        assert "wrote" in err
        code, _out, _err = self.run(
            [
                "--check-all",
                "--no-cache",
                "--baseline",
                str(baseline),
                str(root),
            ],
            capsys,
        )
        assert code == 0

    def test_cached_run_stays_fast_and_identical(self, tmp_path, capsys):
        root = write_tree(tmp_path, {"proj/store.py": VIOLATING})
        cache = tmp_path / "cache.json"
        argv = [
            "--check-all",
            "--cache-path",
            str(cache),
            "--format",
            "json",
            str(root),
        ]
        code_cold, out_cold, _ = self.run(argv, capsys)
        code_warm, out_warm, _ = self.run(argv, capsys)
        assert (code_cold, out_cold) == (code_warm, out_warm)
        assert cache.exists()

    def test_jobs_and_profile(self, tmp_path, capsys):
        root = write_tree(tmp_path, {"proj/util.py": CLEAN})
        code, _out, err = self.run(
            [
                "--check-all",
                "--no-cache",
                "--jobs",
                "2",
                "--profile",
                str(root),
            ],
            capsys,
        )
        assert code == 0
        assert "analysis.model" in err
        assert "analysis.checker.shard-safety" in err

    def test_single_checker_selection(self, tmp_path, capsys):
        root = write_tree(tmp_path, {"proj/store.py": VIOLATING})
        code, out, _err = self.run(
            ["--checker", "determinism", "--no-cache", str(root)], capsys
        )
        # Only the determinism checker ran; the cache-coherence
        # violation is invisible to it.  Per-file rules still apply.
        assert "[cache-coherence]" not in out
        assert code in (0, 1)

    def test_unknown_checker_is_usage_error(self, tmp_path, capsys):
        code, _out, err = self.run(["--checker", "nope", str(tmp_path)], capsys)
        assert code == 2
        assert "unknown checker" in err

    def test_list_checkers(self, capsys):
        code, out, _err = self.run(["--list-checkers"], capsys)
        assert code == 0
        assert "shard-safety" in out
        assert "determinism" in out

    def test_report_tests_includes_test_paths(self, tmp_path, capsys):
        # A determinism violation under tests/ (invisible to the
        # per-file rules, so the exit code isolates the checker).
        root = write_tree(
            tmp_path,
            {
                "tests/test_store.py": (
                    "def total(vals: set) -> float:\n"
                    "    return sum(v * 2.0 for v in vals)\n"
                )
            },
        )
        code, out, _err = self.run(
            ["--check-all", "--no-cache", str(root)], capsys
        )
        assert code == 0 and "[determinism]" not in out
        code, out, _err = self.run(
            ["--check-all", "--no-cache", "--report-tests", str(root)],
            capsys,
        )
        assert code == 1
        assert "[determinism]" in out
