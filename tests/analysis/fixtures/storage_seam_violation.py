"""Seeded storage-seam violations (fixture — never imported by tests).

Models the PR 8 backend shapes with local stand-ins so the checkers'
name-based guards fire without importing repro.storage.
"""

from __future__ import annotations


class SQLiteBackend:
    def __init__(self) -> None:
        self.generation = 0

    def append_row(self, record: object, *, open: bool = False) -> bool:
        self.generation += 1
        return True

    def rewrite_tail_row(self, record: object, *, open: bool) -> None:
        self.generation += 1


class LiveTrackingTable:
    def __init__(self, backend: SQLiteBackend) -> None:
        self.backend = backend

    def append(self, record: object) -> bool:
        # The write-through path: guarded-class methods are the seam.
        return self.backend.append_row(record)


def sneak_append(backend: SQLiteBackend, record: object) -> None:
    # VIOLATION(shard-safety): direct backend write outside the seam.
    backend.append_row(record)


def sneak_rewrite(backend: SQLiteBackend, record: object) -> None:
    # VIOLATION(shard-safety): direct tail rewrite outside the seam.
    backend.rewrite_tail_row(record, open=False)


def reset_counter(backend: SQLiteBackend) -> None:
    # VIOLATION(shard-safety): external attribute write to the backend.
    backend.generation = 0
