"""Seeded serve-seam violations (fixture — never imported by tests).

Lint-time stand-ins for the serving layer.  The ``serve-seam`` rule is
path-scoped to ``repro/serve/``, so the tests copy this file under such
a directory before linting; the directory itself is excluded from tree
walks, keeping the repo-wide clean gates away from the seeded lines.
"""

from __future__ import annotations


class EngineActor:
    def __init__(self, engine: object) -> None:
        self.engine = engine

    async def query(self, spec: object) -> object:
        return spec

    async def ingest(self, batch: object) -> int:
        return 0


class App:
    def __init__(self, engine: object, actor: EngineActor) -> None:
        self.engine = engine
        self.actor = actor

    async def good_query(self, spec: object) -> object:
        # The sanctioned seam: everything routes through the actor.
        return await self.actor.query(spec)

    async def good_ingest(self, batch: object) -> int:
        # Mutator *names* are fine when the receiver is the actor.
        return await self.actor.ingest(batch)

    async def bad_query(self, t: float, k: int) -> object:
        # VIOLATION(serve-seam): direct engine query from a handler.
        return self.engine.snapshot_topk(t, k)

    async def bad_ingest(self, records: list) -> int:
        # VIOLATION(serve-seam): direct engine mutation from a handler.
        return self.engine.ingest(records)

    async def bad_checkpoint(self) -> int:
        # VIOLATION(serve-seam): engine mutator off the actor thread.
        return self.engine.checkpoint()

    async def bad_internals(self, shard: object, records: list) -> None:
        # VIOLATION(serve-seam): reaching past the facade into the shard.
        shard.ingest_batch(records)

    async def bad_storage(self, backend: object, row: object) -> None:
        # VIOLATION(serve-seam): raw storage write from handler code.
        backend.append_row(row)
