"""Seeded determinism violations (fixture — never imported by tests)."""

from __future__ import annotations


def bad_loop_total(values: set) -> float:
    total = 0.0
    # VIOLATION(determinism): set iteration feeding float accumulation.
    for value in values:
        total = total + value
    return total


def bad_augmented(weights: frozenset) -> float:
    total = 0.0
    for weight in weights:
        total += weight * 0.5
    return total


def bad_sum(weights: frozenset) -> float:
    # VIOLATION(determinism): sum() over an unordered generator.
    return sum(weight * 2.0 for weight in weights)


def bad_dict_from_set(keys: set) -> float:
    flows = {key: 0.0 for key in keys}
    total = 0.0
    for _, value in flows.items():
        total += value
    return total


def good_sorted_total(values: set) -> float:
    total = 0.0
    for value in sorted(values):
        total = total + value
    return total


def good_counter(values: set) -> int:
    count = 0
    for _value in values:
        count += 1
    return count


def good_insertion_dict(records: list) -> float:
    flows = {record: 1.0 for record in records}
    total = 0.0
    for value in flows.values():
        total += value
    return total
