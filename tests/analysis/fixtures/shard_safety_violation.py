"""Seeded shard-safety violations (fixture — never imported by tests).

Models the coordinator shapes with local stand-ins so the checker's
name-based guards fire without importing repro.core.
"""

from __future__ import annotations


class ShardState:
    def __init__(self) -> None:
        self.generation = 0
        self.artree = object()

    def ingest_batch(self, records: list) -> None:
        self.generation += 1


class ForkedProcessExecutor:
    def run(self, calls: list) -> list:
        return [call() for call in calls]


def rebuild_index(shard: ShardState) -> None:
    # VIOLATION(shard-safety): external attribute write to ShardState.
    shard.artree = object()


def sneak_ingest(shard: ShardState, records: list) -> None:
    # VIOLATION(shard-safety): guarded mutator call outside the seam.
    shard.ingest_batch(records)


def fan_out(executor: ForkedProcessExecutor, shard: ShardState) -> None:
    def worker() -> None:
        # VIOLATION(shard-safety): fork-divergence — the submitted
        # closure mutates captured coordinator-owned state.
        shard.ingest_batch([])

    executor.run([worker])
