"""Seeded cache-coherence violations (fixture — never imported by tests)."""

from __future__ import annotations


class ARTree:
    def append_record(self, record: object) -> None:
        pass

    def patch_tail(self, record: object) -> None:
        pass


class EvaluationContext:
    def __init__(self) -> None:
        self.data_generation = 0

    def note_append(self, object_id: object) -> None:
        self.data_generation += 1


class Store:
    def __init__(self) -> None:
        self.artree = ARTree()
        self.ctx = EvaluationContext()

    def good_append(self, record: object) -> None:
        self.artree.append_record(record)
        self.ctx.note_append(record)

    def good_via_helper(self, record: object) -> None:
        self.artree.append_record(record)
        self._bump(record)

    def _bump(self, record: object) -> None:
        self.ctx.note_append(record)

    def bad_append(self, record: object) -> None:
        # VIOLATION(cache-coherence): mutates tracked state, never
        # bumps the generation counter.
        self.artree.append_record(record)

    def bad_patch(self, record: object) -> None:
        # VIOLATION(cache-coherence): same, for tail patching.
        self.artree.patch_tail(record)
