"""The markdown intra-repo link checker (repro.analysis.doclinks)."""

from pathlib import Path

from repro.analysis import doclinks

REPO_ROOT = Path(__file__).resolve().parents[2]


def _write(path: Path, text: str) -> Path:
    path.write_text(text, encoding="utf-8")
    return path


class TestCheckFile:
    def test_resolving_link_is_clean(self, tmp_path: Path) -> None:
        _write(tmp_path / "target.md", "# target\n")
        doc = _write(tmp_path / "doc.md", "see [target](target.md)\n")
        assert doclinks.check_file(doc) == []

    def test_broken_link_is_reported_with_line(self, tmp_path: Path) -> None:
        doc = _write(tmp_path / "doc.md", "ok\nsee [gone](missing.md)\n")
        findings = doclinks.check_file(doc)
        assert len(findings) == 1
        assert findings[0].line == 2
        assert findings[0].target == "missing.md"
        assert "missing.md" in str(findings[0])

    def test_anchor_suffix_is_stripped(self, tmp_path: Path) -> None:
        _write(tmp_path / "target.md", "# target\n")
        doc = _write(tmp_path / "doc.md", "[t](target.md#some-section)\n")
        assert doclinks.check_file(doc) == []

    def test_subdirectory_resolution(self, tmp_path: Path) -> None:
        (tmp_path / "docs").mkdir()
        _write(tmp_path / "README.md", "# readme\n")
        doc = _write(tmp_path / "docs" / "doc.md", "[up](../README.md)\n")
        assert doclinks.check_file(doc) == []

    def test_external_and_pure_anchor_links_skipped(
        self, tmp_path: Path
    ) -> None:
        doc = _write(
            tmp_path / "doc.md",
            "[a](https://example.com/x.md) [b](#section) "
            "[c](mailto:x@y.z) [d](/absolute/path.md)\n",
        )
        assert doclinks.check_file(doc) == []

    def test_fenced_code_blocks_skipped(self, tmp_path: Path) -> None:
        doc = _write(
            tmp_path / "doc.md",
            "```\n[example](not-a-real-file.md)\n```\n",
        )
        assert doclinks.check_file(doc) == []

    def test_inline_code_spans_skipped(self, tmp_path: Path) -> None:
        # The ``Φ_[t_s, t_e](p)`` idiom in generated docs must not parse
        # as a link with target ``p``.
        doc = _write(
            tmp_path / "doc.md",
            "- `flows(...)` — ``F_[t_s, t_e](p)`` for every POI\n",
        )
        assert doclinks.check_file(doc) == []


class TestMain:
    def test_clean_tree_exits_zero(self, tmp_path: Path, capsys) -> None:
        _write(tmp_path / "a.md", "# a\n")
        _write(tmp_path / "b.md", "[a](a.md)\n")
        assert doclinks.main([str(tmp_path)]) == 0
        assert "0 broken link(s)" in capsys.readouterr().out

    def test_broken_tree_exits_one(self, tmp_path: Path, capsys) -> None:
        _write(tmp_path / "b.md", "[a](gone.md)\n")
        assert doclinks.main([str(tmp_path)]) == 1
        assert "gone.md" in capsys.readouterr().out

    def test_missing_root_exits_two(self, tmp_path: Path) -> None:
        assert doclinks.main([str(tmp_path / "nope")]) == 2

    def test_repo_docs_are_clean(self) -> None:
        assert doclinks.main([str(REPO_ROOT)]) == 0
