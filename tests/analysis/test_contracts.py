"""Runtime contract mode: every check fires on a violation and stays
silent on valid engine behavior.

Two layers: unit tests drive each check function with invalid values (the
negative tests proving the contract can fire at all), and property tests
run real queries under forced contract mode — no reachable query may trip
an invariant.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import (
    ContractViolation,
    check_area,
    check_cached_value,
    check_flow,
    check_presence,
    check_region_fingerprint,
    check_upper_bound,
    contracts_enabled,
    set_contracts,
)
from repro.core.presence import PresenceEstimator
from repro.core.states import snapshot_contexts


@pytest.fixture()
def contracts_on():
    set_contracts(True)
    try:
        yield
    finally:
        set_contracts(None)


# ----------------------------------------------------------------------
# Enablement
# ----------------------------------------------------------------------


class TestEnablement:
    def test_env_flag(self, monkeypatch):
        set_contracts(None)
        monkeypatch.delenv("REPRO_CONTRACTS", raising=False)
        assert not contracts_enabled()
        monkeypatch.setenv("REPRO_CONTRACTS", "1")
        assert contracts_enabled()
        monkeypatch.setenv("REPRO_CONTRACTS", "0")
        assert not contracts_enabled()

    def test_override_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_CONTRACTS", "1")
        set_contracts(False)
        try:
            assert not contracts_enabled()
        finally:
            set_contracts(None)

    def test_disabled_checks_pass_anything_through(self):
        set_contracts(False)
        try:
            assert check_presence(7.5) == 7.5
            assert check_flow(-3.0, 0) == -3.0
            assert check_area(-1.0) == -1.0
            assert check_upper_bound(1.0, 5.0) == 5.0
            assert check_cached_value(1.0, 2.0) == 1.0
            check_region_fingerprint((0.0, 0.0, 1.0, 1.0), None)
        finally:
            set_contracts(None)


# ----------------------------------------------------------------------
# Negative tests: each contract fires
# ----------------------------------------------------------------------


class TestViolations:
    def test_presence_above_one(self, contracts_on):
        with pytest.raises(ContractViolation, match="Definition 1"):
            check_presence(1.25)

    def test_presence_negative(self, contracts_on):
        with pytest.raises(ContractViolation, match="Definition 1"):
            check_presence(-0.5, where="presence in POI 'p1'")

    def test_flow_exceeds_candidates(self, contracts_on):
        with pytest.raises(ContractViolation, match="candidate"):
            check_flow(3.5, 3, poi_id="p1")

    def test_flow_negative(self, contracts_on):
        with pytest.raises(ContractViolation, match="negative"):
            check_flow(-0.1, 5)

    def test_area_negative(self, contracts_on):
        with pytest.raises(ContractViolation, match="negative"):
            check_area(-4.0, what="UR area")

    def test_refined_flow_exceeds_upper_bound(self, contracts_on):
        with pytest.raises(ContractViolation, match="upper bound"):
            check_upper_bound(2.0, 2.5, poi_id="p1")

    def test_cached_value_disagrees(self, contracts_on):
        with pytest.raises(ContractViolation, match="fresh recomputation"):
            check_cached_value(0.5, 0.75, what="presence", key="k")

    def test_fingerprint_mismatch(self, contracts_on):
        with pytest.raises(ContractViolation, match="MBR"):
            check_region_fingerprint(
                (0.0, 0.0, 1.0, 1.0), (0.0, 0.0, 2.0, 1.0)
            )

    def test_fingerprint_emptiness_mismatch(self, contracts_on):
        with pytest.raises(ContractViolation, match="empty"):
            check_region_fingerprint(None, (0.0, 0.0, 1.0, 1.0))

    def test_violation_is_an_assertion_error(self, contracts_on):
        with pytest.raises(AssertionError):
            check_presence(2.0)


class TestTolerance:
    def test_quadrature_round_off_is_accepted(self, contracts_on):
        assert check_presence(1.0 + 1e-9) == pytest.approx(1.0)
        assert check_presence(-1e-9) == pytest.approx(0.0, abs=1e-8)
        assert check_flow(3.0 + 1e-9, 3) == pytest.approx(3.0)
        assert check_area(-1e-9) == pytest.approx(0.0, abs=1e-8)
        # Sub-quantum drift between a cached region and its rebuild (times
        # are quantized to a microsecond in cache keys) is accepted.
        matching = (0.0, 0.0, 1.0, 1.0 + 1e-7)
        check_region_fingerprint((0.0, 0.0, 1.0, 1.0), matching)


# ----------------------------------------------------------------------
# Engine integration
# ----------------------------------------------------------------------


class TestEngineIntegration:
    def test_broken_estimator_is_caught(self, synthetic_engine, contracts_on):
        """The seam check fires on a presence outside [0, 1]."""

        class _Broken(PresenceEstimator):
            def presence(self, region, poi):
                return 1.5

        ctx = synthetic_engine.ctx.replace(estimator=_Broken(resolution=8))
        context = next(iter(snapshot_contexts(synthetic_engine.artree, 300.0)))
        region = ctx.snapshot_region(context)
        poi = synthetic_engine.pois[0]
        with pytest.raises(ContractViolation, match="Definition 1"):
            ctx.presence(region, poi, ctx.snapshot_fingerprint(context))

    def test_snapshot_queries_never_trip_contracts(
        self, synthetic_engine, contracts_on
    ):
        for method in ("join", "iterative"):
            result = synthetic_engine.snapshot_topk(300.0, k=5, method=method)
            assert len(result) == 5

    def test_interval_queries_never_trip_contracts(
        self, synthetic_engine, contracts_on
    ):
        for method in ("join", "iterative"):
            result = synthetic_engine.interval_topk(
                200.0, 500.0, k=5, method=method
            )
            assert len(result) == 5

    def test_warm_cache_verification_passes(self, synthetic_engine, contracts_on):
        """Repeated queries hit the caches; every hit is verified."""
        for _ in range(2):
            synthetic_engine.snapshot_flows(450.0)
            synthetic_engine.interval_flows(100.0, 400.0)


# ----------------------------------------------------------------------
# Property tests: random queries under forced contract mode
# ----------------------------------------------------------------------


@settings(max_examples=15, deadline=None)
@given(
    t=st.floats(min_value=0.0, max_value=1200.0),
    k=st.integers(min_value=1, max_value=8),
)
def test_random_snapshot_queries_satisfy_contracts(synthetic_engine, t, k):
    set_contracts(True)
    try:
        join = synthetic_engine.snapshot_topk(t, k=k, method="join")
        iterative = synthetic_engine.snapshot_topk(t, k=k, method="iterative")
        # Ties may order differently between strategies; the flow values
        # must agree (see tests/core/test_algorithms.py).
        assert sorted(join.flows) == pytest.approx(sorted(iterative.flows))
        for entry in join:
            assert entry.flow >= 0.0
    finally:
        set_contracts(None)


@settings(max_examples=15, deadline=None)
@given(
    bounds=st.tuples(
        st.floats(min_value=0.0, max_value=1200.0),
        st.floats(min_value=0.0, max_value=1200.0),
    ),
    k=st.integers(min_value=1, max_value=8),
)
def test_random_interval_queries_satisfy_contracts(synthetic_engine, bounds, k):
    t_start, t_end = min(bounds), max(bounds)
    set_contracts(True)
    try:
        result = synthetic_engine.interval_topk(t_start, t_end, k=k)
        flows = synthetic_engine.interval_flows(t_start, t_end)
        candidates = len(synthetic_engine.artree)
        for flow in flows.values():
            assert -1e-6 <= flow <= candidates + 1e-6
        assert len(result) == k
    finally:
        set_contracts(None)
