"""The approximate call graph: resolution, typing, reachability."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.analysis.callgraph import CallGraph
from repro.analysis.program import ProjectModel


def build(tmp_path: Path, files: dict[str, str]) -> CallGraph:
    for relative, source in files.items():
        target = tmp_path / relative
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(source)
    return CallGraph.build(ProjectModel.build([tmp_path]))


TREE = {
    "app/__init__.py": "",
    "app/table.py": (
        "class Table:\n"
        "    def append(self, row: object) -> None:\n"
        "        pass\n"
        "\n"
        "    @classmethod\n"
        "    def build(cls) -> 'Table':\n"
        "        return cls()\n"
    ),
    "app/engine.py": (
        "from .table import Table\n"
        "\n"
        "class Engine:\n"
        "    def __init__(self) -> None:\n"
        "        self.table = Table()\n"
        "\n"
        "    @property\n"
        "    def view(self) -> Table:\n"
        "        return self.table\n"
        "\n"
        "    def _pick(self) -> Table:\n"
        "        return self.table\n"
        "\n"
        "    def ingest(self, row: object) -> None:\n"
        "        self.table.append(row)\n"
        "\n"
        "    def ingest_via_helper(self, row: object) -> None:\n"
        "        chosen = self._pick()\n"
        "        chosen.append(row)\n"
        "\n"
        "def drive(engine: Engine) -> None:\n"
        "    engine.ingest(object())\n"
        "\n"
        "def outer() -> None:\n"
        "    drive(Engine())\n"
        "\n"
        "def from_classmethod() -> None:\n"
        "    t = Table.build()\n"
        "    t.append(object())\n"
    ),
}


@pytest.fixture()
def graph(tmp_path):
    return build(tmp_path, TREE)


def sites_of(graph: CallGraph, caller: str):
    return {
        (site.name, site.receiver_type)
        for site in graph.sites_by_caller.get(caller, [])
    }


class TestTypeInference:
    def test_typed_self_attribute(self, graph):
        assert (
            "append",
            "app.table.Table",
        ) in sites_of(graph, "app.engine.Engine.ingest")

    def test_annotated_helper_return(self, graph):
        # chosen = self._pick() picks up the -> Table annotation.
        assert (
            "append",
            "app.table.Table",
        ) in sites_of(graph, "app.engine.Engine.ingest_via_helper")

    def test_classmethod_constructor_local(self, graph):
        assert (
            "append",
            "app.table.Table",
        ) in sites_of(graph, "app.engine.from_classmethod")

    def test_annotated_parameter(self, graph):
        assert (
            "ingest",
            "app.engine.Engine",
        ) in sites_of(graph, "app.engine.drive")


class TestEdges:
    def test_confident_edges_connect_callers_to_methods(self, graph):
        assert "app.table.Table.append" in graph.callees_of(
            "app.engine.Engine.ingest"
        )
        assert "app.engine.Engine.ingest" in graph.callees_of(
            "app.engine.drive"
        )

    def test_reverse_edges(self, graph):
        assert "app.engine.drive" in graph.callers_of(
            "app.engine.Engine.ingest"
        )

    def test_transitive_callers_stop_at_seam(self, graph):
        reachers = graph.transitive_callers(["app.table.Table.append"])
        assert "app.engine.drive" in reachers
        assert "app.engine.outer" in reachers
        # With the engine methods as the seam, exploration stops there.
        bounded = graph.transitive_callers(
            ["app.table.Table.append"],
            stop=frozenset(
                {
                    "app.engine.Engine.ingest",
                    "app.engine.Engine.ingest_via_helper",
                    "app.engine.from_classmethod",
                }
            ),
        )
        assert "app.engine.drive" not in bounded

    def test_low_confidence_fallback_creates_no_edges(self, tmp_path):
        graph = build(
            tmp_path,
            {
                "m.py": (
                    "class A:\n"
                    "    def hit(self) -> None: pass\n"
                    "\n"
                    "def f(x):\n"
                    "    x.hit()\n"
                )
            },
        )
        (site,) = [s for s in graph.sites if s.name == "hit"]
        assert not site.confident
        assert site.candidates == ("m.A.hit",)
        assert graph.callees_of("m.f") == frozenset()
