"""The whole-program checkers against their seeded-violation fixtures.

Each fixture under ``tests/analysis/fixtures/`` plants violations at
known lines; the tests here pin the exact ``(rule, file, line)`` each
checker must report — and that the surrounding *good* code stays clean.
The directory is excluded from tree walks (``iter_python_files``), so
the repo-wide clean gates never see it; the fixtures are passed as
explicit file paths.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.analysis.callgraph import CallGraph
from repro.analysis.checkers import (
    ALL_CHECKERS,
    CacheCoherenceChecker,
    checkers_by_name,
    DeterminismChecker,
    is_test_path,
    ShardSafetyChecker,
)
from repro.analysis.program import ProjectModel

REPO_ROOT = Path(__file__).resolve().parents[2]
FIXTURES = Path(__file__).resolve().parent / "fixtures"

SHARD_FIXTURE = FIXTURES / "shard_safety_violation.py"
CACHE_FIXTURE = FIXTURES / "cache_coherence_violation.py"
DETERMINISM_FIXTURE = FIXTURES / "determinism_violation.py"
STORAGE_FIXTURE = FIXTURES / "storage_seam_violation.py"


@pytest.fixture(scope="module")
def fixture_graph():
    model = ProjectModel.build(
        [SHARD_FIXTURE, CACHE_FIXTURE, DETERMINISM_FIXTURE, STORAGE_FIXTURE]
    )
    assert not model.errors
    return model, CallGraph.build(model)


def findings(checker, fixture_graph, path: Path) -> set[int]:
    model, graph = fixture_graph
    return {
        d.line
        for d in checker.check(model, graph, report_all=True)
        if d.path == str(path)
    }


class TestShardSafety:
    def test_flags_seeded_lines(self, fixture_graph):
        lines = findings(ShardSafetyChecker(), fixture_graph, SHARD_FIXTURE)
        assert 26 in lines  # external attribute write shard.artree = ...
        assert 31 in lines  # shard.ingest_batch() outside the seam
        assert 38 in lines  # fork-divergence in the submitted closure

    def test_fork_divergence_message(self, fixture_graph):
        model, graph = fixture_graph
        forks = [
            d
            for d in ShardSafetyChecker().check(
                model, graph, report_all=True
            )
            if "fork-divergence" in d.message
        ]
        assert len(forks) == 1
        assert forks[0].path == str(SHARD_FIXTURE)
        assert forks[0].line == 38

    def test_implementation_methods_stay_clean(self, fixture_graph):
        # ShardState.__init__ / ingest_batch mutate self: not flagged.
        lines = findings(ShardSafetyChecker(), fixture_graph, SHARD_FIXTURE)
        assert not lines.intersection({13, 14, 17})


class TestStorageSeam:
    def test_flags_seeded_lines(self, fixture_graph):
        lines = findings(ShardSafetyChecker(), fixture_graph, STORAGE_FIXTURE)
        assert 33 in lines  # backend.append_row() outside the seam
        assert 38 in lines  # backend.rewrite_tail_row() outside the seam
        assert 43 in lines  # external write backend.generation = ...

    def test_write_through_path_stays_clean(self, fixture_graph):
        # The table's own append() (the seam) and the backend's self
        # mutations are the implementation, not violations.
        lines = findings(ShardSafetyChecker(), fixture_graph, STORAGE_FIXTURE)
        assert not lines.intersection({12, 15, 19, 24, 28})


class TestCacheCoherence:
    def test_flags_mutators_without_invalidation(self, fixture_graph):
        lines = findings(
            CacheCoherenceChecker(), fixture_graph, CACHE_FIXTURE
        )
        assert lines == {41, 45}

    def test_direct_and_transitive_invalidation_pass(self, fixture_graph):
        # good_append calls note_append directly; good_via_helper
        # reaches it through _bump: neither is flagged.
        lines = findings(
            CacheCoherenceChecker(), fixture_graph, CACHE_FIXTURE
        )
        assert not lines.intersection({28, 33})


class TestDeterminism:
    def test_flags_unordered_float_accumulation(self, fixture_graph):
        lines = findings(
            DeterminismChecker(), fixture_graph, DETERMINISM_FIXTURE
        )
        assert lines == {9, 16, 23, 29}

    def test_sorted_int_and_insertion_ordered_pass(self, fixture_graph):
        lines = findings(
            DeterminismChecker(), fixture_graph, DETERMINISM_FIXTURE
        )
        # good_sorted_total / good_counter / good_insertion_dict bodies.
        assert not lines.intersection(set(range(33, 60)))


class TestFramework:
    def test_registry_and_paper_refs(self):
        registry = checkers_by_name()
        assert set(registry) == {
            "shard-safety",
            "cache-coherence",
            "determinism",
        }
        for checker in ALL_CHECKERS:
            assert checker.description
            assert checker.paper_ref

    def test_test_paths_are_skipped_by_default(self, fixture_graph):
        model, graph = fixture_graph
        for checker in ALL_CHECKERS:
            assert checker.check(model, graph, report_all=False) == []

    def test_is_test_path(self):
        assert is_test_path("tests/analysis/fixtures/x.py")
        assert is_test_path("benchmarks/bench_engine.py")
        assert not is_test_path("src/repro/core/shard.py")


class TestRepoIsClean:
    def test_src_passes_every_checker(self):
        model = ProjectModel.build([REPO_ROOT / "src"])
        assert not model.errors
        graph = CallGraph.build(model)
        for checker in ALL_CHECKERS:
            diagnostics = checker.check(model, graph)
            assert diagnostics == [], "\n".join(
                d.format() for d in diagnostics
            )
