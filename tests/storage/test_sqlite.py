# repro: allow-file(context-bypass): this file tests the storage backends themselves
"""SQLite backend durability: reopen, schema guards, env routing."""

from __future__ import annotations

import sqlite3

import pytest

from repro.storage import (
    ENV_VAR,
    MemoryBackend,
    SQLiteBackend,
    default_live_backend,
    sqlite_shard_stores,
)
from repro.tracking import TrackingRecord


def rec(record_id, object_id, device_id, t_s, t_e):
    return TrackingRecord(record_id, object_id, device_id, t_s, t_e)


class TestReopen:
    def test_rows_and_generation_survive_reopen(self, tmp_path):
        path = tmp_path / "ott.sqlite"
        store = SQLiteBackend(path)
        store.append_row(rec(0, "o1", "d1", 10.0, 20.0))
        store.append_row(rec(1, "o2", "d1", 12.0, 15.0), open=True)
        store.close()

        reopened = SQLiteBackend(path)
        assert reopened.generation == 2
        assert reopened.snapshot_generation == 0
        rows = list(reopened.iter_rows())
        assert [r.record.record_id for r in rows] == [0, 1]
        assert [r.open for r in rows] == [False, True]
        reopened.close()

    def test_snapshot_generation_survives_reopen(self, tmp_path):
        path = tmp_path / "ott.sqlite"
        store = SQLiteBackend(path)
        store.append_row(rec(0, "o1", "d1", 10.0, 20.0))
        store.compact()
        store.append_row(rec(1, "o2", "d1", 12.0, 15.0))
        store.close()

        reopened = SQLiteBackend(path)
        assert reopened.snapshot_generation == 1
        assert reopened.generation == 2
        assert len(reopened.snapshot_rows()) == 1
        (tail,) = reopened.replay_since(reopened.snapshot_generation)
        assert tail.record.record_id == 1
        reopened.close()

    def test_reopen_keeps_idempotency(self, tmp_path):
        path = tmp_path / "ott.sqlite"
        store = SQLiteBackend(path)
        store.append_row(rec(0, "o1", "d1", 10.0, 20.0))
        store.close()

        reopened = SQLiteBackend(path)
        assert not reopened.append_row(rec(0, "o1", "d1", 10.0, 20.0))
        with pytest.raises(ValueError, match="already stored"):
            reopened.append_row(rec(0, "o9", "d1", 10.0, 20.0))
        reopened.close()

    def test_closed_backend_refuses_use(self, tmp_path):
        store = SQLiteBackend(tmp_path / "ott.sqlite")
        store.close()
        store.close()  # idempotent
        with pytest.raises(RuntimeError, match="closed"):
            store.append_row(rec(0, "o1", "d1", 10.0, 20.0))


class TestSchemaGuards:
    def test_unsupported_schema_version_raises(self, tmp_path):
        path = tmp_path / "ott.sqlite"
        SQLiteBackend(path).close()
        conn = sqlite3.connect(path)
        conn.execute("UPDATE meta SET value = '99' WHERE key = 'schema_version'")
        conn.commit()
        conn.close()
        with pytest.raises(ValueError, match="schema version 99"):
            SQLiteBackend(path)

    def test_rich_id_types_are_rejected(self, tmp_path):
        store = SQLiteBackend(tmp_path / "ott.sqlite")
        with pytest.raises(TypeError, match="str/int"):
            store.append_row(rec(0, ("o", 1), "d1", 10.0, 20.0))
        store.close()

    def test_int_ids_round_trip_as_ints(self, tmp_path):
        path = tmp_path / "ott.sqlite"
        store = SQLiteBackend(path)
        store.append_row(rec(0, 7, 3, 10.0, 20.0))
        store.close()
        reopened = SQLiteBackend(path)
        (row,) = reopened.iter_rows()
        assert row.record.object_id == 7
        assert row.record.device_id == 3
        reopened.close()

    def test_bad_synchronous_level_raises(self, tmp_path):
        with pytest.raises(ValueError, match="synchronous"):
            SQLiteBackend(tmp_path / "ott.sqlite", synchronous="sometimes")


class TestEphemeral:
    def test_ephemeral_store_unlinks_on_close(self, tmp_path):
        path = tmp_path / "scratch.sqlite"
        store = SQLiteBackend(path, ephemeral=True)
        store.append_row(rec(0, "o1", "d1", 10.0, 20.0))
        assert path.exists()
        store.close()
        assert not path.exists()
        assert not path.with_name("scratch.sqlite-wal").exists()

    def test_durable_store_stays_on_disk(self, tmp_path):
        path = tmp_path / "ott.sqlite"
        store = SQLiteBackend(path)
        store.close()
        assert path.exists()


class TestShardStores:
    def test_factory_lays_out_one_db_per_shard(self, tmp_path):
        factory = sqlite_shard_stores(tmp_path / "fleet")
        stores = [factory(index) for index in range(3)]
        try:
            assert [s.path.name for s in stores] == [
                "shard-00.sqlite",
                "shard-01.sqlite",
                "shard-02.sqlite",
            ]
            assert all(s.path.parent == tmp_path / "fleet" for s in stores)
        finally:
            for s in stores:
                s.close()


class TestEnvRouting:
    def test_default_is_memory(self, monkeypatch):
        monkeypatch.delenv(ENV_VAR, raising=False)
        backend = default_live_backend()
        assert isinstance(backend, MemoryBackend)
        backend.close()

    def test_memory_value(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "memory")
        backend = default_live_backend()
        assert isinstance(backend, MemoryBackend)
        backend.close()

    def test_sqlite_value_is_ephemeral(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "sqlite")
        backend = default_live_backend()
        assert isinstance(backend, SQLiteBackend)
        path = backend.path
        assert path.exists()
        backend.close()
        assert not path.exists()

    def test_unknown_value_raises(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "parchment")
        with pytest.raises(ValueError, match="parchment"):
            default_live_backend()
