# repro: allow-file(context-bypass): crash simulation drives the raw backend connection
"""Crash recovery: kill mid-ingest, reopen, answers are bit-identical.

The headline guarantee of the storage seam: a SQLite-backed live engine
killed at an **arbitrary record boundary** can be reopened from the
store alone; after the producer re-sends its stream (idempotent
redelivery skips the persisted prefix), snapshot and interval top-k are
bit-identical — same POIs, same float flows — to an uninterrupted run,
for the join and the iterative algorithm, with runtime contracts
enforced.  The crash is simulated by severing the backend's raw SQLite
connection mid-stream: everything past the cut never reaches disk,
exactly like a ``kill -9`` between two autocommitted appends.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import set_contracts
from repro.core import FlowEngine, ShardedFlowEngine
from repro.datagen.config import SyntheticConfig
from repro.datagen.synthetic import build_synthetic_dataset
from repro.storage import SQLiteBackend
from repro.tracking import ObjectTrackingTable, TrackingRecord

CONFIG = SyntheticConfig(
    num_objects=10, duration=300.0, rooms_per_side=4, seed=17
)


@pytest.fixture(scope="module")
def dataset():
    ds = build_synthetic_dataset(CONFIG)
    records = sorted(ds.ott, key=lambda r: (r.t_s, r.t_e, r.record_id))
    assert len(records) > 20
    return ds, records


@pytest.fixture()
def contracts_on():
    set_contracts(True)
    try:
        yield
    finally:
        set_contracts(None)


def engine_kwargs(ds, **overrides):
    kwargs = dict(
        floorplan=ds.floorplan,
        deployment=ds.deployment,
        pois=ds.pois,
        v_max=ds.v_max,
        detection_slack=2.0 * ds.sampling_interval,
    )
    kwargs.update(overrides)
    return kwargs


def storage_engine(ds, backend):
    """A live engine attached to (or recovering from) ``backend``."""
    return FlowEngine(
        ott=ObjectTrackingTable(), live=True, storage=backend,
        **engine_kwargs(ds),
    )


def sever(engine):
    """Simulate ``kill -9``: the store's connection dies mid-stream."""
    engine.storage._conn.close()


def assert_identical_answers(ds, engine_a, engine_b, methods=("join", "iterative")):
    t_lo, t_hi = ds.time_span()
    t_mid = (t_lo + t_hi) / 2
    for method in methods:
        a = engine_a.snapshot_topk(t_mid, 5, method=method)
        b = engine_b.snapshot_topk(t_mid, 5, method=method)
        assert a.poi_ids == b.poi_ids
        assert a.flows == b.flows  # bit-identical floats, not approx
        a = engine_a.interval_topk(t_lo + 10.0, t_hi - 10.0, 5, method=method)
        b = engine_b.interval_topk(t_lo + 10.0, t_hi - 10.0, 5, method=method)
        assert a.poi_ids == b.poi_ids
        assert a.flows == b.flows


@pytest.fixture(scope="module")
def reference_engine(dataset):
    """The uninterrupted run every recovery must reproduce bit for bit."""
    ds, records = dataset
    return FlowEngine(ott=ObjectTrackingTable(records), **engine_kwargs(ds))


class TestReopen:
    def test_clean_close_then_reopen(self, dataset, reference_engine, tmp_path,
                                     contracts_on):
        ds, records = dataset
        path = tmp_path / "ott.sqlite"
        writer = storage_engine(ds, SQLiteBackend(path))
        assert writer.ingest(records) == len(records)
        writer.storage.close()

        recovered = storage_engine(ds, SQLiteBackend(path))
        assert recovered.generation == len(records)
        assert len(recovered.ott) == len(records)
        assert_identical_answers(ds, recovered, reference_engine)

    def test_checkpoint_then_reopen_bulk_loads_the_snapshot(
        self, dataset, reference_engine, tmp_path, contracts_on
    ):
        ds, records = dataset
        path = tmp_path / "ott.sqlite"
        writer = storage_engine(ds, SQLiteBackend(path))
        writer.ingest(records[:-5])
        assert writer.checkpoint() == len(records) - 5
        writer.ingest(records[-5:])
        writer.storage.close()

        backend = SQLiteBackend(path)
        assert backend.snapshot_generation == len(records) - 5
        recovered = storage_engine(ds, backend)
        # The snapshot bulk-loads; only the 5-mutation tail replays
        # through the delta seam.
        assert recovered.ctx.data_generation == len(records)
        assert_identical_answers(ds, recovered, reference_engine)

    def test_recovery_refuses_a_populated_table(self, dataset, tmp_path):
        ds, records = dataset
        path = tmp_path / "ott.sqlite"
        writer = storage_engine(ds, SQLiteBackend(path))
        writer.ingest(records[:10])
        writer.storage.close()
        with pytest.raises(ValueError, match="empty tracking table"):
            FlowEngine(
                ott=ObjectTrackingTable(records[:10]), live=True,
                storage=SQLiteBackend(path), **engine_kwargs(ds),
            )


class TestCrashMidIngest:
    @pytest.mark.parametrize("cut_fraction", [0.0, 0.3, 0.7])
    def test_kill_reopen_resend_is_bit_identical(
        self, dataset, reference_engine, tmp_path, contracts_on, cut_fraction
    ):
        ds, records = dataset
        cut = int(len(records) * cut_fraction)
        path = tmp_path / "ott.sqlite"

        writer = storage_engine(ds, SQLiteBackend(path))
        writer.ingest(records[:cut])
        sever(writer)
        if cut < len(records):
            with pytest.raises(Exception):
                writer.ingest(records[cut:])

        backend = SQLiteBackend(path)
        assert backend.generation == cut  # record-boundary loss only
        recovered = storage_engine(ds, backend)
        # The producer re-sends its whole stream; the persisted prefix
        # is skipped idempotently, the rest ingests normally.
        assert recovered.ingest(records) == len(records) - cut
        assert recovered.generation == len(records)
        assert_identical_answers(ds, recovered, reference_engine)

    @settings(max_examples=6, deadline=None)
    @given(data=st.data())
    def test_any_record_boundary(self, dataset, reference_engine, tmp_path_factory,
                                 data):
        """Hypothesis sweep: the cut may land on *any* record boundary."""
        ds, records = dataset
        cut = data.draw(st.integers(0, len(records)), label="cut")
        path = tmp_path_factory.mktemp("crash") / "ott.sqlite"

        set_contracts(True)
        try:
            writer = storage_engine(ds, SQLiteBackend(path))
            writer.ingest(records[:cut])
            sever(writer)

            recovered = storage_engine(ds, SQLiteBackend(path))
            assert recovered.ingest(records) == len(records) - cut
            assert_identical_answers(ds, recovered, reference_engine)
        finally:
            set_contracts(None)


class TestOpenEpisodeCrash:
    def build_prefix(self, ds, records):
        """A closed prefix plus one still-open episode for its object."""
        prefix = records[: len(records) // 2]
        done = {r.object_id for r in prefix}
        tail = next(r for r in records[len(prefix):] if r.object_id in done)
        return prefix, tail

    def test_crash_with_open_episode(self, dataset, tmp_path, contracts_on):
        ds, records = dataset
        prefix, tail = self.build_prefix(ds, records)
        path = tmp_path / "ott.sqlite"

        writer = storage_engine(ds, SQLiteBackend(path))
        writer.ingest(prefix)
        open_record = TrackingRecord(
            tail.record_id, tail.object_id, tail.device_id, tail.t_s, tail.t_s
        )
        writer.ingest_open(open_record)
        writer.extend_episode(tail.object_id, tail.t_e)
        sever(writer)

        recovered = storage_engine(ds, SQLiteBackend(path))
        # The episode survives at its last durable extent, still open.
        restored = recovered.ott.last_record(tail.object_id)
        assert restored.record_id == tail.record_id
        assert restored.t_e == tail.t_e
        recovered.extend_episode(tail.object_id, tail.t_e + 5.0)
        closed = recovered.close_episode(tail.object_id)
        assert closed.t_e == tail.t_e + 5.0

        # An uninterrupted engine making the same mutations agrees.
        reference = storage_engine(ds, SQLiteBackend(tmp_path / "ref.sqlite"))
        reference.ingest(prefix)
        reference.ingest_open(open_record)
        reference.extend_episode(tail.object_id, tail.t_e)
        reference.extend_episode(tail.object_id, tail.t_e + 5.0)
        reference.close_episode(tail.object_id)
        assert recovered.generation == reference.generation
        assert_identical_answers(ds, recovered, reference)


class TestShardedStores:
    @pytest.mark.parametrize("num_shards", [1, 2, 4])
    def test_per_shard_store_roundtrip(
        self, dataset, reference_engine, tmp_path, contracts_on, num_shards
    ):
        ds, records = dataset
        fleet_dir = tmp_path / "fleet"
        kwargs = dict(detection_slack=2.0 * ds.sampling_interval)

        sharded = ShardedFlowEngine(
            ds.floorplan, ds.deployment, ObjectTrackingTable(), ds.pois,
            v_max=ds.v_max, num_shards=num_shards, live=True,
            storage=fleet_dir, **kwargs,
        )
        assert sharded.ingest(records) == len(records)
        assert sharded.checkpoint() == len(records)
        for shard in sharded.shards:
            shard.storage.close()

        reopened = ShardedFlowEngine(
            ds.floorplan, ds.deployment, ObjectTrackingTable(), ds.pois,
            v_max=ds.v_max, num_shards=num_shards, live=True,
            storage=fleet_dir, **kwargs,
        )
        assert reopened.generation == len(records)
        assert_identical_answers(ds, reopened, reference_engine)

    def test_wrong_shard_count_is_detected(self, dataset, tmp_path):
        ds, records = dataset
        fleet_dir = tmp_path / "fleet"
        kwargs = dict(detection_slack=2.0 * ds.sampling_interval)

        sharded = ShardedFlowEngine(
            ds.floorplan, ds.deployment, ObjectTrackingTable(), ds.pois,
            v_max=ds.v_max, num_shards=4, live=True, storage=fleet_dir,
            **kwargs,
        )
        sharded.ingest(records)
        for shard in sharded.shards:
            shard.storage.close()

        with pytest.raises(ValueError, match="different shard count"):
            ShardedFlowEngine(
                ds.floorplan, ds.deployment, ObjectTrackingTable(), ds.pois,
                v_max=ds.v_max, num_shards=3, live=True, storage=fleet_dir,
                **kwargs,
            )
