# repro: allow-file(context-bypass): this file tests the storage backends themselves
"""The StorageBackend battery, run against every implementation.

Each backend must speak the same mutation vocabulary with the same
generation, idempotency and read-shape semantics — the engine recovery
path (and the CI ``REPRO_STORAGE_BACKEND`` matrix) depends on the two
being interchangeable.
"""

from __future__ import annotations

import pytest

from repro.storage import (
    MemoryBackend,
    Mutation,
    MUTATION_OPS,
    SQLiteBackend,
    StorageBackend,
    StoredRow,
    row_identity,
)
from repro.tracking import TrackingRecord


def rec(record_id, object_id, device_id, t_s, t_e):
    return TrackingRecord(record_id, object_id, device_id, t_s, t_e)


@pytest.fixture(params=["memory", "sqlite"])
def backend(request, tmp_path):
    if request.param == "memory":
        store = MemoryBackend()
    else:
        store = SQLiteBackend(tmp_path / "ott.sqlite")
    yield store
    store.close()


class TestAppendSemantics:
    def test_pristine_store(self, backend):
        assert isinstance(backend, StorageBackend)
        assert backend.generation == 0
        assert backend.snapshot_generation == 0
        assert backend.snapshot_rows() == []
        assert backend.replay_since(0) == []
        assert list(backend.iter_rows()) == []

    def test_append_bumps_generation(self, backend):
        assert backend.append_row(rec(0, "o1", "d1", 10.0, 20.0))
        assert backend.append_row(rec(1, "o2", "d1", 12.0, 15.0))
        assert backend.generation == 2
        assert backend.snapshot_generation == 0

    def test_redelivery_is_a_noop(self, backend):
        record = rec(0, "o1", "d1", 10.0, 20.0)
        assert backend.append_row(record)
        assert not backend.append_row(record)
        assert backend.generation == 1
        assert len(list(backend.iter_rows())) == 1

    def test_open_redelivery_at_initial_extent(self, backend):
        # A crashed producer re-sends the episode's *initial* extent
        # while the store already holds a later one: t_e is not part of
        # the upsert identity, so the redelivery is still a no-op.
        backend.append_row(rec(0, "o1", "d1", 10.0, 12.0), open=True)
        backend.rewrite_tail_row(rec(0, "o1", "d1", 10.0, 30.0), open=True)
        assert not backend.append_row(rec(0, "o1", "d1", 10.0, 12.0), open=True)
        (row,) = backend.iter_rows()
        assert row.record.t_e == 30.0

    def test_conflicting_redelivery_raises(self, backend):
        backend.append_row(rec(0, "o1", "d1", 10.0, 20.0))
        with pytest.raises(ValueError, match="already stored"):
            backend.append_row(rec(0, "o2", "d1", 10.0, 20.0))
        with pytest.raises(ValueError, match="already stored"):
            backend.append_row(rec(0, "o1", "d1", 11.0, 20.0))

    def test_rewrite_unknown_record_raises(self, backend):
        with pytest.raises(ValueError, match="never appended"):
            backend.rewrite_tail_row(rec(9, "o1", "d1", 0.0, 1.0), open=True)


class TestEpisodeLifecycle:
    def test_extend_then_close(self, backend):
        backend.append_row(rec(0, "o1", "d1", 10.0, 12.0), open=True)
        backend.rewrite_tail_row(rec(0, "o1", "d1", 10.0, 16.0), open=True)
        backend.rewrite_tail_row(rec(0, "o1", "d1", 10.0, 18.0), open=False)
        assert backend.generation == 3
        (row,) = backend.iter_rows()
        assert row == StoredRow(rec(0, "o1", "d1", 10.0, 18.0), open=False)

    def test_replay_carries_ops_and_post_state(self, backend):
        backend.append_row(rec(0, "o1", "d1", 10.0, 12.0), open=True)
        backend.rewrite_tail_row(rec(0, "o1", "d1", 10.0, 16.0), open=True)
        backend.append_row(rec(1, "o2", "d1", 11.0, 13.0))
        backend.rewrite_tail_row(rec(0, "o1", "d1", 10.0, 18.0), open=False)
        mutations = backend.replay_since(0)
        assert [m.generation for m in mutations] == [1, 2, 3, 4]
        assert [m.op for m in mutations] == [
            "append_open",
            "extend",
            "append",
            "close",
        ]
        assert all(m.op in MUTATION_OPS for m in mutations)
        assert [m.open for m in mutations] == [True, True, False, False]
        assert mutations[1].record.t_e == 16.0  # post-state, not initial
        assert backend.replay_since(2) == mutations[2:]
        assert backend.replay_since(4) == []

    def test_open_flag_survives_iteration(self, backend):
        backend.append_row(rec(0, "o1", "d1", 10.0, 12.0), open=True)
        backend.append_row(rec(1, "o2", "d1", 11.0, 13.0))
        by_id = {row.record.record_id: row for row in backend.iter_rows()}
        assert by_id[0].open
        assert not by_id[1].open


class TestCompaction:
    def fill(self, backend):
        backend.append_row(rec(0, "o1", "d1", 10.0, 20.0))
        backend.append_row(rec(1, "o2", "d1", 12.0, 15.0))
        backend.append_row(rec(2, "o1", "d2", 30.0, 33.0), open=True)

    def test_compact_folds_the_tail(self, backend):
        self.fill(backend)
        assert backend.compact() == 3
        assert backend.snapshot_generation == backend.generation == 3
        assert backend.replay_since(backend.snapshot_generation) == []
        rows = backend.snapshot_rows()
        assert [row.record.record_id for row in rows] == [0, 1, 2]
        assert [row.open for row in rows] == [False, False, True]

    def test_snapshot_rows_are_canonically_ordered(self, backend):
        self.fill(backend)
        backend.compact()
        keys = [
            (row.record.t_s, row.record.t_e, row.record.record_id)
            for row in backend.snapshot_rows()
        ]
        assert keys == sorted(keys)

    def test_mutations_after_compact_land_in_the_tail(self, backend):
        self.fill(backend)
        backend.compact()
        backend.rewrite_tail_row(rec(2, "o1", "d2", 30.0, 40.0), open=False)
        assert backend.generation == 4
        assert backend.snapshot_generation == 3
        (mutation,) = backend.replay_since(backend.snapshot_generation)
        assert mutation == Mutation(4, "close", rec(2, "o1", "d2", 30.0, 40.0))
        # iter_rows sees the merged state; snapshot_rows the old one.
        assert {r.record.t_e for r in backend.iter_rows()} == {20.0, 15.0, 40.0}
        assert backend.snapshot_rows()[2].record.t_e == 33.0

    def test_compact_is_idempotent(self, backend):
        self.fill(backend)
        backend.compact()
        assert backend.compact() == 0
        assert backend.generation == 3


class TestIterRows:
    def fill(self, backend):
        backend.append_row(rec(0, "o1", "d1", 10.0, 20.0))
        backend.append_row(rec(1, "o2", "d1", 12.0, 15.0))
        backend.append_row(rec(2, "o1", "d2", 30.0, 40.0))

    def test_object_filter(self, backend):
        self.fill(backend)
        ids = [row.record.record_id for row in backend.iter_rows("o1")]
        assert ids == [0, 2]

    def test_time_filter(self, backend):
        self.fill(backend)
        ids = [
            row.record.record_id
            for row in backend.iter_rows(t_start=16.0, t_end=29.0)
        ]
        assert ids == [0]  # overlaps [16, 29]; o2 ended, o1's second not begun

    def test_filters_compose_across_snapshot_and_tail(self, backend):
        self.fill(backend)
        backend.compact()
        backend.append_row(rec(3, "o1", "d3", 50.0, 60.0))
        ids = [
            row.record.record_id
            for row in backend.iter_rows("o1", t_start=35.0)
        ]
        assert ids == [2, 3]


class TestRowIdentity:
    def test_identity_excludes_t_e(self):
        a = rec(0, "o1", "d1", 10.0, 12.0)
        b = rec(0, "o1", "d1", 10.0, 99.0)
        assert row_identity(a) == row_identity(b)
        assert row_identity(a) != row_identity(rec(0, "o1", "d2", 10.0, 12.0))
