"""Tests for ground-truth evaluation metrics."""

import pytest

from repro.evaluation import (
    CalibrationBin,
    interval_presence_calibration,
    interval_truth,
    precision_at_k,
    snapshot_presence_calibration,
    snapshot_truth,
    spearman_correlation,
)


class TestTruth:
    def test_snapshot_truth_counts_objects(self, synthetic_dataset):
        t = synthetic_dataset.mid_time()
        truth = snapshot_truth(synthetic_dataset, t)
        population = len(synthetic_dataset.trajectories)
        # A room revisited by the POI partitioner hosts overlapping POIs,
        # so totals may exceed the population — but no single POI can.
        assert all(0 < count <= population for count in truth.values())
        assert truth  # mid-simulation, someone is somewhere

    def test_interval_truth_superset_of_snapshot(self, synthetic_dataset):
        t = synthetic_dataset.mid_time()
        at_instant = snapshot_truth(synthetic_dataset, t)
        over_window = interval_truth(synthetic_dataset, t - 30.0, t + 30.0)
        for poi_id, count in at_instant.items():
            assert over_window.get(poi_id, 0) >= count


class TestRankingMetrics:
    def test_perfect_agreement(self):
        predicted = {"a": 3.0, "b": 2.0, "c": 1.0}
        truth = {"a": 30, "b": 20, "c": 10}
        assert precision_at_k(predicted, truth, 2) == 1.0
        assert spearman_correlation(predicted, truth) == pytest.approx(1.0)

    def test_inverse_agreement(self):
        predicted = {"a": 1.0, "b": 2.0, "c": 3.0}
        truth = {"a": 30, "b": 20, "c": 10}
        assert spearman_correlation(predicted, truth) == pytest.approx(-1.0)

    def test_partial_overlap(self):
        predicted = {"a": 9.0, "b": 8.0, "c": 1.0, "d": 0.5}
        truth = {"a": 10, "c": 9, "b": 1, "d": 0}
        assert precision_at_k(predicted, truth, 2) == 0.5  # {a,b} vs {a,c}

    def test_k_clamped(self):
        assert precision_at_k({"a": 1.0}, {"a": 1}, 10) == 1.0

    def test_k_validated(self):
        with pytest.raises(ValueError):
            precision_at_k({}, {}, 0)

    def test_degenerate_inputs(self):
        assert precision_at_k({}, {}, 3) == 1.0
        assert spearman_correlation({}, {}) == 0.0
        assert spearman_correlation({"a": 1.0}, {"a": 5}) == 0.0

    def test_constant_rankings_are_zero(self):
        predicted = {"a": 1.0, "b": 1.0, "c": 1.0}
        truth = {"a": 1, "b": 2, "c": 3}
        assert spearman_correlation(predicted, truth) == 0.0

    def test_missing_keys_count_as_zero(self):
        predicted = {"a": 5.0}
        truth = {"b": 5}
        # Union of keys is used; ties broken by key.
        value = spearman_correlation(predicted, truth)
        assert -1.0 <= value <= 1.0


class TestCalibration:
    def test_snapshot_calibration_structure(self, synthetic_dataset):
        engine = synthetic_dataset.engine()
        start, end = synthetic_dataset.time_span()
        times = [start + f * (end - start) for f in (0.4, 0.6)]
        table = snapshot_presence_calibration(
            synthetic_dataset, engine, times, bins=5
        )
        assert table  # some pairs existed
        for bin_ in table:
            assert isinstance(bin_, CalibrationBin)
            assert 0.0 <= bin_.lower < bin_.upper <= 1.0
            assert bin_.count > 0
            assert 0.0 <= bin_.empirical_frequency <= 1.0
            assert bin_.lower - 1e-9 <= bin_.mean_predicted <= bin_.upper + 1e-9

    def test_presence_never_underestimates_in_aggregate(self, synthetic_dataset):
        """Soundness implies conservative predictions: whenever the object
        truly is in the POI, presence is positive — so the model can only
        over-predict, never under-predict, i.e. every calibration gap is
        non-negative up to sampling noise."""
        engine = synthetic_dataset.engine()
        start, end = synthetic_dataset.time_span()
        times = [start + f * (end - start) for f in (0.3, 0.5, 0.7)]
        table = snapshot_presence_calibration(
            synthetic_dataset, engine, times, bins=4
        )
        weighted_gap = sum(b.gap * b.count for b in table) / max(
            1, sum(b.count for b in table)
        )
        assert weighted_gap >= -0.05

    def test_interval_calibration_runs(self, synthetic_dataset):
        engine = synthetic_dataset.engine()
        window = synthetic_dataset.window(2)
        table = interval_presence_calibration(
            synthetic_dataset, engine, [window], bins=4
        )
        assert table
        assert all(bin_.count > 0 for bin_ in table)

    def test_bins_validated(self, synthetic_dataset):
        engine = synthetic_dataset.engine()
        with pytest.raises(ValueError):
            snapshot_presence_calibration(
                synthetic_dataset, engine, [synthetic_dataset.mid_time()], bins=0
            )
