"""The observation-only invariant, enforced with runtime contracts on:
tracing and metrics must not perturb query answers (bit-identical top-k
flows) or the engine's ``stats()`` counters."""

import pytest

from repro import obs
from repro.analysis import set_contracts
from repro.datagen.config import SyntheticConfig
from repro.datagen.synthetic import build_synthetic_dataset

K = 5
CONFIG = SyntheticConfig(num_objects=16, duration=500.0, rooms_per_side=4, seed=7)


@pytest.fixture()
def contracts_on():
    set_contracts(True)
    try:
        yield
    finally:
        set_contracts(None)


@pytest.fixture(scope="module")
def dataset():
    return build_synthetic_dataset(CONFIG)


def _run_queries(dataset):
    """All four query-matrix cells on a fresh engine; returns the answers
    (as plain tuples) and the engine's counters."""
    engine = dataset.engine()
    t = dataset.mid_time()
    window = (t - 120.0, t)
    answers = {}
    for method in ("iterative", "join"):
        snapshot = engine.snapshot_topk(t, K, method=method)
        interval = engine.interval_topk(*window, K, method=method)
        answers[f"snapshot_{method}"] = (snapshot.poi_ids, snapshot.flows)
        answers[f"interval_{method}"] = (interval.poi_ids, interval.flows)
    return answers, engine.stats()


def test_tracing_does_not_perturb_results_or_stats(dataset, contracts_on):
    obs.disable()
    plain_answers, plain_stats = _run_queries(dataset)

    obs.reset()
    obs.enable()
    try:
        traced_answers, traced_stats = _run_queries(dataset)
        spans = obs.TRACER.snapshot()
    finally:
        obs.disable()
        obs.reset()

    # The instrumented run actually traced something...
    assert spans, "expected spans from an instrumented query run"
    top_level = {row.path[0] for row in spans}
    assert "query.snapshot.iterative" in top_level
    assert "query.interval.join" in top_level

    # ...and perturbed nothing: float-exact answers, equal counters.
    assert traced_answers == plain_answers
    assert traced_stats == plain_stats


def test_monitor_counters_do_not_leak_into_engine_stats(dataset):
    """Metric increments (monitor.ticks etc.) live in the obs registry,
    never in FlowEngine.stats()."""
    from repro.core.monitor import SnapshotTopKMonitor

    engine = dataset.engine()
    monitor = SnapshotTopKMonitor(engine, k=K, method="join")
    t = dataset.mid_time()

    obs.enable()
    try:
        monitor.advance(t)
        monitor.advance(t + 5.0)
    finally:
        obs.disable()

    ticks = obs.REGISTRY.get("monitor.ticks")
    assert ticks is not None and ticks.value == 2.0
    assert "monitor.ticks" not in engine.stats()
