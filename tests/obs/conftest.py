"""Shared fixture: every obs test starts and ends with a clean,
disabled process-wide tracer/registry, so tests cannot leak spans or
metrics into each other (or into the rest of the suite)."""

import pytest

from repro import obs


@pytest.fixture(autouse=True)
def clean_obs():
    obs.disable()
    obs.reset()
    obs.REGISTRY.clear()
    try:
        yield
    finally:
        obs.disable()
        obs.reset()
        obs.REGISTRY.clear()
