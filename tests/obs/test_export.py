"""Exporter round-trips and the BENCH_*.json baseline schema."""

import json

import pytest

from repro import obs
from repro.obs.export import (
    OBS_SCHEMA_VERSION,
    bench_baseline,
    format_table,
    parse_snapshot,
    snapshot_dict,
    snapshot_json,
    write_baseline,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import Tracer


def _populated() -> tuple[Tracer, MetricsRegistry]:
    tracer = Tracer()
    registry = MetricsRegistry()
    obs.enable()  # Tracer.span honours the global flag
    try:
        with tracer.span("query"):
            with tracer.span("phase"):
                pass
    finally:
        obs.disable()
    registry.counter("hits", unit="hits").inc(5)
    registry.histogram("lat", boundaries=(0.01, 0.1)).observe(0.05)
    return tracer, registry


def test_snapshot_dict_shape():
    tracer, registry = _populated()
    snap = snapshot_dict(tracer, registry)
    assert snap["schema_version"] == OBS_SCHEMA_VERSION
    assert [row["path"] for row in snap["spans"]] == [
        ["query"],
        ["query", "phase"],
    ]
    assert snap["metrics"]["hits"]["value"] == 5.0
    assert snap["metrics"]["lat"]["counts"] == [0, 1, 0]


def test_json_roundtrip():
    tracer, registry = _populated()
    text = snapshot_json(tracer, registry)
    assert parse_snapshot(text) == snapshot_dict(tracer, registry)


def test_json_is_byte_stable():
    """Identical runs serialize to identical bytes (sorted keys, sorted
    rows) — the property CI artifact diffing relies on."""
    first = snapshot_json(*_populated())
    second = snapshot_json(*_populated())
    # Wall-clock totals differ run to run; zero them out structurally.
    def normalized(text):
        payload = json.loads(text)
        for row in payload["spans"]:
            for key in ("total_seconds", "min_seconds", "max_seconds"):
                row[key] = 0.0
        return json.dumps(payload, sort_keys=True)

    assert normalized(first) == normalized(second)


def test_parse_rejects_bad_documents():
    with pytest.raises(ValueError, match="JSON object"):
        parse_snapshot("[1, 2]")
    with pytest.raises(ValueError, match="schema_version"):
        parse_snapshot(json.dumps({"schema_version": 999}))
    with pytest.raises(ValueError, match="spans"):
        parse_snapshot(json.dumps({"schema_version": OBS_SCHEMA_VERSION}))


def test_format_table_renders_hierarchy_and_metrics():
    tracer, registry = _populated()
    table = format_table(tracer, registry)
    lines = table.splitlines()
    query_line = next(line for line in lines if line.startswith("query"))
    phase_line = next(line for line in lines if line.lstrip().startswith("phase"))
    assert phase_line.startswith("  ")  # nested spans are indented
    assert "hits" in table and "histogram" in table
    assert query_line  # top-level span is flush left


def test_format_table_empty_state():
    table = format_table(Tracer(), MetricsRegistry())
    assert "(no spans collected)" in table
    assert "(no metrics recorded)" in table


def test_bench_baseline_roundtrip(tmp_path):
    tracer, registry = _populated()
    payload = bench_baseline(
        "unit_test",
        machine={"platform": "test", "cpu_count": 1},
        scale=0.01,
        params={"k": 10},
        results={"elapsed_ms": 1.5},
        stats={"regions_computed": 3},
        tracer=tracer,
        registry=registry,
    )
    path = tmp_path / "BENCH_unit_test.json"
    write_baseline(str(path), payload)
    loaded = json.loads(path.read_text())
    assert loaded == payload
    assert loaded["schema_version"] == OBS_SCHEMA_VERSION
    assert loaded["observability"]["spans"][0]["path"] == ["query"]
    assert path.read_text().endswith("\n")


def test_write_baseline_requires_schema_version(tmp_path):
    with pytest.raises(ValueError, match="schema_version"):
        write_baseline(str(tmp_path / "x.json"), {"name": "x"})


def test_committed_baselines_parse():
    """The baselines shipped under benchmarks/baselines/ must stay
    readable by the current schema."""
    import pathlib

    baseline_dir = (
        pathlib.Path(__file__).resolve().parents[2] / "benchmarks" / "baselines"
    )
    files = sorted(baseline_dir.glob("BENCH_*.json"))
    assert len(files) >= 3
    for file in files:
        payload = json.loads(file.read_text())
        assert payload["schema_version"] == OBS_SCHEMA_VERSION
        assert {"name", "machine", "scale", "params", "results", "observability"} <= set(payload)
        # Per-phase span timings are the point of the baselines.
        parse_snapshot(json.dumps(payload["observability"]))
        if payload["name"] != "obs_overhead":
            assert payload["observability"]["spans"], file.name


def test_module_level_snapshot_uses_process_defaults():
    obs.enable()
    with obs.span("proc"):
        pass
    obs.counter("proc.count").inc()
    obs.disable()
    snap = snapshot_dict()
    assert [row["path"] for row in snap["spans"]] == [["proc"]]
    assert "proc.count" in snap["metrics"]
