"""`merge_snapshot_dicts`: folding per-process snapshots into one."""

from __future__ import annotations

import pytest

from repro.obs import OBS_SCHEMA_VERSION, merge_snapshot_dicts


def _snapshot(spans=(), metrics=None):
    return {
        "schema_version": OBS_SCHEMA_VERSION,
        "spans": list(spans),
        "metrics": dict(metrics or {}),
    }


def _span_row(path, count, total, minimum, maximum):
    return {
        "path": list(path),
        "count": count,
        "total_seconds": total,
        "min_seconds": minimum,
        "max_seconds": maximum,
    }


class TestSpans:
    def test_sums_counts_and_totals(self):
        merged = merge_snapshot_dicts(
            [
                _snapshot([_span_row(("q",), 2, 1.0, 0.25, 0.75)]),
                _snapshot([_span_row(("q",), 3, 2.0, 0.1, 1.5)]),
            ]
        )
        (row,) = merged["spans"]
        assert row["count"] == 5
        assert row["total_seconds"] == pytest.approx(3.0)
        assert row["min_seconds"] == pytest.approx(0.1)
        assert row["max_seconds"] == pytest.approx(1.5)

    def test_zero_count_rows_do_not_poison_minimum(self):
        merged = merge_snapshot_dicts(
            [
                _snapshot([_span_row(("q",), 0, 0.0, 0.0, 0.0)]),
                _snapshot([_span_row(("q",), 1, 0.5, 0.5, 0.5)]),
            ]
        )
        (row,) = merged["spans"]
        assert row["min_seconds"] == pytest.approx(0.5)

    def test_disjoint_paths_union_sorted(self):
        merged = merge_snapshot_dicts(
            [
                _snapshot([_span_row(("b",), 1, 0.1, 0.1, 0.1)]),
                _snapshot([_span_row(("a",), 1, 0.2, 0.2, 0.2)]),
            ]
        )
        assert [row["path"] for row in merged["spans"]] == [["a"], ["b"]]


class TestMetrics:
    def test_counters_sum(self):
        merged = merge_snapshot_dicts(
            [
                _snapshot(metrics={"c": {"kind": "counter", "unit": "n", "value": 2.0}}),
                _snapshot(metrics={"c": {"kind": "counter", "unit": "n", "value": 3.0}}),
            ]
        )
        assert merged["metrics"]["c"]["value"] == pytest.approx(5.0)

    def test_gauges_take_the_maximum(self):
        merged = merge_snapshot_dicts(
            [
                _snapshot(metrics={"g": {"kind": "gauge", "unit": "", "value": 7.0}}),
                _snapshot(metrics={"g": {"kind": "gauge", "unit": "", "value": 3.0}}),
            ]
        )
        assert merged["metrics"]["g"]["value"] == pytest.approx(7.0)

    def test_histograms_add_elementwise(self):
        h1 = {
            "kind": "histogram",
            "unit": "seconds",
            "boundaries": [1.0, 2.0],
            "counts": [1, 2, 0],
            "sum": 3.0,
            "count": 3,
        }
        h2 = {
            "kind": "histogram",
            "unit": "seconds",
            "boundaries": [1.0, 2.0],
            "counts": [0, 1, 4],
            "sum": 9.0,
            "count": 5,
        }
        merged = merge_snapshot_dicts(
            [_snapshot(metrics={"h": h1}), _snapshot(metrics={"h": h2})]
        )
        assert merged["metrics"]["h"]["counts"] == [1, 3, 4]
        assert merged["metrics"]["h"]["sum"] == pytest.approx(12.0)
        assert merged["metrics"]["h"]["count"] == 8

    def test_histogram_boundary_mismatch_rejected(self):
        h1 = {
            "kind": "histogram",
            "unit": "seconds",
            "boundaries": [1.0],
            "counts": [0, 0],
            "sum": 0.0,
            "count": 0,
        }
        h2 = dict(h1, boundaries=[2.0])
        with pytest.raises(ValueError, match="boundaries"):
            merge_snapshot_dicts(
                [_snapshot(metrics={"h": h1}), _snapshot(metrics={"h": h2})]
            )

    def test_kind_mismatch_rejected(self):
        with pytest.raises(ValueError, match="kind|counter|gauge"):
            merge_snapshot_dicts(
                [
                    _snapshot(metrics={"m": {"kind": "counter", "unit": "", "value": 1.0}}),
                    _snapshot(metrics={"m": {"kind": "gauge", "unit": "", "value": 1.0}}),
                ]
            )

    def test_unit_mismatch_rejected(self):
        with pytest.raises(ValueError, match="units"):
            merge_snapshot_dicts(
                [
                    _snapshot(metrics={"m": {"kind": "counter", "unit": "a", "value": 1.0}}),
                    _snapshot(metrics={"m": {"kind": "counter", "unit": "b", "value": 1.0}}),
                ]
            )


class TestValidation:
    def test_rejects_empty_input(self):
        with pytest.raises(ValueError, match="at least one"):
            merge_snapshot_dicts([])

    def test_rejects_schema_mismatch(self):
        bad = _snapshot()
        bad["schema_version"] = OBS_SCHEMA_VERSION + 1
        with pytest.raises(ValueError, match="schema_version"):
            merge_snapshot_dicts([bad])

    def test_single_snapshot_round_trips(self):
        snapshot = _snapshot(
            [_span_row(("q", "inner"), 2, 1.0, 0.4, 0.6)],
            {"c": {"kind": "counter", "unit": "n", "value": 1.0}},
        )
        merged = merge_snapshot_dicts([snapshot])
        assert merged["spans"] == snapshot["spans"]
        assert merged["metrics"] == snapshot["metrics"]
        assert merged["schema_version"] == OBS_SCHEMA_VERSION
