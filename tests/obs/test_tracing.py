"""Span semantics: nesting paths, timing monotonicity, the no-op default."""

import time

import pytest

from repro import obs
from repro.obs.tracing import NOOP_SPAN, Span, Tracer


def test_disabled_by_default_emits_nothing():
    """The no-op mode: spans collect nothing and cost no tracer state."""
    assert not obs.obs_enabled()
    with obs.span("query.snapshot.join"):
        with obs.span("ur.snapshot"):
            pass
    assert obs.TRACER.snapshot() == []
    assert obs.TRACER.active_depth == 0


def test_disabled_span_is_the_shared_singleton():
    assert obs.span("a") is NOOP_SPAN
    assert obs.span("b") is NOOP_SPAN


def test_enabled_span_records_by_nesting_path():
    obs.enable()
    with obs.span("outer"):
        with obs.span("inner"):
            pass
        with obs.span("inner"):
            pass
    rows = obs.TRACER.snapshot()
    assert [row.path for row in rows] == [("outer",), ("outer", "inner")]
    outer, inner = rows
    assert outer.count == 1
    assert inner.count == 2
    assert inner.depth == 2
    assert inner.name == "inner"


def test_same_leaf_under_different_parents_is_two_rows():
    """Attribution is per path, not per leaf name."""
    obs.enable()
    with obs.span("query.snapshot.join"):
        with obs.span("ur.build.snapshot"):
            pass
    with obs.span("query.interval.join"):
        with obs.span("ur.build.snapshot"):
            pass
    paths = [row.path for row in obs.TRACER.snapshot()]
    assert ("query.snapshot.join", "ur.build.snapshot") in paths
    assert ("query.interval.join", "ur.build.snapshot") in paths


def test_timing_monotonicity():
    """Durations are non-negative, min <= max, and a parent's total
    dominates the sum of its children's totals."""
    obs.enable()
    with obs.span("parent"):
        for _ in range(3):
            with obs.span("child"):
                time.sleep(0.001)
    rows = {row.path: row for row in obs.TRACER.snapshot()}
    parent = rows[("parent",)]
    child = rows[("parent", "child")]
    assert child.count == 3
    assert 0.0 <= child.min_seconds <= child.max_seconds
    assert child.total_seconds >= child.min_seconds * child.count
    assert parent.total_seconds >= child.total_seconds


def test_reset_drops_rows_and_keeps_collecting():
    obs.enable()
    with obs.span("a"):
        pass
    obs.TRACER.reset()
    assert obs.TRACER.snapshot() == []
    with obs.span("b"):
        pass
    assert [row.path for row in obs.TRACER.snapshot()] == [("b",)]


def test_snapshot_returns_copies():
    obs.enable()
    with obs.span("a"):
        pass
    row = obs.TRACER.snapshot()[0]
    row.count = 999
    assert obs.TRACER.snapshot()[0].count == 1


def test_exception_inside_span_still_records_and_unwinds():
    obs.enable()
    with pytest.raises(RuntimeError, match="boom"):
        with obs.span("outer"):
            with obs.span("inner"):
                raise RuntimeError("boom")
    assert obs.TRACER.active_depth == 0
    paths = [row.path for row in obs.TRACER.snapshot()]
    assert paths == [("outer",), ("outer", "inner")]


def test_mismatched_pop_raises():
    tracer = Tracer()
    outer = Span(tracer, "outer")
    inner = Span(tracer, "inner")
    outer.__enter__()
    inner.__enter__()
    with pytest.raises(RuntimeError, match="nesting violated"):
        outer.__exit__(None, None, None)


def test_negative_clock_reading_is_clamped():
    from repro.obs.tracing import SpanStats

    stats = SpanStats(path=("x",))
    stats.observe(-1.0)
    assert stats.total_seconds == 0.0
    assert stats.min_seconds == 0.0


def test_enable_disable_roundtrip():
    obs.enable()
    assert obs.obs_enabled()
    obs.disable()
    assert not obs.obs_enabled()
    with obs.span("after.disable"):
        pass
    assert obs.TRACER.snapshot() == []
