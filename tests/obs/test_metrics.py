"""Registry semantics: kinds, fixed buckets, deterministic export."""

import pytest

from repro.obs.metrics import (
    DEFAULT_TIME_BUCKETS,
    Histogram,
    MetricsRegistry,
)


def test_counter_accumulates_and_rejects_decrease():
    registry = MetricsRegistry()
    c = registry.counter("events", unit="events")
    c.inc()
    c.inc(2.5)
    assert c.value == 3.5
    with pytest.raises(ValueError, match="cannot decrease"):
        c.inc(-1)
    assert c.value == 3.5


def test_counter_is_get_or_create():
    registry = MetricsRegistry()
    registry.counter("hits").inc()
    registry.counter("hits").inc()
    assert registry.counter("hits").value == 2.0
    assert len(registry) == 1


def test_gauge_moves_both_ways():
    registry = MetricsRegistry()
    g = registry.gauge("occupancy", unit="entries")
    g.set(10)
    g.set(4)
    assert g.value == 4.0


def test_kind_mismatch_raises():
    registry = MetricsRegistry()
    registry.counter("x")
    with pytest.raises(TypeError, match="is a counter, not a gauge"):
        registry.gauge("x")


def test_histogram_bucket_boundaries_are_inclusive_upper_bounds():
    h = Histogram("lat", boundaries=(1.0, 2.0, 4.0))
    for value in (0.5, 1.0, 1.5, 2.0, 3.0, 4.0, 99.0):
        h.observe(value)
    # buckets: <=1.0, <=2.0, <=4.0, overflow
    assert h.counts == (2, 2, 2, 1)
    assert h.count == 7
    assert h.sum == pytest.approx(111.0)


def test_histogram_requires_increasing_boundaries():
    with pytest.raises(ValueError, match="strictly increasing"):
        Histogram("bad", boundaries=(1.0, 1.0, 2.0))
    with pytest.raises(ValueError, match="at least one boundary"):
        Histogram("empty", boundaries=())


def test_histogram_boundary_identity_enforced_on_reuse():
    registry = MetricsRegistry()
    registry.histogram("lat", boundaries=(1.0, 2.0))
    with pytest.raises(ValueError, match="already registered"):
        registry.histogram("lat", boundaries=(1.0, 2.0, 3.0))


def test_default_time_buckets_are_fixed_and_increasing():
    assert all(
        lo < hi for lo, hi in zip(DEFAULT_TIME_BUCKETS, DEFAULT_TIME_BUCKETS[1:])
    )
    assert DEFAULT_TIME_BUCKETS[0] == pytest.approx(0.0001)
    assert DEFAULT_TIME_BUCKETS[-1] == pytest.approx(10.0)


def _run_workload(registry: MetricsRegistry) -> None:
    registry.counter("a.hits", unit="hits").inc(3)
    registry.gauge("a.size").set(17)
    h = registry.histogram("a.lat", boundaries=(0.001, 0.01, 0.1))
    for value in (0.0005, 0.005, 0.05, 0.5):
        h.observe(value)


def test_export_is_deterministic_across_identical_runs():
    """Two registries fed the same workload export byte-identical state."""
    first, second = MetricsRegistry(), MetricsRegistry()
    _run_workload(first)
    _run_workload(second)
    assert first.export() == second.export()
    assert list(first.export()) == sorted(first.export())


def test_reset_keeps_registrations_clear_drops_them():
    registry = MetricsRegistry()
    _run_workload(registry)
    registry.reset()
    assert registry.counter("a.hits").value == 0.0
    assert registry.histogram("a.lat", boundaries=(0.001, 0.01, 0.1)).count == 0
    assert len(registry) == 3
    registry.clear()
    assert len(registry) == 0


def test_iteration_is_name_ordered():
    registry = MetricsRegistry()
    registry.counter("z")
    registry.counter("a")
    registry.counter("m")
    assert [m.name for m in registry] == ["a", "m", "z"]
