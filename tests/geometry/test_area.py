"""Tests for the grid quadrature (:mod:`repro.geometry.area`)."""

import math

import numpy as np
import pytest

from repro.geometry import (
    AREA_EPSILON,
    Circle,
    EmptyRegion,
    Mbr,
    Point,
    Polygon,
    floats_equal,
    grid_points,
    intersection_fraction,
    near_zero,
    polygon_grid_points,
    region_area,
)


class TestGridPoints:
    def test_cell_count_and_area(self):
        xs, ys, cell_area = grid_points(Mbr(0, 0, 10, 10), resolution=10)
        assert len(xs) == 100
        assert cell_area == pytest.approx(1.0)
        assert xs.min() == pytest.approx(0.5)
        assert xs.max() == pytest.approx(9.5)

    def test_total_cell_area_matches_mbr(self):
        box = Mbr(-3, 2, 7, 5)
        xs, ys, cell_area = grid_points(box, resolution=16)
        assert len(xs) * cell_area == pytest.approx(box.area())

    def test_anisotropic_box_keeps_cells_square_ish(self):
        xs, ys, _ = grid_points(Mbr(0, 0, 100, 10), resolution=20)
        unique_x = np.unique(xs)
        unique_y = np.unique(ys)
        assert len(unique_x) == 20
        assert len(unique_y) == 2

    def test_degenerate_box(self):
        xs, ys, cell_area = grid_points(Mbr(1, 1, 1, 1), resolution=8)
        assert len(xs) == 1
        assert cell_area == 0.0

    def test_rejects_zero_resolution(self):
        with pytest.raises(ValueError):
            grid_points(Mbr(0, 0, 1, 1), resolution=0)


class TestPolygonGridPoints:
    def test_all_points_inside_polygon(self):
        shape = Polygon.rectangle(0, 0, 4, 4)
        xs, ys, _ = polygon_grid_points(shape, resolution=8)
        assert shape.contains_many(xs, ys).all()

    def test_tiny_polygon_falls_back_to_centroid(self):
        sliver = Polygon(
            [Point(0, 0), Point(10, 0.001), Point(10, 0.002), Point(0, 0.001)]
        )
        xs, ys, weight = polygon_grid_points(sliver, resolution=2)
        assert len(xs) >= 1
        assert weight > 0.0


class TestRegionArea:
    def test_rectangle_is_exact(self):
        shape = Polygon.rectangle(0, 0, 8, 4)
        assert region_area(shape, resolution=32) == pytest.approx(32.0, rel=1e-9)

    def test_circle_converges(self):
        circle = Circle(Point(0, 0), 3.0)
        coarse = abs(region_area(circle, resolution=16) - circle.area())
        fine = abs(region_area(circle, resolution=256) - circle.area())
        assert fine < coarse
        assert fine / circle.area() < 0.01

    def test_empty_region_zero(self):
        assert region_area(EmptyRegion()) == 0.0


class TestIntersectionFraction:
    def test_full_coverage(self):
        poi = Polygon.rectangle(0, 0, 2, 2)
        region = Circle(Point(1, 1), 10.0)
        assert intersection_fraction(region, poi) == 1.0

    def test_no_coverage(self):
        poi = Polygon.rectangle(0, 0, 2, 2)
        region = Circle(Point(100, 100), 1.0)
        assert intersection_fraction(region, poi) == 0.0

    def test_half_coverage(self):
        poi = Polygon.rectangle(0, 0, 2, 2)
        region = Polygon.rectangle(0, 0, 1, 2)  # left half
        fraction = intersection_fraction(region, poi, resolution=64)
        assert fraction == pytest.approx(0.5, abs=0.02)

    def test_always_within_unit_interval(self):
        poi = Polygon.rectangle(0, 0, 3, 3)
        for radius in (0.1, 1.0, 2.0, 50.0):
            fraction = intersection_fraction(Circle(Point(1.5, 1.5), radius), poi)
            assert 0.0 <= fraction <= 1.0

    def test_empty_region_gives_zero(self):
        poi = Polygon.rectangle(0, 0, 1, 1)
        assert intersection_fraction(EmptyRegion(), poi) == 0.0

    def test_determinism(self):
        poi = Polygon.rectangle(0, 0, 5, 3)
        region = Circle(Point(2, 2), 2.2)
        values = {intersection_fraction(region, poi) for _ in range(5)}
        assert len(values) == 1


class TestEpsilonHelpers:
    """The shared tolerant comparisons the float-equality rule points to."""

    def test_near_zero_on_round_off(self):
        assert near_zero(0.0)
        assert near_zero(AREA_EPSILON / 2)
        assert near_zero(-AREA_EPSILON / 2)
        assert not near_zero(1e-6)
        assert near_zero(0.25, tolerance=0.5)

    def test_floats_equal_tolerates_representation_noise(self):
        assert floats_equal(0.1 + 0.2, 0.3)
        assert floats_equal(1e9, 1e9 * (1 + 1e-10))
        assert not floats_equal(1.0, 1.0001)
        assert floats_equal(0.0, AREA_EPSILON / 2)

    def test_degenerate_point_region_has_zero_area(self):
        # A zero-radius circle produces a degenerate (single-cell,
        # zero-cell-area) grid; the area must come out exactly 0.0 and
        # near_zero must classify it, never an exact == comparison.
        point_region = Circle(Point(3.0, 4.0), 0.0)
        area = region_area(point_region, resolution=16)
        assert near_zero(area)
        assert area == 0.0

    def test_zero_width_polygon_region_area(self):
        line = Polygon(
            [Point(0, 0), Point(5, 0), Point(5, 1e-15), Point(0, 1e-15)]
        )
        assert near_zero(region_area(line, resolution=8))
