"""Unit and property tests for :mod:`repro.geometry.point`."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.geometry import Point

finite = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)
points = st.builds(Point, finite, finite)


class TestArithmetic:
    def test_add(self):
        assert Point(1.0, 2.0) + Point(3.0, -1.0) == Point(4.0, 1.0)

    def test_sub(self):
        assert Point(1.0, 2.0) - Point(3.0, -1.0) == Point(-2.0, 3.0)

    def test_scalar_multiplication_both_sides(self):
        assert Point(1.0, -2.0) * 3.0 == Point(3.0, -6.0)
        assert 3.0 * Point(1.0, -2.0) == Point(3.0, -6.0)

    def test_iteration_unpacks_coordinates(self):
        x, y = Point(5.0, 7.0)
        assert (x, y) == (5.0, 7.0)

    def test_dot_and_cross(self):
        a, b = Point(1.0, 2.0), Point(3.0, 4.0)
        assert a.dot(b) == 11.0
        assert a.cross(b) == 4.0 - 6.0

    def test_cross_is_antisymmetric(self):
        a, b = Point(1.5, -2.0), Point(0.5, 4.0)
        assert a.cross(b) == -b.cross(a)


class TestDistances:
    def test_pythagorean_triple(self):
        assert Point(0.0, 0.0).distance_to(Point(3.0, 4.0)) == 5.0

    def test_norm_matches_distance_from_origin(self):
        p = Point(-3.0, 4.0)
        assert p.norm() == Point(0.0, 0.0).distance_to(p)

    def test_distance_to_self_is_zero(self):
        p = Point(2.5, -1.5)
        assert p.distance_to(p) == 0.0


class TestInterpolation:
    def test_midpoint(self):
        assert Point(0.0, 0.0).midpoint(Point(4.0, 6.0)) == Point(2.0, 3.0)

    def test_lerp_endpoints(self):
        a, b = Point(1.0, 1.0), Point(5.0, -3.0)
        assert a.lerp(b, 0.0) == a
        assert a.lerp(b, 1.0) == b

    def test_lerp_midway(self):
        a, b = Point(0.0, 0.0), Point(2.0, 4.0)
        assert a.lerp(b, 0.5) == Point(1.0, 2.0)


class TestAlmostEqual:
    def test_within_tolerance(self):
        assert Point(1.0, 1.0).almost_equal(Point(1.0 + 1e-12, 1.0 - 1e-12))

    def test_outside_tolerance(self):
        assert not Point(1.0, 1.0).almost_equal(Point(1.001, 1.0))

    def test_custom_tolerance(self):
        assert Point(1.0, 1.0).almost_equal(Point(1.05, 1.0), tolerance=0.1)


class TestProperties:
    @given(points, points)
    def test_distance_is_symmetric(self, a, b):
        assert a.distance_to(b) == pytest.approx(b.distance_to(a))

    @given(points, points, points)
    def test_triangle_inequality(self, a, b, c):
        direct = a.distance_to(c)
        through = a.distance_to(b) + b.distance_to(c)
        assert direct <= through + 1e-6 * (1.0 + through)

    @given(points, points)
    def test_addition_then_subtraction_roundtrips(self, a, b):
        result = (a + b) - b
        assert result.almost_equal(a, tolerance=1e-6 * (1.0 + abs(a.x) + abs(b.x)))

    @given(points, points, st.floats(min_value=0.0, max_value=1.0))
    def test_lerp_stays_on_segment(self, a, b, f):
        p = a.lerp(b, f)
        length = a.distance_to(b)
        assert a.distance_to(p) + p.distance_to(b) == pytest.approx(
            length, abs=1e-6 * (1.0 + length)
        )
