"""Unit and property tests for region composition."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.geometry import (
    Circle,
    EmptyRegion,
    Mbr,
    Point,
    Polygon,
    RegionDifference,
    RegionIntersection,
    RegionUnion,
    intersect_all,
    union_all,
)

coordinate = st.floats(
    min_value=-50.0, max_value=50.0, allow_nan=False, allow_infinity=False
)
circles = st.builds(
    Circle,
    st.builds(Point, coordinate, coordinate),
    st.floats(min_value=0.1, max_value=20.0),
)
probes = st.builds(Point, coordinate, coordinate)


class TestEmptyRegion:
    def test_contains_nothing(self):
        empty = EmptyRegion()
        assert empty.mbr is None
        assert empty.is_empty()
        assert not empty.contains(Point(0, 0))
        assert not empty.contains_many(np.zeros(3), np.zeros(3)).any()


class TestIntersection:
    def test_two_circles(self):
        a = Circle(Point(0, 0), 2.0)
        b = Circle(Point(2, 0), 2.0)
        overlap = a & b
        assert overlap.contains(Point(1, 0))
        assert not overlap.contains(Point(-1.5, 0))
        assert not overlap.contains(Point(3.5, 0))

    def test_disjoint_circles_empty_mbr(self):
        overlap = Circle(Point(0, 0), 1.0) & Circle(Point(10, 0), 1.0)
        assert overlap.mbr is None
        assert overlap.is_empty()
        assert not overlap.contains(Point(5, 0))

    def test_mbr_is_intersection_of_part_mbrs(self):
        a = Circle(Point(0, 0), 2.0)
        b = Circle(Point(2, 0), 2.0)
        overlap = RegionIntersection((a, b))
        assert overlap.mbr == a.mbr.intersection(b.mbr)

    def test_rejects_zero_parts(self):
        with pytest.raises(ValueError):
            RegionIntersection(())

    def test_intersect_all_single_part_passthrough(self):
        c = Circle(Point(0, 0), 1.0)
        assert intersect_all([c]) is c

    def test_with_empty_part_is_empty(self):
        region = RegionIntersection((Circle(Point(0, 0), 1.0), EmptyRegion()))
        assert region.mbr is None


class TestUnion:
    def test_two_circles(self):
        union = Circle(Point(0, 0), 1.0) | Circle(Point(5, 0), 1.0)
        assert union.contains(Point(0, 0))
        assert union.contains(Point(5, 0))
        assert not union.contains(Point(2.5, 0))

    def test_mbr_covers_all_parts(self):
        a = Circle(Point(0, 0), 1.0)
        b = Circle(Point(5, 0), 1.0)
        union = RegionUnion((a, b))
        assert union.mbr is not None
        assert union.mbr.contains_mbr(a.mbr)
        assert union.mbr.contains_mbr(b.mbr)

    def test_union_all_empty_is_empty_region(self):
        assert union_all([]).is_empty()

    def test_union_drops_empty_parts(self):
        union = RegionUnion((EmptyRegion(), Circle(Point(0, 0), 1.0)))
        assert len(union.parts) == 1


class TestDifference:
    def test_annulus_via_difference(self):
        outer = Circle(Point(0, 0), 3.0)
        inner = Circle(Point(0, 0), 1.0)
        band = outer - inner
        assert band.contains(Point(2, 0))
        assert not band.contains(Point(0, 0))
        assert not band.contains(Point(4, 0))

    def test_mbr_is_base_mbr(self):
        outer = Circle(Point(0, 0), 3.0)
        inner = Circle(Point(0, 0), 1.0)
        assert RegionDifference(outer, inner).mbr == outer.mbr


class TestVectorisedConsistency:
    """contains_many must agree with contains for every composition."""

    def _check(self, region, n=400, seed=3):
        rng = np.random.default_rng(seed)
        xs = rng.uniform(-60, 60, n)
        ys = rng.uniform(-60, 60, n)
        vector = region.contains_many(xs, ys)
        scalar = np.array(
            [region.contains(Point(float(x), float(y))) for x, y in zip(xs, ys)]
        )
        np.testing.assert_array_equal(vector, scalar)

    def test_intersection(self):
        self._check(Circle(Point(0, 0), 30.0) & Circle(Point(20, 5), 25.0))

    def test_union(self):
        self._check(Circle(Point(-20, 0), 15.0) | Circle(Point(25, 10), 20.0))

    def test_difference(self):
        self._check(Circle(Point(0, 0), 40.0) - Circle(Point(10, 0), 15.0))

    def test_nested_composition(self):
        region = (Circle(Point(0, 0), 35.0) & Circle(Point(10, 0), 30.0)) | (
            Polygon.rectangle(-50, -50, -20, -20) - Circle(Point(-35, -35), 5.0)
        )
        self._check(region)

    def test_empty_batch(self):
        region = Circle(Point(0, 0), 1.0) & Circle(Point(1, 0), 1.0)
        assert len(region.contains_many(np.zeros(0), np.zeros(0))) == 0


class TestProperties:
    @given(circles, circles, probes)
    def test_intersection_semantics(self, a, b, p):
        assert (a & b).contains(p) == (a.contains(p) and b.contains(p))

    @given(circles, circles, probes)
    def test_union_semantics(self, a, b, p):
        assert (a | b).contains(p) == (a.contains(p) or b.contains(p))

    @given(circles, circles, probes)
    def test_difference_semantics(self, a, b, p):
        assert (a - b).contains(p) == (a.contains(p) and not b.contains(p))

    @given(circles, circles, probes)
    def test_mbr_soundness(self, a, b, p):
        for region in (a & b, a | b, a - b):
            if region.contains(p):
                assert region.mbr is not None
                assert region.mbr.contains_point(p, tolerance=1e-6)
