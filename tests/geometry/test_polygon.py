"""Unit and property tests for :mod:`repro.geometry.polygon`."""

import math

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.geometry import Mbr, Point, Polygon


def l_shape() -> Polygon:
    """A non-convex L: a 2x2 square missing its top-right 1x1 quadrant."""
    return Polygon(
        [
            Point(0, 0),
            Point(2, 0),
            Point(2, 1),
            Point(1, 1),
            Point(1, 2),
            Point(0, 2),
        ]
    )


class TestConstruction:
    def test_rejects_too_few_vertices(self):
        with pytest.raises(ValueError):
            Polygon([Point(0, 0), Point(1, 0)])

    def test_rectangle_constructor(self):
        r = Polygon.rectangle(0, 0, 4, 3)
        assert r.area() == 12.0
        assert r.mbr == Mbr(0, 0, 4, 3)

    def test_rectangle_rejects_degenerate(self):
        with pytest.raises(ValueError):
            Polygon.rectangle(0, 0, 0, 3)

    def test_from_mbr(self):
        box = Mbr(1, 2, 3, 5)
        assert Polygon.from_mbr(box).area() == box.area()

    def test_regular_polygon(self):
        hexagon = Polygon.regular(Point(0, 0), 2.0, 6)
        assert len(hexagon.vertices) == 6
        expected = 3.0 * math.sqrt(3) / 2.0 * 4.0  # (3*sqrt(3)/2) r^2
        assert hexagon.area() == pytest.approx(expected)

    def test_regular_rejects_two_sides(self):
        with pytest.raises(ValueError):
            Polygon.regular(Point(0, 0), 1.0, 2)


class TestMeasures:
    def test_shoelace_area_independent_of_orientation(self):
        cw = Polygon([Point(0, 0), Point(0, 2), Point(2, 2), Point(2, 0)])
        ccw = Polygon([Point(0, 0), Point(2, 0), Point(2, 2), Point(0, 2)])
        assert cw.area() == ccw.area() == 4.0
        assert cw.signed_area() == -ccw.signed_area()

    def test_l_shape_area(self):
        assert l_shape().area() == 3.0

    def test_perimeter(self):
        assert Polygon.rectangle(0, 0, 3, 4).perimeter() == 14.0

    def test_centroid_of_rectangle(self):
        c = Polygon.rectangle(0, 0, 4, 2).centroid()
        assert c.almost_equal(Point(2.0, 1.0))

    def test_centroid_of_l_shape(self):
        # Decompose: [0,1]x[0,2] (area 2, centroid (0.5, 1)) +
        # [1,2]x[0,1] (area 1, centroid (1.5, 0.5)).
        c = l_shape().centroid()
        assert c.almost_equal(Point((2 * 0.5 + 1 * 1.5) / 3, (2 * 1.0 + 1 * 0.5) / 3))


class TestConvexity:
    def test_rectangle_is_convex(self):
        assert Polygon.rectangle(0, 0, 1, 1).is_convex()

    def test_l_shape_is_not_convex(self):
        assert not l_shape().is_convex()

    def test_rectangle_detection(self):
        assert Polygon.rectangle(0, 0, 2, 1).is_axis_aligned_rectangle()
        assert not l_shape().is_axis_aligned_rectangle()
        diamond = Polygon([Point(1, 0), Point(2, 1), Point(1, 2), Point(0, 1)])
        assert not diamond.is_axis_aligned_rectangle()


class TestContainment:
    def test_interior_boundary_exterior(self):
        r = Polygon.rectangle(0, 0, 2, 2)
        assert r.contains(Point(1, 1))
        assert r.contains(Point(0, 1))  # boundary counts as inside
        assert r.contains(Point(0, 0))  # vertex counts as inside
        assert not r.contains(Point(2.1, 1))

    def test_l_shape_notch_is_outside(self):
        shape = l_shape()
        assert shape.contains(Point(0.5, 0.5))
        assert shape.contains(Point(1.5, 0.5))
        assert not shape.contains(Point(1.5, 1.5))  # the notch

    def test_contains_many_matches_scalar_off_boundary(self):
        shape = l_shape()
        rng = np.random.default_rng(5)
        xs = rng.uniform(-0.5, 2.5, 300)
        ys = rng.uniform(-0.5, 2.5, 300)
        vector = shape.contains_many(xs, ys)
        for x, y, v in zip(xs, ys, vector):
            point = Point(float(x), float(y))
            # Skip points within a hair of the boundary, where the scalar
            # path's boundary tolerance intentionally differs.
            if any(e.distance_to_point(point) < 1e-6 for e in shape.edges()):
                continue
            assert v == shape.contains(point)


class TestTransforms:
    def test_translated(self):
        r = Polygon.rectangle(0, 0, 1, 1).translated(5, -2)
        assert r.mbr == Mbr(5, -2, 6, -1)

    def test_scaled_about_centroid_preserves_centroid(self):
        r = Polygon.rectangle(0, 0, 4, 2)
        scaled = r.scaled_about_centroid(0.5)
        assert scaled.centroid().almost_equal(r.centroid(), tolerance=1e-9)
        assert scaled.area() == pytest.approx(r.area() * 0.25)

    def test_scaled_rejects_non_positive(self):
        with pytest.raises(ValueError):
            Polygon.rectangle(0, 0, 1, 1).scaled_about_centroid(0.0)


@st.composite
def convex_polygons(draw):
    """Random convex polygons via points on a circle."""
    n = draw(st.integers(min_value=3, max_value=10))
    radius = draw(st.floats(min_value=0.5, max_value=50.0))
    cx = draw(st.floats(min_value=-100.0, max_value=100.0))
    cy = draw(st.floats(min_value=-100.0, max_value=100.0))
    angles = sorted(
        draw(
            st.lists(
                st.floats(min_value=0.0, max_value=2 * math.pi - 1e-3),
                min_size=n,
                max_size=n,
                unique=True,
            )
        )
    )
    return Polygon(
        [
            Point(cx + radius * math.cos(a), cy + radius * math.sin(a))
            for a in angles
        ]
    )


class TestProperties:
    @given(convex_polygons())
    def test_inscribed_polygons_are_convex(self, polygon):
        assert polygon.is_convex()

    @given(convex_polygons())
    def test_centroid_inside_convex_polygon(self, polygon):
        if polygon.area() > 1e-6:
            assert polygon.contains(polygon.centroid())

    @given(convex_polygons())
    def test_area_at_most_mbr_area(self, polygon):
        assert polygon.area() <= polygon.mbr.area() + 1e-6

    @given(convex_polygons())
    def test_vertices_inside_own_polygon(self, polygon):
        for vertex in polygon.vertices:
            assert polygon.contains(vertex)
