"""Unit and property tests for :mod:`repro.geometry.segment`."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.geometry import Point, Segment

coordinate = st.floats(
    min_value=-1e3, max_value=1e3, allow_nan=False, allow_infinity=False
)
points = st.builds(Point, coordinate, coordinate)


class TestBasics:
    def test_length(self):
        assert Segment(Point(0, 0), Point(3, 4)).length() == 5.0

    def test_direction_is_unit(self):
        d = Segment(Point(0, 0), Point(10, 0)).direction()
        assert d == Point(1.0, 0.0)

    def test_direction_of_degenerate_segment(self):
        assert Segment(Point(1, 1), Point(1, 1)).direction() == Point(0.0, 0.0)

    def test_point_at(self):
        s = Segment(Point(0, 0), Point(4, 0))
        assert s.point_at(0.25) == Point(1.0, 0.0)

    def test_midpoint(self):
        assert Segment(Point(0, 0), Point(2, 2)).midpoint() == Point(1.0, 1.0)


class TestDistance:
    def test_distance_to_point_on_segment(self):
        s = Segment(Point(0, 0), Point(10, 0))
        assert s.distance_to_point(Point(5, 0)) == 0.0

    def test_perpendicular_distance(self):
        s = Segment(Point(0, 0), Point(10, 0))
        assert s.distance_to_point(Point(5, 3)) == 3.0

    def test_distance_clamps_to_endpoints(self):
        s = Segment(Point(0, 0), Point(10, 0))
        assert s.distance_to_point(Point(13, 4)) == 5.0
        assert s.distance_to_point(Point(-3, 4)) == 5.0

    def test_closest_point_interior(self):
        s = Segment(Point(0, 0), Point(10, 0))
        assert s.closest_point_to(Point(4, 7)) == Point(4.0, 0.0)

    def test_degenerate_segment_distance(self):
        s = Segment(Point(1, 1), Point(1, 1))
        assert s.distance_to_point(Point(4, 5)) == 5.0


class TestSegmentIntersection:
    def test_crossing_segments(self):
        a = Segment(Point(0, 0), Point(2, 2))
        b = Segment(Point(0, 2), Point(2, 0))
        assert a.intersects_segment(b)

    def test_parallel_disjoint(self):
        a = Segment(Point(0, 0), Point(2, 0))
        b = Segment(Point(0, 1), Point(2, 1))
        assert not a.intersects_segment(b)

    def test_collinear_overlapping(self):
        a = Segment(Point(0, 0), Point(4, 0))
        b = Segment(Point(2, 0), Point(6, 0))
        assert a.intersects_segment(b)

    def test_touching_at_endpoint(self):
        a = Segment(Point(0, 0), Point(2, 0))
        b = Segment(Point(2, 0), Point(2, 5))
        assert a.intersects_segment(b)

    def test_t_shape_non_touching(self):
        a = Segment(Point(0, 0), Point(2, 0))
        b = Segment(Point(1, 1), Point(1, 3))
        assert not a.intersects_segment(b)


class TestCircleIntersection:
    def test_full_crossing(self):
        s = Segment(Point(-10, 0), Point(10, 0))
        window = s.circle_intersection_fractions(Point(0, 0), 5.0)
        assert window is not None
        f_in, f_out = window
        assert s.point_at(f_in).almost_equal(Point(-5.0, 0.0), tolerance=1e-6)
        assert s.point_at(f_out).almost_equal(Point(5.0, 0.0), tolerance=1e-6)

    def test_miss(self):
        s = Segment(Point(-10, 10), Point(10, 10))
        assert s.circle_intersection_fractions(Point(0, 0), 5.0) is None

    def test_tangent(self):
        s = Segment(Point(-10, 5), Point(10, 5))
        window = s.circle_intersection_fractions(Point(0, 0), 5.0)
        assert window is not None
        f_in, f_out = window
        assert f_in == pytest.approx(f_out, abs=1e-6)

    def test_segment_fully_inside(self):
        s = Segment(Point(-1, 0), Point(1, 0))
        assert s.circle_intersection_fractions(Point(0, 0), 5.0) == (0.0, 1.0)

    def test_starts_inside_exits(self):
        s = Segment(Point(0, 0), Point(10, 0))
        window = s.circle_intersection_fractions(Point(0, 0), 4.0)
        assert window is not None
        f_in, f_out = window
        assert f_in == 0.0
        assert f_out == pytest.approx(0.4)

    def test_degenerate_segment_inside(self):
        s = Segment(Point(1, 0), Point(1, 0))
        assert s.circle_intersection_fractions(Point(0, 0), 2.0) == (0.0, 1.0)

    def test_degenerate_segment_outside(self):
        s = Segment(Point(9, 0), Point(9, 0))
        assert s.circle_intersection_fractions(Point(0, 0), 2.0) is None

    @given(points, points, points, st.floats(min_value=0.1, max_value=100.0))
    def test_window_endpoints_lie_near_circle_or_segment_ends(
        self, a, b, center, radius
    ):
        s = Segment(a, b)
        window = s.circle_intersection_fractions(center, radius)
        if window is None:
            return
        f_in, f_out = window
        assert 0.0 <= f_in <= f_out <= 1.0
        # Points inside the window are inside the circle (with tolerance
        # scaled to the coordinates involved).
        mid = s.point_at((f_in + f_out) / 2.0)
        tolerance = 1e-6 * (1.0 + abs(center.x) + abs(center.y) + radius + s.length())
        assert center.distance_to(mid) <= radius + tolerance
