"""Unit and property tests for :mod:`repro.geometry.mbr`."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.geometry import Mbr, Point

coordinate = st.floats(
    min_value=-1e4, max_value=1e4, allow_nan=False, allow_infinity=False
)


@st.composite
def mbrs(draw):
    x1, x2 = sorted((draw(coordinate), draw(coordinate)))
    y1, y2 = sorted((draw(coordinate), draw(coordinate)))
    return Mbr(x1, y1, x2, y2)


class TestConstruction:
    def test_rejects_inverted_bounds(self):
        with pytest.raises(ValueError):
            Mbr(1.0, 0.0, 0.0, 1.0)

    def test_from_points(self):
        box = Mbr.from_points([Point(1.0, 5.0), Point(-2.0, 3.0), Point(0.0, 7.0)])
        assert box == Mbr(-2.0, 3.0, 1.0, 7.0)

    def test_from_points_requires_one_point(self):
        with pytest.raises(ValueError):
            Mbr.from_points([])

    def test_around_square(self):
        box = Mbr.around(Point(1.0, 2.0), 3.0)
        assert box == Mbr(-2.0, -1.0, 4.0, 5.0)

    def test_around_asymmetric(self):
        box = Mbr.around(Point(0.0, 0.0), 1.0, 2.0)
        assert box == Mbr(-1.0, -2.0, 1.0, 2.0)


class TestMeasures:
    def test_area_and_perimeter(self):
        box = Mbr(0.0, 0.0, 4.0, 3.0)
        assert box.area() == 12.0
        assert box.perimeter() == 14.0

    def test_center(self):
        assert Mbr(0.0, 0.0, 4.0, 2.0).center == Point(2.0, 1.0)

    def test_degenerate_point_box(self):
        box = Mbr(1.0, 1.0, 1.0, 1.0)
        assert box.area() == 0.0
        assert box.contains_point(Point(1.0, 1.0))


class TestPredicates:
    def test_contains_point_boundary(self):
        box = Mbr(0.0, 0.0, 1.0, 1.0)
        assert box.contains_point(Point(0.0, 0.0))
        assert box.contains_point(Point(1.0, 1.0))
        assert not box.contains_point(Point(1.1, 0.5))

    def test_contains_mbr(self):
        outer = Mbr(0.0, 0.0, 10.0, 10.0)
        assert outer.contains_mbr(Mbr(1.0, 1.0, 9.0, 9.0))
        assert outer.contains_mbr(outer)
        assert not outer.contains_mbr(Mbr(5.0, 5.0, 11.0, 9.0))

    def test_intersects_touching_edges(self):
        a = Mbr(0.0, 0.0, 1.0, 1.0)
        b = Mbr(1.0, 0.0, 2.0, 1.0)
        assert a.intersects(b)

    def test_disjoint(self):
        assert not Mbr(0.0, 0.0, 1.0, 1.0).intersects(Mbr(2.0, 2.0, 3.0, 3.0))


class TestCombinators:
    def test_union(self):
        a = Mbr(0.0, 0.0, 1.0, 1.0)
        b = Mbr(2.0, -1.0, 3.0, 0.5)
        assert a.union(b) == Mbr(0.0, -1.0, 3.0, 1.0)

    def test_intersection_overlapping(self):
        a = Mbr(0.0, 0.0, 2.0, 2.0)
        b = Mbr(1.0, 1.0, 3.0, 3.0)
        assert a.intersection(b) == Mbr(1.0, 1.0, 2.0, 2.0)

    def test_intersection_disjoint_is_none(self):
        assert Mbr(0.0, 0.0, 1.0, 1.0).intersection(Mbr(5.0, 5.0, 6.0, 6.0)) is None

    def test_expanded(self):
        assert Mbr(0.0, 0.0, 1.0, 1.0).expanded(2.0) == Mbr(-2.0, -2.0, 3.0, 3.0)

    def test_expanded_rejects_negative(self):
        with pytest.raises(ValueError):
            Mbr(0.0, 0.0, 1.0, 1.0).expanded(-1.0)

    def test_enlargement_zero_for_contained(self):
        outer = Mbr(0.0, 0.0, 10.0, 10.0)
        assert outer.enlargement(Mbr(1.0, 1.0, 2.0, 2.0)) == 0.0

    def test_union_all(self):
        boxes = [Mbr(0, 0, 1, 1), Mbr(2, 2, 3, 3), Mbr(-1, 0, 0, 1)]
        assert Mbr.union_all(boxes) == Mbr(-1, 0, 3, 3)

    def test_min_distance_to_point(self):
        box = Mbr(0.0, 0.0, 1.0, 1.0)
        assert box.min_distance_to_point(Point(0.5, 0.5)) == 0.0
        assert box.min_distance_to_point(Point(4.0, 5.0)) == 5.0


class TestProperties:
    @given(mbrs(), mbrs())
    def test_union_contains_both(self, a, b):
        union = a.union(b)
        assert union.contains_mbr(a)
        assert union.contains_mbr(b)

    @given(mbrs(), mbrs())
    def test_intersection_contained_in_both(self, a, b):
        overlap = a.intersection(b)
        if overlap is not None:
            assert a.contains_mbr(overlap)
            assert b.contains_mbr(overlap)

    @given(mbrs(), mbrs())
    def test_intersects_iff_intersection_exists(self, a, b):
        assert a.intersects(b) == (a.intersection(b) is not None)

    @given(mbrs(), mbrs())
    def test_enlargement_non_negative(self, a, b):
        assert a.enlargement(b) >= -1e-6

    @given(mbrs(), st.floats(min_value=0.0, max_value=100.0))
    def test_expanded_contains_original(self, box, margin):
        assert box.expanded(margin).contains_mbr(box)
