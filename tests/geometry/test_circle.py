"""Unit and property tests for :mod:`repro.geometry.circle`."""

import math

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.geometry import Circle, Point, region_area

coordinate = st.floats(
    min_value=-1e3, max_value=1e3, allow_nan=False, allow_infinity=False
)
radii = st.floats(min_value=0.01, max_value=100.0)
circles = st.builds(Circle, st.builds(Point, coordinate, coordinate), radii)


class TestBasics:
    def test_rejects_negative_radius(self):
        with pytest.raises(ValueError):
            Circle(Point(0, 0), -1.0)

    def test_area(self):
        assert Circle(Point(0, 0), 2.0).area() == pytest.approx(4 * math.pi)

    def test_mbr(self):
        box = Circle(Point(1, 2), 3.0).mbr
        assert (box.min_x, box.min_y, box.max_x, box.max_y) == (-2, -1, 4, 5)

    def test_contains_center_and_boundary(self):
        c = Circle(Point(0, 0), 1.0)
        assert c.contains(Point(0, 0))
        assert c.contains(Point(1, 0))
        assert not c.contains(Point(1.001, 0))

    def test_contains_many_matches_scalar(self):
        c = Circle(Point(0.5, -0.5), 2.0)
        xs = np.linspace(-3, 3, 25)
        ys = np.linspace(-3, 3, 25)
        vector = c.contains_many(xs, ys)
        scalar = [c.contains(Point(x, y)) for x, y in zip(xs, ys)]
        assert list(vector) == scalar


class TestDistances:
    def test_distance_to_inside_point_is_zero(self):
        assert Circle(Point(0, 0), 2.0).distance_to_point(Point(1, 0)) == 0.0

    def test_distance_to_outside_point(self):
        assert Circle(Point(0, 0), 2.0).distance_to_point(Point(5, 0)) == 3.0

    def test_expanded(self):
        c = Circle(Point(1, 1), 2.0).expanded(1.5)
        assert c.radius == 3.5
        assert c.center == Point(1, 1)

    def test_expanded_rejects_negative(self):
        with pytest.raises(ValueError):
            Circle(Point(0, 0), 1.0).expanded(-0.1)


class TestCircleIntersection:
    def test_overlapping(self):
        a = Circle(Point(0, 0), 2.0)
        b = Circle(Point(3, 0), 2.0)
        assert a.intersects_circle(b)

    def test_touching_counts_as_intersecting(self):
        a = Circle(Point(0, 0), 1.0)
        b = Circle(Point(2, 0), 1.0)
        assert a.intersects_circle(b)

    def test_disjoint(self):
        a = Circle(Point(0, 0), 1.0)
        b = Circle(Point(5, 0), 1.0)
        assert not a.intersects_circle(b)

    def test_contained_circle_intersects(self):
        a = Circle(Point(0, 0), 5.0)
        b = Circle(Point(1, 0), 1.0)
        assert a.intersects_circle(b)


class TestBoundary:
    def test_boundary_point_towards(self):
        c = Circle(Point(0, 0), 2.0)
        p = c.boundary_point_towards(Point(10, 0))
        assert p.almost_equal(Point(2.0, 0.0), tolerance=1e-9)

    def test_boundary_point_towards_center_falls_back(self):
        c = Circle(Point(1, 1), 2.0)
        p = c.boundary_point_towards(Point(1, 1))
        assert c.center.distance_to(p) == pytest.approx(2.0)

    def test_sample_boundary_count_and_radius(self):
        c = Circle(Point(0, 0), 3.0)
        points = c.sample_boundary(16)
        assert len(points) == 16
        for p in points:
            assert c.center.distance_to(p) == pytest.approx(3.0)

    def test_sample_boundary_rejects_zero(self):
        with pytest.raises(ValueError):
            Circle(Point(0, 0), 1.0).sample_boundary(0)


class TestQuadrature:
    def test_area_estimate_converges(self):
        c = Circle(Point(0, 0), 2.0)
        estimate = region_area(c, resolution=200)
        assert estimate == pytest.approx(c.area(), rel=0.01)


class TestProperties:
    @given(circles, st.builds(Point, coordinate, coordinate))
    def test_contains_iff_distance_zero(self, circle, point):
        if circle.contains(point):
            assert circle.distance_to_point(point) <= 1e-6
        else:
            assert circle.distance_to_point(point) > 0.0

    @given(circles, st.builds(Point, coordinate, coordinate))
    def test_contained_point_in_mbr(self, circle, point):
        if circle.contains(point):
            assert circle.mbr.contains_point(point, tolerance=1e-6)
