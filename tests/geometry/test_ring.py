"""Unit and property tests for :mod:`repro.geometry.ring`."""

import math

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.geometry import Circle, Point, Ring, region_area

coordinate = st.floats(
    min_value=-100.0, max_value=100.0, allow_nan=False, allow_infinity=False
)
rings = st.builds(
    Ring,
    st.builds(
        Circle,
        st.builds(Point, coordinate, coordinate),
        st.floats(min_value=0.1, max_value=10.0),
    ),
    st.floats(min_value=0.0, max_value=20.0),
)


class TestBasics:
    def test_rejects_negative_width(self):
        with pytest.raises(ValueError):
            Ring(Circle(Point(0, 0), 1.0), -0.5)

    def test_radii(self):
        ring = Ring(Circle(Point(0, 0), 2.0), 3.0)
        assert ring.inner_radius == 2.0
        assert ring.outer_radius == 5.0

    def test_area(self):
        ring = Ring(Circle(Point(0, 0), 1.0), 1.0)
        assert ring.area() == pytest.approx(math.pi * (4.0 - 1.0))

    def test_zero_width_ring_has_zero_area(self):
        assert Ring(Circle(Point(0, 0), 2.0), 0.0).area() == 0.0

    def test_mbr_matches_outer_circle(self):
        ring = Ring(Circle(Point(1, 1), 1.0), 2.0)
        assert ring.mbr == ring.outer_circle().mbr


class TestContainment:
    def test_annulus_membership(self):
        ring = Ring(Circle(Point(0, 0), 2.0), 2.0)
        assert not ring.contains(Point(0, 0))  # inside the hole
        assert not ring.contains(Point(1.0, 0))  # still in the hole
        assert ring.contains(Point(2.0, 0))  # inner boundary included
        assert ring.contains(Point(3.0, 0))  # in the band
        assert ring.contains(Point(4.0, 0))  # outer boundary included
        assert not ring.contains(Point(4.01, 0))  # outside

    def test_contains_many_matches_scalar(self):
        ring = Ring(Circle(Point(0.3, -0.7), 1.5), 2.5)
        xs = np.linspace(-5, 5, 41)
        ys = np.linspace(-5, 5, 41)
        vector = ring.contains_many(xs, ys)
        scalar = [ring.contains(Point(x, y)) for x, y in zip(xs, ys)]
        assert list(vector) == scalar

    def test_quadrature_matches_analytic_area(self):
        ring = Ring(Circle(Point(0, 0), 2.0), 3.0)
        assert region_area(ring, resolution=250) == pytest.approx(
            ring.area(), rel=0.02
        )


class TestProperties:
    @given(rings, st.builds(Point, coordinate, coordinate))
    def test_membership_by_distance_band(self, ring, point):
        distance = ring.center.distance_to(point)
        inside = ring.contains(point)
        strictly_in_band = (
            ring.inner_radius + 1e-6 < distance < ring.outer_radius - 1e-6
        )
        strictly_outside = (
            distance < ring.inner_radius - 1e-6
            or distance > ring.outer_radius + 1e-6
        )
        if strictly_in_band:
            assert inside
        if strictly_outside:
            assert not inside

    @given(rings)
    def test_ring_excludes_detection_disk_interior(self, ring):
        # The ring models "the object has LEFT the detection range": points
        # strictly inside the inner circle are never included.
        if ring.inner_radius > 1e-3:
            probe = Point(ring.center.x + ring.inner_radius / 2.0, ring.center.y)
            assert not ring.contains(probe)
