"""Unit and property tests for :mod:`repro.geometry.ellipse`.

The extended ellipse is the paper's inter-detection uncertainty primitive;
its membership predicate is ``dist(p, A) + dist(p, B) <= budget`` with
disk distances.  With point foci (zero radii) it degenerates to a classic
ellipse, which gives an analytic oracle to test against.
"""

import math

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.geometry import Circle, ExtendedEllipse, Point, region_area

coordinate = st.floats(
    min_value=-100.0, max_value=100.0, allow_nan=False, allow_infinity=False
)


class TestDegenerateClassicEllipse:
    """Zero-radius foci: the textbook two-focus ellipse."""

    def make(self, c=4.0, a=5.0):
        # Foci at (+-c, 0), semi-major a, so semi-minor b = 3 for (4, 5).
        return ExtendedEllipse(
            Circle(Point(-c, 0), 0.0), Circle(Point(c, 0), 0.0), 2.0 * a
        )

    def test_vertices_on_major_axis(self):
        e = self.make()
        assert e.contains(Point(5.0, 0.0))
        assert e.contains(Point(-5.0, 0.0))
        assert not e.contains(Point(5.01, 0.0))

    def test_covertices_on_minor_axis(self):
        e = self.make()
        assert e.contains(Point(0.0, 3.0))
        assert not e.contains(Point(0.0, 3.01))

    def test_analytic_area(self):
        # area = pi * a * b = pi * 5 * 3
        e = self.make()
        assert region_area(e, resolution=250) == pytest.approx(
            math.pi * 15.0, rel=0.02
        )

    def test_analytic_boundary_equation(self):
        e = self.make()
        for angle in np.linspace(0.0, 2 * math.pi, 17):
            x = 5.0 * math.cos(angle)
            y = 3.0 * math.sin(angle)
            assert e.contains(Point(x * 0.99, y * 0.99))
            assert not e.contains(Point(x * 1.02 + 1e-9, y * 1.02))


class TestCircularFoci:
    def test_foci_disks_near_sides_are_included(self):
        e = ExtendedEllipse(Circle(Point(0, 0), 1.0), Circle(Point(10, 0), 1.0), 9.0)
        # Points of disk A facing disk B satisfy the budget trivially.
        assert e.contains(Point(1.0, 0.0))
        assert e.contains(Point(9.0, 0.0))

    def test_far_side_of_focus_disk_can_be_excluded(self):
        # Budget exactly equals the straight gap: only the corridor between
        # the disks qualifies; the far side of disk A is out of reach.
        e = ExtendedEllipse(Circle(Point(0, 0), 1.0), Circle(Point(10, 0), 1.0), 8.0)
        assert e.contains(Point(1.0, 0.0))
        assert e.contains(Point(5.0, 0.0))
        assert not e.contains(Point(-1.0, 0.0))

    def test_infeasible_budget_is_empty(self):
        e = ExtendedEllipse(Circle(Point(0, 0), 1.0), Circle(Point(10, 0), 1.0), 5.0)
        assert e.is_infeasible()
        assert e.mbr is None
        assert not e.contains(Point(5.0, 0.0))

    def test_negative_budget_clamped(self):
        e = ExtendedEllipse(Circle(Point(0, 0), 1.0), Circle(Point(1.5, 0), 1.0), -3.0)
        assert e.path_budget == 0.0
        # Overlapping disks with zero budget: the touching corridor exists.
        assert e.contains(Point(0.75, 0.0))

    def test_mbr_is_sound(self):
        e = ExtendedEllipse(Circle(Point(0, 0), 2.0), Circle(Point(12, 3), 1.0), 15.0)
        assert e.mbr is not None
        xs = np.linspace(e.mbr.min_x - 5, e.mbr.max_x + 5, 60)
        ys = np.linspace(e.mbr.min_y - 5, e.mbr.max_y + 5, 60)
        grid_x, grid_y = np.meshgrid(xs, ys)
        inside = e.contains_many(grid_x.ravel(), grid_y.ravel())
        for x, y in zip(grid_x.ravel()[inside], grid_y.ravel()[inside]):
            assert e.mbr.contains_point(Point(x, y), tolerance=1e-6)

    def test_contains_many_matches_scalar(self):
        e = ExtendedEllipse(Circle(Point(0, 0), 1.5), Circle(Point(8, 2), 1.0), 10.0)
        xs = np.linspace(-5, 12, 35)
        ys = np.linspace(-5, 8, 35)
        vector = e.contains_many(xs, ys)
        scalar = [e.contains(Point(x, y)) for x, y in zip(xs, ys)]
        assert list(vector) == scalar

    def test_gap_region_excludes_detection_disks(self):
        e = ExtendedEllipse(Circle(Point(0, 0), 1.0), Circle(Point(6, 0), 1.0), 8.0)
        gap = e.gap_region
        assert not gap.contains(Point(0.0, 0.0))
        assert not gap.contains(Point(6.0, 0.0))
        assert gap.contains(Point(3.0, 0.0))


class TestProperties:
    @given(
        st.builds(Point, coordinate, coordinate),
        st.builds(Point, coordinate, coordinate),
        st.floats(min_value=0.1, max_value=10.0),
        st.floats(min_value=0.1, max_value=10.0),
        st.floats(min_value=0.0, max_value=500.0),
        st.builds(Point, coordinate, coordinate),
    )
    def test_membership_matches_predicate(self, ca, cb, ra, rb, budget, probe):
        a, b = Circle(ca, ra), Circle(cb, rb)
        e = ExtendedEllipse(a, b, budget)
        total = a.distance_to_point(probe) + b.distance_to_point(probe)
        if total <= budget - 1e-6:
            assert e.contains(probe)
        if total > budget + 1e-6:
            assert not e.contains(probe)

    @given(
        st.builds(Point, coordinate, coordinate),
        st.builds(Point, coordinate, coordinate),
        st.floats(min_value=0.1, max_value=10.0),
        st.floats(min_value=0.1, max_value=10.0),
        st.floats(min_value=0.0, max_value=500.0),
    )
    def test_gateway_point_inside_when_feasible(self, ca, cb, ra, rb, budget):
        """The point halfway along the straight gap is always reachable."""
        e = ExtendedEllipse(Circle(ca, ra), Circle(cb, rb), budget)
        d = ca.distance_to(cb)
        gap = max(0.0, d - ra - rb)
        if gap > budget - 1e-6:
            return  # infeasible or marginal
        if d <= 1e-9:
            probe = ca  # concentric: the centre is in both disks
        elif gap <= 0.0:
            # Disks overlap: the point on the centre line just inside B's
            # near boundary also lies inside A (since d - rb <= ra).
            probe = ca.lerp(cb, max(0.0, d - rb) / d)
        else:
            # The point between the two boundaries along the center line:
            # dist to A = dist to B = gap / 2.
            probe = ca.lerp(cb, (ra + gap / 2.0) / d)
        assert e.contains(probe)
