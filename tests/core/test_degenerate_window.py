"""Consistency of the interval query in the zero-length-window limit.

``Φ_[t, t](p)`` should agree with the snapshot flow ``Φ_t(p)`` — the
interval definitions collapse to the snapshot definitions when
``t_s = t_e``.
"""

# repro: allow-file(context-bypass): probes the low-level builders at degenerate windows on purpose

import pytest

from repro.core import IntervalContext, SnapshotContext
from repro.core.uncertainty import interval_uncertainty, snapshot_region
from repro.geometry import Point
from repro.indoor import Deployment, Device
from repro.tracking import TrackingRecord


@pytest.fixture(scope="module")
def deployment():
    return Deployment(
        [
            Device.at("a", Point(0, 5), 2.0),
            Device.at("b", Point(40, 5), 2.0),
        ]
    )


def records():
    return (
        TrackingRecord(0, "o", "a", 0.0, 10.0),
        TrackingRecord(1, "o", "b", 60.0, 70.0),
    )


class TestZeroLengthWindow:
    def test_degenerate_interval_equals_snapshot_in_gap(self, deployment):
        t = 35.0  # mid-gap: inactive
        snapshot = snapshot_region(
            SnapshotContext(
                object_id="o",
                t=t,
                rd_pre=records()[0],
                rd_cov=None,
                rd_suc=records()[1],
            ),
            deployment,
            1.0,
        )
        degenerate = interval_uncertainty(
            IntervalContext(
                object_id="o", t_start=t, t_end=t, records=records()
            ),
            deployment,
            1.0,
        ).region
        # Same membership on a probe lattice.
        for x in range(-5, 50, 2):
            for y in range(-5, 16, 2):
                probe = Point(float(x), float(y))
                assert snapshot.contains(probe) == degenerate.contains(probe), (
                    f"mismatch at {probe}"
                )

    def test_degenerate_interval_during_detection(self, deployment):
        t = 5.0  # inside record 0
        degenerate = interval_uncertainty(
            IntervalContext(
                object_id="o", t_start=t, t_end=t, records=records()[:1]
            ),
            deployment,
            1.0,
        ).region
        assert degenerate.contains(Point(0.0, 5.0))
        assert not degenerate.contains(Point(10.0, 5.0))

    def test_engine_level_agreement(self, synthetic_dataset, synthetic_engine):
        """Degenerate interval flows dominate snapshot flows.

        For *inactive* objects the two regions coincide; for *active* ones
        the paper's interval analysis uses the full detection disk while
        the snapshot case additionally intersects the ring from ``rd_pre``
        — so the interval flow is an upper bound that matches exactly in
        the gap case.
        """
        t = synthetic_dataset.mid_time()
        snapshot_flows = synthetic_engine.snapshot_flows(t)
        degenerate_flows = synthetic_engine.interval_flows(t, t)
        assert set(snapshot_flows) <= set(degenerate_flows)
        for poi_id, value in snapshot_flows.items():
            assert degenerate_flows[poi_id] >= value - 1e-9

    def test_back_to_back_records_have_no_gap_episode(self, deployment):
        chain = (
            TrackingRecord(0, "o", "a", 0.0, 10.0),
            TrackingRecord(1, "o", "b", 10.0, 20.0),  # handoff, zero gap
        )
        uncertainty = interval_uncertainty(
            IntervalContext(object_id="o", t_start=5.0, t_end=15.0, records=chain),
            deployment,
            1.0,
        )
        kinds = [episode.kind for episode in uncertainty.episodes]
        assert kinds.count("detection") == 2
        assert "gap" not in kinds
