"""``close()`` on both engines: flush, release, stay idempotent.

The serving layer (and any ``with`` block) relies on ``close()`` being
terminal but safe to call twice, folding the WAL so the *next* process
bulk-loads without replay, and degrading to a no-op for storage-less or
frozen-batch engines.
"""

from __future__ import annotations

import pytest

from repro.core.coordinator import ShardedFlowEngine
from repro.core.engine import FlowEngine, LiveFlowEngine
from repro.storage import SQLiteBackend
from repro.tracking.table import ObjectTrackingTable


def _engine_kwargs(ds):
    return dict(
        floorplan=ds.floorplan,
        deployment=ds.deployment,
        pois=ds.pois,
        v_max=ds.v_max,
        detection_slack=2.0 * ds.sampling_interval,
    )


def _live_engine(ds, backend=None):
    return LiveFlowEngine(storage=backend, **_engine_kwargs(ds))


class TestFlowEngineClose:
    def test_close_folds_the_wal_and_releases_the_backend(
        self, synthetic_dataset, tmp_path
    ):
        ds = synthetic_dataset
        records = tuple(ds.ott)
        path = tmp_path / "venue.sqlite"

        engine = _live_engine(ds, SQLiteBackend(path))
        engine.ingest(records)
        engine.close()
        engine.close()  # idempotent

        # Closing is terminal: a *new* record (idempotent redelivery of
        # old ones never reaches storage) finds the backend gone.
        from repro.tracking.records import TrackingRecord

        t_next = max(r.t_e for r in records) + 1.0
        fresh = TrackingRecord(
            record_id=max(r.record_id for r in records) + 1,
            object_id="after-close",
            device_id=records[0].device_id,
            t_s=t_next,
            t_e=t_next + 1.0,
        )
        with pytest.raises(RuntimeError, match="closed"):
            engine.ingest([fresh])

        # The store was checkpointed on the way out — a fresh backend
        # bulk-loads everything and has nothing left to replay.
        backend = SQLiteBackend(path)
        assert backend.snapshot_generation == backend.generation == len(records)
        assert backend.replay_since(backend.snapshot_generation) == []

        recovered = _live_engine(ds, backend)
        assert recovered.generation == len(records)
        t_lo, t_hi = ds.time_span()
        t_mid = (t_lo + t_hi) / 2
        reference = ds.engine().snapshot_topk(t_mid, 5)
        answered = recovered.snapshot_topk(t_mid, 5)
        assert answered.poi_ids == reference.poi_ids
        assert answered.flows == reference.flows
        recovered.close()

    def test_post_close_mutators_raise_cleanly_and_reads_survive(
        self, synthetic_dataset, tmp_path
    ):
        # Every mutator must be rejected *before* touching the released
        # backend (a clean RuntimeError, not a storage-driver error
        # surfacing mid-mutation) and without perturbing in-memory
        # state: read-only queries keep answering bit-identically.
        ds = synthetic_dataset
        records = tuple(ds.ott)
        engine = _live_engine(ds, SQLiteBackend(tmp_path / "venue.sqlite"))
        engine.ingest(records)
        t_lo, t_hi = ds.time_span()
        t_mid = (t_lo + t_hi) / 2
        before = engine.snapshot_topk(t_mid, 5)
        engine.close()

        from repro.tracking.records import TrackingRecord

        t_next = max(r.t_e for r in records) + 1.0
        fresh = TrackingRecord(
            record_id=max(r.record_id for r in records) + 1,
            object_id="after-close",
            device_id=records[0].device_id,
            t_s=t_next,
            t_e=t_next + 1.0,
        )
        mutations = [
            lambda: engine.ingest([fresh]),
            lambda: engine.ingest_open(fresh),
            lambda: engine.extend_episode("after-close", t_next + 2.0),
            lambda: engine.close_episode("after-close"),
            lambda: engine.checkpoint(),
        ]
        for mutate in mutations:
            with pytest.raises(RuntimeError, match="closed"):
                mutate()

        after = engine.snapshot_topk(t_mid, 5)
        assert after.poi_ids == before.poi_ids
        assert after.flows == before.flows

    def test_with_protocol_closes_on_exit(self, synthetic_dataset, tmp_path):
        ds = synthetic_dataset
        records = tuple(ds.ott)
        path = tmp_path / "venue.sqlite"

        with _live_engine(ds, SQLiteBackend(path)) as engine:
            assert engine.ingest(records) == len(records)

        backend = SQLiteBackend(path)
        assert backend.snapshot_generation == len(records)
        backend.close()

    def test_storage_less_and_frozen_engines_close_as_no_ops(
        self, synthetic_dataset, synthetic_engine
    ):
        live = _live_engine(synthetic_dataset)
        live.close()
        live.close()

        # The session-shared frozen-batch engine: closing must neither
        # raise nor disturb it (other tests keep querying it).
        assert not synthetic_engine.is_live
        synthetic_engine.close()
        t_lo, t_hi = synthetic_dataset.time_span()
        assert len(synthetic_engine.snapshot_topk((t_lo + t_hi) / 2, 3)) <= 3


class TestShardedEngineClose:
    @pytest.mark.parametrize("num_shards", [1, 3])
    def test_close_flushes_every_shard_store(
        self, synthetic_dataset, tmp_path, num_shards
    ):
        ds = synthetic_dataset
        records = tuple(ds.ott)
        fleet_dir = tmp_path / "fleet"
        kwargs = _engine_kwargs(ds)

        with ShardedFlowEngine(
            kwargs.pop("floorplan"), kwargs.pop("deployment"),
            ObjectTrackingTable(), kwargs.pop("pois"),
            num_shards=num_shards, live=True, storage=fleet_dir, **kwargs,
        ) as sharded:
            assert sharded.ingest(records) == len(records)
            sharded.close()  # explicit close + __exit__ close: idempotent

        kwargs = _engine_kwargs(ds)
        reopened = ShardedFlowEngine(
            kwargs.pop("floorplan"), kwargs.pop("deployment"),
            ObjectTrackingTable(), kwargs.pop("pois"),
            num_shards=num_shards, live=True, storage=fleet_dir, **kwargs,
        )
        assert reopened.generation == len(records)
        # Every per-shard store was folded before its worker shut down.
        for shard in reopened.shards:
            backend = shard.storage
            assert backend.replay_since(backend.snapshot_generation) == []
        t_lo, t_hi = ds.time_span()
        t_mid = (t_lo + t_hi) / 2
        reference = ds.engine().snapshot_topk(t_mid, 5)
        answered = reopened.snapshot_topk(t_mid, 5)
        assert answered.poi_ids == reference.poi_ids
        assert answered.flows == reference.flows
        reopened.close()

    def test_storage_less_fleet_close_is_idempotent(self, synthetic_dataset):
        ds = synthetic_dataset
        kwargs = _engine_kwargs(ds)
        sharded = ShardedFlowEngine(
            kwargs.pop("floorplan"), kwargs.pop("deployment"),
            ds.ott, kwargs.pop("pois"), num_shards=2, **kwargs,
        )
        t_lo, t_hi = ds.time_span()
        assert len(sharded.snapshot_topk((t_lo + t_hi) / 2, 3)) <= 3
        sharded.close()
        sharded.close()


class TestBatchEngineContextManager:
    def test_frozen_batch_engine_supports_with(self, synthetic_dataset):
        ds = synthetic_dataset
        with FlowEngine(ott=ds.ott, **_engine_kwargs(ds)) as engine:
            t_lo, t_hi = ds.time_span()
            assert len(engine.snapshot_topk((t_lo + t_hi) / 2, 3)) <= 3
