"""Tests for interval uncertainty regions (paper, Section 3.2, Cases 1-4)."""

# repro: allow-file(context-bypass): unit-tests interval_uncertainty itself against hand-computed geometry

import pytest

from repro.core import IntervalContext, interval_uncertainty
from repro.geometry import Point
from repro.indoor import Deployment, Device
from repro.tracking import TrackingRecord

V_MAX = 1.0


@pytest.fixture(scope="module")
def deployment():
    return Deployment(
        [
            Device.at("a", Point(0, 5), 2.0),
            Device.at("b", Point(30, 5), 2.0),
            Device.at("c", Point(60, 5), 2.0),
        ]
    )


def records():
    """Seen by a [0,10], by b [40,50], by c [80,90] — 28m gaps, 30s each."""
    return (
        TrackingRecord(0, "o", "a", 0.0, 10.0),
        TrackingRecord(1, "o", "b", 40.0, 50.0),
        TrackingRecord(2, "o", "c", 80.0, 90.0),
    )


def context(t_start, t_end, recs=None):
    return IntervalContext(
        object_id="o",
        t_start=t_start,
        t_end=t_end,
        records=recs if recs is not None else records(),
    )


class TestCase1ActiveActive:
    def test_detection_disks_included(self, deployment):
        ur = interval_uncertainty(context(5.0, 85.0), deployment, V_MAX)
        region = ur.region
        assert region.contains(Point(0.0, 5.0))  # inside a
        assert region.contains(Point(30.0, 5.0))  # inside b
        assert region.contains(Point(60.0, 5.0))  # inside c

    def test_gap_corridor_included(self, deployment):
        ur = interval_uncertainty(context(5.0, 85.0), deployment, V_MAX)
        assert ur.region.contains(Point(15.0, 5.0))
        assert ur.region.contains(Point(45.0, 5.0))

    def test_far_detour_excluded(self, deployment):
        # Budget between a and b is 30 m for a 26 m straight gap: a point
        # 20 m off-axis is unreachable.
        ur = interval_uncertainty(context(5.0, 85.0), deployment, V_MAX)
        assert not ur.region.contains(Point(15.0, 30.0))

    def test_episode_kinds(self, deployment):
        ur = interval_uncertainty(context(5.0, 85.0), deployment, V_MAX)
        kinds = [episode.kind for episode in ur.episodes]
        assert kinds.count("detection") == 3
        assert kinds.count("gap") == 2
        assert "lead" not in kinds
        assert "trail" not in kinds


class TestCase2InactiveActive:
    def test_start_ring_constrains_head(self, deployment):
        # Window starts at t=25 inside the a->b gap: the object must still
        # reach b's boundary by t=40, i.e. be within 2+15=17 of b.
        ur = interval_uncertainty(context(25.0, 45.0), deployment, V_MAX)
        region = ur.region
        assert region.contains(Point(20.0, 5.0))  # 10 from b's center
        assert not region.contains(Point(5.0, 5.0))  # 25 from b: too far
        # a's disk is not part of the window.
        assert not region.contains(Point(0.0, 5.0))

    def test_detection_disk_of_end_record_included(self, deployment):
        ur = interval_uncertainty(context(25.0, 45.0), deployment, V_MAX)
        assert ur.region.contains(Point(30.0, 5.0))


class TestCase3ActiveInactive:
    def test_end_ring_constrains_tail(self, deployment):
        # Window ends at t=55 inside the b->c gap: the object left b at 50,
        # so it is within 2+5=7 of b and cannot be near c yet.
        ur = interval_uncertainty(context(45.0, 55.0), deployment, V_MAX)
        region = ur.region
        assert region.contains(Point(35.0, 5.0))  # 5 from b's center
        assert not region.contains(Point(45.0, 5.0))  # 15 from b
        assert not region.contains(Point(60.0, 5.0))  # inside c


class TestCase4InactiveInactive:
    def test_both_rings_apply(self, deployment):
        # Window [55, 65] falls fully within the b->c gap.
        ur = interval_uncertainty(context(55.0, 65.0), deployment, V_MAX)
        region = ur.region
        # Within 2+15=17 of b (left at 50) and within 2+25=27 of c.
        assert region.contains(Point(40.0, 5.0))
        assert not region.contains(Point(31.0, 20.0))  # 15m off-axis
        assert not region.contains(Point(0.0, 5.0))

    def test_neither_disk_included_when_window_inside_gap(self, deployment):
        ur = interval_uncertainty(context(55.0, 65.0), deployment, V_MAX)
        assert not ur.region.contains(Point(30.0, 5.0))
        assert not ur.region.contains(Point(60.0, 5.0))


class TestBoundaryEpisodes:
    def test_lead_ring_without_predecessor(self, deployment):
        # Window starts before the object's first record: the head is
        # bounded by the ring reachable backwards from a.
        ur = interval_uncertainty(
            context(-5.0, 5.0, recs=records()[:1]), deployment, V_MAX
        )
        kinds = [episode.kind for episode in ur.episodes]
        assert "lead" in kinds
        region = ur.region
        assert region.contains(Point(5.0, 5.0))  # within 2+5 of a
        assert not region.contains(Point(10.0, 5.0))  # 10 > 7

    def test_trail_ring_without_successor(self, deployment):
        ur = interval_uncertainty(
            context(85.0, 95.0, recs=records()[2:]), deployment, V_MAX
        )
        kinds = [episode.kind for episode in ur.episodes]
        assert "trail" in kinds
        region = ur.region
        assert region.contains(Point(65.0, 5.0))  # within 2+5 of c
        assert not region.contains(Point(70.0, 5.0))

    def test_window_inside_one_record(self, deployment):
        ur = interval_uncertainty(
            context(42.0, 48.0, recs=records()[1:2]), deployment, V_MAX
        )
        assert [episode.kind for episode in ur.episodes] == ["detection"]
        assert ur.region.contains(Point(30.0, 5.0))
        assert not ur.region.contains(Point(35.0, 5.0))


class TestSegmentMbrs:
    def test_one_box_per_episode(self, deployment):
        ur = interval_uncertainty(context(5.0, 85.0), deployment, V_MAX)
        assert len(ur.segment_mbrs()) == len(ur.episodes)

    def test_overall_mbr_covers_segments(self, deployment):
        ur = interval_uncertainty(context(5.0, 85.0), deployment, V_MAX)
        overall = ur.mbr
        for box in ur.segment_mbrs():
            assert overall.contains_mbr(box)

    def test_segments_tighter_than_overall(self, deployment):
        ur = interval_uncertainty(context(5.0, 85.0), deployment, V_MAX)
        overall_area = ur.mbr.area()
        for box in ur.segment_mbrs():
            assert box.area() < overall_area

    def test_region_within_segment_union(self, deployment):
        ur = interval_uncertainty(context(5.0, 85.0), deployment, V_MAX)
        boxes = ur.segment_mbrs()
        for x in range(-10, 95, 2):
            for y in range(-10, 21, 2):
                p = Point(float(x), float(y))
                if ur.region.contains(p):
                    assert any(box.contains_point(p, tolerance=1e-6) for box in boxes)


class TestValidation:
    def test_rejects_non_positive_vmax(self, deployment):
        with pytest.raises(ValueError):
            interval_uncertainty(context(0.0, 10.0), deployment, 0.0)
