"""Tests for snapshot uncertainty regions (paper, Section 3.1.2).

A single device corridor with hand-computable geometry: devices ``a`` at
x=0, ``b`` at x=30, both radius 2, on an open 100x10 floor (no internal
walls, so the Euclidean analysis is exact and the topology check changes
nothing).
"""

# repro: allow-file(context-bypass): unit-tests snapshot_region itself against hand-computed geometry

import math

import pytest

from repro.core import SnapshotContext, snapshot_mbr, snapshot_region
from repro.geometry import Point
from repro.indoor import Deployment, Device
from repro.tracking import TrackingRecord

V_MAX = 1.0


@pytest.fixture(scope="module")
def deployment():
    return Deployment(
        [
            Device.at("a", Point(0, 5), 2.0),
            Device.at("b", Point(30, 5), 2.0),
        ]
    )


def active_context(t=20.0):
    """Covered by b since t=18, previously seen by a until t=10."""
    return SnapshotContext(
        object_id="o",
        t=t,
        rd_pre=TrackingRecord(0, "o", "a", 5.0, 10.0),
        rd_cov=TrackingRecord(1, "o", "b", 18.0, 25.0),
        rd_suc=None,
    )


def inactive_context(t=14.0):
    """Between a (left at t=10) and b (entered at t=18)."""
    return SnapshotContext(
        object_id="o",
        t=t,
        rd_pre=TrackingRecord(0, "o", "a", 5.0, 10.0),
        rd_cov=None,
        rd_suc=TrackingRecord(1, "o", "b", 18.0, 25.0),
    )


class TestActiveCase:
    def test_region_is_within_covering_range(self, deployment):
        # At t=38 the ring around a spans [2, 30]: its overlap with b's
        # range [28, 32] is x in [28, 30].
        region = snapshot_region(active_context(t=38.0), deployment, V_MAX)
        assert region.contains(Point(28.5, 5.0))
        # Outside b's range: never included even though within a's ring.
        assert not region.contains(Point(10.0, 5.0))
        # Inside b's range but beyond the ring of a.
        assert not region.contains(Point(31.0, 5.0))

    def test_ring_constraint_prunes_far_side(self, deployment):
        # At t=20 the object walked at most 10m since leaving a's range at
        # t=10, so it can be at most 12m from a: the far side of b's range
        # (x > 12) is infeasible -- but b's range spans [28, 32], all
        # beyond 12m, so the region is empty for this timing.
        region = snapshot_region(active_context(t=20.0), deployment, V_MAX)
        assert not region.contains(Point(30.0, 5.0))

    def test_consistent_timing_is_nonempty(self, deployment):
        # At t=38, budget = 28m: reachable part of b's range is x <= 30.
        region = snapshot_region(active_context(t=38.0), deployment, 1.0)
        assert region.contains(Point(29.0, 5.0))

    def test_no_predecessor_gives_full_range(self, deployment):
        context = SnapshotContext(
            object_id="o",
            t=20.0,
            rd_pre=None,
            rd_cov=TrackingRecord(1, "o", "b", 18.0, 25.0),
            rd_suc=None,
        )
        region = snapshot_region(context, deployment, V_MAX)
        assert region.contains(Point(30.0, 5.0))
        assert region.contains(Point(31.9, 5.0))
        assert not region.contains(Point(32.5, 5.0))

    def test_mbr_is_covering_range_box(self, deployment):
        box = snapshot_mbr(active_context(), deployment, V_MAX)
        assert box == deployment.device("b").range.mbr


class TestInactiveCase:
    def test_intersection_of_two_rings(self, deployment):
        # At t=14: within 2+4=6 of a AND within 2+4=6 of b... the latter is
        # impossible this far out, so pick a feasible timing instead.
        region = snapshot_region(inactive_context(t=14.0), deployment, V_MAX)
        # dist to a <= 2 + 4 = 6; dist to b <= 2 + 4 = 6; they are 30
        # apart: empty.
        assert region.is_empty() or not region.contains(Point(15.0, 5.0))

    def test_feasible_inactive_midpoint(self, deployment):
        # Widen the gap budget: leave a at 10, reach b at 36, query at 23:
        # 13m from each boundary: midpoint x=15 qualifies.
        context = SnapshotContext(
            object_id="o",
            t=23.0,
            rd_pre=TrackingRecord(0, "o", "a", 5.0, 10.0),
            rd_cov=None,
            rd_suc=TrackingRecord(1, "o", "b", 36.0, 40.0),
        )
        region = snapshot_region(context, deployment, V_MAX)
        assert region.contains(Point(15.0, 5.0))
        # But not inside either detection range (the object is undetected).
        assert not region.contains(Point(0.0, 5.0))
        assert not region.contains(Point(30.0, 5.0))

    def test_asymmetric_budgets(self, deployment):
        # Shortly after leaving a: tight ring around a, wide around b.
        context = SnapshotContext(
            object_id="o",
            t=11.0,
            rd_pre=TrackingRecord(0, "o", "a", 5.0, 10.0),
            rd_cov=None,
            rd_suc=TrackingRecord(1, "o", "b", 36.0, 40.0),
        )
        region = snapshot_region(context, deployment, V_MAX)
        assert region.contains(Point(3.0, 5.0))  # 3m from a's center
        assert not region.contains(Point(8.0, 5.0))  # 8 > 2 + 1

    def test_missing_neighbors_raise(self, deployment):
        context = SnapshotContext(
            object_id="o", t=10.0, rd_pre=None, rd_cov=None, rd_suc=None
        )
        with pytest.raises(ValueError):
            snapshot_region(context, deployment, V_MAX)

    def test_mbr_contains_region(self, deployment):
        context = SnapshotContext(
            object_id="o",
            t=23.0,
            rd_pre=TrackingRecord(0, "o", "a", 5.0, 10.0),
            rd_cov=None,
            rd_suc=TrackingRecord(1, "o", "b", 36.0, 40.0),
        )
        region = snapshot_region(context, deployment, V_MAX)
        box = snapshot_mbr(context, deployment, V_MAX)
        assert box is not None
        for x in range(-10, 45):
            for y in range(0, 11):
                p = Point(float(x), float(y))
                if region.contains(p):
                    assert box.contains_point(p, tolerance=1e-6)


class TestValidation:
    def test_rejects_non_positive_vmax(self, deployment):
        with pytest.raises(ValueError):
            snapshot_region(active_context(), deployment, 0.0)
