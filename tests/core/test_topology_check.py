"""Tests for the indoor topology check (paper, Section 3.3, Figure 8).

Scenario modelled on Figure 8(a): two rooms side by side; a device sits in
the left room near the shared wall, the only door between the rooms is far
away.  Points just across the wall are close in Euclidean terms but far by
walking distance — the topology check must exclude them.
"""

# repro: allow-file(context-bypass): compares raw builders with and without a topology checker

import math

import pytest

from repro.core import (
    PathReachabilityConstraint,
    ReachabilityConstraint,
    TopologyChecker,
)
from repro.geometry import Point, Polygon
from repro.indoor import (
    Deployment,
    Device,
    Door,
    FloorPlan,
    IndoorDistanceOracle,
    Room,
)


@pytest.fixture(scope="module")
def wall_setup():
    """Rooms [0,10]x[0,10] and [10,20]x[0,10]; one door at (10, 9.5)."""
    plan = FloorPlan(
        [
            Room("left", Polygon.rectangle(0, 0, 10, 10)),
            Room("right", Polygon.rectangle(10, 0, 20, 10)),
        ],
        [Door("d", Point(10, 9.5), "left", "right")],
    )
    oracle = IndoorDistanceOracle(plan)
    checker = TopologyChecker(oracle)
    device = Device.at("dev", Point(9, 1), 0.5)  # left room, near the wall
    return plan, oracle, checker, device


class TestReachabilityConstraint:
    def test_same_room_euclidean_reach(self, wall_setup):
        _, _, checker, device = wall_setup
        constraint = checker.ring_constraint(device, budget=4.0)
        assert constraint.contains(Point(6.0, 1.0))  # 3m away, same room
        assert not constraint.contains(Point(3.0, 1.0))  # 6m away

    def test_across_wall_excluded(self, wall_setup):
        # Figure 8(a): (11, 1) is 2m away in Euclidean terms but the walk
        # through the door at (10, 9.5) is ~17m.
        _, _, checker, device = wall_setup
        constraint = checker.ring_constraint(device, budget=4.0)
        assert not constraint.contains(Point(11.0, 1.0))

    def test_across_wall_included_with_generous_budget(self, wall_setup):
        _, oracle, checker, device = wall_setup
        walking = oracle.distance(device.center, Point(11.0, 1.0))
        constraint = checker.ring_constraint(device, budget=walking + 1.0)
        assert constraint.contains(Point(11.0, 1.0))

    def test_mbr_bounded_by_euclidean_reach(self, wall_setup):
        _, _, checker, device = wall_setup
        constraint = checker.ring_constraint(device, budget=4.0)
        box = constraint.mbr
        assert box is not None
        assert box.width <= 2 * (4.0 + device.radius) + 1e-9

    def test_vectorised_matches_scalar(self, wall_setup):
        import numpy as np

        _, _, checker, device = wall_setup
        constraint = checker.ring_constraint(device, budget=6.0)
        rng = np.random.default_rng(1)
        xs = rng.uniform(0, 20, 100)
        ys = rng.uniform(0, 10, 100)
        vector = constraint.contains_many(xs, ys)
        for x, y, v in zip(xs, ys, vector):
            assert v == constraint.contains(Point(float(x), float(y)))

    def test_validation(self, wall_setup):
        _, oracle, _, device = wall_setup
        field = oracle.field_from(device.center)
        with pytest.raises(ValueError):
            ReachabilityConstraint(field, -1.0, 5.0)
        with pytest.raises(ValueError):
            ReachabilityConstraint(field, 1.0, -5.0)


class TestPathReachabilityConstraint:
    def test_corridor_between_devices(self, wall_setup):
        plan, oracle, checker, device = wall_setup
        other = Device.at("dev2", Point(1, 1), 0.5)  # same room, 8m apart
        constraint = checker.path_constraint(other, device, budget=10.0)
        assert constraint.contains(Point(5.0, 1.0))  # on the straight path
        # Point across the wall: the walk a -> p -> b through the far door
        # blows the budget.
        assert not constraint.contains(Point(11.0, 1.0))

    def test_direct_path_through_door_allowed(self, wall_setup):
        plan, oracle, checker, _ = wall_setup
        left_dev = Device.at("L", Point(9, 9), 0.5)
        right_dev = Device.at("R", Point(11, 9), 0.5)
        # Walking L -> door(10, 9.5) -> R is short; points near the door
        # are on the path.
        constraint = checker.path_constraint(left_dev, right_dev, budget=4.0)
        assert constraint.contains(Point(10.0, 9.5))

    def test_infeasible_budget_empty(self, wall_setup):
        _, _, checker, device = wall_setup
        other = Device.at("far", Point(1, 1), 0.5)
        constraint = checker.path_constraint(other, device, budget=0.5)
        assert not constraint.contains(Point(5.0, 1.0))

    def test_validation(self, wall_setup):
        _, oracle, _, device = wall_setup
        field = oracle.field_from(device.center)
        with pytest.raises(ValueError):
            PathReachabilityConstraint(field, 1.0, field, 1.0, -2.0)


class TestTopologyChecker:
    def test_field_cache(self, wall_setup):
        _, _, checker, device = wall_setup
        assert checker.field_of(device) is checker.field_of(device)

    def test_negative_budget_clamped(self, wall_setup):
        _, _, checker, device = wall_setup
        constraint = checker.ring_constraint(device, budget=-3.0)
        assert constraint.budget == 0.0


class TestEndToEndExclusion:
    """Figure 8(a) as an engine-level effect: flow not credited to the
    unreachable room."""

    def test_snapshot_region_respects_walls(self, wall_setup):
        from repro.core import SnapshotContext, snapshot_region
        from repro.tracking import TrackingRecord

        plan, oracle, checker, device = wall_setup
        deployment = Deployment([device])
        context = SnapshotContext(
            object_id="o",
            t=14.0,
            rd_pre=TrackingRecord(0, "o", "dev", 5.0, 10.0),
            rd_cov=None,
            rd_suc=TrackingRecord(1, "o", "dev", 18.0, 25.0),
        )
        unchecked = snapshot_region(context, deployment, 1.0, topology=None)
        checked = snapshot_region(context, deployment, 1.0, topology=checker)
        probe = Point(11.0, 1.0)  # across the wall
        assert unchecked.contains(probe)
        assert not checked.contains(probe)
        # Same-room points unaffected.
        same_room = Point(6.0, 1.0)
        assert unchecked.contains(same_room) == checked.contains(same_room)
