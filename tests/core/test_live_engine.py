"""Live ingestion at the engine level.

The acceptance contract of the streaming refactor: after ``ingest()``, a
live engine's snapshot and interval top-k answers are **bit-identical**
(same POIs, same float flows) to a freshly built batch engine over the
union of all records — for both the join and the iterative algorithm,
with runtime contracts enforced — while the warm incremental path
computes strictly fewer uncertainty regions than the cold rebuild.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import set_contracts
from repro.core.engine import FlowEngine, LiveFlowEngine
from repro.core.monitor import SnapshotTopKMonitor
from repro.datagen.config import SyntheticConfig
from repro.datagen.synthetic import build_synthetic_dataset
from repro.geometry import Point, Polygon
from repro.indoor import Deployment, Device, Door, FloorPlan, Poi, Room
from repro.tracking import LiveTrackingTable, ObjectTrackingTable, TrackingRecord

SPLIT_SYNTHETIC = SyntheticConfig(
    num_objects=16, duration=500.0, rooms_per_side=4, seed=7
)


@pytest.fixture()
def contracts_on():
    set_contracts(True)
    try:
        yield
    finally:
        set_contracts(None)


@pytest.fixture(scope="module")
def split_dataset():
    """A small synthetic workload split 70/30 into base + live tail."""
    dataset = build_synthetic_dataset(SPLIT_SYNTHETIC)
    records = sorted(dataset.ott, key=lambda r: (r.t_s, r.t_e, r.record_id))
    cut = int(len(records) * 0.7)
    return dataset, records[:cut], records[cut:]


def engine_kwargs(dataset, **overrides):
    kwargs = dict(
        floorplan=dataset.floorplan,
        deployment=dataset.deployment,
        pois=dataset.pois,
        v_max=dataset.v_max,
        detection_slack=2.0 * dataset.sampling_interval,
    )
    kwargs.update(overrides)
    return kwargs


class TestIngestEquivalence:
    @pytest.mark.parametrize("method", ["join", "iterative"])
    def test_topk_bit_identical_to_fresh_engine(
        self, split_dataset, method, contracts_on
    ):
        dataset, base, tail = split_dataset
        live = FlowEngine(ott=LiveTrackingTable(base), **engine_kwargs(dataset))
        assert live.ingest(tail) == len(tail)
        fresh = FlowEngine(
            ott=ObjectTrackingTable(base + tail), **engine_kwargs(dataset)
        )
        t_lo, t_hi = dataset.time_span()
        t_mid = (t_lo + t_hi) / 2

        a = live.snapshot_topk(t_mid, 5, method=method)
        b = fresh.snapshot_topk(t_mid, 5, method=method)
        assert a.poi_ids == b.poi_ids
        assert a.flows == b.flows  # bit-identical floats, not approx

        a = live.interval_topk(t_lo + 10.0, t_hi - 10.0, 5, method=method)
        b = fresh.interval_topk(t_lo + 10.0, t_hi - 10.0, 5, method=method)
        assert a.poi_ids == b.poi_ids
        assert a.flows == b.flows

    def test_warm_tick_computes_strictly_fewer_regions(self, split_dataset):
        dataset, base, tail = split_dataset
        t_lo, t_hi = dataset.time_span()
        window = (t_lo + 10.0, t_hi - 10.0)

        live = FlowEngine(ott=LiveTrackingTable(base), **engine_kwargs(dataset))
        live.interval_topk(*window, 5)  # warm the caches on the base data
        live.ingest(tail)
        live.reset_stats()
        live.interval_topk(*window, 5)
        warm_regions = live.stats()["regions_computed"]

        fresh = FlowEngine(
            ott=ObjectTrackingTable(base + tail), **engine_kwargs(dataset)
        )
        fresh.reset_stats()
        fresh.interval_topk(*window, 5)
        cold_regions = fresh.stats()["regions_computed"]

        assert warm_regions < cold_regions

    def test_generation_tracks_ingest(self, split_dataset):
        dataset, base, tail = split_dataset
        live = FlowEngine(ott=LiveTrackingTable(base), **engine_kwargs(dataset))
        before = live.generation
        live.ingest(tail)
        assert live.generation == before + len(tail)
        assert live.stats()["data_generation"] == len(tail)

    def test_batch_engine_refuses_ingest(self, split_dataset):
        dataset, base, tail = split_dataset
        batch = FlowEngine(ott=ObjectTrackingTable(base), **engine_kwargs(dataset))
        assert not batch.is_live
        assert batch.generation == 0
        with pytest.raises(RuntimeError, match="frozen-batch"):
            batch.ingest(tail)

    def test_live_flag_promotes_batch_table(self, split_dataset):
        dataset, base, tail = split_dataset
        live = FlowEngine(
            ott=ObjectTrackingTable(base), live=True, **engine_kwargs(dataset)
        )
        assert live.is_live
        live.ingest(tail)
        assert len(live.ott) == len(base) + len(tail)


class TestPoiSubsetMemo:
    def test_second_identical_subset_builds_no_tree(self, split_dataset):
        dataset, base, tail = split_dataset
        engine = FlowEngine(
            ott=ObjectTrackingTable(base + tail), **engine_kwargs(dataset)
        )
        subset = dataset.pois[: max(2, len(dataset.pois) // 3)]
        t_mid = dataset.mid_time()

        first = engine.snapshot_topk(t_mid, 2, pois=subset)
        built = engine.stats()["poi_subset_trees_built"]
        assert built >= 1
        second = engine.snapshot_topk(t_mid, 2, pois=subset)
        assert engine.stats()["poi_subset_trees_built"] == built
        assert first.poi_ids == second.poi_ids
        assert first.flows == second.flows

    def test_distinct_subset_builds_new_tree(self, split_dataset):
        dataset, base, tail = split_dataset
        engine = FlowEngine(
            ott=ObjectTrackingTable(base + tail), **engine_kwargs(dataset)
        )
        t_mid = dataset.mid_time()
        engine.snapshot_topk(t_mid, 2, pois=dataset.pois[:3])
        built = engine.stats()["poi_subset_trees_built"]
        engine.snapshot_topk(t_mid, 2, pois=dataset.pois[3:6])
        assert engine.stats()["poi_subset_trees_built"] == built + 1


# ----------------------------------------------------------------------
# A deterministic hand-built scenario (quickstart geometry)
# ----------------------------------------------------------------------


def tiny_floorplan():
    rooms = [
        Room("hall", Polygon.rectangle(0, 0, 30, 6), kind="hallway"),
        Room("cafe", Polygon.rectangle(0, 6, 15, 16)),
        Room("shop", Polygon.rectangle(15, 6, 30, 16)),
    ]
    doors = [
        Door("d-cafe", Point(7.5, 6), "cafe", "hall"),
        Door("d-shop", Point(22.5, 6), "shop", "hall"),
    ]
    return FloorPlan(rooms, doors)


def tiny_world():
    plan = tiny_floorplan()
    deployment = Deployment(
        [
            Device.at("rfid-cafe", plan.door("d-cafe").position, 1.5),
            Device.at("rfid-shop", plan.door("d-shop").position, 1.5),
            Device.at("rfid-hall", Point(15.0, 2.0), 1.5),
        ]
    )
    pois = [
        Poi("poi-cafe", Polygon.rectangle(1, 7, 14, 15), "cafe"),
        Poi("poi-shop", Polygon.rectangle(16, 7, 29, 15), "shop"),
        Poi("poi-hall", Polygon.rectangle(1, 1, 29, 5), "hall"),
    ]
    return plan, deployment, pois


BASE_ROWS = [
    ("anna", "rfid-hall", 0.0, 2.0),
    ("anna", "rfid-cafe", 10.0, 12.0),
    ("anna", "rfid-cafe", 300.0, 302.0),
    ("bo", "rfid-hall", 5.0, 7.0),
    ("bo", "rfid-shop", 15.0, 17.0),
    ("cai", "rfid-hall", 100.0, 102.0),
]

# dan hovers at the cafe door, detections tightly bracketing t=200: his
# gap region is a small lens inside the cafe, boosting its flow there.
TAIL_ROWS = [
    ("dan", "rfid-cafe", 195.0, 197.0),
    ("dan", "rfid-cafe", 203.0, 205.0),
]


def as_records(rows, start_id=0):
    return [
        TrackingRecord(start_id + i, obj, dev, t_s, t_e)
        for i, (obj, dev, t_s, t_e) in enumerate(rows)
    ]


class TestMonitorRegression:
    def test_advance_at_unchanged_t_reports_ingested_changes(self):
        """Satellite regression: ingest between two advances at the same t.

        Before the tail arrives, only anna is trackable at t=200 and the
        shop ranks first; dan's cafe dwell then lifts the cafe above it,
        and the second ``advance`` at the *same* instant must report the
        rank change.
        """
        plan, deployment, pois = tiny_world()
        engine = LiveFlowEngine(
            plan, deployment, pois, v_max=1.2, ott=LiveTrackingTable(as_records(BASE_ROWS))
        )
        monitor = SnapshotTopKMonitor(engine, k=3)

        first = monitor.advance(200.0)
        assert first.result.poi_ids.index("poi-shop") < first.result.poi_ids.index(
            "poi-cafe"
        )

        monitor.ingest(as_records(TAIL_ROWS, start_id=len(BASE_ROWS)))
        update = monitor.advance(200.0)
        assert update.changed
        assert update.rank_changes
        assert update.result.poi_ids.index("poi-cafe") < update.result.poi_ids.index(
            "poi-shop"
        )

    def test_tick_combines_ingest_and_advance(self):
        plan, deployment, pois = tiny_world()
        engine = LiveFlowEngine(plan, deployment, pois, v_max=1.2)
        monitor = SnapshotTopKMonitor(engine, k=3)
        update = monitor.tick(200.0, records=as_records(BASE_ROWS))
        assert len(update.result) == 3
        assert update.changed  # first tick reports everything as entered

    def test_open_episode_queryable_then_closed(self, contracts_on):
        plan, deployment, pois = tiny_world()
        engine = LiveFlowEngine(plan, deployment, pois, v_max=1.2)
        engine.ingest(as_records(BASE_ROWS))
        engine.ingest_open(TrackingRecord(99, "bo", "rfid-shop", 330.0, 332.0))
        engine.extend_episode("bo", 350.0)
        snapshot = engine.snapshot_topk(340.0, 3)
        assert "poi-shop" in snapshot.poi_ids
        engine.close_episode("bo", 360.0)

        fresh = FlowEngine(
            plan,
            deployment,
            engine.ott.freeze(),
            pois,
            v_max=1.2,
        )
        a = engine.interval_topk(0.0, 400.0, 3)
        b = fresh.interval_topk(0.0, 400.0, 3)
        assert a.poi_ids == b.poi_ids
        assert a.flows == b.flows


# ----------------------------------------------------------------------
# Property: generation-aware caching never changes answers
# ----------------------------------------------------------------------


@st.composite
def tail_batches(draw):
    """1-3 extra dan records after the base scenario, varied in time."""
    count = draw(st.integers(1, 3))
    rows, clock = [], 110.0
    for _ in range(count):
        gap = draw(st.floats(5.0, 60.0))
        dwell = draw(st.floats(1.0, 4.0))
        device = draw(st.sampled_from(["rfid-cafe", "rfid-shop", "rfid-hall"]))
        t_s = clock + gap
        rows.append(("dan", device, t_s, t_s + dwell))
        clock = t_s + dwell
    return rows


@given(tail=tail_batches(), t_probe=st.floats(50.0, 380.0))
@settings(max_examples=25, deadline=None)
def test_generation_aware_caching_is_bit_identical(tail, t_probe):
    """Warm caches + ingest ≡ cold context, for arbitrary live tails.

    The live engine answers queries before and after ingesting the tail
    (so its region/presence caches are warm and must be invalidated
    precisely); the cold engine sees the union once.  Every flow must
    match bit-for-bit.
    """
    plan, deployment, pois = tiny_world()
    base = as_records(BASE_ROWS)
    live = LiveFlowEngine(
        plan, deployment, pois, v_max=1.2, ott=LiveTrackingTable(base)
    )
    live.snapshot_topk(t_probe, 3)  # warm the caches pre-ingest
    live.interval_topk(0.0, 400.0, 3)
    live.ingest(as_records(tail, start_id=len(BASE_ROWS)))

    cold = FlowEngine(
        plan,
        deployment,
        ObjectTrackingTable(base + as_records(tail, start_id=len(BASE_ROWS))),
        pois,
        v_max=1.2,
    )
    for method in ("join", "iterative"):
        warm_snapshot = live.snapshot_topk(t_probe, 3, method=method)
        cold_snapshot = cold.snapshot_topk(t_probe, 3, method=method)
        assert warm_snapshot.poi_ids == cold_snapshot.poi_ids
        assert warm_snapshot.flows == cold_snapshot.flows
        warm_interval = live.interval_topk(0.0, 400.0, 3, method=method)
        cold_interval = cold.interval_topk(0.0, 400.0, 3, method=method)
        assert warm_interval.poi_ids == cold_interval.poi_ids
        assert warm_interval.flows == cold_interval.flows
