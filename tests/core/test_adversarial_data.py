"""Robustness against hostile or physically inconsistent tracking data.

Real OTTs contain garbage: objects that "teleport" (gaps too short for
the distance covered), records referencing decommissioned devices,
zero-duration sightings.  The engine must either answer soundly (empty
regions → zero flow) or fail loudly — never crash mid-query or return
garbage silently.
"""

import pytest

from repro.core import FlowEngine
from repro.geometry import Point, Polygon
from repro.indoor import Deployment, Device, FloorPlan, Poi, Room
from repro.tracking import ObjectTrackingTable, TrackingRecord


@pytest.fixture(scope="module")
def world():
    plan = FloorPlan(
        [Room("hall", Polygon.rectangle(0, 0, 120, 10), kind="hallway")], []
    )
    deployment = Deployment(
        [
            Device.at("near", Point(10, 5), 2.0),
            Device.at("far", Point(110, 5), 2.0),
        ]
    )
    pois = [
        Poi("west", Polygon.rectangle(2, 2, 30, 8), "hall"),
        Poi("east", Polygon.rectangle(90, 2, 118, 8), "hall"),
    ]
    return plan, deployment, pois


def engine_for(world, records, v_max=1.0):
    plan, deployment, pois = world
    ott = ObjectTrackingTable(records).freeze()
    return FlowEngine(plan, deployment, ott, pois, v_max=v_max)


class TestTeleportingObject:
    """100 m apart in 1 s at v_max = 1 m/s: physically impossible."""

    def records(self):
        return [
            TrackingRecord(0, "ghost", "near", 0.0, 10.0),
            TrackingRecord(1, "ghost", "far", 11.0, 20.0),
        ]

    def test_snapshot_in_impossible_gap_is_empty(self, world):
        engine = engine_for(world, self.records())
        region = engine.snapshot_region_of("ghost", 10.5)
        assert region is not None
        assert region.is_empty() or region.mbr is None

    def test_queries_do_not_crash(self, world):
        engine = engine_for(world, self.records())
        snapshot = engine.snapshot_topk(10.5, 2)
        assert len(snapshot) == 2
        interval = engine.interval_topk(5.0, 15.0, 2)
        assert len(interval) == 2

    def test_both_methods_agree_on_garbage(self, world):
        engine = engine_for(world, self.records())
        for t in (5.0, 10.5, 15.0):
            iterative = engine.snapshot_topk(t, 2, method="iterative")
            join = engine.snapshot_topk(t, 2, method="join")
            assert sorted(iterative.flows) == pytest.approx(
                sorted(join.flows), abs=1e-6
            )

    def test_detection_intervals_still_counted(self, world):
        """The impossible gap voids the gap region, not the detections."""
        engine = engine_for(world, self.records())
        flows = engine.interval_flows(0.0, 20.0)
        assert flows.get("west", 0.0) > 0.0  # seen at 'near' for 10 s
        assert flows.get("east", 0.0) > 0.0  # seen at 'far' for 9 s


class TestUnknownDevice:
    def test_query_fails_loudly(self, world):
        engine = engine_for(
            world, [TrackingRecord(0, "o", "decommissioned", 0.0, 10.0)]
        )
        with pytest.raises(KeyError):
            engine.snapshot_topk(5.0, 1, method="iterative")


class TestDegenerateRecords:
    def test_zero_duration_sighting(self, world):
        engine = engine_for(world, [TrackingRecord(0, "o", "near", 5.0, 5.0)])
        result = engine.snapshot_topk(5.0, 1)
        assert result.entries[0].flow > 0.0  # inside 'near' at that instant

    def test_single_record_object_window_queries(self, world):
        engine = engine_for(world, [TrackingRecord(0, "o", "near", 5.0, 8.0)])
        flows = engine.interval_flows(0.0, 20.0)
        assert flows.get("west", 0.0) > 0.0

    def test_empty_ott(self, world):
        engine = engine_for(world, [])
        assert all(e.flow == 0.0 for e in engine.snapshot_topk(5.0, 2))
        assert all(e.flow == 0.0 for e in engine.interval_topk(0.0, 10.0, 2))


class TestExtremeSpeeds:
    def test_tiny_vmax_keeps_regions_feasible_near_detections(self, world):
        records = [
            TrackingRecord(0, "o", "near", 0.0, 10.0),
            TrackingRecord(1, "o", "near", 20.0, 30.0),
        ]
        engine = engine_for(world, records, v_max=0.01)
        region = engine.snapshot_region_of("o", 15.0)
        # Barely moving: confined to a 5 cm whisker around 'near' (radius
        # 2 m, 5 s at 0.01 m/s since last seen).
        assert region.contains(Point(12.04, 5.0))
        assert not region.contains(Point(12.10, 5.0))
        assert not region.contains(Point(20.0, 5.0))

    def test_huge_vmax_does_not_blow_up(self, world):
        records = [
            TrackingRecord(0, "o", "near", 0.0, 10.0),
            TrackingRecord(1, "o", "far", 60.0, 70.0),
        ]
        engine = engine_for(world, records, v_max=1000.0)
        result = engine.snapshot_topk(30.0, 2)
        # Everything is reachable: both POIs get (equal) positive flow.
        assert all(e.flow > 0.0 for e in result)
