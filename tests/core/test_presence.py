"""Tests for object presence (paper, Definition 1)."""

import pytest

from repro.core import PresenceEstimator
from repro.geometry import Circle, EmptyRegion, Point, Polygon
from repro.indoor import Poi


def poi(poi_id="p", min_x=0.0, min_y=0.0, max_x=4.0, max_y=4.0):
    return Poi(
        poi_id=poi_id,
        polygon=Polygon.rectangle(min_x, min_y, max_x, max_y),
        room_id="r",
    )


class TestPresence:
    def test_full_coverage_is_one(self):
        estimator = PresenceEstimator()
        assert estimator.presence(Circle(Point(2, 2), 50.0), poi()) == 1.0

    def test_no_overlap_is_zero(self):
        estimator = PresenceEstimator()
        assert estimator.presence(Circle(Point(100, 100), 1.0), poi()) == 0.0

    def test_empty_region_is_zero(self):
        estimator = PresenceEstimator()
        assert estimator.presence(EmptyRegion(), poi()) == 0.0

    def test_half_coverage(self):
        estimator = PresenceEstimator(resolution=64)
        left_half = Polygon.rectangle(0, 0, 2, 4)
        assert estimator.presence(left_half, poi()) == pytest.approx(0.5, abs=0.02)

    def test_presence_in_unit_interval(self):
        estimator = PresenceEstimator()
        for radius in (0.5, 1.0, 3.0, 10.0):
            value = estimator.presence(Circle(Point(2, 2), radius), poi())
            assert 0.0 <= value <= 1.0

    def test_monotone_in_region_size(self):
        estimator = PresenceEstimator()
        values = [
            estimator.presence(Circle(Point(2, 2), radius), poi())
            for radius in (0.5, 1.0, 2.0, 3.0, 6.0)
        ]
        assert values == sorted(values)

    def test_ratio_uses_poi_own_area(self):
        # The same region covers the small POI fully but the large one
        # partially.
        estimator = PresenceEstimator(resolution=64)
        region = Circle(Point(1, 1), 1.5)
        small = poi("small", 0.5, 0.5, 1.5, 1.5)
        large = poi("large", 0, 0, 8, 8)
        assert estimator.presence(region, small) == 1.0
        assert estimator.presence(region, large) < 0.5

    def test_deterministic_across_calls(self):
        estimator = PresenceEstimator()
        region = Circle(Point(2, 2), 2.2)
        values = {estimator.presence(region, poi()) for _ in range(5)}
        assert len(values) == 1

    def test_deterministic_across_estimators(self):
        region = Circle(Point(2, 2), 2.2)
        a = PresenceEstimator().presence(region, poi())
        b = PresenceEstimator().presence(region, poi())
        assert a == b

    def test_sample_cache_reused(self):
        estimator = PresenceEstimator()
        target = poi()
        first = estimator.samples_of(target)
        second = estimator.samples_of(target)
        assert first is second

    def test_resolution_validation(self):
        with pytest.raises(ValueError):
            PresenceEstimator(resolution=0)

    def test_converges_to_analytic_fraction(self):
        # Circle of radius 2 centred on a 4x4 POI corner: quarter disk
        # inside, area pi -> fraction pi/16.
        import math

        region = Circle(Point(0, 0), 2.0)
        fine = PresenceEstimator(resolution=200).presence(region, poi())
        assert fine == pytest.approx(math.pi / 16.0, rel=0.03)
