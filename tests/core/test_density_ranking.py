"""Tests for the density (area-normalised) top-k variant."""

import pytest

from repro.core import rank_top_k, rank_top_k_by_density
from repro.geometry import Polygon
from repro.indoor import Poi


def poi(poi_id, width, height=2.0):
    return Poi(
        poi_id=poi_id,
        polygon=Polygon.rectangle(0, 0, width, height),
        room_id="r",
    )


class TestRankByDensity:
    def test_small_crowded_beats_large_diluted(self):
        pois = [poi("big", 50.0), poi("small", 2.0)]
        flows = {"big": 10.0, "small": 2.0}
        by_flow = rank_top_k(flows, pois, 2)
        by_density = rank_top_k_by_density(flows, pois, 2)
        assert by_flow.poi_ids == ["big", "small"]
        assert by_density.poi_ids == ["small", "big"]

    def test_entries_carry_density_values(self):
        pois = [poi("a", 4.0)]  # area 8
        result = rank_top_k_by_density({"a": 4.0}, pois, 1)
        assert result.entries[0].flow == pytest.approx(0.5)

    def test_missing_flows_are_zero_density(self):
        pois = [poi("a", 4.0), poi("b", 4.0)]
        result = rank_top_k_by_density({"a": 1.0}, pois, 2)
        assert result.poi_ids == ["a", "b"]
        assert result.flows[1] == 0.0

    def test_ties_broken_by_poi_id(self):
        pois = [poi("b", 4.0), poi("a", 4.0)]
        result = rank_top_k_by_density({"a": 2.0, "b": 2.0}, pois, 2)
        assert result.poi_ids == ["a", "b"]

    def test_k_validated(self):
        with pytest.raises(ValueError):
            rank_top_k_by_density({}, [poi("a", 1.0)], 0)


class TestEngineDensityQueries:
    def test_snapshot_density_topk(self, synthetic_dataset, synthetic_engine):
        t = synthetic_dataset.mid_time()
        result = synthetic_engine.snapshot_density_topk(t, 5)
        assert len(result) == 5
        assert result.flows == sorted(result.flows, reverse=True)

    def test_density_consistent_with_flow_map(
        self, synthetic_dataset, synthetic_engine
    ):
        t = synthetic_dataset.mid_time()
        flows = synthetic_engine.snapshot_flows(t)
        result = synthetic_engine.snapshot_density_topk(t, 3)
        for entry in result:
            expected = flows.get(entry.poi.poi_id, 0.0) / entry.poi.area()
            assert entry.flow == pytest.approx(expected)

    def test_interval_density_topk(self, synthetic_dataset, synthetic_engine):
        start, end = synthetic_dataset.window(3)
        result = synthetic_engine.interval_density_topk(start, end, 4)
        assert len(result) == 4

    def test_poi_subset_respected(self, synthetic_dataset, synthetic_engine):
        subset = synthetic_dataset.poi_subset(20, seed=2)
        allowed = {p.poi_id for p in subset}
        t = synthetic_dataset.mid_time()
        result = synthetic_engine.snapshot_density_topk(t, 3, pois=subset)
        assert set(result.poi_ids) <= allowed
