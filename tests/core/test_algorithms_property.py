"""Property-based equivalence of the join and iterative algorithms.

The simulator-based tests exercise realistic data; these hypothesis tests
throw *arbitrary* consistent tracking tables (random device sequences,
random gaps, boundary-touching windows) at both algorithms and require
identical flows — the strongest contract the paper states (Section 4: the
join is an optimisation, not an approximation).
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import FlowEngine
from repro.geometry import Point, Polygon
from repro.indoor import Deployment, Device, Door, FloorPlan, Poi, Room
from repro.tracking import ObjectTrackingTable, TrackingRecord


def _fixture_world():
    """A small three-room world with four devices and six POIs."""
    rooms = [
        Room("west", Polygon.rectangle(0, 0, 20, 12)),
        Room("mid", Polygon.rectangle(20, 0, 40, 12)),
        Room("east", Polygon.rectangle(40, 0, 60, 12)),
    ]
    doors = [
        Door("wm", Point(20, 6), "west", "mid"),
        Door("me", Point(40, 6), "mid", "east"),
    ]
    plan = FloorPlan(rooms, doors)
    deployment = Deployment(
        [
            Device.at("d0", Point(5, 6), 2.0),
            Device.at("d1", Point(20, 6), 2.0),
            Device.at("d2", Point(40, 6), 2.0),
            Device.at("d3", Point(55, 6), 2.0),
        ]
    )
    pois = [
        Poi(f"poi{i}", Polygon.rectangle(2 + i * 9.5, 1, 9 + i * 9.5, 11), room)
        for i, room in enumerate(
            ["west", "west", "mid", "mid", "east", "east"]
        )
    ]
    return plan, deployment, pois


_PLAN, _DEPLOYMENT, _POIS = _fixture_world()
_DEVICE_IDS = ["d0", "d1", "d2", "d3"]


@st.composite
def tracking_tables(draw):
    """Random consistent OTTs over the fixture deployment."""
    records = []
    record_id = 0
    for obj in range(draw(st.integers(min_value=1, max_value=6))):
        t = draw(st.floats(min_value=0.0, max_value=50.0))
        for _ in range(draw(st.integers(min_value=1, max_value=6))):
            gap = draw(st.floats(min_value=0.5, max_value=60.0))
            duration = draw(st.floats(min_value=0.0, max_value=20.0))
            device = draw(st.sampled_from(_DEVICE_IDS))
            t_s = t + gap
            records.append(
                TrackingRecord(record_id, f"o{obj}", device, t_s, t_s + duration)
            )
            record_id += 1
            t = t_s + duration
    return ObjectTrackingTable(records).freeze()


def _engine(ott, topology_check=True):
    return FlowEngine(
        _PLAN,
        _DEPLOYMENT,
        ott,
        _POIS,
        v_max=1.5,
        resolution=16,
        topology_check=topology_check,
    )


def _assert_flows_match(a, b):
    assert len(a) == len(b)
    flows_a = sorted(a.flows, reverse=True)
    flows_b = sorted(b.flows, reverse=True)
    for x, y in zip(flows_a, flows_b):
        assert x == pytest.approx(y, abs=1e-6)


class TestRandomTables:
    @settings(
        max_examples=40,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        tracking_tables(),
        st.floats(min_value=0.0, max_value=250.0),
        st.integers(min_value=1, max_value=6),
    )
    def test_snapshot_equivalence(self, ott, t, k):
        engine = _engine(ott)
        iterative = engine.snapshot_topk(t, k, method="iterative")
        join = engine.snapshot_topk(t, k, method="join")
        _assert_flows_match(iterative, join)

    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        tracking_tables(),
        st.floats(min_value=0.0, max_value=200.0),
        st.floats(min_value=0.0, max_value=80.0),
        st.integers(min_value=1, max_value=6),
        st.booleans(),
    )
    def test_interval_equivalence(self, ott, start, length, k, segments):
        engine = _engine(ott)
        end = start + length
        iterative = engine.interval_topk(start, end, k, method="iterative")
        join = engine.interval_topk(
            start, end, k, method="join", use_segment_mbrs=segments
        )
        _assert_flows_match(iterative, join)

    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(tracking_tables(), st.floats(min_value=0.0, max_value=250.0))
    def test_flows_bounded_by_population(self, ott, t):
        engine = _engine(ott)
        flows = engine.snapshot_flows(t)
        for value in flows.values():
            assert 0.0 <= value <= ott.object_count + 1e-9

    @settings(
        max_examples=20,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        tracking_tables(),
        st.floats(min_value=0.0, max_value=200.0),
        st.floats(min_value=1.0, max_value=50.0),
    )
    def test_topology_check_never_raises_flow(self, ott, start, length):
        euclid = _engine(ott, topology_check=False)
        topo = _engine(ott, topology_check=True)
        end = start + length
        euclid_flows = euclid.interval_flows(start, end)
        topo_flows = topo.interval_flows(start, end)
        for poi_id, value in topo_flows.items():
            assert value <= euclid_flows.get(poi_id, 0.0) + 1e-9

    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        tracking_tables(),
        st.floats(min_value=0.0, max_value=200.0),
        st.floats(min_value=0.0, max_value=30.0),
        st.floats(min_value=0.0, max_value=30.0),
    )
    def test_window_monotonicity(self, ott, start, length, extension):
        """Extending the window never reduces any POI's flow."""
        engine = _engine(ott)
        narrow = engine.interval_flows(start, start + length)
        wide = engine.interval_flows(start, start + length + extension)
        for poi_id, value in narrow.items():
            assert wide.get(poi_id, 0.0) >= value - 1e-6
