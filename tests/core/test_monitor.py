"""Tests for continuous top-k monitoring."""

import pytest

from repro.core.monitor import (
    SlidingIntervalTopKMonitor,
    SnapshotTopKMonitor,
    TopKUpdate,
)


class TestValidation:
    def test_rejects_bad_k(self, synthetic_engine):
        with pytest.raises(ValueError):
            SnapshotTopKMonitor(synthetic_engine, k=0)

    def test_rejects_bad_window(self, synthetic_engine):
        with pytest.raises(ValueError):
            SlidingIntervalTopKMonitor(synthetic_engine, k=3, window_seconds=0.0)

    def test_time_must_not_run_backwards(self, synthetic_dataset, synthetic_engine):
        monitor = SnapshotTopKMonitor(synthetic_engine, k=3)
        t = synthetic_dataset.mid_time()
        monitor.advance(t)
        with pytest.raises(ValueError):
            monitor.advance(t - 10.0)


class TestSnapshotMonitor:
    def test_first_tick_reports_all_entered(
        self, synthetic_dataset, synthetic_engine
    ):
        monitor = SnapshotTopKMonitor(synthetic_engine, k=5)
        update = monitor.advance(synthetic_dataset.mid_time())
        assert isinstance(update, TopKUpdate)
        assert len(update.entered) == 5
        assert update.exited == ()
        assert update.changed

    def test_matches_direct_query(self, synthetic_dataset, synthetic_engine):
        t = synthetic_dataset.mid_time()
        monitor = SnapshotTopKMonitor(synthetic_engine, k=5)
        update = monitor.advance(t)
        direct = synthetic_engine.snapshot_topk(t, 5)
        assert update.result.poi_ids == direct.poi_ids
        assert update.result.flows == direct.flows

    def test_same_instant_reports_no_changes(
        self, synthetic_dataset, synthetic_engine
    ):
        t = synthetic_dataset.mid_time()
        monitor = SnapshotTopKMonitor(synthetic_engine, k=5)
        monitor.advance(t)
        update = monitor.advance(t)
        assert not update.changed

    def test_diff_consistency(self, synthetic_dataset, synthetic_engine):
        """entered/exited/rank_changes must exactly explain the transition."""
        start, end = synthetic_dataset.time_span()
        monitor = SnapshotTopKMonitor(synthetic_engine, k=5)
        previous_ids: set[str] = set()
        for fraction in (0.2, 0.4, 0.6, 0.8):
            update = monitor.advance(start + fraction * (end - start))
            current = set(update.result.poi_ids)
            assert set(update.entered) == current - previous_ids
            assert set(update.exited) == previous_ids - current
            for poi_id, old_rank, new_rank in update.rank_changes:
                assert poi_id in current and poi_id in previous_ids
                assert old_rank != new_rank
            previous_ids = current

    def test_run_collects_updates(self, synthetic_dataset, synthetic_engine):
        start, end = synthetic_dataset.time_span()
        monitor = SnapshotTopKMonitor(synthetic_engine, k=3)
        updates = monitor.run([start + 60.0, start + 120.0, start + 180.0])
        assert len(updates) == 3
        assert [u.t for u in updates] == [start + 60.0, start + 120.0, start + 180.0]


class TestSlidingIntervalMonitor:
    def test_matches_direct_window_query(
        self, synthetic_dataset, synthetic_engine
    ):
        t = synthetic_dataset.mid_time()
        monitor = SlidingIntervalTopKMonitor(
            synthetic_engine, k=4, window_seconds=120.0
        )
        update = monitor.advance(t)
        direct = synthetic_engine.interval_topk(t - 120.0, t, 4)
        assert update.result.flows == direct.flows

    def test_poi_subset_respected(self, synthetic_dataset, synthetic_engine):
        subset = synthetic_dataset.poi_subset(20, seed=1)
        allowed = {poi.poi_id for poi in subset}
        monitor = SlidingIntervalTopKMonitor(
            synthetic_engine, k=3, window_seconds=120.0, pois=subset
        )
        update = monitor.advance(synthetic_dataset.mid_time())
        assert set(update.result.poi_ids) <= allowed

    def test_methods_agree(self, synthetic_dataset, synthetic_engine):
        t = synthetic_dataset.mid_time()
        flows = []
        for method in ("join", "iterative"):
            monitor = SlidingIntervalTopKMonitor(
                synthetic_engine, k=5, window_seconds=60.0, method=method
            )
            flows.append(sorted(monitor.advance(t).result.flows, reverse=True))
        assert flows[0] == pytest.approx(flows[1], abs=1e-6)
