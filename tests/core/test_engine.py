"""Tests for the FlowEngine facade."""

import pytest

from repro.core import FlowEngine, IntervalUncertainty
from repro.geometry import Region


class TestConstruction:
    def test_rejects_non_positive_vmax(self, synthetic_dataset):
        with pytest.raises(ValueError):
            FlowEngine(
                synthetic_dataset.floorplan,
                synthetic_dataset.deployment,
                synthetic_dataset.ott,
                synthetic_dataset.pois,
                v_max=0.0,
            )

    def test_rejects_empty_pois(self, synthetic_dataset):
        with pytest.raises(ValueError):
            FlowEngine(
                synthetic_dataset.floorplan,
                synthetic_dataset.deployment,
                synthetic_dataset.ott,
                [],
                v_max=1.0,
            )

    def test_freezes_ott(self, synthetic_dataset, synthetic_engine):
        with pytest.raises(RuntimeError):
            synthetic_engine.ott.append(None)

    def test_topology_disabled(self, synthetic_dataset):
        engine = synthetic_dataset.engine(topology_check=False)
        assert engine.topology is None


class TestIntrospection:
    def test_snapshot_region_of_tracked_object(
        self, synthetic_dataset, synthetic_engine
    ):
        t = synthetic_dataset.mid_time()
        object_id = synthetic_engine.ott.object_ids[0]
        region = synthetic_engine.snapshot_region_of(object_id, t)
        assert region is None or isinstance(region, Region)

    def test_snapshot_region_of_unknown_object(
        self, synthetic_dataset, synthetic_engine
    ):
        assert synthetic_engine.snapshot_region_of("ghost", 0.0) is None

    def test_interval_region_of(self, synthetic_dataset, synthetic_engine):
        start, end = synthetic_dataset.window(3)
        object_id = synthetic_engine.ott.object_ids[0]
        uncertainty = synthetic_engine.interval_region_of(object_id, start, end)
        if uncertainty is not None:
            assert isinstance(uncertainty, IntervalUncertainty)
            assert uncertainty.episodes

    def test_interval_region_of_unknown_object(self, synthetic_engine):
        assert synthetic_engine.interval_region_of("ghost", 0.0, 1.0) is None


class TestFlowMaps:
    def test_snapshot_flow_map_only_positive_entries(
        self, synthetic_dataset, synthetic_engine
    ):
        flows = synthetic_engine.snapshot_flows(synthetic_dataset.mid_time())
        assert flows
        assert all(value > 0.0 for value in flows.values())

    def test_interval_flow_map_covers_snapshot_pois(
        self, synthetic_dataset, synthetic_engine
    ):
        t = synthetic_dataset.mid_time()
        snapshot = synthetic_engine.snapshot_flows(t)
        interval = synthetic_engine.interval_flows(t - 30.0, t + 30.0)
        # Every POI with snapshot flow also has interval flow: the interval
        # region contains the snapshot region's time slice.
        for poi_id in snapshot:
            assert poi_id in interval

    def test_flow_map_restricted_to_subset(
        self, synthetic_dataset, synthetic_engine
    ):
        subset = synthetic_dataset.poi_subset(20, seed=3)
        allowed = {poi.poi_id for poi in subset}
        flows = synthetic_engine.snapshot_flows(
            synthetic_dataset.mid_time(), pois=subset
        )
        assert set(flows) <= allowed


class TestResolutionKnob:
    def test_coarser_resolution_still_agrees_between_methods(
        self, synthetic_dataset
    ):
        engine = synthetic_dataset.engine(resolution=12)
        t = synthetic_dataset.mid_time()
        iterative = engine.snapshot_topk(t, 5, method="iterative")
        join = engine.snapshot_topk(t, 5, method="join")
        assert sorted(iterative.flows, reverse=True) == pytest.approx(
            sorted(join.flows, reverse=True), abs=1e-6
        )
