"""Equivalence and behaviour tests for the query algorithms.

The central contract: for any data and parameters, the join-based
algorithms return the same top-k flows as the iterative baselines (ties may
be permuted; flows agree to float tolerance).
"""

import pytest

from repro.core import interval_flows, snapshot_flows


def assert_same_topk(result_a, result_b):
    """Same flow values (tolerating tie permutations and float noise)."""
    assert len(result_a) == len(result_b)
    flows_a = sorted(result_a.flows, reverse=True)
    flows_b = sorted(result_b.flows, reverse=True)
    for a, b in zip(flows_a, flows_b):
        assert a == pytest.approx(b, abs=1e-6)
    # Non-tied positions must name the same POI.
    for entry_a, entry_b in zip(result_a.entries, result_b.entries):
        if abs(entry_a.flow - entry_b.flow) > 1e-6:
            raise AssertionError(
                f"flow mismatch: {entry_a.poi.poi_id}={entry_a.flow} vs "
                f"{entry_b.poi.poi_id}={entry_b.flow}"
            )


class TestSnapshotEquivalence:
    @pytest.mark.parametrize("k", [1, 3, 10])
    def test_join_matches_iterative(self, synthetic_dataset, synthetic_engine, k):
        t = synthetic_dataset.mid_time()
        iterative = synthetic_engine.snapshot_topk(t, k, method="iterative")
        join = synthetic_engine.snapshot_topk(t, k, method="join")
        assert_same_topk(iterative, join)

    @pytest.mark.parametrize("fraction", [0.2, 0.6])
    def test_equivalence_on_poi_subsets(
        self, synthetic_dataset, synthetic_engine, fraction
    ):
        t = synthetic_dataset.mid_time()
        subset = synthetic_dataset.poi_subset(fraction * 100, seed=1)
        iterative = synthetic_engine.snapshot_topk(
            t, 5, pois=subset, method="iterative"
        )
        join = synthetic_engine.snapshot_topk(t, 5, pois=subset, method="join")
        assert_same_topk(iterative, join)

    def test_equivalence_at_many_time_points(
        self, synthetic_dataset, synthetic_engine
    ):
        start, end = synthetic_dataset.time_span()
        for fraction in (0.2, 0.5, 0.8):
            t = start + fraction * (end - start)
            iterative = synthetic_engine.snapshot_topk(t, 5, method="iterative")
            join = synthetic_engine.snapshot_topk(t, 5, method="join")
            assert_same_topk(iterative, join)

    def test_flows_positive_and_bounded(self, synthetic_dataset, synthetic_engine):
        t = synthetic_dataset.mid_time()
        flows = synthetic_engine.snapshot_flows(t)
        object_count = synthetic_dataset.ott.object_count
        for value in flows.values():
            assert 0.0 < value <= object_count + 1e-9


class TestIntervalEquivalence:
    @pytest.mark.parametrize("minutes", [2, 8])
    def test_join_matches_iterative(
        self, synthetic_dataset, synthetic_engine, minutes
    ):
        start, end = synthetic_dataset.window(minutes)
        iterative = synthetic_engine.interval_topk(start, end, 5, method="iterative")
        join = synthetic_engine.interval_topk(start, end, 5, method="join")
        assert_same_topk(iterative, join)

    def test_segment_mbr_improvement_changes_nothing(
        self, synthetic_dataset, synthetic_engine
    ):
        start, end = synthetic_dataset.window(5)
        improved = synthetic_engine.interval_topk(
            start, end, 5, method="join", use_segment_mbrs=True
        )
        coarse = synthetic_engine.interval_topk(
            start, end, 5, method="join", use_segment_mbrs=False
        )
        assert_same_topk(improved, coarse)

    def test_equivalence_on_poi_subsets(self, synthetic_dataset, synthetic_engine):
        start, end = synthetic_dataset.window(5)
        subset = synthetic_dataset.poi_subset(40, seed=2)
        iterative = synthetic_engine.interval_topk(
            start, end, 5, pois=subset, method="iterative"
        )
        join = synthetic_engine.interval_topk(
            start, end, 5, pois=subset, method="join"
        )
        assert_same_topk(iterative, join)

    def test_flows_grow_with_window(self, synthetic_dataset, synthetic_engine):
        """A longer window can only add presence, never remove it."""
        short = synthetic_dataset.window(2)
        total_short = sum(
            synthetic_engine.interval_flows(short[0], short[1]).values()
        )
        long = synthetic_dataset.window(10)
        total_long = sum(synthetic_engine.interval_flows(long[0], long[1]).values())
        assert total_long >= total_short - 1e-6


class TestResultShape:
    def test_returns_exactly_k(self, synthetic_dataset, synthetic_engine):
        t = synthetic_dataset.mid_time()
        for k in (1, 7, 20):
            assert len(synthetic_engine.snapshot_topk(t, k)) == k

    def test_flows_sorted_descending(self, synthetic_dataset, synthetic_engine):
        t = synthetic_dataset.mid_time()
        result = synthetic_engine.snapshot_topk(t, 10)
        assert result.flows == sorted(result.flows, reverse=True)

    def test_query_outside_data_span_returns_zero_flows(
        self, synthetic_dataset, synthetic_engine
    ):
        result = synthetic_engine.snapshot_topk(1e9, 3)
        assert len(result) == 3
        assert all(entry.flow == 0.0 for entry in result)
        result = synthetic_engine.snapshot_topk(1e9, 3, method="iterative")
        assert all(entry.flow == 0.0 for entry in result)

    def test_unknown_method_rejected(self, synthetic_dataset, synthetic_engine):
        with pytest.raises(ValueError):
            synthetic_engine.snapshot_topk(0.0, 1, method="magic")
        with pytest.raises(ValueError):
            synthetic_engine.interval_topk(0.0, 1.0, 1, method="magic")

    def test_empty_poi_subset_rejected(self, synthetic_engine):
        with pytest.raises(ValueError):
            synthetic_engine.snapshot_topk(0.0, 1, pois=[])


class TestCphEquivalence:
    def test_snapshot(self, cph_dataset, cph_engine):
        t = cph_dataset.mid_time()
        iterative = cph_engine.snapshot_topk(t, 5, method="iterative")
        join = cph_engine.snapshot_topk(t, 5, method="join")
        assert_same_topk(iterative, join)

    def test_interval(self, cph_dataset, cph_engine):
        start, end = cph_dataset.window(10)
        iterative = cph_engine.interval_topk(start, end, 5, method="iterative")
        join = cph_engine.interval_topk(start, end, 5, method="join")
        assert_same_topk(iterative, join)
