"""Ground-truth soundness of the uncertainty analysis.

The paper's derivations guarantee that an object's true position lies
inside its uncertainty region — at the query time point for ``UR(o, t)``
and at every in-window time for ``UR(o, [t_s, t_e])``.  With simulated
data we know the ground truth, so we check the guarantee directly, both
with and without the topology check (the check must tighten regions, never
cut off truth).
"""

# repro: allow-file(context-bypass): verifies the raw builders against ground truth, independent of caching

import pytest

from repro.core import (
    interval_contexts,
    interval_uncertainty,
    snapshot_contexts,
    snapshot_region,
)


def probe_times(dataset, count=7):
    start, end = dataset.time_span()
    step = (end - start) / (count + 1)
    return [start + step * (i + 1) for i in range(count)]


class TestSnapshotSoundness:
    @pytest.mark.parametrize("topology_on", [True, False], ids=["topo", "euclid"])
    def test_true_position_inside_region(self, synthetic_dataset, topology_on):
        engine = synthetic_dataset.engine(topology_check=topology_on)
        checked = 0
        for t in probe_times(synthetic_dataset):
            for context in snapshot_contexts(engine.artree, t):
                region = snapshot_region(
                    context, engine.deployment, engine.v_max, engine.topology
                )
                truth = synthetic_dataset.trajectory_of(
                    context.object_id
                ).position_at(t)
                assert region.contains(truth), (
                    f"object {context.object_id} at t={t}: true position "
                    f"{truth} outside its snapshot UR (topology={topology_on})"
                )
                checked += 1
        assert checked > 50  # the probe actually exercised many objects


class TestIntervalSoundness:
    @pytest.mark.parametrize("topology_on", [True, False], ids=["topo", "euclid"])
    def test_whole_true_subtrajectory_inside_region(
        self, synthetic_dataset, topology_on
    ):
        engine = synthetic_dataset.engine(topology_check=topology_on)
        start, end = synthetic_dataset.window(4)
        checked = 0
        for context in interval_contexts(engine.artree, start, end):
            uncertainty = interval_uncertainty(
                context, engine.deployment, engine.v_max, engine.topology
            )
            region = uncertainty.region
            trajectory = synthetic_dataset.trajectory_of(context.object_id)
            for t in trajectory.sample_times(start, end, step=7.0):
                truth = trajectory.position_at(t)
                assert region.contains(truth), (
                    f"object {context.object_id} at t={t}: true position "
                    f"{truth} outside its interval UR (topology={topology_on})"
                )
                checked += 1
        assert checked > 100


class TestTopologyCheckOnlyTightens:
    def test_checked_region_subset_of_unchecked(self, synthetic_dataset):
        euclid_engine = synthetic_dataset.engine(topology_check=False)
        topo_engine = synthetic_dataset.engine(topology_check=True)
        t = synthetic_dataset.mid_time()
        import numpy as np

        rng = np.random.default_rng(0)
        for context in snapshot_contexts(topo_engine.artree, t)[:20]:
            unchecked = snapshot_region(
                context, euclid_engine.deployment, euclid_engine.v_max, None
            )
            checked = snapshot_region(
                context,
                topo_engine.deployment,
                topo_engine.v_max,
                topo_engine.topology,
            )
            box = unchecked.mbr
            if box is None:
                continue
            xs = rng.uniform(box.min_x, box.max_x, 80)
            ys = rng.uniform(box.min_y, box.max_y, 80)
            checked_mask = checked.contains_many(xs, ys)
            unchecked_mask = unchecked.contains_many(xs, ys)
            # checked ⊆ unchecked
            assert not (checked_mask & ~unchecked_mask).any()

    def test_flows_never_increase_with_topology_check(self, synthetic_dataset):
        euclid_engine = synthetic_dataset.engine(topology_check=False)
        topo_engine = synthetic_dataset.engine(topology_check=True)
        t = synthetic_dataset.mid_time()
        euclid_flows = euclid_engine.snapshot_flows(t)
        topo_flows = topo_engine.snapshot_flows(t)
        for poi_id, value in topo_flows.items():
            assert value <= euclid_flows.get(poi_id, 0.0) + 1e-9
