"""Semantics of the detection-slack relaxation (DESIGN.md §6, finding 2)."""

# repro: allow-file(context-bypass): exercises the inner-allowance parameter of the raw builders

import pytest

from repro.core import FlowEngine, SnapshotContext, snapshot_region
from repro.core.uncertainty.snapshot import slack_ring
from repro.geometry import Circle, Point
from repro.indoor import Deployment, Device
from repro.tracking import TrackingRecord


class TestSlackRing:
    def test_zero_slack_is_plain_ring(self):
        range_circle = Circle(Point(0, 0), 2.0)
        ring = slack_ring(range_circle, budget=3.0, inner_allowance=0.0)
        assert ring.inner_radius == 2.0
        assert ring.outer_radius == 5.0

    def test_allowance_shrinks_inner_keeps_outer(self):
        range_circle = Circle(Point(0, 0), 2.0)
        ring = slack_ring(range_circle, budget=3.0, inner_allowance=0.5)
        assert ring.inner_radius == 1.5
        assert ring.outer_radius == 5.0

    def test_allowance_clamped_to_radius(self):
        range_circle = Circle(Point(0, 0), 2.0)
        ring = slack_ring(range_circle, budget=3.0, inner_allowance=10.0)
        assert ring.inner_radius == 0.0
        assert ring.outer_radius == 5.0

    def test_relaxed_ring_is_superset(self):
        range_circle = Circle(Point(0, 0), 2.0)
        strict = slack_ring(range_circle, 3.0, 0.0)
        relaxed = slack_ring(range_circle, 3.0, 1.0)
        for x in (0.0, 1.2, 1.8, 2.5, 4.9, 5.2):
            probe = Point(x, 0.0)
            if strict.contains(probe):
                assert relaxed.contains(probe)


class TestRegionWithSlack:
    def inactive_context(self):
        return SnapshotContext(
            object_id="o",
            t=14.0,
            rd_pre=TrackingRecord(0, "o", "a", 5.0, 10.0),
            rd_cov=None,
            rd_suc=TrackingRecord(1, "o", "a", 18.0, 25.0),
        )

    def test_slack_admits_just_inside_range_positions(self):
        """An object seen by 'a' until t=10 and again from t=18 may, at
        t=14 with sampled detection, still be fractionally inside the
        range — slack admits that, the strict model does not."""
        deployment = Deployment([Device.at("a", Point(0, 5), 2.0)])
        just_inside = Point(1.5, 5.0)  # 1.5 < r = 2
        strict = snapshot_region(
            self.inactive_context(), deployment, 1.0, inner_allowance=0.0
        )
        relaxed = snapshot_region(
            self.inactive_context(), deployment, 1.0, inner_allowance=0.75
        )
        assert not strict.contains(just_inside)
        assert relaxed.contains(just_inside)

    def test_outer_reach_unchanged(self):
        deployment = Deployment([Device.at("a", Point(0, 5), 2.0)])
        beyond = Point(6.5, 5.0)  # r + budget = 2 + 4 = 6
        for allowance in (0.0, 1.0):
            region = snapshot_region(
                self.inactive_context(), deployment, 1.0, inner_allowance=allowance
            )
            assert not region.contains(beyond)


class TestEngineKnob:
    def test_rejects_negative_slack(self, synthetic_dataset):
        with pytest.raises(ValueError):
            synthetic_dataset.engine(detection_slack=-1.0)

    def test_allowance_derived_from_vmax(self, synthetic_dataset):
        engine = synthetic_dataset.engine(detection_slack=2.0)
        assert engine.inner_allowance == pytest.approx(
            2.0 * synthetic_dataset.v_max
        )

    def test_dataset_defaults_to_sampled_slack(self, synthetic_dataset):
        engine = synthetic_dataset.engine()
        assert engine.detection_slack == pytest.approx(
            2.0 * synthetic_dataset.sampling_interval
        )

    def test_paper_exact_mode_available(self, synthetic_dataset):
        engine = synthetic_dataset.engine(detection_slack=0.0)
        assert engine.inner_allowance == 0.0

    def test_slack_only_increases_flows(self, synthetic_dataset):
        """Relaxing inner exclusions can only admit more area."""
        t = synthetic_dataset.mid_time()
        strict = synthetic_dataset.engine(detection_slack=0.0).snapshot_flows(t)
        relaxed = synthetic_dataset.engine(detection_slack=2.0).snapshot_flows(t)
        for poi_id, value in strict.items():
            assert relaxed.get(poi_id, 0.0) >= value - 1e-9

    def test_methods_agree_under_slack(self, synthetic_dataset):
        engine = synthetic_dataset.engine(detection_slack=2.0)
        t = synthetic_dataset.mid_time()
        iterative = engine.snapshot_topk(t, 5, method="iterative")
        join = engine.snapshot_topk(t, 5, method="join")
        assert sorted(iterative.flows, reverse=True) == pytest.approx(
            sorted(join.flows, reverse=True), abs=1e-6
        )
