"""ForkedProcessExecutor failure paths.

The sharded engine's availability story depends on the coordinator
surfacing worker failures loudly and cleaning up: an application-level
exception inside a shard method must cross the pipe and re-raise as-is,
a worker process dying mid-batch must become a descriptive
``RuntimeError`` (there is no exception object to forward), and
``close()`` must never leave zombie workers behind.
"""

from __future__ import annotations

import multiprocessing
import os

import pytest

from repro.core.coordinator import ForkedProcessExecutor

pytestmark = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="ForkedProcessExecutor needs the POSIX fork start method",
)


class _StubShard:
    """A minimal duck-typed shard for exercising the executor."""

    def double(self, value: int) -> int:
        return value * 2

    def boom(self) -> None:
        raise ValueError("kaput from worker")

    def die(self) -> None:
        # Hard crash: no exception crosses the pipe, the process is gone.
        os._exit(17)


def _assert_no_zombies(executor: ForkedProcessExecutor) -> None:
    for process in executor._processes:
        assert not process.is_alive()


class TestWorkerRaises:
    def test_original_exception_surfaces(self):
        executor = ForkedProcessExecutor([_StubShard(), _StubShard()])
        try:
            with pytest.raises(ValueError, match="kaput from worker"):
                executor.run(
                    [(0, "double", (1,), {}), (1, "boom", (), {})]
                )
        finally:
            executor.close()
        _assert_no_zombies(executor)

    def test_executor_survives_application_errors(self):
        executor = ForkedProcessExecutor([_StubShard()])
        try:
            with pytest.raises(ValueError):
                executor.run([(0, "boom", (), {})])
            # The worker caught and forwarded the error; the pipe stays
            # in sync and the executor remains usable.
            assert executor.run([(0, "double", (21,), {})]) == [42]
        finally:
            executor.close()
        _assert_no_zombies(executor)


class TestWorkerDies:
    def test_pipe_eof_becomes_descriptive_runtime_error(self):
        executor = ForkedProcessExecutor([_StubShard()])
        try:
            with pytest.raises(
                RuntimeError, match=r"worker 0 died mid-batch.*exit code 17"
            ):
                executor.run([(0, "die", (), {})])
        finally:
            executor.close()
        _assert_no_zombies(executor)

    def test_mid_batch_death_names_the_dead_worker(self):
        executor = ForkedProcessExecutor([_StubShard(), _StubShard()])
        try:
            with pytest.raises(RuntimeError, match="worker 1 died mid-batch"):
                executor.run(
                    [(0, "double", (2,), {}), (1, "die", (), {})]
                )
        finally:
            executor.close()
        _assert_no_zombies(executor)

    def test_send_to_dead_worker_raises(self):
        executor = ForkedProcessExecutor([_StubShard()])
        try:
            with pytest.raises(RuntimeError):
                executor.run([(0, "die", (), {})])
            # The worker is gone: the next dispatch must fail loudly on
            # the send side, not hang on recv.
            with pytest.raises(RuntimeError, match="died mid-batch"):
                executor.run([(0, "double", (1,), {})])
        finally:
            executor.close()
        _assert_no_zombies(executor)


class TestClose:
    def test_close_is_idempotent_and_reaps_workers(self):
        executor = ForkedProcessExecutor([_StubShard(), _StubShard()])
        assert executor.run([(0, "double", (3,), {})]) == [6]
        executor.close()
        executor.close()
        _assert_no_zombies(executor)
        with pytest.raises(RuntimeError, match="closed"):
            executor.run([(0, "double", (1,), {})])
