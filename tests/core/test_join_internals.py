"""White-box tests for the join machinery (Algorithms 2/3/5 internals)."""

import pytest

from repro.core.algorithms.join import JoinObject, _match_entries, _topk_join
from repro.core.presence import PresenceEstimator
from repro.geometry import Circle, Mbr, Point, Polygon
from repro.index import AggregateRTree
from repro.indoor import Poi, build_poi_index


def join_object(object_id, x, y, half=2.0, segments=None):
    """A JoinObject whose region is a disk centred at (x, y)."""
    return JoinObject(
        object_id=object_id,
        mbr=Mbr.around(Point(x, y), half),
        region_factory=lambda: Circle(Point(x, y), half),
        segment_mbrs=segments,
    )


def poi_at(poi_id, x, y, half=3.0):
    return Poi(
        poi_id=poi_id,
        polygon=Polygon.rectangle(x - half, y - half, x + half, y + half),
        room_id="r",
    )


class TestJoinObject:
    def test_region_is_lazy_and_cached(self):
        calls = []

        def factory():
            calls.append(1)
            return Circle(Point(0, 0), 1.0)

        obj = JoinObject("o", Mbr(0, 0, 1, 1), factory)
        assert not calls  # nothing built yet
        first = obj.region()
        second = obj.region()
        assert first is second
        assert len(calls) == 1  # the paper's H_U: derive once

    def test_matches_coarse(self):
        obj = join_object("o", 0.0, 0.0, half=2.0)
        assert obj.matches(Mbr(1, 1, 5, 5), use_segment_mbrs=False)
        assert not obj.matches(Mbr(10, 10, 12, 12), use_segment_mbrs=False)

    def test_segment_mbrs_refine(self):
        # Overall box covers [-10, 10] but the actual episodes only touch
        # the two ends; the middle POI is pruned only with segments on.
        segments = (Mbr(-10, -1, -6, 1), Mbr(6, -1, 10, 1))
        obj = JoinObject(
            "o",
            Mbr(-10, -1, 10, 1),
            region_factory=lambda: Circle(Point(0, 0), 0.1),
            segment_mbrs=segments,
        )
        middle = Mbr(-1, -1, 1, 1)
        assert obj.matches(middle, use_segment_mbrs=False)
        assert not obj.matches(middle, use_segment_mbrs=True)
        end = Mbr(7, -1, 8, 1)
        assert obj.matches(end, use_segment_mbrs=True)


class TestMatchEntries:
    def test_counts_bound_group_sizes(self):
        objects = [join_object(f"o{i}", float(i * 3), 0.0, half=1.0) for i in range(20)]
        tree = AggregateRTree.build(
            [(o.mbr, o) for o in objects], max_entries=4
        )
        probe = Mbr(0, -1, 30, 1)
        matched, upper_bound = _match_entries(
            probe, tree.root.entries, tree, use_segment_mbrs=False
        )
        # The bound equals the number of objects under the matched entries,
        # which is at least the number that truly intersect.
        truly = sum(1 for o in objects if o.mbr.intersects(probe))
        assert upper_bound >= truly
        assert upper_bound == sum(tree.count(e) for e in matched)


class TestTopKJoin:
    def test_exact_presence_one_object_one_poi(self):
        # A disk of radius 2 centred inside a 6x6 POI: presence = area
        # ratio ~ pi*4/36.
        import math

        objects = [join_object("o", 0.0, 0.0, half=2.0)]
        pois = [poi_at("p", 0.0, 0.0, half=3.0)]
        result = _topk_join(
            build_poi_index(pois),
            pois,
            objects,
            k=1,
            estimator=PresenceEstimator(resolution=64),
        )
        assert result.entries[0].poi.poi_id == "p"
        assert result.entries[0].flow == pytest.approx(
            math.pi * 4.0 / 36.0, rel=0.05
        )

    def test_no_objects_returns_zero_topk(self):
        pois = [poi_at(f"p{i}", i * 10.0, 0.0) for i in range(4)]
        result = _topk_join(
            build_poi_index(pois), pois, [], k=3, estimator=PresenceEstimator()
        )
        assert len(result) == 3
        assert all(entry.flow == 0.0 for entry in result)

    def test_zero_fill_is_deterministic(self):
        pois = [poi_at(f"p{i}", i * 100.0, 0.0) for i in range(5)]
        objects = [join_object("o", 0.0, 0.0)]  # only p0 can have flow
        result = _topk_join(
            build_poi_index(pois), pois, objects, k=4,
            estimator=PresenceEstimator(),
        )
        assert result.entries[0].poi.poi_id == "p0"
        assert [e.poi.poi_id for e in result.entries[1:]] == ["p1", "p2", "p3"]

    def test_rejects_bad_k(self):
        pois = [poi_at("p", 0.0, 0.0)]
        with pytest.raises(ValueError):
            _topk_join(
                build_poi_index(pois), pois, [], k=0,
                estimator=PresenceEstimator(),
            )

    def test_early_termination_skips_presence_of_low_count_pois(self):
        """POIs whose count bound is below the k-th confirmed flow are
        never presence-evaluated — the join's whole point."""
        evaluated = []

        class CountingEstimator(PresenceEstimator):
            def presence(self, region, poi):
                evaluated.append(poi.poi_id)
                return super().presence(region, poi)

        # Ten objects pile on p0; a single distant object touches p1.
        objects = [join_object(f"a{i}", 0.0, 0.0) for i in range(10)]
        objects.append(join_object("loner", 100.0, 0.0))
        pois = [poi_at("p0", 0.0, 0.0), poi_at("p1", 100.0, 0.0)]
        result = _topk_join(
            build_poi_index(pois), pois, objects, k=1,
            estimator=CountingEstimator(resolution=16),
        )
        assert result.entries[0].poi.poi_id == "p0"
        # p1's bound (1) can never beat p0's exact flow (~10): not evaluated.
        assert "p1" not in evaluated

    def test_flow_ordering_respected_across_tree_levels(self):
        # Many POIs force a multi-level R_P; the best POI must still win.
        pois = [poi_at(f"p{i:02d}", float(i * 8), 0.0, half=3.0) for i in range(30)]
        objects = [
            join_object(f"o{j}", 8.0 * 7, 0.0, half=1.5) for j in range(5)
        ]  # all five sit on p07
        result = _topk_join(
            build_poi_index(pois, max_entries=4),
            pois,
            objects,
            k=1,
            estimator=PresenceEstimator(resolution=16),
        )
        assert result.entries[0].poi.poi_id == "p07"


class TestTreeHeightMismatch:
    def test_shallow_poi_tree_deep_object_tree(self):
        """One POI vs hundreds of objects: R_P bottoms out while R_I still
        has levels to descend (Algorithm 2, lines 26-35)."""
        pois = [poi_at("p", 0.0, 0.0, half=3.0)]
        objects = [
            join_object(f"o{i}", (i % 20) * 1.0 - 10.0, (i // 20) * 1.0 - 5.0, half=1.0)
            for i in range(200)
        ]
        result = _topk_join(
            build_poi_index(pois),
            pois,
            objects,
            k=1,
            estimator=PresenceEstimator(resolution=8),
            rtree_fanout=4,
        )
        assert result.entries[0].poi.poi_id == "p"
        assert result.entries[0].flow > 0.0

    def test_deep_poi_tree_single_object(self):
        pois = [poi_at(f"p{i:03d}", float(i * 8), 0.0, half=3.0) for i in range(100)]
        objects = [join_object("o", 8.0 * 42, 0.0, half=1.0)]
        result = _topk_join(
            build_poi_index(pois, max_entries=4),
            pois,
            objects,
            k=2,
            estimator=PresenceEstimator(resolution=8),
            rtree_fanout=4,
        )
        assert result.entries[0].poi.poi_id == "p042"
        assert result.entries[1].flow == 0.0  # zero-filled
