"""Cache correctness for the EvaluationContext layer.

The contracts under test:

* cached and cache-disabled evaluation produce bit-identical flows, for
  both strategies, with caches cold and hot;
* a fresh context with different parameters (a new ``v_max``) never serves
  regions computed under the old parameters;
* monitors over a caching engine return exactly the same updates as over a
  cache-disabled engine;
* warm sliding-interval ticks compute strictly fewer regions than cold
  ones (the sliding window only rebuilds boundary episodes).
"""

from __future__ import annotations

import pytest

from repro.core import EvaluationContext, LruCache
from repro.core.monitor import SlidingIntervalTopKMonitor, SnapshotTopKMonitor

COUNTER_KEYS = (
    "regions_computed",
    "region_cache_hits",
    "presence_evaluations",
    "presence_cache_hits",
    "topology_prunes",
)


@pytest.fixture()
def cached_engine(synthetic_dataset):
    return synthetic_dataset.engine()


@pytest.fixture()
def uncached_engine(synthetic_dataset):
    return synthetic_dataset.engine(region_cache_size=0, presence_cache_size=0)


class TestLruCache:
    def test_eviction_order(self):
        cache = LruCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # refreshes "a"
        cache.put("c", 3)  # evicts "b", the LRU entry
        assert "b" not in cache
        assert cache.get("a") == 1 and cache.get("c") == 3
        assert len(cache) == 2

    def test_zero_capacity_disables_storage(self):
        cache = LruCache(0)
        cache.put("a", 1)
        assert cache.get("a") is None
        assert len(cache) == 0
        assert not cache.enabled

    def test_get_or_build_reports_hits(self):
        cache = LruCache(4)
        value, hit = cache.get_or_build("k", lambda: 41)
        assert (value, hit) == (41, False)
        value, hit = cache.get_or_build("k", lambda: 42)
        assert (value, hit) == (41, True)


class TestFlowEquivalence:
    def test_snapshot_flows_bit_identical_cold_and_hot(
        self, synthetic_dataset, cached_engine, uncached_engine
    ):
        t = synthetic_dataset.mid_time()
        reference = uncached_engine.snapshot_flows(t)
        cold = cached_engine.snapshot_flows(t)
        hot = cached_engine.snapshot_flows(t)
        assert cold == reference  # bit-identical, no tolerance
        assert hot == reference
        stats = cached_engine.stats()
        assert stats["region_cache_hits"] > 0
        assert stats["presence_cache_hits"] > 0

    def test_interval_flows_bit_identical_cold_and_hot(
        self, synthetic_dataset, cached_engine, uncached_engine
    ):
        start, end = synthetic_dataset.window(4)
        reference = uncached_engine.interval_flows(start, end)
        assert cached_engine.interval_flows(start, end) == reference
        assert cached_engine.interval_flows(start, end) == reference

    def test_join_and_iterative_agree_with_hot_caches(
        self, synthetic_dataset, cached_engine
    ):
        t = synthetic_dataset.mid_time()
        start, end = synthetic_dataset.window(4)
        for _ in range(2):  # second pass runs entirely against warm caches
            snap_iter = cached_engine.snapshot_topk(t, 5, method="iterative")
            snap_join = cached_engine.snapshot_topk(t, 5, method="join")
            assert sorted(snap_iter.flows, reverse=True) == pytest.approx(
                sorted(snap_join.flows, reverse=True), abs=1e-6
            )
            iv_iter = cached_engine.interval_topk(start, end, 5, method="iterative")
            iv_join = cached_engine.interval_topk(start, end, 5, method="join")
            assert sorted(iv_iter.flows, reverse=True) == pytest.approx(
                sorted(iv_join.flows, reverse=True), abs=1e-6
            )

    def test_presence_cache_shared_between_methods(
        self, synthetic_dataset, cached_engine
    ):
        """Iterative warms the caches; the join must reuse, not recompute."""
        t = synthetic_dataset.mid_time()
        cached_engine.snapshot_flows(t)
        cached_engine.reset_stats()
        cached_engine.snapshot_topk(t, 5, method="join")
        stats = cached_engine.stats()
        assert stats["regions_computed"] == 0
        assert stats["presence_evaluations"] == 0


class TestParameterIsolation:
    def test_new_v_max_is_never_served_stale_regions(self, synthetic_dataset):
        t = synthetic_dataset.mid_time()
        slow = synthetic_dataset.engine(v_max=0.6)
        slow.snapshot_flows(t)  # warm slow-engine caches
        fast = synthetic_dataset.engine(v_max=2.4)
        fast_flows = fast.snapshot_flows(t)
        reference = synthetic_dataset.engine(
            v_max=2.4, region_cache_size=0, presence_cache_size=0
        ).snapshot_flows(t)
        assert fast_flows == reference

    def test_params_epoch_differs_across_parameterisations(
        self, synthetic_dataset
    ):
        a = synthetic_dataset.engine(v_max=0.6).ctx
        b = synthetic_dataset.engine(v_max=2.4).ctx
        assert a.params_epoch != b.params_epoch

    def test_context_replace_starts_cold(self, synthetic_dataset, cached_engine):
        t = synthetic_dataset.mid_time()
        cached_engine.snapshot_flows(t)
        replaced = cached_engine.ctx.replace(v_max=cached_engine.v_max * 2)
        assert replaced.stats_dict()["region_cache_entries"] == 0
        assert replaced.v_max == cached_engine.v_max * 2


class TestMonitorEquivalence:
    def ticks(self, dataset, count=4):
        start, end = dataset.time_span()
        span = end - start
        return [start + (i + 1) / (count + 1) * span for i in range(count)]

    @staticmethod
    def assert_same_updates(updates_a, updates_b):
        assert len(updates_a) == len(updates_b)
        for a, b in zip(updates_a, updates_b):
            assert a.t == b.t
            assert a.result.poi_ids == b.result.poi_ids
            assert a.result.flows == b.result.flows
            assert a.entered == b.entered
            assert a.exited == b.exited
            assert a.rank_changes == b.rank_changes

    def test_snapshot_monitor_matches_uncached(
        self, synthetic_dataset, cached_engine, uncached_engine
    ):
        times = self.ticks(synthetic_dataset)
        cached = SnapshotTopKMonitor(cached_engine, k=5).run(times)
        uncached = SnapshotTopKMonitor(uncached_engine, k=5).run(times)
        self.assert_same_updates(cached, uncached)

    def test_sliding_monitor_matches_uncached(
        self, synthetic_dataset, cached_engine, uncached_engine
    ):
        times = self.ticks(synthetic_dataset)
        cached = SlidingIntervalTopKMonitor(
            cached_engine, k=5, window_seconds=120.0
        ).run(times)
        uncached = SlidingIntervalTopKMonitor(
            uncached_engine, k=5, window_seconds=120.0
        ).run(times)
        self.assert_same_updates(cached, uncached)


class TestWarmTicksComputeFewerRegions:
    def test_sliding_ticks_reuse_interior_episodes(
        self, synthetic_dataset, cached_engine
    ):
        """Acceptance criterion: a warm sliding-interval tick computes
        strictly fewer regions than the cold tick over a nearby window —
        only the episodes cut by a window boundary are rebuilt."""
        monitor = SlidingIntervalTopKMonitor(
            cached_engine, k=5, window_seconds=240.0, method="iterative"
        )
        t = synthetic_dataset.mid_time()
        cached_engine.reset_stats()
        monitor.advance(t)
        cold = cached_engine.stats()
        assert cold["regions_computed"] > 0
        for step in (5.0, 10.0, 15.0):
            cached_engine.reset_stats()
            monitor.advance(t + step)
            warm = cached_engine.stats()
            assert warm["regions_computed"] < cold["regions_computed"]
            assert warm["region_cache_hits"] > 0

    def test_repeated_snapshot_tick_computes_no_regions(
        self, synthetic_dataset, cached_engine
    ):
        monitor = SnapshotTopKMonitor(cached_engine, k=5)
        t = synthetic_dataset.mid_time()
        monitor.advance(t)
        cached_engine.reset_stats()
        monitor.advance(t)
        stats = monitor.stats()
        assert stats["regions_computed"] == 0
        assert stats["presence_evaluations"] == 0


class TestIntrospectionLookup:
    def test_entries_for_matches_full_scan(self, synthetic_engine):
        artree = synthetic_engine.artree
        for object_id in synthetic_engine.ott.object_ids[:5]:
            entries = artree.entries_for(object_id)
            assert entries  # every tracked object has leaf entries
            assert all(e.object_id == object_id for e in entries)
            assert list(entries) == sorted(entries, key=lambda e: (e.t1, e.t2))
        assert artree.entries_for("no-such-object") == ()

    def test_region_of_agrees_with_uncached_engine(
        self, synthetic_dataset, cached_engine, uncached_engine
    ):
        t = synthetic_dataset.mid_time()
        start, end = synthetic_dataset.window(3)
        for object_id in synthetic_dataset.ott.object_ids[:5]:
            cached_region = cached_engine.snapshot_region_of(object_id, t)
            uncached_region = uncached_engine.snapshot_region_of(object_id, t)
            assert (cached_region is None) == (uncached_region is None)
            cached_iv = cached_engine.interval_region_of(object_id, start, end)
            uncached_iv = uncached_engine.interval_region_of(object_id, start, end)
            assert (cached_iv is None) == (uncached_iv is None)
            if cached_iv is not None:
                assert [e.kind for e in cached_iv.episodes] == [
                    e.kind for e in uncached_iv.episodes
                ]


class TestEstimatorSampleCacheBound:
    def test_lru_bound_respected(self, synthetic_dataset):
        from repro.core.presence import PresenceEstimator

        estimator = PresenceEstimator(resolution=8, max_cached_pois=2)
        pois = synthetic_dataset.pois[:3]
        for poi in pois:
            estimator.samples_of(poi)
        assert estimator.sample_cache_size == 2

    def test_eviction_does_not_change_presence(self, synthetic_dataset):
        from repro.core.presence import PresenceEstimator

        bounded = PresenceEstimator(resolution=16, max_cached_pois=1)
        unbounded = PresenceEstimator(resolution=16)
        engine = synthetic_dataset.engine()
        t = synthetic_dataset.mid_time()
        object_id = engine.ott.object_ids[0]
        region = engine.snapshot_region_of(object_id, t)
        if region is None:
            pytest.skip("first object not trackable at mid time")
        pois = synthetic_dataset.pois[:4]
        for _ in range(2):  # second round re-derives evicted grids
            for poi in pois:
                assert bounded.presence(region, poi) == unbounded.presence(
                    region, poi
                )

    def test_engine_stats_exposes_sample_cache_size(
        self, synthetic_dataset, cached_engine
    ):
        cached_engine.snapshot_flows(synthetic_dataset.mid_time())
        stats = cached_engine.stats()
        assert stats["estimator_cached_pois"] > 0


class TestStandaloneContext:
    def test_context_validation(self, synthetic_dataset):
        with pytest.raises(ValueError):
            EvaluationContext(synthetic_dataset.deployment, v_max=0.0)
        with pytest.raises(ValueError):
            EvaluationContext(
                synthetic_dataset.deployment, v_max=1.0, inner_allowance=-1.0
            )

    def test_counters_reset(self, synthetic_dataset, cached_engine):
        cached_engine.snapshot_flows(synthetic_dataset.mid_time())
        cached_engine.reset_stats()
        stats = cached_engine.stats()
        for key in COUNTER_KEYS:
            assert stats[key] == 0
        # Cache contents survive a counter reset.
        assert stats["region_cache_entries"] > 0
