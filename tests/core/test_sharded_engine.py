"""Merge equivalence: the sharded coordinator against the monolith.

The contract under test is *bit identity*: for every shard count, query
form, processing method and contracts setting, `ShardedFlowEngine` must
return exactly the monolith's ranking **and** exactly its float flow
values — the canonical contribution merge reproduces the monolithic
accumulation order, so not even the last ulp may differ.
"""

from __future__ import annotations

import pytest

from repro.analysis.contracts import set_contracts
from repro.core import (
    FlowEngine,
    ForkedProcessExecutor,
    SerialExecutor,
    ShardedFlowEngine,
    SnapshotTopKMonitor,
    shard_of,
)
from repro.tracking.records import TrackingRecord
from repro.tracking.table import LiveTrackingTable


def assert_identical(result_a, result_b):
    """Rankings and float flows must match bit for bit."""
    assert result_a.poi_ids == result_b.poi_ids
    assert result_a.flows == result_b.flows


def make_sharded(dataset, num_shards, **kwargs):
    kwargs.setdefault("detection_slack", 2.0 * dataset.sampling_interval)
    return ShardedFlowEngine(
        dataset.floorplan,
        dataset.deployment,
        dataset.ott,
        dataset.pois,
        v_max=dataset.v_max,
        num_shards=num_shards,
        **kwargs,
    )


@pytest.fixture(scope="module")
def sharded_engines(synthetic_dataset):
    return {
        n: make_sharded(synthetic_dataset, n) for n in (1, 2, 4)
    }


class TestBitIdentity:
    @pytest.mark.parametrize("num_shards", [1, 2, 4])
    @pytest.mark.parametrize("method", ["join", "iterative"])
    @pytest.mark.parametrize("k", [1, 5, 30])
    def test_snapshot_topk(
        self, synthetic_engine, sharded_engines, num_shards, method, k
    ):
        t = 600.0
        assert_identical(
            synthetic_engine.snapshot_topk(t, k, method=method),
            sharded_engines[num_shards].snapshot_topk(t, k, method=method),
        )

    @pytest.mark.parametrize("num_shards", [1, 2, 4])
    @pytest.mark.parametrize("method", ["join", "iterative"])
    @pytest.mark.parametrize("k", [1, 5, 30])
    def test_interval_topk(
        self, synthetic_engine, sharded_engines, num_shards, method, k
    ):
        assert_identical(
            synthetic_engine.interval_topk(300.0, 900.0, k, method=method),
            sharded_engines[num_shards].interval_topk(
                300.0, 900.0, k, method=method
            ),
        )

    @pytest.mark.parametrize("method", ["join", "iterative"])
    def test_poi_subsets(
        self, synthetic_dataset, synthetic_engine, sharded_engines, method
    ):
        subset = sorted(synthetic_dataset.pois, key=lambda p: p.poi_id)[:8]
        assert_identical(
            synthetic_engine.snapshot_topk(600.0, 3, pois=subset, method=method),
            sharded_engines[2].snapshot_topk(
                600.0, 3, pois=subset, method=method
            ),
        )
        assert_identical(
            synthetic_engine.interval_topk(
                300.0, 900.0, 3, pois=subset, method=method
            ),
            sharded_engines[4].interval_topk(
                300.0, 900.0, 3, pois=subset, method=method
            ),
        )

    def test_flow_maps_match(self, synthetic_engine, sharded_engines):
        for n, sharded in sharded_engines.items():
            assert synthetic_engine.snapshot_flows(600.0) == (
                sharded.snapshot_flows(600.0)
            ), f"N={n}"
            assert synthetic_engine.interval_flows(300.0, 900.0) == (
                sharded.interval_flows(300.0, 900.0)
            ), f"N={n}"

    def test_density_ranking_matches(self, synthetic_engine, sharded_engines):
        assert_identical(
            synthetic_engine.snapshot_density_topk(600.0, 5),
            sharded_engines[2].snapshot_density_topk(600.0, 5),
        )
        assert_identical(
            synthetic_engine.interval_density_topk(300.0, 900.0, 5),
            sharded_engines[2].interval_density_topk(300.0, 900.0, 5),
        )

    def test_with_contracts_enabled(self, synthetic_engine, sharded_engines):
        set_contracts(True)
        try:
            assert_identical(
                synthetic_engine.snapshot_topk(600.0, 5, method="join"),
                sharded_engines[2].snapshot_topk(600.0, 5, method="join"),
            )
            assert_identical(
                synthetic_engine.interval_topk(
                    300.0, 900.0, 5, method="iterative"
                ),
                sharded_engines[4].interval_topk(
                    300.0, 900.0, 5, method="iterative"
                ),
            )
        finally:
            set_contracts(None)

    def test_segment_mbr_ablation_matches(
        self, synthetic_engine, sharded_engines
    ):
        assert_identical(
            synthetic_engine.interval_topk(
                300.0, 900.0, 5, use_segment_mbrs=False
            ),
            sharded_engines[2].interval_topk(
                300.0, 900.0, 5, use_segment_mbrs=False
            ),
        )


class TestValidation:
    def test_rejects_bad_shard_count(self, synthetic_dataset):
        with pytest.raises(ValueError, match="num_shards"):
            make_sharded(synthetic_dataset, 0)

    def test_rejects_unknown_executor(self, synthetic_dataset):
        with pytest.raises(ValueError, match="executor"):
            make_sharded(synthetic_dataset, 2, executor="threads")

    def test_rejects_unknown_method(self, sharded_engines):
        with pytest.raises(ValueError, match="method"):
            sharded_engines[2].snapshot_topk(600.0, 5, method="magic")

    def test_rejects_bad_k(self, sharded_engines):
        for method in ("join", "iterative"):
            with pytest.raises(ValueError, match="k must be positive"):
                sharded_engines[2].snapshot_topk(600.0, 0, method=method)

    def test_rejects_empty_subset(self, sharded_engines):
        with pytest.raises(ValueError, match="empty"):
            sharded_engines[2].snapshot_topk(600.0, 5, pois=[])

    def test_rejects_inverted_window(self, sharded_engines):
        with pytest.raises(ValueError, match="precedes"):
            sharded_engines[2].interval_topk(900.0, 300.0, 5)

    def test_frozen_fleet_rejects_ingest(self, sharded_engines):
        with pytest.raises(RuntimeError, match="frozen-batch"):
            sharded_engines[2].ingest([])


class TestPartitioning:
    def test_shard_of_is_stable_and_in_range(self):
        for n in (1, 2, 4, 7):
            for object_id in ("o0", "o1", "alpha", 42):
                index = shard_of(object_id, n)
                assert 0 <= index < n
                assert index == shard_of(object_id, n)

    def test_shard_of_rejects_bad_count(self):
        with pytest.raises(ValueError):
            shard_of("o1", 0)

    def test_shards_partition_the_population(
        self, synthetic_dataset, sharded_engines
    ):
        engine = sharded_engines[4]
        seen: dict[str, int] = {}
        for index, shard in enumerate(engine.shards):
            for object_id in shard.ott.object_ids:
                assert object_id not in seen, "object in two shards"
                seen[object_id] = index
                assert shard_of(object_id, 4) == index
        assert set(seen) == set(synthetic_dataset.ott.object_ids)
        assert sum(len(shard.ott) for shard in engine.shards) == len(
            synthetic_dataset.ott
        )

    def test_stats_sum_over_shards(self, synthetic_dataset):
        engine = make_sharded(synthetic_dataset, 3)
        engine.snapshot_topk(600.0, 5, method="iterative")
        merged = engine.stats()
        assert merged["shard_prunes"] == 0
        per_shard = [shard.stats() for shard in engine.shards]
        for key in per_shard[0]:
            assert merged[key] == sum(part[key] for part in per_shard)


class TestLiveIngest:
    def _split_dataset(self, dataset):
        records = sorted(
            dataset.ott, key=lambda r: (r.t_s, r.t_e, r.record_id)
        )
        half = len(records) // 2
        return records[:half], records[half:]

    def _live_pair(self, dataset, num_shards):
        head, tail = self._split_dataset(dataset)
        mono = FlowEngine(
            dataset.floorplan,
            dataset.deployment,
            LiveTrackingTable(head),
            dataset.pois,
            v_max=dataset.v_max,
            detection_slack=2.0 * dataset.sampling_interval,
        )
        sharded = ShardedFlowEngine(
            dataset.floorplan,
            dataset.deployment,
            LiveTrackingTable(head),
            dataset.pois,
            v_max=dataset.v_max,
            num_shards=num_shards,
            detection_slack=2.0 * dataset.sampling_interval,
        )
        return mono, sharded, tail

    def test_routed_ingest_stays_bit_identical(self, synthetic_dataset):
        mono, sharded, tail = self._live_pair(synthetic_dataset, 3)
        assert mono.ingest(tail) == sharded.ingest(tail) == len(tail)
        assert sharded.generation == len(tail)
        for method in ("join", "iterative"):
            assert_identical(
                mono.snapshot_topk(600.0, 5, method=method),
                sharded.snapshot_topk(600.0, 5, method=method),
            )
            assert_identical(
                mono.interval_topk(300.0, 900.0, 5, method=method),
                sharded.interval_topk(300.0, 900.0, 5, method=method),
            )

    def test_open_episode_lifecycle_matches_monolith(self, synthetic_dataset):
        mono, sharded, tail = self._live_pair(synthetic_dataset, 3)
        mono.ingest(tail)
        sharded.ingest(tail)
        template = tail[-1]
        t0 = max(r.t_e for r in tail) + 5.0
        record = TrackingRecord(
            record_id=10**6,
            object_id=template.object_id,
            device_id=template.device_id,
            t_s=t0,
            t_e=t0,
        )
        mono.ingest_open(record)
        sharded.ingest_open(record)
        assert mono.extend_episode(record.object_id, t0 + 20.0) == (
            sharded.extend_episode(record.object_id, t0 + 20.0)
        )
        assert_identical(
            mono.snapshot_topk(t0 + 10.0, 5),
            sharded.snapshot_topk(t0 + 10.0, 5),
        )
        assert mono.close_episode(record.object_id, t0 + 30.0) == (
            sharded.close_episode(record.object_id, t0 + 30.0)
        )
        assert_identical(
            mono.interval_topk(t0, t0 + 30.0, 5),
            sharded.interval_topk(t0, t0 + 30.0, 5),
        )
        assert sharded.generation == len(tail) + 3


class TestMonitorOverCoordinator:
    def test_monitor_ticks_through_the_fleet(self, synthetic_dataset):
        mono, sharded, tail = TestLiveIngest()._live_pair(synthetic_dataset, 2)
        monitor_mono = SnapshotTopKMonitor(mono, k=5)
        monitor_sharded = SnapshotTopKMonitor(sharded, k=5)
        for t, records in ((400.0, tail[: len(tail) // 2]), (800.0, tail[len(tail) // 2 :])):
            update_mono = monitor_mono.tick(t, records)
            update_sharded = monitor_sharded.tick(t, records)
            assert_identical(update_mono.result, update_sharded.result)
            assert update_mono.entered == update_sharded.entered
            assert update_mono.exited == update_sharded.exited
        assert monitor_sharded.stats()["shard_prunes"] >= 0


class TestExecutors:
    def test_serial_executor_is_in_process(self, sharded_engines):
        assert isinstance(sharded_engines[2].executor, SerialExecutor)
        assert sharded_engines[2].executor.in_process

    def test_forked_executor_matches_monolith(
        self, synthetic_dataset, synthetic_engine
    ):
        with make_sharded(
            synthetic_dataset, 2, executor="process"
        ) as sharded:
            assert isinstance(sharded.executor, ForkedProcessExecutor)
            assert not sharded.executor.in_process
            for method in ("join", "iterative"):
                assert_identical(
                    synthetic_engine.snapshot_topk(600.0, 5, method=method),
                    sharded.snapshot_topk(600.0, 5, method=method),
                )
            assert_identical(
                synthetic_engine.interval_topk(300.0, 900.0, 5),
                sharded.interval_topk(300.0, 900.0, 5),
            )
            snapshot = sharded.obs_snapshot()
            assert set(snapshot) == {"schema_version", "spans", "metrics"}

    def test_forked_executor_propagates_errors(self, synthetic_dataset):
        with make_sharded(
            synthetic_dataset, 2, executor="process"
        ) as sharded:
            with pytest.raises(ValueError, match="empty"):
                sharded.snapshot_topk(600.0, 5, pois=[])
            # The pipes stay usable after an error round-trip.
            assert len(sharded.snapshot_topk(600.0, 5)) == 5

    def test_executor_factory_callable(self, synthetic_dataset):
        built = []

        def factory(shards):
            executor = SerialExecutor(shards)
            built.append(executor)
            return executor

        engine = make_sharded(synthetic_dataset, 2, executor=factory)
        assert engine.executor is built[0]
        assert len(engine.snapshot_topk(600.0, 3)) == 3
