"""Determinism guarantees: identical inputs produce identical answers.

Grid quadrature, tie-breaking and index construction are all deterministic
by design; these tests pin that down, because reproducible analytics is a
headline property of the library (and of any credible reproduction).
"""

import pytest


class TestQueryDeterminism:
    def test_repeated_snapshot_queries_identical(
        self, synthetic_dataset, synthetic_engine
    ):
        t = synthetic_dataset.mid_time()
        first = synthetic_engine.snapshot_topk(t, 10)
        second = synthetic_engine.snapshot_topk(t, 10)
        assert first.poi_ids == second.poi_ids
        assert first.flows == second.flows  # bit-identical

    def test_repeated_interval_queries_identical(
        self, synthetic_dataset, synthetic_engine
    ):
        start, end = synthetic_dataset.window(3)
        first = synthetic_engine.interval_topk(start, end, 8)
        second = synthetic_engine.interval_topk(start, end, 8)
        assert first.poi_ids == second.poi_ids
        assert first.flows == second.flows

    def test_fresh_engine_reproduces_flows(self, synthetic_dataset):
        t = synthetic_dataset.mid_time()
        first = synthetic_dataset.engine().snapshot_flows(t)
        second = synthetic_dataset.engine().snapshot_flows(t)
        assert first == second  # bit-identical across engine instances

    def test_query_order_does_not_matter(self, synthetic_dataset):
        """Caches (POI samples, distance fields, room groups) warmed in a
        different order must not change any answer."""
        t = synthetic_dataset.mid_time()
        start, end = synthetic_dataset.window(2)

        engine_a = synthetic_dataset.engine()
        snapshot_a = engine_a.snapshot_flows(t)
        interval_a = engine_a.interval_flows(start, end)

        engine_b = synthetic_dataset.engine()
        interval_b = engine_b.interval_flows(start, end)
        snapshot_b = engine_b.snapshot_flows(t)

        assert snapshot_a == snapshot_b
        assert interval_a == interval_b

    def test_iterative_is_deterministic_across_poi_subset_objects(
        self, synthetic_dataset, synthetic_engine
    ):
        """Equal POI subsets (even as distinct list objects) give equal
        results."""
        t = synthetic_dataset.mid_time()
        subset_a = synthetic_dataset.poi_subset(40, seed=9)
        subset_b = synthetic_dataset.poi_subset(40, seed=9)
        assert subset_a is not subset_b
        result_a = synthetic_engine.snapshot_topk(t, 5, pois=subset_a)
        result_b = synthetic_engine.snapshot_topk(t, 5, pois=subset_b)
        assert result_a.poi_ids == result_b.poi_ids
        assert result_a.flows == result_b.flows
