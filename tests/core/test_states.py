"""Tests for tracking-state resolution (paper, Section 3.1.1 and Table 3)."""

import pytest

from repro.core import (
    TrackingState,
    interval_contexts,
    snapshot_context,
    snapshot_contexts,
)
from repro.index import ARTree
from repro.tracking import ObjectTrackingTable, TrackingRecord


def build(records):
    ott = ObjectTrackingTable(records).freeze()
    return ott, ARTree.build(ott)


@pytest.fixture()
def figure1_setup():
    """The paper's Figure 1: records with gaps, active at t15, inactive at t19."""
    return build(
        [
            TrackingRecord(0, "o", "d1", 10.0, 20.0),
            TrackingRecord(1, "o", "d2", 30.0, 40.0),
            TrackingRecord(2, "o", "d3", 55.0, 60.0),
        ]
    )


class TestSnapshotStates:
    def test_active_state(self, figure1_setup):
        _, tree = figure1_setup
        (context,) = snapshot_contexts(tree, 35.0)
        assert context.state is TrackingState.ACTIVE
        assert context.rd_cov.record_id == 1
        assert context.rd_pre.record_id == 0
        assert context.rd_suc is None

    def test_inactive_state(self, figure1_setup):
        _, tree = figure1_setup
        (context,) = snapshot_contexts(tree, 45.0)
        assert context.state is TrackingState.INACTIVE
        assert context.rd_cov is None
        assert context.rd_pre.record_id == 1
        assert context.rd_suc.record_id == 2

    def test_first_record_has_no_predecessor(self, figure1_setup):
        _, tree = figure1_setup
        (context,) = snapshot_contexts(tree, 15.0)
        assert context.state is TrackingState.ACTIVE
        assert context.rd_cov.record_id == 0
        assert context.rd_pre is None

    def test_untrackable_times_are_skipped(self, figure1_setup):
        _, tree = figure1_setup
        assert snapshot_contexts(tree, 5.0) == []  # before first record
        assert snapshot_contexts(tree, 70.0) == []  # after last record

    def test_boundary_time_at_record_end_is_active(self, figure1_setup):
        _, tree = figure1_setup
        (context,) = snapshot_contexts(tree, 20.0)
        assert context.state is TrackingState.ACTIVE
        assert context.rd_cov.record_id == 0

    def test_multiple_objects(self):
        _, tree = build(
            [
                TrackingRecord(0, "a", "d1", 0.0, 10.0),
                TrackingRecord(1, "b", "d2", 5.0, 15.0),
            ]
        )
        contexts = {c.object_id: c for c in snapshot_contexts(tree, 7.0)}
        assert set(contexts) == {"a", "b"}
        assert contexts["a"].state is TrackingState.ACTIVE


class TestIntervalChains:
    """The four cases of the paper's Table 3."""

    def get(self, tree, t_start, t_end):
        contexts = interval_contexts(tree, t_start, t_end)
        assert len(contexts) == 1
        return contexts[0]

    def test_case1_active_active(self, figure1_setup):
        _, tree = figure1_setup
        context = self.get(tree, 35.0, 57.0)
        # rd_s = rd_cov(t_s) = record 1, rd_e = rd_cov(t_e) = record 2.
        assert [r.record_id for r in context.records] == [1, 2]
        assert context.state_at(35.0) is TrackingState.ACTIVE
        assert context.state_at(57.0) is TrackingState.ACTIVE

    def test_case2_inactive_then_active(self, figure1_setup):
        _, tree = figure1_setup
        context = self.get(tree, 25.0, 35.0)
        # rd_s = rd_pre(t_s) = record 0, rd_e = rd_cov(t_e) = record 1.
        assert [r.record_id for r in context.records] == [0, 1]
        assert context.state_at(25.0) is TrackingState.INACTIVE

    def test_case3_active_then_inactive(self, figure1_setup):
        _, tree = figure1_setup
        context = self.get(tree, 35.0, 45.0)
        # rd_s = rd_cov(t_s) = record 1, rd_e = rd_suc(t_e) = record 2.
        assert [r.record_id for r in context.records] == [1, 2]
        assert context.state_at(45.0) is TrackingState.INACTIVE

    def test_case4_inactive_inactive(self, figure1_setup):
        _, tree = figure1_setup
        context = self.get(tree, 25.0, 45.0)
        # rd_s = rd_pre(t_s) = 0, in-between = 1, rd_e = rd_suc(t_e) = 2.
        assert [r.record_id for r in context.records] == [0, 1, 2]

    def test_window_within_single_record(self, figure1_setup):
        _, tree = figure1_setup
        context = self.get(tree, 32.0, 38.0)
        assert [r.record_id for r in context.records] == [1]

    def test_window_within_single_gap(self, figure1_setup):
        _, tree = figure1_setup
        context = self.get(tree, 43.0, 50.0)
        assert [r.record_id for r in context.records] == [1, 2]

    def test_window_before_first_record(self, figure1_setup):
        """Window starting before tracking began: no spurious predecessor."""
        _, tree = figure1_setup
        context = self.get(tree, 5.0, 15.0)
        assert context.records[0].record_id == 0

    def test_records_sorted_in_time(self, figure1_setup):
        _, tree = figure1_setup
        context = self.get(tree, 5.0, 60.0)
        starts = [r.t_s for r in context.records]
        assert starts == sorted(starts)

    def test_irrelevant_objects_excluded(self):
        _, tree = build(
            [
                TrackingRecord(0, "a", "d1", 0.0, 10.0),
                TrackingRecord(1, "b", "d2", 100.0, 110.0),
            ]
        )
        contexts = interval_contexts(tree, 0.0, 20.0)
        assert [c.object_id for c in contexts] == ["a"]
