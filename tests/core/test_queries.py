"""Tests for query/result types and ranking."""

import pytest

from repro.core import (
    IntervalTopKQuery,
    RankedPoi,
    SnapshotTopKQuery,
    TopKResult,
    rank_top_k,
)
from repro.geometry import Polygon
from repro.indoor import Poi


def pois(n):
    return [
        Poi(poi_id=f"p{i:02d}", polygon=Polygon.rectangle(i, 0, i + 1, 1), room_id="r")
        for i in range(n)
    ]


class TestQueryTypes:
    def test_snapshot_query_validation(self):
        SnapshotTopKQuery(t=10.0, k=1)
        with pytest.raises(ValueError):
            SnapshotTopKQuery(t=10.0, k=0)

    def test_interval_query_validation(self):
        IntervalTopKQuery(t_start=0.0, t_end=10.0, k=3)
        with pytest.raises(ValueError):
            IntervalTopKQuery(t_start=10.0, t_end=0.0, k=3)
        with pytest.raises(ValueError):
            IntervalTopKQuery(t_start=0.0, t_end=10.0, k=0)


class TestRanking:
    def test_orders_by_flow_descending(self):
        candidates = pois(4)
        flows = {"p00": 1.0, "p01": 5.0, "p02": 3.0, "p03": 2.0}
        result = rank_top_k(flows, candidates, k=4)
        assert result.poi_ids == ["p01", "p02", "p03", "p00"]
        assert result.flows == [5.0, 3.0, 2.0, 1.0]

    def test_truncates_to_k(self):
        result = rank_top_k({"p00": 1.0}, pois(10), k=3)
        assert len(result) == 3

    def test_missing_flows_count_as_zero(self):
        result = rank_top_k({"p01": 2.0}, pois(3), k=3)
        assert result.flows == [2.0, 0.0, 0.0]

    def test_ties_broken_by_poi_id(self):
        flows = {"p02": 1.0, "p00": 1.0, "p01": 1.0}
        result = rank_top_k(flows, pois(3), k=3)
        assert result.poi_ids == ["p00", "p01", "p02"]

    def test_k_larger_than_poi_count(self):
        result = rank_top_k({}, pois(2), k=10)
        assert len(result) == 2

    def test_rejects_non_positive_k(self):
        with pytest.raises(ValueError):
            rank_top_k({}, pois(2), k=0)


class TestTopKResult:
    def test_container_protocol(self):
        entries = tuple(
            RankedPoi(poi=p, flow=float(i)) for i, p in enumerate(pois(3))
        )
        result = TopKResult(entries=entries)
        assert len(result) == 3
        assert result[0].flow == 0.0
        assert [entry.poi.poi_id for entry in result] == ["p00", "p01", "p02"]
        assert result.pois[1].poi_id == "p01"
