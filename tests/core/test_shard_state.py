"""Unit tests for the shard-layer building blocks.

Covers the pieces the coordinator composes: stats merge helpers, the
per-shard cache budget split, tracking-table partition views, the
AR-tree's object-subset build seam, and a property test that throws
arbitrary consistent tables at the sharded engine and requires bit
identity with the monolith.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import FlowEngine, ShardedFlowEngine
from repro.core.caching import shard_cache_capacity
from repro.core.shard import ShardState
from repro.core.stats import merge_component_stats, merge_shard_stats
from repro.geometry import Point, Polygon
from repro.index import ARTree
from repro.indoor import Deployment, Device, Door, FloorPlan, Poi, Room
from repro.tracking import ObjectTrackingTable, TrackingRecord
from repro.tracking.table import LiveTrackingTable


# ----------------------------------------------------------------------
# Stats merge helpers
# ----------------------------------------------------------------------


class TestStatsHelpers:
    def test_component_merge_unions_disjoint_dicts(self):
        merged = merge_component_stats({"a": 1}, {"b": 2}, {"c": 0})
        assert merged == {"a": 1, "b": 2, "c": 0}

    def test_component_merge_rejects_duplicate_keys(self):
        with pytest.raises(ValueError, match="'a'"):
            merge_component_stats({"a": 1}, {"a": 2})

    def test_shard_merge_sums_pointwise(self):
        merged = merge_shard_stats([{"a": 1, "b": 2}, {"a": 3}, {"b": 5}])
        assert merged == {"a": 4, "b": 7}

    def test_shard_merge_of_nothing_is_empty(self):
        assert merge_shard_stats([]) == {}


class TestShardCacheCapacity:
    def test_splits_budget(self):
        assert shard_cache_capacity(100, 4) == 25

    def test_keeps_at_least_one_entry(self):
        assert shard_cache_capacity(3, 8) == 1

    def test_disabled_stays_disabled(self):
        assert shard_cache_capacity(0, 4) == 0
        assert shard_cache_capacity(-1, 4) == 0

    def test_rejects_bad_shard_count(self):
        with pytest.raises(ValueError):
            shard_cache_capacity(100, 0)


# ----------------------------------------------------------------------
# Partition views
# ----------------------------------------------------------------------


def _records():
    return [
        TrackingRecord(0, "a", "d0", 0.0, 5.0),
        TrackingRecord(1, "b", "d1", 1.0, 6.0),
        TrackingRecord(2, "a", "d1", 7.0, 9.0),
        TrackingRecord(3, "c", "d0", 2.0, 3.0),
    ]


class TestFrozenPartitionView:
    def test_view_keeps_only_selected_objects(self):
        table = ObjectTrackingTable(_records()).freeze()
        view = table.partition_view({"a", "c"})
        assert sorted(view.object_ids) == ["a", "c"]
        assert [r.record_id for r in view] == [0, 2, 3]
        assert view.records_for("a") == table.records_for("a")

    def test_view_shares_record_instances(self):
        table = ObjectTrackingTable(_records()).freeze()
        view = table.partition_view({"b"})
        assert view.records_for("b")[0] is table.records_for("b")[0]

    def test_empty_view_is_queryable(self):
        table = ObjectTrackingTable(_records()).freeze()
        view = table.partition_view(frozenset())
        assert len(view) == 0
        assert view.object_ids == []


class TestLivePartitionView:
    def test_view_preserves_open_episodes(self):
        table = LiveTrackingTable(_records())
        table.append(TrackingRecord(4, "b", "d0", 8.0, 8.0), open=True)
        view = table.partition_view({"b"})
        assert view.open_object_ids == frozenset({"b"})
        assert view.extend_episode("b", 12.0).t_e == 12.0

    def test_view_accepts_new_appends_independently(self):
        table = LiveTrackingTable(_records())
        view = table.partition_view({"a"})
        view.append(TrackingRecord(9, "a", "d0", 20.0, 25.0))
        assert len(view.records_for("a")) == 3
        assert len(table.records_for("a")) == 2  # parent untouched


# ----------------------------------------------------------------------
# AR-tree object-subset build seam
# ----------------------------------------------------------------------


class TestARTreeObjectSubset:
    def test_build_restricted_to_object_ids(self):
        table = ObjectTrackingTable(_records()).freeze()
        tree = ARTree.build(table, object_ids=frozenset({"a"}))
        assert {e.object_id for e in tree.point_query(4.0)} == {"a"}
        full = ARTree.build(table)
        assert {e.object_id for e in full.point_query(4.0)} >= {"a", "b"}

    def test_stats_dict_shape(self):
        table = ObjectTrackingTable(_records()).freeze()
        tree = ARTree.build(table)
        assert set(tree.stats_dict()) == {
            "artree_delta_entries",
            "artree_compactions",
        }


# ----------------------------------------------------------------------
# ShardState facade basics
# ----------------------------------------------------------------------


def _world():
    rooms = [
        Room("west", Polygon.rectangle(0, 0, 20, 12)),
        Room("mid", Polygon.rectangle(20, 0, 40, 12)),
        Room("east", Polygon.rectangle(40, 0, 60, 12)),
    ]
    doors = [
        Door("wm", Point(20, 6), "west", "mid"),
        Door("me", Point(40, 6), "mid", "east"),
    ]
    plan = FloorPlan(rooms, doors)
    deployment = Deployment(
        [
            Device.at("d0", Point(5, 6), 2.0),
            Device.at("d1", Point(20, 6), 2.0),
            Device.at("d2", Point(40, 6), 2.0),
            Device.at("d3", Point(55, 6), 2.0),
        ]
    )
    pois = [
        Poi(f"poi{i}", Polygon.rectangle(2 + i * 9.5, 1, 9 + i * 9.5, 11), room)
        for i, room in enumerate(["west", "west", "mid", "mid", "east", "east"])
    ]
    return plan, deployment, pois


_PLAN, _DEPLOYMENT, _POIS = _world()
_DEVICE_IDS = ["d0", "d1", "d2", "d3"]


class TestShardState:
    def _shard(self, **kwargs):
        table = ObjectTrackingTable(_records()).freeze()
        return ShardState(
            _PLAN, _DEPLOYMENT, table, _POIS, v_max=1.5, **kwargs
        )

    def test_frozen_shard_rejects_mutation(self):
        shard = self._shard()
        with pytest.raises(RuntimeError, match="frozen-batch"):
            # repro: allow(context-bypass): exercising the guard itself
            shard.ingest_batch([_records()[0]])

    def test_partial_flows_are_tagged_with_entry_keys(self):
        shard = self._shard()
        contributions, candidates = shard.partial_flows(2.0)
        # One candidate object may contribute to several POIs, but never
        # more distinct entry keys than candidates.
        assert candidates >= len({c[0] for c in contributions})
        for order_key, poi_id, presence in contributions:
            assert len(order_key) == 3
            assert isinstance(poi_id, str)
            assert 0.0 < presence <= 1.0

    def test_bounds_dominate_partial_flows(self):
        shard = self._shard()
        contributions, _ = shard.partial_flows(2.0)
        bounds = shard.partial_bounds(2.0)
        flows: dict[str, float] = {}
        for _, poi_id, presence in contributions:
            flows[poi_id] = flows.get(poi_id, 0.0) + presence
        for poi_id, flow in flows.items():
            assert flow <= bounds[poi_id] + 1e-9

    def test_resolve_pois_memoizes_by_id_tuple(self):
        shard = self._shard()
        subset = _POIS[:2]
        first = shard.resolve_pois(subset)
        second = shard.resolve_pois(list(subset))
        assert first[1] is second[1]
        assert shard.poi_subset_trees_built == 1

    def test_stats_keys_match_engine(self):
        shard = self._shard()
        engine = FlowEngine(
            _PLAN,
            _DEPLOYMENT,
            ObjectTrackingTable(_records()).freeze(),
            _POIS,
            v_max=1.5,
        )
        assert set(shard.stats()) == set(engine.stats())

    def test_obs_control_rejects_unknown_action(self):
        with pytest.raises(ValueError, match="unknown obs action"):
            self._shard().obs_control("explode")


# ----------------------------------------------------------------------
# Property: arbitrary tables, sharded == monolith, bit for bit
# ----------------------------------------------------------------------


@st.composite
def tracking_tables(draw):
    records = []
    record_id = 0
    for obj in range(draw(st.integers(min_value=1, max_value=6))):
        t = draw(st.floats(min_value=0.0, max_value=50.0))
        for _ in range(draw(st.integers(min_value=1, max_value=5))):
            gap = draw(st.floats(min_value=0.5, max_value=60.0))
            duration = draw(st.floats(min_value=0.0, max_value=20.0))
            device = draw(st.sampled_from(_DEVICE_IDS))
            t_s = t + gap
            records.append(
                TrackingRecord(record_id, f"o{obj}", device, t_s, t_s + duration)
            )
            record_id += 1
            t = t_s + duration
    return ObjectTrackingTable(records).freeze()


class TestShardedProperty:
    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        tracking_tables(),
        st.floats(min_value=0.0, max_value=250.0),
        st.integers(min_value=1, max_value=6),
        st.integers(min_value=1, max_value=4),
        st.sampled_from(["join", "iterative"]),
    )
    def test_sharded_topk_is_bit_identical(self, ott, t, k, num_shards, method):
        mono = FlowEngine(
            _PLAN, _DEPLOYMENT, ott, _POIS, v_max=1.5, resolution=16
        )
        sharded = ShardedFlowEngine(
            _PLAN,
            _DEPLOYMENT,
            ott,
            _POIS,
            v_max=1.5,
            resolution=16,
            num_shards=num_shards,
        )
        expected = mono.snapshot_topk(t, k, method=method)
        actual = sharded.snapshot_topk(t, k, method=method)
        assert expected.poi_ids == actual.poi_ids
        assert expected.flows == actual.flows
        expected = mono.interval_topk(t, t + 30.0, k, method=method)
        actual = sharded.interval_topk(t, t + 30.0, k, method=method)
        assert expected.poi_ids == actual.poi_ids
        assert expected.flows == actual.flows
