"""Figure 10: snapshot query on synthetic data — effect of k and |P|."""

import pytest

from conftest import K_VALUES, METHODS, POI_PERCENTAGES, run_benchmark


@pytest.mark.parametrize("method", METHODS)
@pytest.mark.parametrize("k", K_VALUES)
def test_fig10a_snapshot_vary_k(benchmark, synthetic, method, k):
    dataset, engine = synthetic
    pois = dataset.poi_subset(60)
    t = dataset.mid_time()
    run_benchmark(
        benchmark, lambda: engine.snapshot_topk(t, k, pois=pois, method=method)
    )


@pytest.mark.parametrize("method", METHODS)
@pytest.mark.parametrize("percent", POI_PERCENTAGES)
def test_fig10b_snapshot_vary_poi_count(benchmark, synthetic, method, percent):
    dataset, engine = synthetic
    pois = dataset.poi_subset(percent)
    t = dataset.mid_time()
    run_benchmark(
        benchmark, lambda: engine.snapshot_topk(t, 10, pois=pois, method=method)
    )
