"""Ablation benchmarks for the design choices DESIGN.md calls out."""

import pytest

from conftest import run_benchmark


@pytest.mark.parametrize("use_segment_mbrs", [False, True], ids=["coarse", "segments"])
def test_ablation_segment_mbrs(benchmark, synthetic, use_segment_mbrs):
    """Interval join: one trajectory MBR vs per-episode MBRs (§4.3.2)."""
    dataset, engine = synthetic
    pois = dataset.poi_subset(60)
    start, end = dataset.window(10)
    run_benchmark(
        benchmark,
        lambda: engine.interval_topk(
            start, end, 10, pois=pois, method="join", use_segment_mbrs=use_segment_mbrs
        ),
    )


@pytest.mark.parametrize("topology_check", [False, True], ids=["euclid", "topo"])
def test_ablation_topology_check(benchmark, synthetic, topology_check):
    """The indoor topology check's cost (§3.3)."""
    dataset, _ = synthetic
    engine = dataset.engine(topology_check=topology_check)
    t = dataset.mid_time()
    run_benchmark(benchmark, lambda: engine.snapshot_flows(t))


@pytest.mark.parametrize("resolution", [8, 32, 64])
def test_ablation_grid_resolution(benchmark, synthetic, resolution):
    """Presence quadrature resolution vs query cost."""
    dataset, _ = synthetic
    engine = dataset.engine(resolution=resolution)
    t = dataset.mid_time()
    run_benchmark(benchmark, lambda: engine.snapshot_flows(t))


@pytest.mark.parametrize("fanout", [4, 8, 32])
def test_ablation_rtree_fanout(benchmark, synthetic, fanout):
    """Aggregate R-tree fanout vs join cost."""
    dataset, _ = synthetic
    engine = dataset.engine(rtree_fanout=fanout)
    pois = dataset.poi_subset(60)
    t = dataset.mid_time()
    run_benchmark(
        benchmark, lambda: engine.snapshot_topk(t, 10, pois=pois, method="join")
    )
