"""What the HTTP seam costs: served queries vs. the in-process engine.

``repro.serve`` adds a socket round trip, JSON wire codecs and an actor
hop on top of the engine call.  The pair of benchmarks times the same
snapshot top-k through both paths against the same engine state, so the
difference *is* the serving overhead; the acceptance test pins the other
half of the contract — the detour must not change a single bit of the
answer.

Scale is configurable for CI smoke runs via ``REPRO_BENCH_SCALE``.
"""

import os

import pytest

from conftest import BENCH_SCALE

from repro.core.queries import SnapshotTopKQuery
from repro.datagen.config import SyntheticConfig
from repro.datagen.synthetic import build_synthetic_dataset
from repro.serve.app import ServeConfig, ServerHandle
from repro.serve.client import ServeClient
from repro.serve.wire import QuerySpec

SCALE = float(os.environ.get("REPRO_BENCH_SCALE", BENCH_SCALE))
K = 10


@pytest.fixture(scope="module")
def setup():
    """(dataset, in-process engine, live server handle, client)."""
    dataset = build_synthetic_dataset(SyntheticConfig().scaled(SCALE))
    engine = dataset.engine()
    records = sorted(
        dataset.ott, key=lambda r: (r.t_s, r.t_e, r.record_id)
    )
    from repro.core.engine import LiveFlowEngine

    live = LiveFlowEngine(
        dataset.floorplan,
        dataset.deployment,
        dataset.pois,
        v_max=dataset.v_max,
        detection_slack=2.0 * dataset.sampling_interval,
    )
    live.ingest(records)
    handle = ServerHandle(live, ServeConfig())
    handle.start()
    client = ServeClient(handle.base_url)
    yield dataset, engine, handle, client
    handle.stop()


def test_query_in_process(benchmark, setup):
    dataset, engine, _, _ = setup
    t = dataset.mid_time()
    engine.snapshot_topk(t, K)  # warm the context caches

    benchmark(lambda: engine.snapshot_topk(t, K))


def test_query_served(benchmark, setup):
    dataset, _, _, client = setup
    t = dataset.mid_time()
    spec = QuerySpec(query=SnapshotTopKQuery(t=t, k=K))
    client.query(spec)  # warm caches + connection machinery

    benchmark(lambda: client.query(spec))


def test_served_answers_are_bit_identical(setup):
    """The seam's correctness half: HTTP changes latency, not answers."""
    dataset, engine, _, client = setup
    for fraction in (0.25, 0.5, 0.75):
        t_lo, t_hi = dataset.time_span()
        t = t_lo + fraction * (t_hi - t_lo)
        served = client.query(QuerySpec(query=SnapshotTopKQuery(t=t, k=K)))
        expected = engine.snapshot_topk(t, K)
        assert served.poi_ids == expected.poi_ids
        assert served.flows == expected.flows
