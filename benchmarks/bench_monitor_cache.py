"""Monitor ticks, cold vs. warm: what the EvaluationContext caches buy.

Each benchmark drives a top-k monitor through a short tick schedule.  The
``cold`` variants rebuild a cache-disabled engine per round; the ``warm``
variants tick a long-lived caching engine whose context has already seen a
neighbouring window, so interior uncertainty episodes and presence values
are served from the memo layers.  ``test_stats_report`` prints the counter
table (run with ``-s``) so the hit rates behind the timings are visible.
"""

import pytest

from conftest import METHODS, run_benchmark

from repro.bench import format_stats
from repro.core.monitor import SlidingIntervalTopKMonitor, SnapshotTopKMonitor

TICK_SECONDS = 5.0
TICKS = 4
WINDOW_SECONDS = 240.0


def tick_times(dataset):
    start = dataset.mid_time()
    return [start + i * TICK_SECONDS for i in range(TICKS)]


def run_sliding(engine, dataset, method):
    monitor = SlidingIntervalTopKMonitor(
        engine, k=10, window_seconds=WINDOW_SECONDS, method=method
    )
    return monitor.run(tick_times(dataset))


def run_snapshot(engine, dataset, method):
    monitor = SnapshotTopKMonitor(engine, k=10, method=method)
    return monitor.run(tick_times(dataset))


@pytest.mark.parametrize("method", METHODS)
def test_sliding_ticks_cold(benchmark, synthetic, method):
    dataset, _ = synthetic

    def cold_run():
        engine = dataset.engine(region_cache_size=0, presence_cache_size=0)
        return run_sliding(engine, dataset, method)

    run_benchmark(benchmark, cold_run)


@pytest.mark.parametrize("method", METHODS)
def test_sliding_ticks_warm(benchmark, synthetic, method):
    dataset, engine = synthetic
    run_sliding(engine, dataset, method)  # prime the context's caches
    run_benchmark(benchmark, lambda: run_sliding(engine, dataset, method))


@pytest.mark.parametrize("method", METHODS)
def test_snapshot_ticks_cold(benchmark, synthetic, method):
    dataset, _ = synthetic

    def cold_run():
        engine = dataset.engine(region_cache_size=0, presence_cache_size=0)
        return run_snapshot(engine, dataset, method)

    run_benchmark(benchmark, cold_run)


@pytest.mark.parametrize("method", METHODS)
def test_snapshot_ticks_warm(benchmark, synthetic, method):
    dataset, engine = synthetic
    run_snapshot(engine, dataset, method)
    run_benchmark(benchmark, lambda: run_snapshot(engine, dataset, method))


def test_stats_report(synthetic, capsys):
    """Not a timing: prints the cold/warm counter tables behind the numbers."""
    dataset, _ = synthetic
    engine = dataset.engine()
    with capsys.disabled():
        for label in ("cold ticks", "warm ticks"):
            engine.reset_stats()
            run_sliding(engine, dataset, "join")
            print()
            print(format_stats(f"sliding monitor, {label}", engine.stats()))
