"""Figure 14: interval query on the (simulated) CPH data — k, |P|, window."""

import pytest

from conftest import K_VALUES, METHODS, POI_PERCENTAGES, WINDOW_MINUTES, run_benchmark


@pytest.mark.parametrize("method", METHODS)
@pytest.mark.parametrize("k", K_VALUES)
def test_fig14a_interval_cph_vary_k(benchmark, cph, method, k):
    dataset, engine = cph
    pois = dataset.poi_subset(60)
    start, end = dataset.window(10)
    run_benchmark(
        benchmark,
        lambda: engine.interval_topk(start, end, k, pois=pois, method=method),
    )


@pytest.mark.parametrize("method", METHODS)
@pytest.mark.parametrize("percent", POI_PERCENTAGES)
def test_fig14b_interval_cph_vary_poi_count(benchmark, cph, method, percent):
    dataset, engine = cph
    pois = dataset.poi_subset(percent)
    start, end = dataset.window(10)
    run_benchmark(
        benchmark,
        lambda: engine.interval_topk(start, end, 10, pois=pois, method=method),
    )


@pytest.mark.parametrize("method", METHODS)
@pytest.mark.parametrize("minutes", WINDOW_MINUTES)
def test_fig14c_interval_cph_vary_window(benchmark, cph, method, minutes):
    dataset, engine = cph
    pois = dataset.poi_subset(60)
    start, end = dataset.window(minutes)
    run_benchmark(
        benchmark,
        lambda: engine.interval_topk(start, end, 10, pois=pois, method=method),
    )
