"""Live ingestion vs. rebuild-per-tick: what the streaming path buys.

The scenario is late-arriving data under a standing query: a dashboard
watches the interval top-k over a fixed trailing window while tracking
devices upload buffered detection episodes one object at a time (a reader
reconnects, a batch lands).  Each tick ingests one object's buffered
records, then re-runs the same window query.  Two strategies answer the
same schedule over the same record stream:

* **incremental** — one long-lived live engine: each ingest bumps only
  the appended object's tail-epoch, so the warm re-query recomputes that
  object's episodes and serves every other object's regions *and*
  presence values from the caches;
* **rebuild** — a fresh batch engine per tick over the union of all
  records so far (bulk index build, cold context), the pre-streaming
  baseline.

``test_incremental_beats_rebuild`` asserts the refactor's acceptance
numbers: the warm incremental ticks compute strictly fewer uncertainty
regions than the rebuild ticks and are at least 5x faster end to end —
while returning bit-identical top-k answers.

Scale is configurable for CI smoke runs via ``REPRO_BENCH_SCALE``.
"""

import os
import time

import pytest

from conftest import BENCH_SCALE

from repro.bench import format_stats
from repro.core.engine import FlowEngine
from repro.datagen.config import SyntheticConfig
from repro.tracking import LiveTrackingTable, ObjectTrackingTable

SCALE = float(os.environ.get("REPRO_BENCH_SCALE", BENCH_SCALE))

#: Objects whose in-window records arrive late, one per tick.
LATE_OBJECTS = 4
WINDOW_SECONDS = 240.0
K = 10


def record_order(record):
    return (record.t_s, record.t_e, record.record_id)


@pytest.fixture(scope="module")
def stream():
    """(dataset, base records, per-tick late batches, query window)."""
    config = SyntheticConfig().scaled(SCALE)
    from repro.datagen.synthetic import build_synthetic_dataset

    dataset = build_synthetic_dataset(config)
    t_lo, t_hi = dataset.time_span()
    window = (t_hi - WINDOW_SECONDS, t_hi)

    # The late arrivals: for a few objects, every record past the window
    # start is still sitting in a device buffer when the dashboard starts.
    in_window = sorted(
        {
            r.object_id
            for r in dataset.ott
            if r.t_e > window[0]
        }
    )
    late = in_window[:LATE_OBJECTS]
    records = sorted(dataset.ott, key=record_order)
    base = [
        r
        for r in records
        if r.object_id not in late or r.t_e <= window[0]
    ]
    batches = [
        [r for r in records if r.object_id == object_id and r.t_e > window[0]]
        for object_id in late
    ]
    return dataset, base, batches, window


def engine_kwargs(dataset):
    return dict(
        floorplan=dataset.floorplan,
        deployment=dataset.deployment,
        pois=dataset.pois,
        v_max=dataset.v_max,
        detection_slack=2.0 * dataset.sampling_interval,
    )


def make_live_engine(dataset, base):
    return FlowEngine(ott=LiveTrackingTable(base), **engine_kwargs(dataset))


def run_incremental(engine, batches, window):
    results = []
    for batch in batches:
        engine.ingest(batch)
        results.append(engine.interval_topk(*window, K, method="join"))
    return results


def run_rebuild(dataset, base, batches, window):
    results = []
    seen = list(base)
    for batch in batches:
        seen.extend(batch)
        engine = FlowEngine(
            ott=ObjectTrackingTable(seen), **engine_kwargs(dataset)
        )
        results.append(engine.interval_topk(*window, K, method="join"))
    return results


def test_ingest_and_tick_incremental(benchmark, stream):
    """Timed: ingest each late batch into a live engine, re-query after each."""
    dataset, base, batches, window = stream

    def setup():
        # Records can only be ingested once, so each round gets a fresh
        # live engine pre-loaded (and pre-warmed) on the base stream.
        engine = make_live_engine(dataset, base)
        engine.interval_topk(*window, K, method="join")
        return (engine, batches, window), {}

    benchmark.pedantic(run_incremental, setup=setup, rounds=2, iterations=1)


def test_ingest_and_tick_rebuild(benchmark, stream):
    """Timed baseline: rebuild the whole engine for every tick."""
    dataset, base, batches, window = stream
    run_rebuild(dataset, base, batches, window)  # warm-up parity
    benchmark.pedantic(
        run_rebuild,
        args=(dataset, base, batches, window),
        rounds=2,
        iterations=1,
    )


def test_incremental_beats_rebuild(stream, capsys):
    """The acceptance check behind the timings (not a pytest-benchmark).

    Warm incremental ticks must compute strictly fewer uncertainty
    regions than the rebuild-per-tick baseline, finish at least 5x
    faster at bench scale, and return bit-identical rankings.
    """
    dataset, base, batches, window = stream

    live = make_live_engine(dataset, base)
    live.interval_topk(*window, K, method="join")  # warm on the base stream
    live.reset_stats()
    started = time.perf_counter()
    incremental_results = run_incremental(live, batches, window)
    incremental_seconds = time.perf_counter() - started
    incremental_regions = live.stats()["regions_computed"]

    started = time.perf_counter()
    rebuild_results = run_rebuild(dataset, base, batches, window)
    rebuild_seconds = time.perf_counter() - started
    rebuild_regions = 0
    seen = list(base)
    for batch in batches:
        seen.extend(batch)
        engine = FlowEngine(
            ott=ObjectTrackingTable(seen), **engine_kwargs(dataset)
        )
        engine.interval_topk(*window, K, method="join")
        rebuild_regions += engine.stats()["regions_computed"]

    for incremental, rebuilt in zip(incremental_results, rebuild_results):
        assert incremental.poi_ids == rebuilt.poi_ids
        assert incremental.flows == rebuilt.flows

    with capsys.disabled():
        print()
        print(format_stats("live ingest (warm ticks)", live.stats()))
        print(
            f"regions: incremental={incremental_regions} "
            f"rebuild={rebuild_regions}; seconds: "
            f"incremental={incremental_seconds:.3f} "
            f"rebuild={rebuild_seconds:.3f} "
            f"(speedup {rebuild_seconds / max(incremental_seconds, 1e-9):.1f}x)"
        )

    assert incremental_regions < rebuild_regions
    assert incremental_seconds * 5.0 <= rebuild_seconds
