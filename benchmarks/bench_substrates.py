"""Micro-benchmarks of the substrate layers.

Not figures from the paper — these track the cost of the building blocks
the queries are made of, so substrate regressions are visible in isolation.
"""

import random

import pytest

from repro.geometry import Circle, Mbr, Point
from repro.index import ARTree, RTree


@pytest.fixture(scope="module")
def random_boxes():
    rng = random.Random(3)
    boxes = []
    for i in range(2000):
        x, y = rng.uniform(0, 500), rng.uniform(0, 500)
        boxes.append((Mbr(x, y, x + rng.uniform(1, 10), y + rng.uniform(1, 10)), i))
    return boxes


def test_rtree_bulk_load(benchmark, random_boxes):
    benchmark(lambda: RTree.bulk_load(random_boxes, max_entries=8))


def test_rtree_insert_2000(benchmark, random_boxes):
    def build():
        tree = RTree(max_entries=8)
        for box, item in random_boxes:
            tree.insert(box, item)
        return tree

    benchmark(build)


def test_rtree_search(benchmark, random_boxes):
    tree = RTree.bulk_load(random_boxes, max_entries=8)
    probe = Mbr(100, 100, 160, 160)
    benchmark(lambda: tree.search(probe))


def test_artree_point_query(benchmark, synthetic):
    dataset, engine = synthetic
    t = dataset.mid_time()
    benchmark(lambda: engine.artree.point_query(t))


def test_artree_range_query(benchmark, synthetic):
    dataset, engine = synthetic
    start, end = dataset.window(10)
    benchmark(lambda: engine.artree.range_query(start, end))


def test_presence_quadrature(benchmark, synthetic):
    dataset, engine = synthetic
    poi = dataset.pois[0]
    region = Circle(poi.polygon.centroid(), 3.0)
    benchmark(lambda: engine.estimator.presence(region, poi))


def test_indoor_distance_field(benchmark, synthetic):
    dataset, engine = synthetic
    device = next(iter(dataset.deployment))
    oracle = engine.topology.oracle
    benchmark(lambda: oracle.field_from(device.center))


def test_snapshot_region_derivation(benchmark, synthetic):
    from repro.core import snapshot_contexts, snapshot_region

    dataset, engine = synthetic
    t = dataset.mid_time()
    contexts = snapshot_contexts(engine.artree, t)

    def derive_all():
        return [
            snapshot_region(c, engine.deployment, engine.v_max, engine.topology)
            for c in contexts
        ]

    benchmark(derive_all)


def test_interval_region_derivation(benchmark, synthetic):
    from repro.core import interval_contexts, interval_uncertainty

    dataset, engine = synthetic
    start, end = dataset.window(10)
    contexts = interval_contexts(engine.artree, start, end)

    def derive_all():
        return [
            interval_uncertainty(c, engine.deployment, engine.v_max, engine.topology)
            for c in contexts
        ]

    benchmark(derive_all)
