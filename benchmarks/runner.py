"""Standalone bench runner emitting schema-versioned ``BENCH_*.json``.

Unlike the pytest-benchmark figures in this directory, the runner needs
no pytest: it rebuilds the cache/live-ingest scenarios plus a
snapshot-vs-interval x iterative-vs-join sweep as plain functions, times
them, captures one instrumented run per scenario through :mod:`repro.obs`
and writes each as a baseline file (see ``docs/observability.md`` for the
schema).  CI runs it at tiny scale and uploads the JSON as artifacts;
committed baselines live under ``benchmarks/baselines/``.

Usage::

    PYTHONPATH=src python benchmarks/runner.py --scale 0.05 --out benchmarks/baselines

Timings are medians over ``--repeats`` runs measured with instrumentation
*disabled*; the per-phase span rows embedded in each baseline come from
one additional instrumented run of the same workload, so the numbers in
``results`` are never perturbed by the tracer.
"""

from __future__ import annotations

import argparse
import os
import platform
import statistics
import sys
import time
from pathlib import Path
from typing import Any, Callable, Mapping

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:  # allow running without PYTHONPATH
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro import obs
from repro.core.coordinator import ShardedFlowEngine
from repro.core.engine import FlowEngine
from repro.core.monitor import SlidingIntervalTopKMonitor
from repro.datagen.config import SyntheticConfig
from repro.datagen.dataset import Dataset
from repro.datagen.synthetic import build_synthetic_dataset
from repro.obs.export import bench_baseline, write_baseline
from repro.storage import SQLiteBackend
from repro.tracking import LiveTrackingTable, ObjectTrackingTable
from repro.tracking.records import TrackingRecord

K = 10
WINDOW_SECONDS = 240.0
TICK_SECONDS = 5.0
TICKS = 4
LATE_OBJECTS = 4

BENCH_NAMES = (
    "monitor_cache",
    "live_ingest",
    "query_matrix",
    "obs_overhead",
    "shard_scaling",
    "storage",
    "serve",
)

#: Client threads in the serve scenario's concurrent phase.
SERVE_INGEST_THREADS = 4
SERVE_QUERY_THREADS = 2
SERVE_CHUNK = 25

SHARD_COUNTS = (1, 2, 4)
LOCALIZED_POIS = 3
LOCALIZED_K = 1
#: Fractions of the tracked time span at which the localized snapshot
#: sweep queries the fleet (interval windows rarely prune: over a long
#: window every shard tends to have at least one candidate near any POI).
SNAPSHOT_SWEEP = (0.2, 0.4, 0.6, 0.8)


def machine_info() -> dict[str, Any]:
    """Host provenance stamped into every baseline."""
    return {
        "platform": platform.platform(),
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "cpu_count": os.cpu_count(),
    }


def median_ms(run: Callable[[], object], repeats: int) -> float:
    """Median wall-clock milliseconds over ``repeats`` executions."""
    samples = []
    for _ in range(repeats):
        started = time.perf_counter()
        run()
        samples.append((time.perf_counter() - started) * 1000.0)
    return statistics.median(samples)


def instrumented(run: Callable[[], object]) -> None:
    """Execute ``run`` once with tracing/metrics on, leaving the process-wide
    tracer and registry holding exactly that run's data."""
    obs.reset()
    obs.enable()
    try:
        run()
    finally:
        obs.disable()


def emit(
    out_dir: Path,
    name: str,
    scale: float,
    params: Mapping[str, Any],
    results: Mapping[str, Any],
    stats: Mapping[str, Any] | None = None,
) -> Path:
    """Assemble and write one ``BENCH_<name>.json`` from the current
    process-wide observability state."""
    payload = bench_baseline(
        name,
        machine=machine_info(),
        scale=scale,
        params=params,
        results=results,
        stats=stats,
    )
    path = out_dir / f"BENCH_{name}.json"
    write_baseline(str(path), payload)
    return path


# ----------------------------------------------------------------------
# Scenario: monitor ticks, cold vs. warm (cf. bench_monitor_cache.py)
# ----------------------------------------------------------------------


def bench_monitor_cache(dataset: Dataset, out_dir: Path, scale: float, repeats: int) -> Path:
    times = [dataset.mid_time() + i * TICK_SECONDS for i in range(TICKS)]

    def run_ticks(engine: FlowEngine) -> None:
        monitor = SlidingIntervalTopKMonitor(
            engine, k=K, window_seconds=WINDOW_SECONDS, method="join"
        )
        monitor.run(times)

    def cold_run() -> None:
        run_ticks(dataset.engine(region_cache_size=0, presence_cache_size=0))

    warm_engine = dataset.engine()
    run_ticks(warm_engine)  # prime the context's caches

    cold_ms = median_ms(cold_run, repeats)
    warm_ms = median_ms(lambda: run_ticks(warm_engine), repeats)

    warm_engine.reset_stats()
    instrumented(lambda: run_ticks(warm_engine))
    stats = warm_engine.stats()

    return emit(
        out_dir,
        "monitor_cache",
        scale,
        params={
            "method": "join",
            "k": K,
            "window_seconds": WINDOW_SECONDS,
            "tick_seconds": TICK_SECONDS,
            "ticks": TICKS,
        },
        results={
            "cold_ticks_ms": round(cold_ms, 3),
            "warm_ticks_ms": round(warm_ms, 3),
            "warm_speedup": round(cold_ms / max(warm_ms, 1e-9), 2),
        },
        stats=stats,
    )


# ----------------------------------------------------------------------
# Scenario: live ingestion vs. rebuild (cf. bench_live_ingest.py)
# ----------------------------------------------------------------------


def _split_stream(
    dataset: Dataset,
) -> tuple[list[TrackingRecord], list[list[TrackingRecord]], tuple[float, float]]:
    """Base records, per-tick late batches, query window."""
    t_lo, t_hi = dataset.time_span()
    window = (t_hi - WINDOW_SECONDS, t_hi)
    in_window = sorted(
        {r.object_id for r in dataset.ott if r.t_e > window[0]}
    )
    late = in_window[:LATE_OBJECTS]
    records = sorted(dataset.ott, key=lambda r: (r.t_s, r.t_e, r.record_id))
    base = [r for r in records if r.object_id not in late or r.t_e <= window[0]]
    batches = [
        [r for r in records if r.object_id == object_id and r.t_e > window[0]]
        for object_id in late
    ]
    return base, batches, window


def _engine_kwargs(dataset: Dataset) -> dict[str, Any]:
    return dict(
        floorplan=dataset.floorplan,
        deployment=dataset.deployment,
        pois=dataset.pois,
        v_max=dataset.v_max,
        detection_slack=2.0 * dataset.sampling_interval,
    )


def _live_engine(dataset: Dataset, base: list[TrackingRecord]) -> FlowEngine:
    engine = FlowEngine(ott=LiveTrackingTable(base), **_engine_kwargs(dataset))
    engine.interval_topk(
        *_split_stream(dataset)[2], K, method="join"
    )  # warm on the base stream
    return engine


def _run_incremental(engine, batches, window):
    results = []
    for batch in batches:
        engine.ingest(batch)
        results.append(engine.interval_topk(*window, K, method="join"))
    return results


def _run_rebuild(dataset, base, batches, window):
    results = []
    seen = list(base)
    for batch in batches:
        seen.extend(batch)
        engine = FlowEngine(
            ott=ObjectTrackingTable(seen), **_engine_kwargs(dataset)
        )
        results.append(engine.interval_topk(*window, K, method="join"))
    return results


def bench_live_ingest(dataset: Dataset, out_dir: Path, scale: float, repeats: int) -> Path:
    base, batches, window = _split_stream(dataset)

    # Each incremental round needs a fresh pre-warmed live engine (records
    # can only be ingested once), so timing covers ingest + warm re-query.
    incremental_samples = []
    last_incremental = None
    stats: dict[str, int] = {}
    for _ in range(repeats):
        engine = _live_engine(dataset, base)
        engine.reset_stats()
        started = time.perf_counter()
        last_incremental = _run_incremental(engine, batches, window)
        incremental_samples.append((time.perf_counter() - started) * 1000.0)
        stats = engine.stats()
    incremental_ms = statistics.median(incremental_samples)
    rebuild_ms = median_ms(
        lambda: _run_rebuild(dataset, base, batches, window), repeats
    )

    rebuild_results = _run_rebuild(dataset, base, batches, window)
    assert last_incremental is not None
    identical = all(
        a.poi_ids == b.poi_ids and a.flows == b.flows
        for a, b in zip(last_incremental, rebuild_results)
    )

    obs_engine = _live_engine(dataset, base)
    instrumented(lambda: _run_incremental(obs_engine, batches, window))

    return emit(
        out_dir,
        "live_ingest",
        scale,
        params={
            "method": "join",
            "k": K,
            "window_seconds": WINDOW_SECONDS,
            "late_objects": LATE_OBJECTS,
        },
        results={
            "incremental_ticks_ms": round(incremental_ms, 3),
            "rebuild_ticks_ms": round(rebuild_ms, 3),
            "incremental_speedup": round(
                rebuild_ms / max(incremental_ms, 1e-9), 2
            ),
            "results_identical": identical,
        },
        stats=stats,
    )


# ----------------------------------------------------------------------
# Scenario: snapshot-vs-interval x iterative-vs-join sweep
# ----------------------------------------------------------------------


def bench_query_matrix(dataset: Dataset, out_dir: Path, scale: float, repeats: int) -> Path:
    engine = dataset.engine()
    t = dataset.mid_time()
    window = (t - WINDOW_SECONDS, t)

    runs: dict[str, Callable[[], object]] = {}
    for method in ("iterative", "join"):
        runs[f"snapshot_{method}_ms"] = (
            lambda m=method: engine.snapshot_topk(t, K, method=m)
        )
        runs[f"interval_{method}_ms"] = (
            lambda m=method: engine.interval_topk(*window, K, method=m)
        )

    for run in runs.values():  # warm the context's caches once per cell
        run()
    results = {
        label: round(median_ms(run, repeats), 3) for label, run in runs.items()
    }

    engine.reset_stats()

    def all_cells() -> None:
        for run in runs.values():
            run()

    instrumented(all_cells)

    return emit(
        out_dir,
        "query_matrix",
        scale,
        params={
            "k": K,
            "window_seconds": WINDOW_SECONDS,
            "methods": ["iterative", "join"],
            "queries": ["snapshot", "interval"],
        },
        results=results,
        stats=engine.stats(),
    )


# ----------------------------------------------------------------------
# Scenario: instrumentation overhead micro-benchmark
# ----------------------------------------------------------------------


def bench_obs_overhead(dataset: Dataset, out_dir: Path, scale: float, repeats: int) -> Path:
    iterations = 200_000

    def bare_loop() -> None:
        for _ in range(iterations):
            pass

    def span_loop() -> None:
        for _ in range(iterations):
            with obs.span("bench.noop"):
                pass

    obs.disable()
    bare_ms = median_ms(bare_loop, repeats)
    disabled_ms = median_ms(span_loop, repeats)
    obs.reset()
    obs.enable()
    try:
        enabled_ms = median_ms(span_loop, repeats)
    finally:
        obs.disable()
        obs.reset()

    disabled_ns = (disabled_ms - bare_ms) * 1e6 / iterations
    enabled_ns = (enabled_ms - bare_ms) * 1e6 / iterations

    # Macro check against the live-ingest workload: count how many spans
    # and metric updates one instrumented run emits, then bound what the
    # same run pays with the flag off (span calls x disabled no-op cost).
    base, batches, window = _split_stream(dataset)
    engine = _live_engine(dataset, base)
    started = time.perf_counter()
    _run_incremental(engine, batches, window)
    workload_ms = (time.perf_counter() - started) * 1000.0

    obs_engine = _live_engine(dataset, base)
    instrumented(lambda: _run_incremental(obs_engine, batches, window))
    span_calls = sum(row.count for row in obs.TRACER.snapshot())
    estimated_disabled_ms = span_calls * max(disabled_ns, 0.0) / 1e6
    overhead_percent = 100.0 * estimated_disabled_ms / max(workload_ms, 1e-9)

    return emit(
        out_dir,
        "obs_overhead",
        scale,
        params={"iterations": iterations, "workload": "live_ingest"},
        results={
            "bare_loop_ms": round(bare_ms, 3),
            "disabled_span_ns": round(disabled_ns, 1),
            "enabled_span_ns": round(enabled_ns, 1),
            "workload_ms": round(workload_ms, 3),
            "workload_span_calls": span_calls,
            "estimated_disabled_overhead_ms": round(estimated_disabled_ms, 4),
            "estimated_disabled_overhead_percent": round(overhead_percent, 3),
        },
    )


# ----------------------------------------------------------------------
# Scenario: sharded engine vs. monolith (cf. bench_shard_scaling.py)
# ----------------------------------------------------------------------


def _localized_pois(dataset: Dataset) -> list:
    """The ``LOCALIZED_POIS`` POIs nearest the floorplan's SW corner.

    A spatially localized query subset is the workload where shard-level
    count bounds pay off: objects partitioned to other shards never come
    near these POIs, their bounds are zero, and the coordinator skips the
    whole shard during join refinement (``shard_prunes``).
    """
    bounds = dataset.floorplan.bounds

    def corner_distance(poi) -> float:
        centroid = poi.polygon.centroid()
        dx = centroid.x - bounds.min_x
        dy = centroid.y - bounds.min_y
        return dx * dx + dy * dy

    ranked = sorted(dataset.pois, key=lambda p: (corner_distance(p), p.poi_id))
    return ranked[:LOCALIZED_POIS]


def bench_shard_scaling(dataset: Dataset, out_dir: Path, scale: float, repeats: int) -> Path:
    t = dataset.mid_time()
    window = (t - WINDOW_SECONDS, t)
    localized = _localized_pois(dataset)
    t_lo, t_hi = dataset.time_span()
    sweep = [t_lo + f * (t_hi - t_lo) for f in SNAPSHOT_SWEEP]

    monolith = dataset.engine()
    expected = {
        "snapshot": monolith.snapshot_topk(t, K, method="join"),
        "interval": monolith.interval_topk(*window, K, method="join"),
    }

    engines: dict[int, ShardedFlowEngine] = {}
    results: dict[str, Any] = {}
    identical = True
    for num_shards in SHARD_COUNTS:
        engine = ShardedFlowEngine(
            ott=dataset.ott, num_shards=num_shards, **_engine_kwargs(dataset)
        )
        engines[num_shards] = engine

        def matrix(engine: ShardedFlowEngine = engine) -> dict:
            return {
                "snapshot": engine.snapshot_topk(t, K, method="join"),
                "interval": engine.interval_topk(*window, K, method="join"),
            }

        def localized_cell(engine: ShardedFlowEngine = engine) -> None:
            for instant in sweep:
                engine.snapshot_topk(
                    instant, LOCALIZED_K, pois=localized, method="join"
                )

        answers = matrix()  # warm the shard caches once per fleet size
        identical = identical and all(
            answers[q].poi_ids == expected[q].poi_ids
            and answers[q].flows == expected[q].flows
            for q in expected
        )
        localized_cell()
        results[f"matrix_n{num_shards}_ms"] = round(median_ms(matrix, repeats), 3)
        localized_ms = median_ms(localized_cell, repeats)
        results[f"localized_n{num_shards}_ms"] = round(localized_ms, 3)

        engine.reset_stats()
        localized_cell()
        results[f"shard_prunes_n{num_shards}"] = engine.stats()["shard_prunes"]

    base_ms = results[f"matrix_n{SHARD_COUNTS[0]}_ms"]
    for num_shards in SHARD_COUNTS[1:]:
        results[f"speedup_n{num_shards}"] = round(
            base_ms / max(results[f"matrix_n{num_shards}_ms"], 1e-9), 2
        )
    results["results_identical"] = identical

    widest = engines[SHARD_COUNTS[-1]]
    widest.reset_stats()

    def full_sweep() -> None:
        widest.snapshot_topk(t, K, method="join")
        widest.interval_topk(*window, K, method="join")
        for instant in sweep:
            widest.snapshot_topk(
                instant, LOCALIZED_K, pois=localized, method="join"
            )

    instrumented(full_sweep)

    return emit(
        out_dir,
        "shard_scaling",
        scale,
        params={
            "method": "join",
            "k": K,
            "window_seconds": WINDOW_SECONDS,
            "shard_counts": list(SHARD_COUNTS),
            "executor": "serial",
            "localized_pois": [poi.poi_id for poi in localized],
            "localized_k": LOCALIZED_K,
            "snapshot_sweep": list(SNAPSHOT_SWEEP),
            # On a single-CPU host the serial executor cannot show a
            # parallel speedup; the win that scales with shard count here
            # is bound-based shard pruning on localized POI subsets.
            "win_mechanism": "shard_prunes",
        },
        results=results,
        stats=widest.stats(),
    )


# ----------------------------------------------------------------------
# Scenario: durable storage — append throughput, reopen paths
# ----------------------------------------------------------------------


def bench_storage(dataset: Dataset, out_dir: Path, scale: float, repeats: int) -> Path:
    """SQLite write-through and the two recovery read shapes.

    ``reopen_cold`` recovers from an **uncompacted** store: the snapshot
    is empty, so every persisted mutation replays one by one through the
    live ingest seam (table validation + AR-tree delta).  ``reopen_snapshot``
    recovers from the same data after ``checkpoint()``: the bulk snapshot
    feeds ``ARTree.build`` directly and only an empty tail replays — the
    speedup between the two is what compaction buys a restart.
    """
    import tempfile

    records = sorted(dataset.ott, key=lambda r: (r.t_s, r.t_e, r.record_id))
    t = dataset.mid_time()
    window = (t - WINDOW_SECONDS, t)

    def attach(path: Path) -> FlowEngine:
        return FlowEngine(
            ott=ObjectTrackingTable(),
            live=True,
            storage=SQLiteBackend(path),
            **_engine_kwargs(dataset),
        )

    with tempfile.TemporaryDirectory(prefix="bench-storage-") as tmp:
        tmp_dir = Path(tmp)

        # Append throughput: each repeat streams the full workload through
        # the write-through path into a fresh store.
        append_samples = []
        for index in range(repeats):
            engine = attach(tmp_dir / f"append-{index}.sqlite")
            started = time.perf_counter()
            engine.ingest(records)
            append_samples.append((time.perf_counter() - started) * 1000.0)
            engine.storage.close()
        append_ms = statistics.median(append_samples)

        # Two stores with identical contents: WAL-only vs. compacted.
        cold_path = tmp_dir / "cold.sqlite"
        engine = attach(cold_path)
        engine.ingest(records)
        engine.storage.close()

        snapshot_path = tmp_dir / "compacted.sqlite"
        engine = attach(snapshot_path)
        engine.ingest(records)
        started = time.perf_counter()
        engine.checkpoint()
        checkpoint_ms = (time.perf_counter() - started) * 1000.0
        engine.storage.close()

        reopen_cold_ms = median_ms(
            lambda: attach(cold_path).storage.close(), repeats
        )
        reopen_snapshot_ms = median_ms(
            lambda: attach(snapshot_path).storage.close(), repeats
        )

        recovered = attach(snapshot_path)
        reference = FlowEngine(
            ott=ObjectTrackingTable(records), **_engine_kwargs(dataset)
        )
        a = recovered.interval_topk(*window, K, method="join")
        b = reference.interval_topk(*window, K, method="join")
        identical = a.poi_ids == b.poi_ids and a.flows == b.flows
        recovered.storage.close()

        obs_path = tmp_dir / "instrumented.sqlite"

        def instrumented_cycle() -> None:
            writer = attach(obs_path)
            writer.ingest(records)
            writer.checkpoint()
            writer.storage.close()
            attach(obs_path).storage.close()

        instrumented(instrumented_cycle)

        return emit(
            out_dir,
            "storage",
            scale,
            params={
                "backend": "sqlite",
                "records": len(records),
                "method": "join",
                "k": K,
                "window_seconds": WINDOW_SECONDS,
            },
            results={
                "append_ms": round(append_ms, 3),
                "append_rows_per_s": round(
                    len(records) / max(append_ms / 1000.0, 1e-9), 1
                ),
                "checkpoint_ms": round(checkpoint_ms, 3),
                "reopen_cold_ms": round(reopen_cold_ms, 3),
                "reopen_snapshot_ms": round(reopen_snapshot_ms, 3),
                "reopen_speedup": round(
                    reopen_cold_ms / max(reopen_snapshot_ms, 1e-9), 2
                ),
                "results_identical": identical,
            },
        )


# ----------------------------------------------------------------------
# Scenario: repro.serve under concurrent ingest + query (HTTP round trips)
# ----------------------------------------------------------------------


def _percentile(samples: list[float], q: float) -> float:
    """Nearest-rank percentile of ``samples`` (which must be non-empty)."""
    ordered = sorted(samples)
    return ordered[min(len(ordered) - 1, max(0, round(q * (len(ordered) - 1))))]


def bench_serve(dataset: Dataset, out_dir: Path, scale: float, repeats: int) -> Path:
    """End-to-end HTTP latency and throughput of ``repro.serve``.

    One in-process service (real listener, real sockets) takes the whole
    workload from ``SERVE_INGEST_THREADS`` concurrent producers — disjoint
    per-object streams, chunked — while ``SERVE_QUERY_THREADS`` clients
    keep querying the moving engine.  Client-side wall clock gives the
    p50/p99 of both request kinds *under contention*, plus a steady-state
    query profile once ingest settles.  The final served top-k is checked
    bit-identical against an in-process engine over the same records.
    """
    import threading

    from repro.core.queries import SnapshotTopKQuery
    from repro.serve.app import ServeConfig, ServerHandle
    from repro.serve.client import ServeClient
    from repro.serve.wire import QuerySpec

    records = sorted(dataset.ott, key=lambda r: (r.t_s, r.t_e, r.record_id))
    t_lo, t_hi = dataset.time_span()
    query_times = [
        t_lo + fraction * (t_hi - t_lo) for fraction in SNAPSHOT_SWEEP
    ]

    by_object: dict[Any, list[TrackingRecord]] = {}
    for record in records:
        by_object.setdefault(record.object_id, []).append(record)
    streams: list[list[TrackingRecord]] = [[] for _ in range(SERVE_INGEST_THREADS)]
    for index, object_records in enumerate(by_object.values()):
        streams[index % SERVE_INGEST_THREADS].extend(object_records)

    engine = FlowEngine(
        ott=LiveTrackingTable(), live=True, **_engine_kwargs(dataset)
    )
    ingest_latencies: list[float] = []
    query_latencies: list[float] = []
    errors: list[BaseException] = []
    lock = threading.Lock()
    start = threading.Barrier(SERVE_INGEST_THREADS + SERVE_QUERY_THREADS + 1)
    ingest_done = threading.Event()

    with ServerHandle(engine, ServeConfig()) as handle:
        def ingest_worker(stream: list[TrackingRecord]) -> None:
            client = ServeClient(handle.base_url)
            local: list[float] = []
            try:
                start.wait(timeout=60.0)
                for offset in range(0, len(stream), SERVE_CHUNK):
                    begun = time.perf_counter()
                    client.ingest(records=stream[offset : offset + SERVE_CHUNK])
                    local.append((time.perf_counter() - begun) * 1000.0)
            except BaseException as exc:  # noqa: BLE001 - reported below
                errors.append(exc)
            with lock:
                ingest_latencies.extend(local)

        def query_worker(offset: int) -> None:
            client = ServeClient(handle.base_url)
            local: list[float] = []
            try:
                start.wait(timeout=60.0)
                cursor = offset
                while not ingest_done.is_set():
                    t = query_times[cursor % len(query_times)]
                    cursor += 1
                    begun = time.perf_counter()
                    client.query(
                        QuerySpec(query=SnapshotTopKQuery(t=t, k=K))
                    )
                    local.append((time.perf_counter() - begun) * 1000.0)
            except BaseException as exc:  # noqa: BLE001 - reported below
                errors.append(exc)
            with lock:
                query_latencies.extend(local)

        threads = [
            threading.Thread(target=ingest_worker, args=(stream,), daemon=True)
            for stream in streams
        ] + [
            threading.Thread(target=query_worker, args=(index,), daemon=True)
            for index in range(SERVE_QUERY_THREADS)
        ]
        for thread in threads:
            thread.start()
        start.wait(timeout=60.0)
        begun = time.perf_counter()
        for thread in threads[:SERVE_INGEST_THREADS]:
            thread.join()
        ingest_wall_s = time.perf_counter() - begun
        ingest_done.set()
        for thread in threads[SERVE_INGEST_THREADS:]:
            thread.join()
        if errors:
            raise RuntimeError(f"serve bench worker failed: {errors[0]!r}")

        # Steady state: the same query mix against the settled engine.
        client = ServeClient(handle.base_url)
        steady: list[float] = []
        for _ in range(repeats):
            for t in query_times:
                begun = time.perf_counter()
                client.query(QuerySpec(query=SnapshotTopKQuery(t=t, k=K)))
                steady.append((time.perf_counter() - begun) * 1000.0)

        served = client.query(
            QuerySpec(query=SnapshotTopKQuery(t=query_times[1], k=K))
        )

    reference = FlowEngine(
        ott=ObjectTrackingTable(records), **_engine_kwargs(dataset)
    ).snapshot_topk(query_times[1], K)
    identical = (
        served.poi_ids == reference.poi_ids and served.flows == reference.flows
    )

    def instrumented_cycle() -> None:
        probe = FlowEngine(
            ott=LiveTrackingTable(), live=True, **_engine_kwargs(dataset)
        )
        with ServerHandle(probe, ServeConfig()) as probe_handle:
            probe_client = ServeClient(probe_handle.base_url)
            probe_client.ingest(records=records[: SERVE_CHUNK * 4])
            probe_client.query(
                QuerySpec(query=SnapshotTopKQuery(t=query_times[0], k=K))
            )

    instrumented(instrumented_cycle)

    return emit(
        out_dir,
        "serve",
        scale,
        params={
            "records": len(records),
            "ingest_threads": SERVE_INGEST_THREADS,
            "query_threads": SERVE_QUERY_THREADS,
            "chunk": SERVE_CHUNK,
            "k": K,
            "method": "join",
        },
        results={
            "ingest_wall_s": round(ingest_wall_s, 3),
            "ingest_rows_per_s": round(len(records) / max(ingest_wall_s, 1e-9), 1),
            "ingest_p50_ms": round(_percentile(ingest_latencies, 0.50), 3),
            "ingest_p99_ms": round(_percentile(ingest_latencies, 0.99), 3),
            "query_under_ingest_p50_ms": round(_percentile(query_latencies, 0.50), 3),
            "query_under_ingest_p99_ms": round(_percentile(query_latencies, 0.99), 3),
            "query_under_ingest_count": len(query_latencies),
            "query_steady_p50_ms": round(_percentile(steady, 0.50), 3),
            "query_steady_p99_ms": round(_percentile(steady, 0.99), 3),
            "results_identical": identical,
        },
    )


# ----------------------------------------------------------------------
# Entry point
# ----------------------------------------------------------------------

_SCENARIOS: dict[str, Callable[[Dataset, Path, float, int], Path]] = {
    "monitor_cache": bench_monitor_cache,
    "live_ingest": bench_live_ingest,
    "query_matrix": bench_query_matrix,
    "obs_overhead": bench_obs_overhead,
    "shard_scaling": bench_shard_scaling,
    "storage": bench_storage,
    "serve": bench_serve,
}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Run the repro benches and write BENCH_*.json baselines."
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=0.05,
        help="population scale relative to the paper's |O| (default 0.05)",
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=3,
        help="timing repeats per measurement; the median is reported",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=REPO_ROOT / "benchmarks" / "baselines",
        help="directory for the BENCH_*.json files",
    )
    parser.add_argument(
        "--only",
        action="append",
        choices=sorted(_SCENARIOS),
        help="run only the named scenario (repeatable)",
    )
    args = parser.parse_args(argv)
    if args.scale <= 0:
        parser.error("--scale must be positive")
    if args.repeats < 1:
        parser.error("--repeats must be positive")

    names = args.only if args.only else list(BENCH_NAMES)
    args.out.mkdir(parents=True, exist_ok=True)

    print(f"building synthetic dataset at scale {args.scale} ...", flush=True)
    dataset = build_synthetic_dataset(SyntheticConfig().scaled(args.scale))

    for name in names:
        started = time.perf_counter()
        path = _SCENARIOS[name](dataset, args.out, args.scale, args.repeats)
        elapsed = time.perf_counter() - started
        print(f"  {name:<14} -> {path}  ({elapsed:.1f}s)", flush=True)
    print(f"wrote {len(names)} baseline(s) to {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
