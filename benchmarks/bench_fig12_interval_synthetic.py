"""Figure 12: interval query on synthetic data — k, |P|, |O|, window."""

import pytest

from conftest import (
    K_VALUES,
    METHODS,
    OBJECT_COUNTS,
    POI_PERCENTAGES,
    WINDOW_MINUTES,
    run_benchmark,
)


@pytest.mark.parametrize("method", METHODS)
@pytest.mark.parametrize("k", K_VALUES)
def test_fig12a_interval_vary_k(benchmark, synthetic, method, k):
    dataset, engine = synthetic
    pois = dataset.poi_subset(60)
    start, end = dataset.window(10)
    run_benchmark(
        benchmark,
        lambda: engine.interval_topk(start, end, k, pois=pois, method=method),
    )


@pytest.mark.parametrize("method", METHODS)
@pytest.mark.parametrize("percent", POI_PERCENTAGES)
def test_fig12b_interval_vary_poi_count(benchmark, synthetic, method, percent):
    dataset, engine = synthetic
    pois = dataset.poi_subset(percent)
    start, end = dataset.window(10)
    run_benchmark(
        benchmark,
        lambda: engine.interval_topk(start, end, 10, pois=pois, method=method),
    )


@pytest.mark.parametrize("method", METHODS)
@pytest.mark.parametrize("num_objects", OBJECT_COUNTS)
def test_fig12c_interval_vary_object_count(benchmark, ctx, method, num_objects):
    dataset, engine = ctx.synthetic(num_objects=num_objects)
    pois = dataset.poi_subset(60)
    start, end = dataset.window(10)
    run_benchmark(
        benchmark,
        lambda: engine.interval_topk(start, end, 10, pois=pois, method=method),
    )


@pytest.mark.parametrize("method", METHODS)
@pytest.mark.parametrize("minutes", WINDOW_MINUTES)
def test_fig12d_interval_vary_window(benchmark, synthetic, method, minutes):
    dataset, engine = synthetic
    pois = dataset.poi_subset(60)
    start, end = dataset.window(minutes)
    run_benchmark(
        benchmark,
        lambda: engine.interval_topk(start, end, 10, pois=pois, method=method),
    )
