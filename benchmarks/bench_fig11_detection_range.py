"""Figure 11: effect of the detection range (snapshot and interval).

The paper's contrast: snapshot cost *grows* with the range (bigger
uncertainty regions at a time point) while interval cost *shrinks*
(tighter inter-device ellipses along a trajectory).
"""

import pytest

from conftest import DETECTION_RANGES, METHODS, run_benchmark


@pytest.mark.parametrize("method", METHODS)
@pytest.mark.parametrize("detection_range", DETECTION_RANGES)
def test_fig11a_snapshot_vary_range(benchmark, ctx, method, detection_range):
    dataset, engine = ctx.synthetic(detection_range=detection_range)
    pois = dataset.poi_subset(60)
    t = dataset.mid_time()
    run_benchmark(
        benchmark, lambda: engine.snapshot_topk(t, 10, pois=pois, method=method)
    )


@pytest.mark.parametrize("method", METHODS)
@pytest.mark.parametrize("detection_range", DETECTION_RANGES)
def test_fig11b_interval_vary_range(benchmark, ctx, method, detection_range):
    dataset, engine = ctx.synthetic(detection_range=detection_range)
    pois = dataset.poi_subset(60)
    start, end = dataset.window(10)
    run_benchmark(
        benchmark,
        lambda: engine.interval_topk(start, end, 10, pois=pois, method=method),
    )
