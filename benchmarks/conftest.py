"""Shared benchmark fixtures.

The pytest-benchmark suite runs each figure's series at a small fixed
scale so the whole suite stays in the minutes range; the printable harness
(``python -m repro.bench``) runs the full sweeps at arbitrary scale.
"""

from __future__ import annotations

import pytest

from repro.bench import BenchContext

#: Population scale for the pytest-benchmark suite (fraction of the
#: paper's |O|).
BENCH_SCALE = 0.05

#: Reduced sweeps: first / middle / last value of each paper range.
K_VALUES = (1, 10, 50)
POI_PERCENTAGES = (20, 60, 100)
DETECTION_RANGES = (1.0, 1.5, 2.5)
OBJECT_COUNTS = (1000, 3000, 5000)
WINDOW_MINUTES = (1, 10, 30)

METHODS = ("iterative", "join")


@pytest.fixture(scope="session")
def ctx() -> BenchContext:
    return BenchContext(scale=BENCH_SCALE, repeats=1)


@pytest.fixture(scope="session")
def synthetic(ctx):
    """(dataset, engine) for the default synthetic setting."""
    return ctx.synthetic()


@pytest.fixture(scope="session")
def cph(ctx):
    """(dataset, engine) for the simulated CPH setting."""
    return ctx.cph()


def run_benchmark(benchmark, fn):
    """One warm-up call, then two timed rounds (queries are not micro-ops)."""
    fn()
    benchmark.pedantic(fn, rounds=2, iterations=1)
