"""Figure 13: snapshot query on the (simulated) CPH data — k and |P|."""

import pytest

from conftest import K_VALUES, METHODS, POI_PERCENTAGES, run_benchmark


@pytest.mark.parametrize("method", METHODS)
@pytest.mark.parametrize("k", K_VALUES)
def test_fig13a_snapshot_cph_vary_k(benchmark, cph, method, k):
    dataset, engine = cph
    pois = dataset.poi_subset(60)
    t = dataset.mid_time()
    run_benchmark(
        benchmark, lambda: engine.snapshot_topk(t, k, pois=pois, method=method)
    )


@pytest.mark.parametrize("method", METHODS)
@pytest.mark.parametrize("percent", POI_PERCENTAGES)
def test_fig13b_snapshot_cph_vary_poi_count(benchmark, cph, method, percent):
    dataset, engine = cph
    pois = dataset.poi_subset(percent)
    t = dataset.mid_time()
    run_benchmark(
        benchmark, lambda: engine.snapshot_topk(t, 10, pois=pois, method=method)
    )
