"""Benchmarks for the multi-floor extension (not a paper figure).

Tracks the cost of cross-floor analytics: door-graph construction over
stairwell-connected storeys, cross-floor distance queries, and the two
top-k queries on a three-storey building.
"""

import pytest

from repro.core import FlowEngine
from repro.indoor import (
    DoorGraph,
    IndoorDistanceOracle,
    deploy_multi_storey_devices,
    multi_storey_office,
    partition_rooms_into_pois,
)
from repro.tracking import simulate_random_waypoint

from conftest import METHODS, run_benchmark


@pytest.fixture(scope="module")
def multifloor_world():
    building = multi_storey_office(levels=3, rooms_per_side=5, stair_count=2)
    deployment = deploy_multi_storey_devices(building)
    simulation = simulate_random_waypoint(
        building, deployment, num_objects=30, duration=900.0, seed=11
    )
    pois = partition_rooms_into_pois(building, count=40, seed=2)
    engine = FlowEngine(
        building,
        deployment,
        simulation.ott,
        pois,
        v_max=1.1,
        detection_slack=2.0,
    )
    return building, engine, simulation


def test_multifloor_door_graph_build(benchmark, multifloor_world):
    building, _, _ = multifloor_world
    benchmark(lambda: DoorGraph(building))


def test_multifloor_cross_floor_distance(benchmark, multifloor_world):
    building, _, _ = multifloor_world
    oracle = IndoorDistanceOracle(building)
    start = building.room("F0:H").polygon.centroid()
    goal = building.room("F2:H").polygon.centroid()
    benchmark(lambda: oracle.distance(start, goal))


@pytest.mark.parametrize("method", METHODS)
def test_multifloor_snapshot_topk(benchmark, multifloor_world, method):
    _, engine, simulation = multifloor_world
    start, end = simulation.ott.time_span()
    t = (start + end) / 2.0
    run_benchmark(benchmark, lambda: engine.snapshot_topk(t, 5, method=method))


@pytest.mark.parametrize("method", METHODS)
def test_multifloor_interval_topk(benchmark, multifloor_world, method):
    _, engine, simulation = multifloor_world
    start, end = simulation.ott.time_span()
    middle = (start + end) / 2.0
    run_benchmark(
        benchmark,
        lambda: engine.interval_topk(middle - 120.0, middle + 120.0, 5, method=method),
    )
