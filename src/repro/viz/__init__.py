"""Zero-dependency SVG visualisation of indoor analytics."""

from .svg import SvgCanvas

__all__ = ["SvgCanvas"]
