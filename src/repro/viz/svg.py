"""SVG rendering of floor plans, deployments, regions and trajectories.

Debugging indoor analytics is a visual job: is the uncertainty region
where it should be, did the topology check cut the right part, where do
objects actually walk?  This module renders any combination of the
library's spatial objects to a standalone SVG string/file with zero
dependencies.

Typical use::

    from repro.viz import SvgCanvas

    canvas = SvgCanvas.for_floorplan(plan)
    canvas.draw_floorplan(plan)
    canvas.draw_deployment(deployment)
    canvas.draw_region(engine.snapshot_region_of("o3", t), fill="#d62728")
    canvas.save("debug.svg")

Regions are rasterised on a sampling grid (they are predicates, not
outlines), drawn as translucent cells — faithful to how the library itself
measures them.
"""

from __future__ import annotations

import html
from pathlib import Path

import numpy as np

from ..geometry import Mbr, Region, grid_points, near_zero
from ..indoor.devices import Deployment
from ..indoor.floorplan import FloorPlan
from ..indoor.poi import Poi
from ..tracking.trajectory import Trajectory

__all__ = ["SvgCanvas"]

_ROOM_FILLS = {
    "hallway": "#f2e8cf",
    "stairwell": "#d9c8a9",
    "security": "#f4cccc",
    "hall": "#e8f0f2",
}
_DEFAULT_ROOM_FILL = "#e8ecef"


class SvgCanvas:
    """An SVG drawing surface in world (meter) coordinates.

    The canvas flips the y-axis so plans render with north up, and scales
    meters to pixels uniformly.
    """

    def __init__(self, bounds: Mbr, scale: float = 6.0, padding: float = 2.0):
        if scale <= 0:
            raise ValueError("scale must be positive")
        self.bounds = bounds.expanded(padding)
        self.scale = scale
        self._elements: list[str] = []

    @classmethod
    def for_floorplan(cls, plan: FloorPlan, scale: float = 6.0) -> "SvgCanvas":
        return cls(plan.bounds, scale=scale)

    # ------------------------------------------------------------------
    # Coordinate mapping
    # ------------------------------------------------------------------

    @property
    def width_px(self) -> float:
        return self.bounds.width * self.scale

    @property
    def height_px(self) -> float:
        return self.bounds.height * self.scale

    def _x(self, x: float) -> float:
        return (x - self.bounds.min_x) * self.scale

    def _y(self, y: float) -> float:
        return (self.bounds.max_y - y) * self.scale

    # ------------------------------------------------------------------
    # Drawing
    # ------------------------------------------------------------------

    def draw_floorplan(
        self, plan: FloorPlan, label_rooms: bool = True
    ) -> "SvgCanvas":
        """Rooms (filled, kind-coloured), walls and doors."""
        for room in plan.rooms:
            points = " ".join(
                f"{self._x(v.x):.1f},{self._y(v.y):.1f}"
                for v in room.polygon.vertices
            )
            fill = _ROOM_FILLS.get(room.kind, _DEFAULT_ROOM_FILL)
            self._elements.append(
                f'<polygon points="{points}" fill="{fill}" '
                f'stroke="#555" stroke-width="1.2"/>'
            )
            if label_rooms:
                center = room.polygon.centroid()
                self._elements.append(
                    f'<text x="{self._x(center.x):.1f}" '
                    f'y="{self._y(center.y):.1f}" font-size="{self.scale * 1.2:.1f}" '
                    f'text-anchor="middle" fill="#666" '
                    f'font-family="sans-serif">{html.escape(str(room.room_id))}</text>'
                )
        for door in plan.doors:
            self._elements.append(
                f'<circle cx="{self._x(door.position.x):.1f}" '
                f'cy="{self._y(door.position.y):.1f}" r="{self.scale * 0.5:.1f}" '
                f'fill="#8d6e63"/>'
            )
        return self

    def draw_deployment(self, deployment: Deployment) -> "SvgCanvas":
        """Detection ranges as dashed circles with center dots."""
        for device in deployment:
            cx, cy = self._x(device.center.x), self._y(device.center.y)
            self._elements.append(
                f'<circle cx="{cx:.1f}" cy="{cy:.1f}" '
                f'r="{device.radius * self.scale:.1f}" fill="#1f77b4" '
                f'fill-opacity="0.12" stroke="#1f77b4" stroke-width="1" '
                f'stroke-dasharray="4 3"/>'
            )
            self._elements.append(
                f'<circle cx="{cx:.1f}" cy="{cy:.1f}" r="2" fill="#1f77b4"/>'
            )
        return self

    def draw_pois(self, pois: list[Poi], fill: str = "#2ca02c") -> "SvgCanvas":
        """POI extents as translucent outlined polygons."""
        for poi in pois:
            points = " ".join(
                f"{self._x(v.x):.1f},{self._y(v.y):.1f}"
                for v in poi.polygon.vertices
            )
            self._elements.append(
                f'<polygon points="{points}" fill="{fill}" fill-opacity="0.18" '
                f'stroke="{fill}" stroke-width="1"/>'
            )
        return self

    def draw_region(
        self,
        region: Region,
        fill: str = "#d62728",
        resolution: int = 96,
        opacity: float = 0.35,
    ) -> "SvgCanvas":
        """Rasterise a region as translucent grid cells."""
        mbr = region.mbr
        if mbr is None:
            return self
        clipped = mbr.intersection(self.bounds)
        if clipped is None or near_zero(clipped.area()):
            return self
        xs, ys, _ = grid_points(clipped, resolution)
        inside = region.contains_many(xs, ys)
        if not inside.any():
            return self
        step_x = clipped.width / max(1, len(np.unique(xs)))
        step_y = clipped.height / max(1, len(np.unique(ys)))
        half_w = step_x * self.scale / 2.0
        half_h = step_y * self.scale / 2.0
        cells = []
        for x, y in zip(xs[inside], ys[inside]):
            cells.append(
                f'<rect x="{self._x(float(x)) - half_w:.1f}" '
                f'y="{self._y(float(y)) - half_h:.1f}" '
                f'width="{2 * half_w:.1f}" height="{2 * half_h:.1f}"/>'
            )
        self._elements.append(
            f'<g fill="{fill}" fill-opacity="{opacity}">{"".join(cells)}</g>'
        )
        return self

    def draw_trajectory(
        self, trajectory: Trajectory, stroke: str = "#9467bd"
    ) -> "SvgCanvas":
        """The ground-truth path as a polyline, with start/end markers."""
        points = [trajectory.legs[0].start] + [leg.end for leg in trajectory.legs]
        path = " ".join(f"{self._x(p.x):.1f},{self._y(p.y):.1f}" for p in points)
        self._elements.append(
            f'<polyline points="{path}" fill="none" stroke="{stroke}" '
            f'stroke-width="1.5" stroke-opacity="0.8"/>'
        )
        start, end = points[0], points[-1]
        self._elements.append(
            f'<circle cx="{self._x(start.x):.1f}" cy="{self._y(start.y):.1f}" '
            f'r="3" fill="{stroke}"/>'
        )
        self._elements.append(
            f'<rect x="{self._x(end.x) - 3:.1f}" y="{self._y(end.y) - 3:.1f}" '
            f'width="6" height="6" fill="{stroke}"/>'
        )
        return self

    def draw_marker(
        self, x: float, y: float, label: str = "", color: str = "#000"
    ) -> "SvgCanvas":
        """A cross marker with an optional label (e.g. a true position)."""
        cx, cy = self._x(x), self._y(y)
        size = 4.0
        self._elements.append(
            f'<path d="M {cx - size} {cy - size} L {cx + size} {cy + size} '
            f'M {cx - size} {cy + size} L {cx + size} {cy - size}" '
            f'stroke="{color}" stroke-width="2"/>'
        )
        if label:
            self._elements.append(
                f'<text x="{cx + 6:.1f}" y="{cy - 6:.1f}" font-size="11" '
                f'fill="{color}" font-family="sans-serif">{html.escape(label)}</text>'
            )
        return self

    # ------------------------------------------------------------------
    # Output
    # ------------------------------------------------------------------

    def to_svg(self) -> str:
        """The complete SVG document."""
        body = "\n".join(self._elements)
        return (
            f'<svg xmlns="http://www.w3.org/2000/svg" '
            f'width="{self.width_px:.0f}" height="{self.height_px:.0f}" '
            f'viewBox="0 0 {self.width_px:.0f} {self.height_px:.0f}">\n'
            f'<rect width="100%" height="100%" fill="white"/>\n'
            f"{body}\n</svg>\n"
        )

    def save(self, path: str | Path) -> Path:
        """Write the SVG document; returns the path."""
        path = Path(path)
        path.write_text(self.to_svg())
        return path
