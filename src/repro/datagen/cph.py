"""A simulated Copenhagen Airport (CPH) Bluetooth tracking data set.

The paper's real data set — Bluetooth-tracked passengers at Copenhagen
Airport, ~60K tracking records for ~10K passengers over 7 months — is not
publicly available.  This module builds the closest synthetic equivalent
(see DESIGN.md, Substitutions):

* an airport-pier floor plan (check-in hall, security, shop-and-gate
  corridor) with *sparse* Bluetooth radios, so objects spend long stretches
  undetected — the defining property of the real data;
* passengers following realistic itineraries (check-in dwell → security →
  a few shop visits → gate dwell) with heavy-tailed dwell times, arriving
  throughout the horizon.

What the query algorithms consume is only the OTT schema plus the
deployment geometry; record density per passenger and reader sparsity are
matched to the paper's description, which is what drives performance
behaviour.
"""

from __future__ import annotations

import random

from ..geometry import Point
from ..indoor.builders import (
    airport_pier,
    deploy_airport_devices,
    partition_rooms_into_pois,
)
from ..indoor.floorplan import FloorPlan
from ..indoor.topology import DoorGraph
from ..tracking.motion import itinerary_trajectory, random_point_in_room
from ..tracking.simulator import simulate_trajectories
from ..tracking.trajectory import Trajectory
from .config import CphConfig
from .dataset import Dataset

__all__ = ["build_cph_dataset"]


def _heavy_tailed_dwell(rng: random.Random, median: float, cap: float) -> float:
    """A log-normal-ish dwell time: most short, occasionally very long."""
    value = median * (2.0 ** rng.gauss(0.0, 1.2))
    return min(max(30.0, value), cap)


def _passenger_trajectory(
    passenger_id: str,
    plan: FloorPlan,
    graph: DoorGraph,
    rng: random.Random,
    arrival: float,
    speed: float,
) -> Trajectory:
    """One passenger's journey: check-in → security → shops → gate."""
    hall = plan.room("hall")
    security = plan.room("security")
    shops = [room for room in plan.iter_rooms(kind="shop")]
    gates = [room for room in plan.iter_rooms(kind="gate")]

    stops: list[tuple[Point, float]] = [
        (random_point_in_room(hall, rng), _heavy_tailed_dwell(rng, 600.0, 3600.0)),
        (random_point_in_room(security, rng), _heavy_tailed_dwell(rng, 240.0, 1800.0)),
    ]
    for _ in range(rng.randint(0, 3)):
        shop = rng.choice(shops)
        stops.append(
            (
                random_point_in_room(shop, rng),
                _heavy_tailed_dwell(rng, 420.0, 2400.0),
            )
        )
    gate = rng.choice(gates)
    stops.append(
        (random_point_in_room(gate, rng), _heavy_tailed_dwell(rng, 1500.0, 7200.0))
    )
    return itinerary_trajectory(
        object_id=passenger_id,
        graph=graph,
        stops=stops,
        speed=speed,
        t_start=arrival,
    )


def build_cph_dataset(config: CphConfig = CphConfig()) -> Dataset:
    """Generate the simulated CPH bundle."""
    plan = airport_pier(num_shops=config.num_shops, num_gates=config.num_gates)
    deployment = deploy_airport_devices(
        plan,
        detection_range=config.detection_range,
        corridor_spacing=config.corridor_spacing,
    )
    graph = DoorGraph(plan)
    rng = random.Random(config.seed)
    trajectories = []
    for i in range(config.num_passengers):
        # Leave headroom at the end of the horizon so late arrivals still
        # complete a meaningful journey inside it.
        arrival = rng.uniform(0.0, max(1.0, config.horizon * 0.8))
        trajectories.append(
            _passenger_trajectory(
                passenger_id=f"p{i}",
                plan=plan,
                graph=graph,
                rng=random.Random(f"{config.seed}:{i}"),
                arrival=arrival,
                speed=config.speed,
            )
        )
    result = simulate_trajectories(
        trajectories, deployment, sampling_interval=config.sampling_interval
    )
    pois = partition_rooms_into_pois(
        plan,
        count=config.poi_count,
        seed=config.seed,
        kinds=("shop", "gate", "hall", "security"),
    )
    return Dataset(
        floorplan=plan,
        deployment=deployment,
        pois=pois,
        ott=result.ott,
        trajectories=result.trajectories,
        v_max=config.v_max,
        name=f"cph-{config.num_passengers}pax",
        sampling_interval=config.sampling_interval,
    )
