"""Streaming large-population synthetic generation.

:func:`~repro.datagen.synthetic.build_synthetic_dataset` materialises
every trajectory and every raw reading before merging — fine at the
paper's scales, hopeless at 10⁵–10⁶ objects (a one-hour trajectory is
thousands of sampled legs).  The streaming generator instead runs the
full per-object pipeline — random-waypoint trajectory → proximity
detection → episode merging — one object at a time, discards the
trajectory and readings immediately, and yields finished
:class:`~repro.tracking.records.TrackingRecord` rows.

Peak memory is one object's trajectory plus the shared immutable
environment (floor plan, deployment, door graph), independent of the
population size.

**Equivalence.**  Objects are processed in the batch merger's global sort
order (``str(object_id)``; each object's readings are already
time-sorted), and record ids are assigned sequentially across the
stream — so the streamed record sequence is *identical*, ids included,
to what the batch pipeline produces for the same
:class:`~repro.datagen.config.SyntheticConfig`.  Per-object RNG streams
(``Random(f"{seed}:{i}")``) make each object's movement independent of
how many objects are generated.

``python -m repro.datagen`` exposes this as a CLI with an ``--objects``
scale knob (see :mod:`repro.datagen.__main__`).
"""

from __future__ import annotations

import random
from dataclasses import replace
from typing import Iterator

from ..indoor.builders import deploy_office_devices, office_building
from ..indoor.topology import DoorGraph
from ..tracking.detection import detect_trajectory
from ..tracking.merger import merge_readings
from ..tracking.motion import random_waypoint_trajectory, zipf_room_weights
from ..tracking.records import TrackingRecord
from ..tracking.table import ObjectTrackingTable
from .config import SyntheticConfig

__all__ = ["stream_synthetic_records", "build_synthetic_ott_streamed"]


def stream_synthetic_records(
    config: SyntheticConfig = SyntheticConfig(),
) -> Iterator[TrackingRecord]:
    """Yield the synthetic workload's OTT rows one object at a time.

    The rows arrive in the batch merger's global order — grouped by
    ``str(object_id)``, time-ascending within each object, with
    sequential table-unique record ids — so feeding them into a table
    reproduces :func:`~repro.datagen.synthetic.build_synthetic_dataset`'s
    OTT exactly.

    Args:
        config: The workload parameters (``num_objects`` may be large —
            memory stays per-object).

    Yields:
        The tracking records, in table order.
    """
    plan = office_building(rooms_per_side=config.rooms_per_side)
    deployment = deploy_office_devices(
        plan,
        detection_range=config.detection_range,
        hallway_spacing=config.hallway_spacing,
    )
    graph = DoorGraph(plan)
    room_weights = (
        zipf_room_weights(len(plan.rooms), config.hotspot_exponent)
        if config.hotspot_exponent > 0
        else None
    )
    next_record_id = 0
    # The batch merger sorts readings by (str(object_id), t); visiting
    # objects in that string order with time-sorted per-object readings
    # reproduces its global ordering, hence its record-id assignment.
    for object_id in sorted(f"o{i}" for i in range(config.num_objects)):
        trajectory = random_waypoint_trajectory(
            object_id=object_id,
            plan=plan,
            graph=graph,
            rng=random.Random(f"{config.seed}:{object_id[1:]}"),
            speed=config.speed,
            t_start=0.0,
            duration=config.duration,
            pause_max=config.pause_max,
            room_weights=room_weights,
        )
        readings = detect_trajectory(
            trajectory, deployment, config.sampling_interval
        )
        del trajectory
        for record in merge_readings(
            readings, sampling_interval=config.sampling_interval
        ):
            yield replace(record, record_id=next_record_id)
            next_record_id += 1


def build_synthetic_ott_streamed(
    config: SyntheticConfig = SyntheticConfig(),
) -> ObjectTrackingTable:
    """The synthetic OTT via the streaming pipeline, frozen and queryable.

    Bit-identical (record ids included) to the ``ott`` of
    :func:`~repro.datagen.synthetic.build_synthetic_dataset` with the
    same ``config``, but built without ever materialising the population's
    trajectories or raw readings.

    Args:
        config: The workload parameters.

    Returns:
        The frozen tracking table.
    """
    table = ObjectTrackingTable()
    for record in stream_synthetic_records(config):
        table.append(record)
    return table.freeze()
