"""Workload configurations (paper, Table 4 and Section 5.1).

The paper's parameter settings, with defaults in bold there reproduced as
defaults here:

=====================  =======================================  =========
Parameter              Paper's settings                          Default
=====================  =======================================  =========
``|O|``                1K, 2K, ..., 5K                           1K
Detection range (m)    1, 1.5, 2, 2.5                            1.5
``|P|`` (% of POIs)    20%, 40%, 60%, 80%, 100%                  60%
``k``                  1 ... 50                                  10
``t_e - t_s`` (min)    1 ... 60                                  10
=====================  =======================================  =========

Benchmarks accept a ``scale`` factor on ``|O|`` so the full sweep stays
laptop-sized (the Python substrate is not the authors' Java testbed; the
paper's *shapes* are preserved at smaller populations).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

__all__ = [
    "PAPER_OBJECT_COUNTS",
    "PAPER_DETECTION_RANGES",
    "PAPER_POI_PERCENTAGES",
    "PAPER_K_VALUES",
    "PAPER_WINDOW_MINUTES",
    "TOTAL_POIS",
    "SyntheticConfig",
    "CphConfig",
]

#: The sweeps of the paper's Table 4.
PAPER_OBJECT_COUNTS = (1000, 2000, 3000, 4000, 5000)
PAPER_DETECTION_RANGES = (1.0, 1.5, 2.0, 2.5)
PAPER_POI_PERCENTAGES = (20, 40, 60, 80, 100)
PAPER_K_VALUES = (1, 5, 10, 20, 30, 40, 50)
PAPER_WINDOW_MINUTES = (1, 5, 10, 20, 30, 60)

#: "For both synthetic and real data, 75 POIs are determined in the indoor
#: space at distinctive locations and with different areas" (Section 5.1).
TOTAL_POIS = 75


@dataclass(frozen=True)
class SyntheticConfig:
    """The synthetic random-waypoint workload (paper, Section 5.1)."""

    num_objects: int = 1000
    detection_range: float = 1.5
    duration: float = 3600.0
    speed: float = 1.1
    sampling_interval: float = 1.0
    pause_max: float = 180.0
    hotspot_exponent: float = 0.8
    rooms_per_side: int = 20
    hallway_spacing: float = 12.0
    poi_count: int = TOTAL_POIS
    seed: int = 42

    @property
    def v_max(self) -> float:
        """The paper uses the objects' fixed movement speed as ``V_max``."""
        return self.speed

    def scaled(self, scale: float) -> "SyntheticConfig":
        """The same workload with ``|O|`` scaled (at least one object)."""
        if scale <= 0:
            raise ValueError("scale must be positive")
        return replace(self, num_objects=max(1, round(self.num_objects * scale)))


@dataclass(frozen=True)
class CphConfig:
    """The simulated Copenhagen Airport Bluetooth workload.

    Stands in for the paper's real data set (~60K records of ~10K
    passengers over 7 months).  Default sizes are scaled down for test
    speed; :meth:`paper_sized` produces the full population.
    """

    num_passengers: int = 1000
    horizon: float = 24 * 3600.0
    detection_range: float = 6.0
    corridor_spacing: float = 45.0
    num_shops: int = 10
    num_gates: int = 10
    speed: float = 1.1
    sampling_interval: float = 1.0
    poi_count: int = TOTAL_POIS
    seed: int = 7

    @property
    def v_max(self) -> float:
        return self.speed

    def paper_sized(self) -> "CphConfig":
        """~10K passengers, as in the paper's extract."""
        return replace(self, num_passengers=10_000, horizon=7 * 24 * 3600.0)

    def scaled(self, scale: float) -> "CphConfig":
        if scale <= 0:
            raise ValueError("scale must be positive")
        return replace(
            self, num_passengers=max(1, round(self.num_passengers * scale))
        )
