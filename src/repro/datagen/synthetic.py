"""The paper's synthetic data set (Section 5.1).

"We use a floor plan with ... rooms that are all connected by doors to a
hallway.  We place ... RFID readers by doors and along the hallways.  We
generate object movements using the random waypoint model.  All objects
move with a fixed speed ... which is also used as the maximum speed
V_max."
"""

from __future__ import annotations

from ..indoor.builders import (
    deploy_office_devices,
    office_building,
    partition_rooms_into_pois,
)
from ..tracking.simulator import simulate_random_waypoint
from .config import SyntheticConfig
from .dataset import Dataset

__all__ = ["build_synthetic_dataset"]


def build_synthetic_dataset(config: SyntheticConfig = SyntheticConfig()) -> Dataset:
    """Generate the full synthetic bundle for one parameter setting.

    Regenerate with a different ``config.detection_range`` to reproduce the
    paper's detection-range sweeps — the *movement* (trajectories) for a
    given seed is identical across ranges; only what the readers observe
    changes.
    """
    plan = office_building(rooms_per_side=config.rooms_per_side)
    deployment = deploy_office_devices(
        plan,
        detection_range=config.detection_range,
        hallway_spacing=config.hallway_spacing,
    )
    result = simulate_random_waypoint(
        plan=plan,
        deployment=deployment,
        num_objects=config.num_objects,
        duration=config.duration,
        speed=config.speed,
        sampling_interval=config.sampling_interval,
        pause_max=config.pause_max,
        seed=config.seed,
        hotspot_exponent=config.hotspot_exponent,
    )
    pois = partition_rooms_into_pois(
        plan, count=config.poi_count, seed=config.seed
    )
    return Dataset(
        floorplan=plan,
        deployment=deployment,
        pois=pois,
        ott=result.ott,
        trajectories=result.trajectories,
        v_max=config.v_max,
        name=f"synthetic-{config.num_objects}obj-{config.detection_range}m",
        sampling_interval=config.sampling_interval,
    )
