"""CLI for the synthetic workload generator: ``python -m repro.datagen``.

Streams the synthetic OTT to CSV (or just counts it) at any population
scale — the ``--objects`` knob goes well past the paper's 10⁴ because the
pipeline is per-object streaming (:mod:`repro.datagen.stream`); memory
does not grow with the population.

Examples::

    # The paper-scale default population, summarised only.
    python -m repro.datagen --objects 1000

    # A large population streamed straight to disk.
    python -m repro.datagen --objects 100000 --out /tmp/ott.csv

    # Scale the default population instead of fixing a count.
    python -m repro.datagen --scale 0.05 --duration 600 --out -

    # Populate a durable SQLite store directly (idempotent: rerunning
    # an interrupted generation skips the already-stored prefix).
    python -m repro.datagen --objects 5000 --store /tmp/ott.sqlite
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import replace
from typing import TextIO

from ..storage.sqlite import SQLiteBackend
from .config import SyntheticConfig
from .stream import stream_synthetic_records

__all__ = ["main"]

_CSV_HEADER = "record_id,object_id,device_id,t_s,t_e"


def _write_csv(handle: TextIO, config: SyntheticConfig) -> tuple[int, float]:
    """Stream the records as CSV rows; returns (count, max t_e)."""
    handle.write(_CSV_HEADER + "\n")
    count = 0
    t_max = 0.0
    for record in stream_synthetic_records(config):
        handle.write(
            f"{record.record_id},{record.object_id},{record.device_id},"
            f"{record.t_s:g},{record.t_e:g}\n"
        )
        count += 1
        t_max = max(t_max, record.t_e)
    return count, t_max


def _write_store(path: str, config: SyntheticConfig) -> tuple[int, float]:
    """Stream the records into a SQLite store; returns (count, max t_e).

    Appends are idempotent on ``record_id`` (the stream is deterministic
    per seed), so re-running a killed generation resumes; the store is
    compacted at the end so an engine reopening it bulk-loads everything.
    """
    backend = SQLiteBackend(path)
    count = 0
    t_max = 0.0
    try:
        for record in stream_synthetic_records(config):
            # Records land in the store first; engines attach to it
            # afterwards via FlowEngine(storage=...).
            # repro: allow(context-bypass): the generator seam is the writer
            backend.append_row(record)
            count += 1
            t_max = max(t_max, record.t_e)
        backend.compact()
    finally:
        backend.close()
    return count, t_max


def main(argv: list[str] | None = None) -> int:
    """Generate (and optionally dump) the synthetic OTT.

    Args:
        argv: Command-line arguments (``sys.argv[1:]`` when omitted).

    Returns:
        Process exit code (0 on success).
    """
    parser = argparse.ArgumentParser(
        prog="python -m repro.datagen",
        description="Stream the paper's synthetic tracking workload.",
    )
    parser.add_argument(
        "--objects",
        type=int,
        default=None,
        help="population size |O| (overrides --scale)",
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=None,
        help="scale the default population instead of fixing a count",
    )
    parser.add_argument(
        "--duration",
        type=float,
        default=None,
        help="simulated seconds per object (default: config's 3600)",
    )
    parser.add_argument(
        "--rooms-per-side",
        type=int,
        default=None,
        help="floor-plan size knob (default: config's 20)",
    )
    parser.add_argument("--seed", type=int, default=42, help="RNG seed")
    parser.add_argument(
        "--out",
        default=None,
        help="CSV destination ('-' for stdout); omit to only summarise",
    )
    parser.add_argument(
        "--store",
        default=None,
        help="SQLite store to populate (idempotent; compacted at the end)",
    )
    args = parser.parse_args(argv)

    config = SyntheticConfig(seed=args.seed)
    if args.scale is not None:
        config = config.scaled(args.scale)
    if args.objects is not None:
        if args.objects < 0:
            parser.error("--objects must be non-negative")
        config = replace(config, num_objects=args.objects)
    if args.duration is not None:
        config = replace(config, duration=args.duration)
    if args.rooms_per_side is not None:
        config = replace(config, rooms_per_side=args.rooms_per_side)

    if args.store is not None:
        count, t_max = _write_store(args.store, config)
        if args.out == "-":
            _write_csv(sys.stdout, config)
        elif args.out is not None:
            with open(args.out, "w", encoding="utf-8") as handle:
                _write_csv(handle, config)
    elif args.out is None:
        count = 0
        t_max = 0.0
        for record in stream_synthetic_records(config):
            count += 1
            t_max = max(t_max, record.t_e)
    elif args.out == "-":
        count, t_max = _write_csv(sys.stdout, config)
    else:
        with open(args.out, "w", encoding="utf-8") as handle:
            count, t_max = _write_csv(handle, config)

    print(
        f"objects={config.num_objects} records={count} "
        f"t_max={t_max:g} seed={config.seed}",
        file=sys.stderr,
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
