"""A generated data set bundled with everything queries need."""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Sequence

from ..core.engine import FlowEngine
from ..indoor.devices import Deployment
from ..indoor.floorplan import FloorPlan
from ..indoor.poi import Poi
from ..tracking.table import ObjectTrackingTable
from ..tracking.trajectory import Trajectory

__all__ = ["Dataset"]


@dataclass
class Dataset:
    """A floor plan + deployment + POIs + OTT (+ ground truth) bundle."""

    floorplan: FloorPlan
    deployment: Deployment
    pois: list[Poi]
    ott: ObjectTrackingTable
    trajectories: tuple[Trajectory, ...]
    v_max: float
    name: str = "dataset"
    sampling_interval: float = 1.0

    def trajectory_of(self, object_id) -> Trajectory:
        """Ground-truth trajectory of one object (simulated data only)."""
        for trajectory in self.trajectories:
            if trajectory.object_id == object_id:
                return trajectory
        raise KeyError(f"no trajectory for object {object_id!r}")

    def engine(self, **engine_kwargs) -> FlowEngine:
        """A query engine over this data set (indexes built eagerly).

        Unless overridden, ``detection_slack`` defaults to twice the data
        set's sampling interval — the generated readings are sampled, so
        the paper's continuous-detection idealisation needs that much
        slack for the uncertainty regions to stay sound (see FlowEngine).
        """
        engine_kwargs.setdefault(
            "detection_slack", 2.0 * self.sampling_interval
        )
        engine_kwargs.setdefault("v_max", self.v_max)
        return FlowEngine(
            floorplan=self.floorplan,
            deployment=self.deployment,
            ott=self.ott,
            pois=self.pois,
            **engine_kwargs,
        )

    def poi_subset(self, percentage: float, seed: int = 0) -> list[Poi]:
        """A random ``percentage``% subset of the POIs (paper, Section 5.1).

        "Given a percent, the query POI set is determined as a random
        subset of the total 75 POIs."  Deterministic for a given seed.
        """
        if not 0 < percentage <= 100:
            raise ValueError("percentage must be in (0, 100]")
        count = max(1, round(len(self.pois) * percentage / 100.0))
        rng = random.Random(seed)
        return rng.sample(self.pois, count)

    def time_span(self) -> tuple[float, float]:
        return self.ott.time_span()

    def mid_time(self) -> float:
        """A query time point in the thick of the data."""
        start, end = self.time_span()
        return (start + end) / 2.0

    def window(self, minutes: float) -> tuple[float, float]:
        """A query window of the given length centred on the data."""
        middle = self.mid_time()
        half = minutes * 60.0 / 2.0
        start, end = self.time_span()
        return (max(start, middle - half), min(end, middle + half))
