"""Workload generators: the paper's synthetic and (simulated) CPH data."""

from .config import (
    PAPER_DETECTION_RANGES,
    PAPER_K_VALUES,
    PAPER_OBJECT_COUNTS,
    PAPER_POI_PERCENTAGES,
    PAPER_WINDOW_MINUTES,
    TOTAL_POIS,
    CphConfig,
    SyntheticConfig,
)
from .cph import build_cph_dataset
from .dataset import Dataset
from .stream import build_synthetic_ott_streamed, stream_synthetic_records
from .synthetic import build_synthetic_dataset

__all__ = [
    "CphConfig",
    "Dataset",
    "PAPER_DETECTION_RANGES",
    "PAPER_K_VALUES",
    "PAPER_OBJECT_COUNTS",
    "PAPER_POI_PERCENTAGES",
    "PAPER_WINDOW_MINUTES",
    "SyntheticConfig",
    "TOTAL_POIS",
    "build_cph_dataset",
    "build_synthetic_dataset",
    "build_synthetic_ott_streamed",
    "stream_synthetic_records",
]
