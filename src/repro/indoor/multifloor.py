"""Multi-floor buildings (extension of the paper's single-floor setting).

The paper notes that its uncertainty analysis and query processing "can be
extended to multi-floor cases" (Section 4.1).  This module realises that
extension by *embedding* the storeys of a building as disjoint bands of one
shared plane, connected by explicit **stairwell rooms** whose corridor
length equals the stair's walking length:

* every existing mechanism — detection, merging, rings, extended ellipses,
  the topology check, both query algorithms, the 2D indexes — applies
  unchanged, because the embedded plane *is* the world objects move in;
* soundness is preserved: the straight-line (embedded Euclidean) distance
  between any two points lower-bounds the walking distance through rooms
  and stairwells, exactly the relationship the maximum-speed analysis
  needs; and
* the indoor distance oracle automatically accounts for stairs, so the
  topology check prunes "the object cannot have reached the other floor in
  time" cases for free.

The deliberate approximation versus a true 3D treatment: cross-floor
*Euclidean* proximity (through the ceiling) does not exist in the
embedding, so uncertainty regions never leak through floors — they can
only reach another storey via a stairwell, which is also how objects move.

Use :func:`multi_storey_office` for a ready-made building, or
:func:`stack_floorplans` to combine arbitrary per-floor plans.
"""

from __future__ import annotations

from dataclasses import replace

from ..geometry import Point, Polygon
from .builders import ROOM_WIDTH, deploy_office_devices, office_building
from .devices import Deployment, Device, thin_non_overlapping
from .floorplan import Door, FloorPlan, Room

__all__ = [
    "translate_floorplan",
    "stack_floorplans",
    "multi_storey_office",
    "deploy_multi_storey_devices",
]

#: Corridor width of generated stairwell rooms (meters).
STAIRWELL_WIDTH = 3.0


def translate_floorplan(
    plan: FloorPlan, dx: float, dy: float, prefix: str = "", level: int = 0
) -> tuple[list[Room], list[Door]]:
    """The plan's rooms/doors translated, renamed and assigned to ``level``.

    Returns raw parts (not a FloorPlan) so callers can keep composing.
    """
    rooms = [
        Room(
            room_id=f"{prefix}{room.room_id}",
            polygon=room.polygon.translated(dx, dy),
            kind=room.kind,
            name=f"{prefix}{room.name or room.room_id}",
            level=level,
        )
        for room in plan.rooms
    ]
    doors = [
        Door(
            door_id=f"{prefix}{door.door_id}",
            position=Point(door.position.x + dx, door.position.y + dy),
            room_a=f"{prefix}{door.room_a}",
            room_b=f"{prefix}{door.room_b}",
        )
        for door in plan.doors
    ]
    return rooms, doors


def stack_floorplans(
    floors: list[FloorPlan],
    stair_positions: list[float],
    stair_length: float = 12.0,
    gap: float | None = None,
) -> FloorPlan:
    """Stack per-floor plans into one building with stairwells.

    Floor ``k`` is translated upward into its own band of the plane and
    renamed with the prefix ``F{k}:``.  Between consecutive floors,
    vertical stairwell corridors of walking length ``stair_length`` are
    created at each x-position in ``stair_positions``; a stairwell's lower
    door opens into the room below it on floor ``k``, its upper door into
    the room above it on floor ``k+1``.

    The per-floor plans must place walkable rooms at the stair positions on
    their outermost y-extent (true for :func:`office_building`, whose
    hallway spans the full length — stairs attach to the top rooms / the
    band boundaries).
    """
    if len(floors) < 1:
        raise ValueError("need at least one floor")
    if len(floors) > 1 and not stair_positions:
        raise ValueError("multi-floor buildings need at least one stair position")
    if gap is None:
        gap = stair_length
    if gap < stair_length:
        raise ValueError(
            "the inter-floor gap cannot be shorter than the stair length"
        )

    rooms: list[Room] = []
    doors: list[Door] = []
    offsets: list[float] = []
    cursor = 0.0
    for index, floor in enumerate(floors):
        bounds = floor.bounds
        dy = cursor - bounds.min_y
        offsets.append(dy)
        floor_rooms, floor_doors = translate_floorplan(
            floor, 0.0, dy, prefix=f"F{index}:", level=index
        )
        rooms.extend(floor_rooms)
        doors.extend(floor_doors)
        cursor += bounds.height + gap

    rooms_by_id = {room.room_id: room for room in rooms}

    def room_at_edge(level: int, x: float, top: bool) -> Room:
        """The level's room touching its band edge at x-position ``x``."""
        bounds = floors[level].bounds
        edge_y = (bounds.max_y if top else bounds.min_y) + offsets[level]
        probe = Point(x, edge_y)
        candidates = [
            room
            for room in rooms
            if room.level == level
            and room.kind != "stairwell"
            and room.polygon.contains(probe)
        ]
        if not candidates:
            raise ValueError(
                f"no room on floor {level} touches the band edge at x={x}; "
                "pick stair positions over walkable space"
            )
        return candidates[0]

    for level in range(len(floors) - 1):
        lower_bounds = floors[level].bounds
        upper_bounds = floors[level + 1].bounds
        y_from = lower_bounds.max_y + offsets[level]
        y_to = upper_bounds.min_y + offsets[level + 1]
        for stair_index, x in enumerate(stair_positions):
            stair_id = f"S{level}-{level + 1}-{stair_index}"
            stairwell = Room(
                room_id=stair_id,
                polygon=Polygon.rectangle(
                    x - STAIRWELL_WIDTH / 2.0, y_from, x + STAIRWELL_WIDTH / 2.0, y_to
                ),
                kind="stairwell",
                name=f"stairs {level}->{level + 1} #{stair_index}",
                level=level,
            )
            rooms.append(stairwell)
            doors.append(
                Door(
                    door_id=f"D-{stair_id}-low",
                    position=Point(x, y_from),
                    room_a=stair_id,
                    room_b=room_at_edge(level, x, top=True).room_id,
                )
            )
            doors.append(
                Door(
                    door_id=f"D-{stair_id}-high",
                    position=Point(x, y_to),
                    room_a=stair_id,
                    room_b=room_at_edge(level + 1, x, top=False).room_id,
                )
            )
    return FloorPlan(rooms, doors)


def multi_storey_office(
    levels: int = 2,
    rooms_per_side: int = 8,
    stair_count: int = 2,
    stair_length: float = 12.0,
) -> FloorPlan:
    """A ready-made multi-storey office building.

    Each storey is :func:`~repro.indoor.builders.office_building`;
    stairwells attach to north-side rooms spread along the building.
    """
    if levels < 1:
        raise ValueError("levels must be positive")
    if levels > 1 and stair_count < 1:
        raise ValueError("multi-storey buildings need at least one staircase")
    floors = [office_building(rooms_per_side=rooms_per_side) for _ in range(levels)]
    length = rooms_per_side * ROOM_WIDTH
    # Stair x-positions centred in distinct north rooms, spread evenly.
    positions = [
        length * (slot + 0.5) / stair_count for slot in range(stair_count)
    ]
    # Snap each position to the centre of its containing room column, so
    # the stairwell lands inside one room.
    positions = [
        (int(x / ROOM_WIDTH) + 0.5) * ROOM_WIDTH for x in positions
    ]
    return stack_floorplans(floors, positions, stair_length=stair_length)


def deploy_multi_storey_devices(
    building: FloorPlan,
    detection_range: float = 1.5,
) -> Deployment:
    """Readers at every door of the building, including stairwell doors.

    Hallway readers are omitted (door coverage dominates in multi-storey
    layouts); the candidate set is thinned to honour non-overlap.
    """
    if detection_range <= 0:
        raise ValueError("detection_range must be positive")
    candidates = [
        Device.at(f"dev-{door.door_id}", door.position, detection_range)
        for door in building.doors
    ]
    deployment = Deployment(thin_non_overlapping(candidates))
    deployment.validate_non_overlapping()
    return deployment
