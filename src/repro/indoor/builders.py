"""Floor-plan, deployment and POI builders.

Two building archetypes cover the paper's experiments:

* :func:`office_building` — the synthetic setting: rooms on both sides of a
  long hallway, all connected to the hallway by doors, with RFID readers by
  the doors and along the hallway (paper, Section 5.1).
* :func:`airport_pier` — the CPH substitute: check-in hall, security room
  and a long corridor with shops and gates, with sparse Bluetooth radios.

The default office dimensions are chosen so that all candidate device
positions stay pairwise farther apart than twice the largest detection
range in the paper's sweep (2.5 m), honouring the non-overlap assumption;
:func:`repro.indoor.devices.thin_non_overlapping` is applied as a final
guard in both builders so custom parameters degrade to a sparser (still
valid) deployment instead of an invalid one.
"""

from __future__ import annotations

import random

from ..geometry import Point, Polygon
from .devices import Deployment, Device, thin_non_overlapping
from .floorplan import Door, FloorPlan, Room
from .poi import Poi

__all__ = [
    "office_building",
    "deploy_office_devices",
    "airport_pier",
    "deploy_airport_devices",
    "partition_rooms_into_pois",
]


# ----------------------------------------------------------------------
# Office building (synthetic experiments)
# ----------------------------------------------------------------------

#: Default office geometry (meters).  With these values every candidate
#: device pair is > 5 m apart, so detection ranges up to 2.5 m never
#: overlap.
ROOM_WIDTH = 12.0
ROOM_DEPTH = 8.0
HALLWAY_WIDTH = 8.0
_BOTTOM_DOOR_OFFSET = 1.0
_HALLWAY_DEVICE_OFFSET = 9.5


def office_building(
    rooms_per_side: int = 20,
    room_width: float = ROOM_WIDTH,
    room_depth: float = ROOM_DEPTH,
    hallway_width: float = HALLWAY_WIDTH,
) -> FloorPlan:
    """An office floor: ``2 * rooms_per_side`` rooms along one hallway.

    The hallway spans ``y in [0, hallway_width]``; rooms sit above and below
    it, each with one door to the hallway.  Matches the paper's synthetic
    floor plan ("rooms that are all connected by doors to a hallway").
    """
    if rooms_per_side < 1:
        raise ValueError("rooms_per_side must be positive")
    length = rooms_per_side * room_width
    rooms = [
        Room(
            room_id="H",
            polygon=Polygon.rectangle(0.0, 0.0, length, hallway_width),
            kind="hallway",
            name="hallway",
        )
    ]
    doors = []
    for i in range(rooms_per_side):
        x0 = i * room_width
        x1 = x0 + room_width
        top_id = f"R{i}T"
        rooms.append(
            Room(
                room_id=top_id,
                polygon=Polygon.rectangle(
                    x0, hallway_width, x1, hallway_width + room_depth
                ),
                name=f"room {i} (north)",
            )
        )
        doors.append(
            Door(
                door_id=f"D-{top_id}",
                position=Point(x0 + room_width / 2.0, hallway_width),
                room_a=top_id,
                room_b="H",
            )
        )
        bottom_id = f"R{i}B"
        rooms.append(
            Room(
                room_id=bottom_id,
                polygon=Polygon.rectangle(x0, -room_depth, x1, 0.0),
                name=f"room {i} (south)",
            )
        )
        doors.append(
            Door(
                door_id=f"D-{bottom_id}",
                position=Point(x0 + _BOTTOM_DOOR_OFFSET, 0.0),
                room_a=bottom_id,
                room_b="H",
            )
        )
    return FloorPlan(rooms, doors)


def deploy_office_devices(
    plan: FloorPlan,
    detection_range: float = 1.5,
    hallway_spacing: float = 12.0,
) -> Deployment:
    """RFID readers by every door and along the hallway.

    ``detection_range`` is the radius of each reader's detection circle
    (the paper varies it from 1 m to 2.5 m).  Hallway readers are placed on
    the hallway centerline every ``hallway_spacing`` meters, offset to stay
    clear of the door readers.
    """
    if detection_range <= 0:
        raise ValueError("detection_range must be positive")
    candidates = [
        Device.at(f"dev-{door.door_id}", door.position, detection_range)
        for door in plan.doors
    ]
    hallway = plan.room("H").polygon.mbr
    center_y = (hallway.min_y + hallway.max_y) / 2.0
    x = hallway.min_x + _HALLWAY_DEVICE_OFFSET
    index = 0
    while x < hallway.max_x:
        candidates.append(
            Device.at(f"dev-H{index}", Point(x, center_y), detection_range)
        )
        index += 1
        x += hallway_spacing
    deployment = Deployment(thin_non_overlapping(candidates))
    deployment.validate_non_overlapping()
    return deployment


# ----------------------------------------------------------------------
# Airport pier (CPH substitute)
# ----------------------------------------------------------------------

_GATE_SHOP_WIDTH = 15.0
_GATE_SHOP_DEPTH = 12.0
_CORRIDOR_WIDTH = 8.0
_SECURITY_WIDTH = 12.0
_HALL_WIDTH = 40.0


def airport_pier(num_shops: int = 10, num_gates: int = 10) -> FloorPlan:
    """A linear airport pier: hall -> security -> corridor of shops/gates.

    Shops line the north side of the corridor, gates the south side; both
    are rooms with a single door to the corridor.  This stands in for the
    Copenhagen Airport deployment of the paper's real data set.
    """
    if num_shops < 1 or num_gates < 1:
        raise ValueError("need at least one shop and one gate")
    corridor_len = max(num_shops, num_gates) * _GATE_SHOP_WIDTH
    corridor_y0 = 8.0
    corridor_y1 = corridor_y0 + _CORRIDOR_WIDTH
    hall_height = 24.0
    rooms = [
        Room(
            room_id="hall",
            polygon=Polygon.rectangle(
                -_HALL_WIDTH - _SECURITY_WIDTH, 0.0, -_SECURITY_WIDTH, hall_height
            ),
            kind="hall",
            name="check-in hall",
        ),
        Room(
            room_id="security",
            polygon=Polygon.rectangle(-_SECURITY_WIDTH, 0.0, 0.0, hall_height),
            kind="security",
            name="security",
        ),
        Room(
            room_id="corridor",
            polygon=Polygon.rectangle(0.0, corridor_y0, corridor_len, corridor_y1),
            kind="hallway",
            name="pier corridor",
        ),
    ]
    doors = [
        Door(
            door_id="D-hall-security",
            position=Point(-_SECURITY_WIDTH, hall_height / 2.0),
            room_a="hall",
            room_b="security",
        ),
        Door(
            door_id="D-security-corridor",
            position=Point(0.0, (corridor_y0 + corridor_y1) / 2.0),
            room_a="security",
            room_b="corridor",
        ),
    ]
    for i in range(num_shops):
        x0 = i * _GATE_SHOP_WIDTH
        shop_id = f"shop{i}"
        rooms.append(
            Room(
                room_id=shop_id,
                polygon=Polygon.rectangle(
                    x0, corridor_y1, x0 + _GATE_SHOP_WIDTH, corridor_y1 + _GATE_SHOP_DEPTH
                ),
                kind="shop",
                name=f"shop {i}",
            )
        )
        doors.append(
            Door(
                door_id=f"D-{shop_id}",
                position=Point(x0 + _GATE_SHOP_WIDTH / 2.0, corridor_y1),
                room_a=shop_id,
                room_b="corridor",
            )
        )
    for i in range(num_gates):
        x0 = i * _GATE_SHOP_WIDTH
        gate_id = f"gate{i}"
        rooms.append(
            Room(
                room_id=gate_id,
                polygon=Polygon.rectangle(
                    x0, corridor_y0 - _GATE_SHOP_DEPTH, x0 + _GATE_SHOP_WIDTH, corridor_y0
                ),
                kind="gate",
                name=f"gate {i}",
            )
        )
        doors.append(
            Door(
                door_id=f"D-{gate_id}",
                position=Point(x0 + _GATE_SHOP_WIDTH / 2.0 + 3.0, corridor_y0),
                room_a=gate_id,
                room_b="corridor",
            )
        )
    return FloorPlan(rooms, doors)


def deploy_airport_devices(
    plan: FloorPlan,
    detection_range: float = 6.0,
    corridor_spacing: float = 45.0,
) -> Deployment:
    """Sparse Bluetooth radios: security, corridor, and some shop/gate doors.

    Candidates are placed generously and thinned to a non-overlapping
    subset, mirroring the partial coverage of the real CPH deployment.
    """
    if detection_range <= 0:
        raise ValueError("detection_range must be positive")
    candidates = [
        Device.at(
            "bt-security",
            plan.door("D-security-corridor").position,
            detection_range,
            kind="bluetooth",
        ),
        Device.at(
            "bt-hall",
            plan.door("D-hall-security").position,
            detection_range,
            kind="bluetooth",
        ),
    ]
    corridor = plan.room("corridor").polygon.mbr
    center_y = (corridor.min_y + corridor.max_y) / 2.0
    x = corridor.min_x + corridor_spacing / 2.0
    index = 0
    while x < corridor.max_x:
        candidates.append(
            Device.at(
                f"bt-C{index}", Point(x, center_y), detection_range, kind="bluetooth"
            )
        )
        index += 1
        x += corridor_spacing
    for door in plan.doors:
        if door.door_id.startswith(("D-shop", "D-gate")):
            candidates.append(
                Device.at(
                    f"bt-{door.door_id}",
                    door.position,
                    detection_range,
                    kind="bluetooth",
                )
            )
    deployment = Deployment(thin_non_overlapping(candidates))
    deployment.validate_non_overlapping()
    return deployment


# ----------------------------------------------------------------------
# POIs
# ----------------------------------------------------------------------


def partition_rooms_into_pois(
    plan: FloorPlan,
    count: int = 75,
    seed: int = 7,
    margin: float = 0.5,
    kinds: tuple[str, ...] = ("room", "shop", "gate", "hall"),
) -> list[Poi]:
    """Carve ``count`` POIs out of the plan's rooms.

    Mirrors the paper's query POI setup: "75 POIs ... at distinctive
    locations and with different areas.  Multiple POIs may come from the
    same large room that is divided into multiple uses" (Section 5.1).
    Each room of an eligible kind is split into one to three sub-rectangles
    (inset by ``margin`` so POIs lie strictly inside the room); rooms are
    revisited until ``count`` POIs exist.  Deterministic for a given seed.
    """
    if count < 1:
        raise ValueError("count must be positive")
    rng = random.Random(seed)
    eligible = [room for room in plan.rooms if room.kind in kinds]
    if not eligible:
        raise ValueError("no rooms of the requested kinds to carve POIs from")
    pois: list[Poi] = []
    per_room_counts: dict[str, int] = {}
    room_cycle = 0
    while len(pois) < count:
        room = eligible[room_cycle % len(eligible)]
        room_cycle += 1
        box = room.polygon.mbr
        min_x, min_y = box.min_x + margin, box.min_y + margin
        max_x, max_y = box.max_x - margin, box.max_y - margin
        if max_x - min_x < 1.0 or max_y - min_y < 1.0:
            continue
        pieces = rng.choice((1, 2, 2, 3))
        # Split along the longer axis into `pieces` strips of random widths.
        horizontal = (max_x - min_x) >= (max_y - min_y)
        cuts = sorted(rng.uniform(0.25, 0.75) for _ in range(pieces - 1))
        fractions = [0.0, *cuts, 1.0]
        for j in range(pieces):
            if len(pois) >= count:
                break
            f0, f1 = fractions[j], fractions[j + 1]
            if horizontal:
                polygon = Polygon.rectangle(
                    min_x + f0 * (max_x - min_x),
                    min_y,
                    min_x + f1 * (max_x - min_x),
                    max_y,
                )
            else:
                polygon = Polygon.rectangle(
                    min_x,
                    min_y + f0 * (max_y - min_y),
                    max_x,
                    min_y + f1 * (max_y - min_y),
                )
            poi_id = f"poi-{len(pois)}"
            serial = per_room_counts.get(room.room_id, 0)
            per_room_counts[room.room_id] = serial + 1
            pois.append(
                Poi(
                    poi_id=poi_id,
                    polygon=polygon,
                    room_id=room.room_id,
                    name=f"{room.name or room.room_id} / {serial}",
                    category=room.kind,
                )
            )
    return pois
