"""Reading and writing indoor-space descriptions as JSON.

Floor plans, device deployments and POI sets are static configuration; a
deployment team maintains them as files.  The JSON schema is plain and
versioned::

    {
      "schema": "repro-indoor/1",
      "rooms":   [{"room_id", "kind", "name", "vertices": [[x, y], ...]}],
      "doors":   [{"door_id", "position": [x, y], "room_a", "room_b"}],
      "devices": [{"device_id", "center": [x, y], "radius", "kind"}],
      "pois":    [{"poi_id", "room_id", "name", "category",
                   "vertices": [[x, y], ...]}]
    }

Any of the sections may be omitted when only part of the model is stored.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from ..geometry import Point, Polygon
from .devices import Deployment, Device
from .floorplan import Door, FloorPlan, Room
from .poi import Poi

__all__ = [
    "SCHEMA",
    "indoor_model_to_dict",
    "indoor_model_from_dict",
    "save_indoor_model",
    "load_indoor_model",
]

SCHEMA = "repro-indoor/1"


def indoor_model_to_dict(
    floorplan: FloorPlan | None = None,
    deployment: Deployment | None = None,
    pois: list[Poi] | None = None,
) -> dict[str, Any]:
    """Serialise any subset of the indoor model to a JSON-ready dict."""
    payload: dict[str, Any] = {"schema": SCHEMA}
    if floorplan is not None:
        payload["rooms"] = [
            {
                "room_id": room.room_id,
                "kind": room.kind,
                "name": room.name,
                "vertices": [[v.x, v.y] for v in room.polygon.vertices],
            }
            for room in floorplan.rooms
        ]
        payload["doors"] = [
            {
                "door_id": door.door_id,
                "position": [door.position.x, door.position.y],
                "room_a": door.room_a,
                "room_b": door.room_b,
            }
            for door in floorplan.doors
        ]
    if deployment is not None:
        payload["devices"] = [
            {
                "device_id": device.device_id,
                "center": [device.center.x, device.center.y],
                "radius": device.radius,
                "kind": device.kind,
            }
            for device in deployment
        ]
    if pois is not None:
        payload["pois"] = [
            {
                "poi_id": poi.poi_id,
                "room_id": poi.room_id,
                "name": poi.name,
                "category": poi.category,
                "vertices": [[v.x, v.y] for v in poi.polygon.vertices],
            }
            for poi in pois
        ]
    return payload


def indoor_model_from_dict(
    payload: dict[str, Any],
) -> tuple[FloorPlan | None, Deployment | None, list[Poi] | None]:
    """Inverse of :func:`indoor_model_to_dict`; validates the schema tag."""
    schema = payload.get("schema")
    if schema != SCHEMA:
        raise ValueError(f"unsupported indoor model schema {schema!r}")
    floorplan = None
    if "rooms" in payload:
        rooms = [
            Room(
                room_id=entry["room_id"],
                polygon=Polygon([Point(x, y) for x, y in entry["vertices"]]),
                kind=entry.get("kind", "room"),
                name=entry.get("name", ""),
            )
            for entry in payload["rooms"]
        ]
        doors = [
            Door(
                door_id=entry["door_id"],
                position=Point(*entry["position"]),
                room_a=entry["room_a"],
                room_b=entry["room_b"],
            )
            for entry in payload.get("doors", ())
        ]
        floorplan = FloorPlan(rooms, doors)
    deployment = None
    if "devices" in payload:
        deployment = Deployment(
            Device.at(
                entry["device_id"],
                Point(*entry["center"]),
                entry["radius"],
                kind=entry.get("kind", "rfid"),
            )
            for entry in payload["devices"]
        )
    pois = None
    if "pois" in payload:
        pois = [
            Poi(
                poi_id=entry["poi_id"],
                polygon=Polygon([Point(x, y) for x, y in entry["vertices"]]),
                room_id=entry["room_id"],
                name=entry.get("name", ""),
                category=entry.get("category", ""),
            )
            for entry in payload["pois"]
        ]
    return floorplan, deployment, pois


def save_indoor_model(
    path: str | Path,
    floorplan: FloorPlan | None = None,
    deployment: Deployment | None = None,
    pois: list[Poi] | None = None,
) -> None:
    """Write the model as pretty-printed JSON."""
    payload = indoor_model_to_dict(floorplan, deployment, pois)
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")


def load_indoor_model(
    path: str | Path,
) -> tuple[FloorPlan | None, Deployment | None, list[Poi] | None]:
    """Load a model written by :func:`save_indoor_model`."""
    with open(path) as handle:
        payload = json.load(handle)
    return indoor_model_from_dict(payload)
