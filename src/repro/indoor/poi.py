"""Indoor Points of Interest (POIs).

Each indoor POI has a fixed extent modelled by a polygon (paper, Section
2.2); multiple POIs may come from the same large room that is divided into
multiple uses (paper, Section 5.1).  POIs are the subjects of the top-k
queries: flows are computed per POI and POIs are ranked by flow.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..geometry import Polygon
from ..index import RTree

__all__ = ["Poi", "build_poi_index"]


@dataclass(frozen=True)
class Poi:
    """A Point of Interest with a polygonal extent inside one room."""

    poi_id: str
    polygon: Polygon
    room_id: str
    name: str = ""
    category: str = ""

    def area(self) -> float:
        return self.polygon.area()


def build_poi_index(pois: list[Poi], max_entries: int = 8) -> RTree:
    """The POI R-tree ``R_P`` of the paper (Section 4.1), bulk-loaded."""
    return RTree.bulk_load(
        [(poi.polygon.mbr, poi) for poi in pois], max_entries=max_entries
    )
