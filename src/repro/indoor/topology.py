"""Indoor topology: the door connectivity graph.

Movement between rooms only happens through doors, so the walkable
structure of a floor plan is captured by a graph whose nodes are doors and
whose edges connect doors sharing a room (weight: straight-line distance —
exact inside convex rooms).  The graph powers both the indoor distance
oracle used by the topology check (paper, Section 3.3) and the route
planner of the movement simulator.
"""

from __future__ import annotations

import heapq
import math
from typing import Iterator

from ..geometry import Point
from .floorplan import Door, FloorPlan

__all__ = ["DoorGraph"]


class DoorGraph:
    """Shortest-path machinery over the doors of a floor plan.

    Per-door Dijkstra results are cached: floor plans are static and the
    door count is small (tens to low hundreds), so lazily computed
    single-source trees amortise to an all-pairs table only for the doors
    actually queried.
    """

    def __init__(self, floorplan: FloorPlan):
        self.floorplan = floorplan
        self._adjacency: dict[str, list[tuple[str, float]]] = {
            door.door_id: [] for door in floorplan.doors
        }
        for room in floorplan.rooms:
            doors = floorplan.doors_of_room(room.room_id)
            for i, door_a in enumerate(doors):
                for door_b in doors[i + 1 :]:
                    weight = door_a.position.distance_to(door_b.position)
                    self._adjacency[door_a.door_id].append(
                        (door_b.door_id, weight)
                    )
                    self._adjacency[door_b.door_id].append(
                        (door_a.door_id, weight)
                    )
        self._sssp_cache: dict[
            str, tuple[dict[str, float], dict[str, str | None]]
        ] = {}

    # ------------------------------------------------------------------
    # Shortest paths between doors
    # ------------------------------------------------------------------

    def shortest_from(
        self, door_id: str
    ) -> tuple[dict[str, float], dict[str, str | None]]:
        """Single-source shortest paths: (distances, predecessor map)."""
        cached = self._sssp_cache.get(door_id)
        if cached is not None:
            return cached
        if door_id not in self._adjacency:
            raise KeyError(f"unknown door {door_id!r}")
        distances: dict[str, float] = {door_id: 0.0}
        predecessors: dict[str, str | None] = {door_id: None}
        heap: list[tuple[float, str]] = [(0.0, door_id)]
        while heap:
            distance, current = heapq.heappop(heap)
            if distance > distances.get(current, math.inf):
                continue
            for neighbor, weight in self._adjacency[current]:
                candidate = distance + weight
                if candidate < distances.get(neighbor, math.inf):
                    distances[neighbor] = candidate
                    predecessors[neighbor] = current
                    heapq.heappush(heap, (candidate, neighbor))
        result = (distances, predecessors)
        self._sssp_cache[door_id] = result
        return result

    def door_distance(self, from_door: str, to_door: str) -> float:
        """Shortest walking distance between two doors (inf if unreachable)."""
        distances, _ = self.shortest_from(from_door)
        return distances.get(to_door, math.inf)

    def door_path(self, from_door: str, to_door: str) -> list[str] | None:
        """The door sequence of a shortest path, or ``None`` if unreachable."""
        distances, predecessors = self.shortest_from(from_door)
        if to_door not in distances:
            return None
        path = [to_door]
        while path[-1] != from_door:
            previous = predecessors[path[-1]]
            assert previous is not None
            path.append(previous)
        path.reverse()
        return path

    # ------------------------------------------------------------------
    # Point-to-point routing
    # ------------------------------------------------------------------

    def route(self, start: Point, goal: Point) -> list[Point] | None:
        """Waypoints of a shortest indoor path from ``start`` to ``goal``.

        The returned list starts with ``start`` and ends with ``goal``; the
        intermediate waypoints are door positions.  ``None`` when either
        point lies outside the plan or no door path connects their rooms.
        """
        start_rooms = {room.room_id for room in self.floorplan.rooms_at(start)}
        goal_rooms = {room.room_id for room in self.floorplan.rooms_at(goal)}
        if not start_rooms or not goal_rooms:
            return None
        if start_rooms & goal_rooms:
            return [start, goal]
        start_doors = self._doors_of_rooms(start_rooms)
        goal_doors = self._doors_of_rooms(goal_rooms)
        if not start_doors or not goal_doors:
            return None
        best_cost = math.inf
        best_path: list[str] | None = None
        for start_door in start_doors:
            distances, _ = self.shortest_from(start_door.door_id)
            entry_cost = start.distance_to(start_door.position)
            for goal_door in goal_doors:
                through = distances.get(goal_door.door_id)
                if through is None:
                    continue
                cost = (
                    entry_cost + through + goal_door.position.distance_to(goal)
                )
                if cost < best_cost:
                    best_cost = cost
                    best_path = self.door_path(
                        start_door.door_id, goal_door.door_id
                    )
        if best_path is None:
            return None
        waypoints = [start]
        waypoints.extend(
            self.floorplan.door(door_id).position for door_id in best_path
        )
        waypoints.append(goal)
        return waypoints

    def _doors_of_rooms(self, room_ids: set[str]) -> list[Door]:
        seen: dict[str, Door] = {}
        for room_id in room_ids:
            for door in self.floorplan.doors_of_room(room_id):
                seen[door.door_id] = door
        return list(seen.values())

    # ------------------------------------------------------------------
    # Connectivity
    # ------------------------------------------------------------------

    def room_components(self) -> list[set[str]]:
        """Connected components of rooms under door adjacency."""
        adjacency: dict[str, set[str]] = {
            room.room_id: set() for room in self.floorplan.rooms
        }
        for door in self.floorplan.doors:
            adjacency[door.room_a].add(door.room_b)
            adjacency[door.room_b].add(door.room_a)
        components: list[set[str]] = []
        unvisited = set(adjacency)
        while unvisited:
            seed = unvisited.pop()
            component = {seed}
            frontier = [seed]
            while frontier:
                current = frontier.pop()
                for neighbor in adjacency[current]:
                    if neighbor in unvisited:
                        unvisited.discard(neighbor)
                        component.add(neighbor)
                        frontier.append(neighbor)
            components.append(component)
        return components

    def is_connected(self) -> bool:
        return len(self.room_components()) <= 1
