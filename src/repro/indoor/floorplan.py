"""Floor plans: rooms, hallways and the doors connecting them.

Indoor spaces are characterised by entities like doors, rooms and hallways
that enable and constrain movement (paper, Section 1).  A
:class:`FloorPlan` is the static description of one building floor:

* **rooms** — convex polygons (rectangles in the built-in builders), each
  tagged with a kind (room / hallway / ...);
* **doors** — points on the shared boundary of exactly two rooms; all
  movement between rooms passes through doors.

Convex rooms make intra-room shortest paths straight lines, which the
indoor distance oracle and the movement simulator rely on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator

from ..geometry import Mbr, Point, Polygon
from ..index import RTree

__all__ = ["Room", "Door", "FloorPlan"]


@dataclass(frozen=True)
class Room:
    """A convex walkable cell of the floor plan.

    ``level`` identifies the storey in multi-floor buildings (see
    :mod:`repro.indoor.multifloor`); single-floor plans leave it at 0.
    """

    room_id: str
    polygon: Polygon
    kind: str = "room"
    name: str = ""
    level: int = 0

    def __post_init__(self) -> None:
        if not self.polygon.is_convex():
            raise ValueError(
                f"room {self.room_id!r}: non-convex rooms are not supported"
            )


@dataclass(frozen=True)
class Door:
    """A doorway connecting exactly two rooms, modelled as a point."""

    door_id: str
    position: Point
    room_a: str
    room_b: str

    def __post_init__(self) -> None:
        if self.room_a == self.room_b:
            raise ValueError(f"door {self.door_id!r} connects a room to itself")

    def connects(self, room_id: str) -> bool:
        return room_id in (self.room_a, self.room_b)

    def other_room(self, room_id: str) -> str:
        if room_id == self.room_a:
            return self.room_b
        if room_id == self.room_b:
            return self.room_a
        raise KeyError(f"door {self.door_id!r} does not touch room {room_id!r}")


class FloorPlan:
    """An immutable collection of rooms and doors with spatial lookups."""

    #: Tolerance for "the door lies on the room boundary" validation and for
    #: boundary-inclusive room membership (meters).
    BOUNDARY_TOLERANCE = 1e-6

    def __init__(self, rooms: Iterable[Room], doors: Iterable[Door]):
        self._rooms: dict[str, Room] = {}
        for room in rooms:
            if room.room_id in self._rooms:
                raise ValueError(f"duplicate room id {room.room_id!r}")
            self._rooms[room.room_id] = room
        self._doors: dict[str, Door] = {}
        self._doors_by_room: dict[str, list[Door]] = {
            room_id: [] for room_id in self._rooms
        }
        for door in doors:
            if door.door_id in self._doors:
                raise ValueError(f"duplicate door id {door.door_id!r}")
            self._validate_door(door)
            self._doors[door.door_id] = door
            self._doors_by_room[door.room_a].append(door)
            self._doors_by_room[door.room_b].append(door)
        if not self._rooms:
            raise ValueError("a floor plan needs at least one room")
        self._room_index = RTree.bulk_load(
            [(room.polygon.mbr, room) for room in self._rooms.values()]
        )
        self._bounds = Mbr.union_all(
            room.polygon.mbr for room in self._rooms.values()
        )

    def _validate_door(self, door: Door) -> None:
        for room_id in (door.room_a, door.room_b):
            room = self._rooms.get(room_id)
            if room is None:
                raise ValueError(
                    f"door {door.door_id!r} references unknown room {room_id!r}"
                )
            on_boundary = any(
                edge.distance_to_point(door.position) <= self.BOUNDARY_TOLERANCE
                for edge in room.polygon.edges()
            )
            if not on_boundary:
                raise ValueError(
                    f"door {door.door_id!r} does not lie on the boundary of "
                    f"room {room_id!r}"
                )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def bounds(self) -> Mbr:
        return self._bounds

    @property
    def rooms(self) -> list[Room]:
        return list(self._rooms.values())

    @property
    def doors(self) -> list[Door]:
        return list(self._doors.values())

    def room(self, room_id: str) -> Room:
        return self._rooms[room_id]

    def door(self, door_id: str) -> Door:
        return self._doors[door_id]

    def doors_of_room(self, room_id: str) -> list[Door]:
        return list(self._doors_by_room[room_id])

    def __contains__(self, room_id: str) -> bool:
        return room_id in self._rooms

    def iter_rooms(self, kind: str | None = None) -> Iterator[Room]:
        for room in self._rooms.values():
            if kind is None or room.kind == kind:
                yield room

    # ------------------------------------------------------------------
    # Spatial lookups
    # ------------------------------------------------------------------

    def rooms_at(self, point: Point) -> list[Room]:
        """All rooms containing ``point`` (boundary points match several)."""
        probe = Mbr.around(point, self.BOUNDARY_TOLERANCE)
        return [
            room
            for room in self._room_index.search(probe)
            if room.polygon.contains(point)
        ]

    def room_at(self, point: Point) -> Room | None:
        """Some room containing ``point``, or ``None`` if outside the plan."""
        rooms = self.rooms_at(point)
        return rooms[0] if rooms else None

    def contains_point(self, point: Point) -> bool:
        return self.room_at(point) is not None

    def rooms_intersecting(self, mbr: Mbr) -> list[Room]:
        """Rooms whose bounding box intersects ``mbr`` (candidate set)."""
        return self._room_index.search(mbr)
