"""Indoor space model: floor plans, POIs, devices, topology and distance."""

from .builders import (
    airport_pier,
    deploy_airport_devices,
    deploy_office_devices,
    office_building,
    partition_rooms_into_pois,
)
from .devices import Deployment, Device, thin_non_overlapping
from .distance import IndoorDistanceOracle, PointDistanceField
from .floorplan import Door, FloorPlan, Room
from .multifloor import (
    deploy_multi_storey_devices,
    multi_storey_office,
    stack_floorplans,
    translate_floorplan,
)
from .io import (
    indoor_model_from_dict,
    indoor_model_to_dict,
    load_indoor_model,
    save_indoor_model,
)
from .poi import Poi, build_poi_index
from .topology import DoorGraph

__all__ = [
    "Deployment",
    "Device",
    "Door",
    "DoorGraph",
    "FloorPlan",
    "IndoorDistanceOracle",
    "Poi",
    "PointDistanceField",
    "Room",
    "airport_pier",
    "build_poi_index",
    "deploy_airport_devices",
    "deploy_multi_storey_devices",
    "deploy_office_devices",
    "indoor_model_from_dict",
    "indoor_model_to_dict",
    "load_indoor_model",
    "multi_storey_office",
    "office_building",
    "partition_rooms_into_pois",
    "save_indoor_model",
    "stack_floorplans",
    "thin_non_overlapping",
    "translate_floorplan",
]
