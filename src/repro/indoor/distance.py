"""Indoor walking distance.

The indoor topology check (paper, Section 3.3) excludes the parts of an
uncertainty region that are too far away *by indoor walking distance* —
through doors — even though they fall within the Euclidean speed bound.
This module provides that metric:

* :class:`IndoorDistanceOracle` — point-to-point shortest walking distance
  (straight inside convex rooms, through the door graph across rooms);
* :class:`PointDistanceField` — a single-source view precomputed from one
  anchor point (a device center in practice), answering distance queries to
  many points quickly, including a vectorised per-room fast path used by
  the presence quadrature.

Indoor distance always dominates Euclidean distance, so constraining a
region by indoor distance only tightens it — which is exactly what the
topology check is meant to do.
"""

from __future__ import annotations

import math
from collections import OrderedDict
from typing import TYPE_CHECKING

import numpy as np

from ..geometry import Mbr, Point
from .floorplan import FloorPlan
from .topology import DoorGraph

if TYPE_CHECKING:  # pragma: no cover - typing only
    from numpy.typing import NDArray

__all__ = ["IndoorDistanceOracle", "PointDistanceField"]


class IndoorDistanceOracle:
    """Shortest indoor walking distances over a floor plan."""

    def __init__(self, floorplan: FloorPlan, graph: DoorGraph | None = None):
        self.floorplan = floorplan
        self.graph = graph if graph is not None else DoorGraph(floorplan)
        # Room assignment of a coordinate batch is independent of the
        # distance source, and presence quadrature evaluates many fields
        # against the *same* cached POI sample arrays — so assignments are
        # cached by array identity (strong references keep ids stable).
        # The cache is LRU-bounded: besides the long-lived POI sample
        # arrays, callers also pass throwaway masked subsets, which must
        # not accumulate.
        self._room_groups_cache: "OrderedDict[tuple[int, int], tuple[object, object, list]]" = (
            OrderedDict()
        )

    def distance(self, start: Point, goal: Point) -> float:
        """Shortest walking distance (inf when unreachable or outside)."""
        return self.field_from(start).distance_to(goal)

    def field_from(self, source: Point) -> "PointDistanceField":
        """Single-source distance field anchored at ``source``."""
        return PointDistanceField(self, source)

    def room_groups(
        self, xs: "NDArray[np.float64]", ys: "NDArray[np.float64]"
    ) -> list[tuple[str | None, "NDArray[np.intp]"]]:
        """Group point indices by containing room (cached by array identity).

        Boundary points may appear in several groups (both rooms give valid
        shortest-path bounds; callers take the minimum).  Points in no room
        are returned under the ``None`` key for scalar fallback handling.
        """
        key = (id(xs), id(ys))
        hit = self._room_groups_cache.get(key)
        if hit is not None and hit[0] is xs and hit[1] is ys:
            self._room_groups_cache.move_to_end(key)
            return hit[2]
        groups: list[tuple[str | None, np.ndarray]] = []
        if len(xs) == 0:
            return groups
        covered = np.zeros(len(xs), dtype=bool)
        batch_box = Mbr(
            float(xs.min()), float(ys.min()), float(xs.max()), float(ys.max())
        )
        candidates = self.floorplan.rooms_intersecting(batch_box)
        # Fast path: the whole batch inside one room (the common case —
        # POI sample grids never cross rooms).  For rectangular rooms box
        # containment decides it; for other convex rooms corner containment
        # implies containment of the whole box.
        if len(candidates) == 1:
            room = candidates[0]
            if room.polygon.is_axis_aligned_rectangle():
                fully_inside = room.polygon.mbr.contains_mbr(batch_box)
            else:
                fully_inside = all(
                    room.polygon.contains(corner)
                    for corner in batch_box.corners()
                )
            if fully_inside:
                groups.append((room.room_id, np.arange(len(xs))))
                self._cache_room_groups(key, xs, ys, groups)
                return groups
        for room in candidates:
            in_room = room.polygon.contains_many(xs, ys)
            if in_room.any():
                groups.append((room.room_id, np.flatnonzero(in_room)))
                covered |= in_room
        if not covered.all():
            groups.append((None, np.flatnonzero(~covered)))
        self._cache_room_groups(key, xs, ys, groups)
        return groups

    _ROOM_GROUPS_CACHE_LIMIT = 2048

    def _cache_room_groups(self, key, xs, ys, groups) -> None:
        cache = self._room_groups_cache
        cache[key] = (xs, ys, groups)
        cache.move_to_end(key)
        while len(cache) > self._ROOM_GROUPS_CACHE_LIMIT:
            cache.popitem(last=False)


class PointDistanceField:
    """Walking distances from one fixed source point.

    Precomputes the distance from the source to every door reachable from
    the source's room(s); distances to arbitrary targets then cost one
    min-over-doors of the *target's* room.
    """

    def __init__(self, oracle: IndoorDistanceOracle, source: Point):
        self.oracle = oracle
        self.source = source
        floorplan = oracle.floorplan
        self.source_rooms = frozenset(
            room.room_id for room in floorplan.rooms_at(source)
        )
        self._door_distances: dict[str, float] = {}
        for room_id in self.source_rooms:
            for door in floorplan.doors_of_room(room_id):
                direct = source.distance_to(door.position)
                distances, _ = oracle.graph.shortest_from(door.door_id)
                for door_id, through in distances.items():
                    candidate = direct + through
                    if candidate < self._door_distances.get(door_id, math.inf):
                        self._door_distances[door_id] = candidate
        # Per-room arrays of (door distance, door x, door y) for the
        # vectorised path.
        self._room_door_arrays: dict[
            str, tuple["NDArray[np.float64]", "NDArray[np.float64]", "NDArray[np.float64]"]
        ] = {}

    def door_distance(self, door_id: str) -> float:
        """Distance from the source to the door (inf when unreachable)."""
        return self._door_distances.get(door_id, math.inf)

    def distance_to(self, target: Point) -> float:
        """Distance from the source to ``target``."""
        floorplan = self.oracle.floorplan
        target_rooms = floorplan.rooms_at(target)
        if not target_rooms:
            return math.inf
        best = math.inf
        for room in target_rooms:
            if room.room_id in self.source_rooms:
                best = min(best, self.source.distance_to(target))
            for door in floorplan.doors_of_room(room.room_id):
                through = self._door_distances.get(door.door_id)
                if through is None:
                    continue
                best = min(best, through + door.position.distance_to(target))
        return best

    # ------------------------------------------------------------------
    # Vectorised per-room path
    # ------------------------------------------------------------------

    def _arrays_for_room(self, room_id: str):
        cached = self._room_door_arrays.get(room_id)
        if cached is not None:
            return cached
        doors = self.oracle.floorplan.doors_of_room(room_id)
        reachable = [
            door
            for door in doors
            if door.door_id in self._door_distances
        ]
        through = np.array(
            [self._door_distances[door.door_id] for door in reachable],
            dtype=float,
        )
        xs = np.array([door.position.x for door in reachable], dtype=float)
        ys = np.array([door.position.y for door in reachable], dtype=float)
        arrays = (through, xs, ys)
        self._room_door_arrays[room_id] = arrays
        return arrays

    def distances_in_room(
        self,
        room_id: str,
        xs: "NDArray[np.float64]",
        ys: "NDArray[np.float64]",
    ) -> "NDArray[np.float64]":
        """Distances from the source to points known to lie in ``room_id``.

        The caller guarantees room membership (e.g. POI sample grids, where
        the whole POI lies inside one room); this skips per-point room
        lookups and reduces the query to vector arithmetic.
        """
        result = np.full(len(xs), math.inf, dtype=float)
        if room_id in self.source_rooms:
            result = np.hypot(xs - self.source.x, ys - self.source.y)
        through, door_xs, door_ys = self._arrays_for_room(room_id)
        for i in range(len(through)):
            via_door = through[i] + np.hypot(xs - door_xs[i], ys - door_ys[i])
            np.minimum(result, via_door, out=result)
        return result

    def distances_to_many(
        self,
        xs: "NDArray[np.float64]",
        ys: "NDArray[np.float64]",
    ) -> "NDArray[np.float64]":
        """Distances from the source to arbitrary points (vectorised).

        Points are assigned to rooms in bulk (candidate rooms come from the
        batch's bounding box); points outside every room get ``inf``.
        Boundary points may belong to several rooms — each assignment is a
        valid shortest-path upper bound, and the minimum over the rooms a
        point belongs to is taken implicitly by keeping the smaller value.
        """
        result = np.full(len(xs), math.inf, dtype=float)
        if len(xs) == 0:
            return result
        for room_id, indices in self.oracle.room_groups(xs, ys):
            if room_id is None:
                # Points the vectorised ray-cast left unassigned (typically
                # exactly on a room boundary, e.g. in a doorway): fall back
                # to the tolerance-aware scalar path.
                for index in indices:
                    result[index] = self.distance_to(
                        Point(float(xs[index]), float(ys[index]))
                    )
                continue
            distances = self.distances_in_room(room_id, xs[indices], ys[indices])
            result[indices] = np.minimum(result[indices], distances)
        return result
