"""Proximity detection devices and their deployment.

A symbolic indoor positioning system deploys a limited number of proximity
detection devices (RFID readers, Bluetooth radios) at pre-selected
locations; each device detects an object exactly when the object is within
the device's circular detection range (paper, Section 1).  The paper's
uncertainty analysis assumes the ranges do not overlap (Section 3.4,
Remark); :meth:`Deployment.validate_non_overlapping` enforces it and
:func:`thin_non_overlapping` greedily repairs a candidate placement.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Iterator, Sequence

from ..geometry import Circle, Mbr, Point
from ..index import RTree

if TYPE_CHECKING:  # pragma: no cover - typing only (avoids an import cycle:
    # repro.tracking's detection model consumes this module)
    from ..tracking.records import DeviceId

__all__ = ["Device", "Deployment", "thin_non_overlapping"]


@dataclass(frozen=True)
class Device:
    """A proximity detection device with a circular detection range."""

    device_id: DeviceId
    range: Circle
    kind: str = "rfid"

    @property
    def center(self) -> Point:
        return self.range.center

    @property
    def radius(self) -> float:
        return self.range.radius

    @classmethod
    def at(
        cls, device_id: DeviceId, center: Point, radius: float, kind: str = "rfid"
    ) -> "Device":
        return cls(device_id=device_id, range=Circle(center, radius), kind=kind)


class Deployment:
    """An immutable set of devices with id and spatial lookups."""

    def __init__(self, devices: Iterable[Device]):
        self._devices: dict[DeviceId, Device] = {}
        for device in devices:
            if device.device_id in self._devices:
                raise ValueError(f"duplicate device id {device.device_id!r}")
            self._devices[device.device_id] = device
        self._index = RTree.bulk_load(
            [(device.range.mbr, device) for device in self._devices.values()]
        )

    def __len__(self) -> int:
        return len(self._devices)

    def __iter__(self) -> Iterator[Device]:
        return iter(self._devices.values())

    def __contains__(self, device_id: DeviceId) -> bool:
        return device_id in self._devices

    def device(self, device_id: DeviceId) -> Device:
        return self._devices[device_id]

    @property
    def max_radius(self) -> float:
        """The largest detection radius in the deployment (0 when empty)."""
        if not self._devices:
            return 0.0
        return max(device.radius for device in self._devices.values())

    def devices_near(self, mbr: Mbr) -> list[Device]:
        """Devices whose detection-range MBR intersects ``mbr``."""
        return self._index.search(mbr)

    def devices_covering(self, point: Point) -> list[Device]:
        """Devices whose detection range contains ``point``."""
        probe = Mbr.around(point, 0.0, 0.0)
        return [
            device
            for device in self._index.search(probe)
            if device.range.contains(point)
        ]

    def validate_non_overlapping(self) -> None:
        """Raise ``ValueError`` if any two detection ranges overlap."""
        devices = list(self._devices.values())
        for device in devices:
            for other in self._index.search(device.range.mbr):
                if other.device_id == device.device_id:
                    continue
                if device.range.intersects_circle(other.range):
                    raise ValueError(
                        f"detection ranges of {device.device_id!r} and "
                        f"{other.device_id!r} overlap"
                    )


def thin_non_overlapping(devices: Sequence[Device]) -> list[Device]:
    """Greedily keep a prefix-stable subset with non-overlapping ranges.

    Devices are considered in the given order; a device is kept unless its
    range overlaps an already-kept one.  Deterministic, so builders can
    place candidate devices generously (at every door, along hallways) and
    rely on this to honour the paper's non-overlap assumption.
    """
    kept: list[Device] = []
    for device in devices:
        if all(not device.range.intersects_circle(k.range) for k in kept):
            kept.append(device)
    return kept
