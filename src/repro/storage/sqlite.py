"""The durable backend: SQLite in WAL mode, crash-safe at record grain.

**Schema** (version 1).  Three tables mirror the protocol's two read
shapes directly:

* ``snapshot(record_id PRIMARY KEY, object_id, device_id, t_s, t_e,
  open)`` — the bulk rows as of the last :meth:`SQLiteBackend.compact`,
  indexed on ``(object_id, t_s)``; ``open`` marks episode tail rows whose
  ``t_e`` was still advancing at compaction time.
* ``wal(generation PRIMARY KEY, op, record_id, object_id, device_id,
  t_s, t_e)`` — the mutation log past the snapshot.  Each row is one
  table mutation carrying the row's post-state; the current store state
  is always ``snapshot`` ⊕ a replay of ``wal``.
* ``meta(key, value)`` — ``schema_version`` and ``snapshot_generation``.

**Durability.**  The connection runs ``journal_mode=WAL`` with
``synchronous=NORMAL`` and autocommit, so every mutation is its own
transaction: killing the process between two appends loses nothing, and
killing it *inside* one loses only that row — exactly the record-boundary
guarantee the crash-recovery tests assert.  Object and device ids are
JSON-encoded and therefore restricted to ``str``/``int`` (the simulated
datasets use both); richer id types belong to the in-memory backend.

**Fork safety.**  SQLite connections must not cross ``fork()`` (the
:class:`~repro.core.coordinator.ForkedProcessExecutor` does).  The
backend tags its connection with the owning pid and transparently opens a
fresh one when used from a forked child.
"""

from __future__ import annotations

import json
import os
import sqlite3
from pathlib import Path
from typing import Any, Callable, Iterator

from ..obs import counter, obs_enabled, span
from ..tracking.records import ObjectId, TrackingRecord
from .base import Mutation, StoredRow, row_identity

__all__ = ["SQLiteBackend", "sqlite_shard_stores"]

_SCHEMA_VERSION = 1

_SCHEMA = """
CREATE TABLE IF NOT EXISTS meta (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS snapshot (
    record_id INTEGER PRIMARY KEY,
    object_id TEXT NOT NULL,
    device_id TEXT NOT NULL,
    t_s       REAL NOT NULL,
    t_e       REAL NOT NULL,
    open      INTEGER NOT NULL DEFAULT 0
);
CREATE INDEX IF NOT EXISTS snapshot_object_time
    ON snapshot (object_id, t_s);
CREATE TABLE IF NOT EXISTS wal (
    generation INTEGER PRIMARY KEY,
    op         TEXT NOT NULL,
    record_id  INTEGER NOT NULL,
    object_id  TEXT NOT NULL,
    device_id  TEXT NOT NULL,
    t_s        REAL NOT NULL,
    t_e        REAL NOT NULL
);
CREATE INDEX IF NOT EXISTS wal_record ON wal (record_id);
"""

_Identity = tuple[ObjectId, object, float]


def _encode_id(value: object) -> str:
    if not isinstance(value, (str, int)):
        raise TypeError(
            "SQLite storage keeps str/int object and device ids, got "
            f"{type(value).__name__}: {value!r}"
        )
    return json.dumps(value)


def _decode_id(text: str) -> Any:
    return json.loads(text)


class SQLiteBackend:
    """A durable :class:`~repro.storage.base.StorageBackend` on one file.

    Args:
        path: The database file (created, with its schema, on first use).
        synchronous: The ``PRAGMA synchronous`` level — ``"NORMAL"``
            (default) is WAL-safe durability; the env-selected throwaway
            stores use ``"OFF"`` for speed.
        ephemeral: Delete the database (and its WAL sidecars) on
            :meth:`close`; used for backends that only exist to route an
            in-memory workload through SQLite.
    """

    def __init__(
        self,
        path: str | Path,
        *,
        synchronous: str = "NORMAL",
        ephemeral: bool = False,
    ):
        if synchronous.upper() not in ("OFF", "NORMAL", "FULL", "EXTRA"):
            raise ValueError(f"unknown synchronous level {synchronous!r}")
        self._path = Path(path)
        self._synchronous = synchronous.upper()
        self._ephemeral = ephemeral
        self._owner_pid = os.getpid()
        self._closed = False
        self._conn: sqlite3.Connection | None = None
        self._conn_pid = -1
        self._generation = 0
        self._snapshot_generation = 0
        #: record_id → upsert identity, for constant-time idempotency.
        self._known: dict[int, _Identity] | None = None
        self._connection()  # fail fast on an unusable path / old schema

    # ------------------------------------------------------------------
    # Connection management
    # ------------------------------------------------------------------

    @property
    def path(self) -> Path:
        """The database file."""
        return self._path

    def _connection(self) -> sqlite3.Connection:
        if self._closed:
            raise RuntimeError(f"storage backend {self._path} is closed")
        if self._conn is None or self._conn_pid != os.getpid():
            # A connection inherited across fork() must not be reused (or
            # even closed) in the child; drop the reference and reopen.
            # check_same_thread=False: callers serialize access (the
            # engines are single-threaded; the serve layer routes every
            # operation through one engine-actor thread), but the thread
            # that *constructs* the backend — recovering the snapshot —
            # need not be the thread that later appends to it.
            conn = sqlite3.connect(
                str(self._path), isolation_level=None, check_same_thread=False
            )
            conn.executescript(_SCHEMA)
            version = self._get_meta(conn, "schema_version")
            if version is None:
                conn.execute(
                    "INSERT INTO meta (key, value) VALUES (?, ?)",
                    ("schema_version", str(_SCHEMA_VERSION)),
                )
            elif int(version) != _SCHEMA_VERSION:
                conn.close()
                raise ValueError(
                    f"{self._path}: schema version {version} is not "
                    f"the supported version {_SCHEMA_VERSION}"
                )
            conn.execute("PRAGMA journal_mode=WAL")
            conn.execute(f"PRAGMA synchronous={self._synchronous}")
            self._conn = conn
            self._conn_pid = os.getpid()
            self._load_generations(conn)
        return self._conn

    @staticmethod
    def _get_meta(conn: sqlite3.Connection, key: str) -> str | None:
        row = conn.execute(
            "SELECT value FROM meta WHERE key = ?", (key,)
        ).fetchone()
        return None if row is None else str(row[0])

    @staticmethod
    def _set_meta(conn: sqlite3.Connection, key: str, value: str) -> None:
        conn.execute(
            "INSERT INTO meta (key, value) VALUES (?, ?) "
            "ON CONFLICT (key) DO UPDATE SET value = excluded.value",
            (key, value),
        )

    def _load_generations(self, conn: sqlite3.Connection) -> None:
        snapshot = int(self._get_meta(conn, "snapshot_generation") or 0)
        tail = conn.execute("SELECT MAX(generation) FROM wal").fetchone()[0]
        self._snapshot_generation = snapshot
        self._generation = max(snapshot, int(tail or 0))

    # ------------------------------------------------------------------
    # Generations
    # ------------------------------------------------------------------

    @property
    def generation(self) -> int:
        """Monotonic mutation counter; ``0`` iff the store is pristine."""
        return self._generation

    @property
    def snapshot_generation(self) -> int:
        """The generation the bulk snapshot is current as of."""
        return self._snapshot_generation

    # ------------------------------------------------------------------
    # Writes
    # ------------------------------------------------------------------

    def append_row(self, record: TrackingRecord, *, open: bool = False) -> bool:
        """Durably log one appended record (idempotent on ``record_id``)."""
        with span("storage.append"):
            conn = self._connection()
            known = self._known_identities(conn)
            existing = known.get(record.record_id)
            if existing is not None:
                if existing != row_identity(record):
                    raise ValueError(
                        f"record {record.record_id} is already stored with "
                        f"identity {existing!r}; refusing conflicting "
                        f"redelivery of {record!r}"
                    )
                return False
            self._log(conn, "append_open" if open else "append", record)
            known[record.record_id] = row_identity(record)
        if obs_enabled():
            counter("storage.rows_appended", unit="rows").inc()
        return True

    def rewrite_tail_row(self, record: TrackingRecord, *, open: bool) -> None:
        """Durably log an open tail row's new extent (extend or close)."""
        with span("storage.append"):
            conn = self._connection()
            if record.record_id not in self._known_identities(conn):
                raise ValueError(
                    f"record {record.record_id} was never appended; "
                    "cannot rewrite its tail row"
                )
            self._log(conn, "extend" if open else "close", record)

    def _log(
        self, conn: sqlite3.Connection, op: str, record: TrackingRecord
    ) -> None:
        generation = self._generation + 1
        conn.execute(
            "INSERT INTO wal (generation, op, record_id, object_id, "
            "device_id, t_s, t_e) VALUES (?, ?, ?, ?, ?, ?, ?)",
            (
                generation,
                op,
                record.record_id,
                _encode_id(record.object_id),
                _encode_id(record.device_id),
                record.t_s,
                record.t_e,
            ),
        )
        self._generation = generation

    def _known_identities(self, conn: sqlite3.Connection) -> dict[int, _Identity]:
        if self._known is None:
            known: dict[int, _Identity] = {}
            for rid, obj, dev, t_s in conn.execute(
                "SELECT record_id, object_id, device_id, t_s FROM snapshot"
            ):
                known[int(rid)] = (_decode_id(obj), _decode_id(dev), float(t_s))
            for rid, obj, dev, t_s in conn.execute(
                "SELECT record_id, object_id, device_id, t_s FROM wal "
                "WHERE op IN ('append', 'append_open') ORDER BY generation"
            ):
                known[int(rid)] = (_decode_id(obj), _decode_id(dev), float(t_s))
            self._known = known
        return self._known

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------

    def snapshot_rows(self) -> list[StoredRow]:
        """The bulk snapshot as of :attr:`snapshot_generation`."""
        with span("storage.snapshot"):
            conn = self._connection()
            return [
                StoredRow(record=record, open=bool(open_flag))
                for record, open_flag in self._snapshot_query(conn, None)
            ]

    @staticmethod
    def _snapshot_query(
        conn: sqlite3.Connection, object_id: ObjectId | None
    ) -> Iterator[tuple[TrackingRecord, int]]:
        sql = (
            "SELECT record_id, object_id, device_id, t_s, t_e, open "
            "FROM snapshot"
        )
        params: tuple[str, ...] = ()
        if object_id is not None:
            sql += " WHERE object_id = ?"
            params = (_encode_id(object_id),)
        sql += " ORDER BY t_s, t_e, record_id"
        for rid, obj, dev, t_s, t_e, open_flag in conn.execute(sql, params):
            yield (
                TrackingRecord(
                    record_id=int(rid),
                    object_id=_decode_id(obj),
                    device_id=_decode_id(dev),
                    t_s=float(t_s),
                    t_e=float(t_e),
                ),
                int(open_flag),
            )

    def replay_since(self, generation: int) -> list[Mutation]:
        """All logged mutations newer than ``generation``, oldest first."""
        with span("storage.replay"):
            conn = self._connection()
            mutations = [
                Mutation(generation=int(gen), op=str(op), record=record)
                for gen, op, record in self._wal_query(conn, generation, None)
            ]
        if obs_enabled() and mutations:
            counter("storage.wal_replays", unit="mutations").inc(
                len(mutations)
            )
        return mutations

    @staticmethod
    def _wal_query(
        conn: sqlite3.Connection,
        after_generation: int,
        object_id: ObjectId | None,
    ) -> Iterator[tuple[int, str, TrackingRecord]]:
        sql = (
            "SELECT generation, op, record_id, object_id, device_id, "
            "t_s, t_e FROM wal WHERE generation > ?"
        )
        params: tuple[Any, ...] = (after_generation,)
        if object_id is not None:
            sql += " AND object_id = ?"
            params = (after_generation, _encode_id(object_id))
        sql += " ORDER BY generation"
        for gen, op, rid, obj, dev, t_s, t_e in conn.execute(sql, params):
            yield (
                int(gen),
                str(op),
                TrackingRecord(
                    record_id=int(rid),
                    object_id=_decode_id(obj),
                    device_id=_decode_id(dev),
                    t_s=float(t_s),
                    t_e=float(t_e),
                ),
            )

    def _current_rows(
        self, conn: sqlite3.Connection, object_id: ObjectId | None = None
    ) -> dict[int, StoredRow]:
        rows: dict[int, StoredRow] = {}
        for record, open_flag in self._snapshot_query(conn, object_id):
            rows[record.record_id] = StoredRow(record, open=bool(open_flag))
        for _, op, record in self._wal_query(conn, 0, object_id):
            rows[record.record_id] = StoredRow(
                record, open=op in ("append_open", "extend")
            )
        return rows

    def iter_rows(
        self,
        object_id: ObjectId | None = None,
        t_start: float | None = None,
        t_end: float | None = None,
    ) -> Iterator[StoredRow]:
        """Iterate current rows (snapshot ⊕ tail), filtered and time-sorted."""
        rows = sorted(
            self._current_rows(self._connection(), object_id).values(),
            key=lambda row: (
                row.record.t_s,
                row.record.t_e,
                row.record.record_id,
            ),
        )
        for row in rows:
            if t_start is not None and row.record.t_e < t_start:
                continue
            if t_end is not None and row.record.t_s > t_end:
                continue
            yield row

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------

    def compact(self) -> int:
        """Fold the mutation log into the bulk snapshot, atomically."""
        conn = self._connection()
        with span("storage.compact"):
            rows = self._current_rows(conn)
            folded_row = conn.execute("SELECT COUNT(*) FROM wal").fetchone()
            folded = int(folded_row[0])
            conn.execute("BEGIN IMMEDIATE")
            try:
                conn.execute("DELETE FROM snapshot")
                conn.executemany(
                    "INSERT INTO snapshot (record_id, object_id, device_id, "
                    "t_s, t_e, open) VALUES (?, ?, ?, ?, ?, ?)",
                    [
                        (
                            row.record.record_id,
                            _encode_id(row.record.object_id),
                            _encode_id(row.record.device_id),
                            row.record.t_s,
                            row.record.t_e,
                            int(row.open),
                        )
                        for row in rows.values()
                    ],
                )
                conn.execute("DELETE FROM wal")
                self._set_meta(conn, "snapshot_generation", str(self._generation))
                conn.execute("COMMIT")
            except BaseException:
                conn.execute("ROLLBACK")
                raise
            self._snapshot_generation = self._generation
            with span("storage.flush"):
                conn.execute("PRAGMA wal_checkpoint(TRUNCATE)")
        return folded

    def close(self) -> None:
        """Flush and close the connection; unlink ephemeral stores."""
        if self._closed:
            return
        self._closed = True
        if self._conn is not None and self._conn_pid == os.getpid():
            try:
                with span("storage.flush"):
                    self._conn.execute("PRAGMA wal_checkpoint(TRUNCATE)")
            except sqlite3.Error:
                pass
            self._conn.close()
        self._conn = None
        if self._ephemeral and self._owner_pid == os.getpid():
            for suffix in ("", "-wal", "-shm"):
                Path(f"{self._path}{suffix}").unlink(missing_ok=True)

    def __del__(self) -> None:  # pragma: no cover - GC timing dependent
        try:
            self.close()
        except Exception:
            pass


def sqlite_shard_stores(directory: str | Path) -> Callable[[int], SQLiteBackend]:
    """Per-shard stores under one directory — the coordinator's layout.

    Shard ``i`` of a :class:`~repro.core.coordinator.ShardedFlowEngine`
    gets ``<directory>/shard-ii.sqlite``; the object partition is the
    coordinator's own ``crc32(object_id) % N``, so reopening the same
    directory with the same shard count recovers each partition into its
    owning shard.

    Args:
        directory: Where the shard databases live (created if missing).

    Returns:
        A ``shard_index -> SQLiteBackend`` factory.
    """
    base = Path(directory)
    base.mkdir(parents=True, exist_ok=True)

    def factory(index: int) -> SQLiteBackend:
        return SQLiteBackend(base / f"shard-{index:02d}.sqlite")

    return factory
