"""The storage seam: rows, mutations and the backend protocol.

A :class:`StorageBackend` is the durable (or deliberately volatile)
system of record beneath a :class:`~repro.tracking.table.LiveTrackingTable`.
It speaks the table's own mutation vocabulary — append a closed record,
append an open episode, extend it, close it — and exposes exactly the
two read shapes recovery needs:

* a **bulk snapshot** (:meth:`StorageBackend.snapshot_rows`): the rows as
  of the last :meth:`StorageBackend.compact`, cheap to scan and already
  per-object consistent, which :meth:`repro.index.artree.ARTree.build`
  bulk-loads without replaying history;
* a **WAL tail** (:meth:`StorageBackend.replay_since`): every mutation
  after a generation, replayed one by one through the live ingest seam so
  the delta buffer, the open-episode bookkeeping and the cache epochs end
  up exactly where an uninterrupted run would have left them.

**Generations.**  Each accepted mutation gets the next value of a
monotonic counter persisted with it.  The counter is the lingua franca of
recovery: the table's in-memory :attr:`~repro.tracking.table.LiveTrackingTable.generation`
stays in lockstep with the backend's, the
:class:`~repro.core.context.EvaluationContext` data generation is seeded
from it on restore, and ``replay_since(g)`` hands back exactly the
mutations a crash cut off after ``g``.

**Idempotency.**  ``append_row`` treats ``record_id`` as the external id
of an ``(source, external_id)``-style upsert: re-delivering a record that
is already stored is a no-op returning ``False`` (no generation bump),
while a *conflicting* redelivery — same id, different object/device/start
— raises.  This is what lets a resumed producer simply re-send its whole
stream after a crash.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Protocol, runtime_checkable

from ..tracking.records import ObjectId, TrackingRecord

__all__ = [
    "Mutation",
    "StorageBackend",
    "StoredRow",
    "MUTATION_OPS",
    "row_identity",
]

#: The mutation vocabulary, mirroring the live table's mutators.
MUTATION_OPS = ("append", "append_open", "extend", "close")


def row_identity(record: TrackingRecord) -> tuple[ObjectId, object, float]:
    """The upsert identity a ``record_id`` must keep across redeliveries.

    ``t_e`` is deliberately excluded: an open episode's end keeps
    advancing, so a crashed producer legitimately re-sends the episode's
    *initial* extent while the store already holds a later one.
    """
    return (record.object_id, record.device_id, record.t_s)


@dataclass(frozen=True, slots=True)
class StoredRow:
    """One tracking record at its current extent, plus its episode state."""

    record: TrackingRecord
    #: Whether the episode is still advancing (an open tail row).
    open: bool = False


@dataclass(frozen=True, slots=True)
class Mutation:
    """One logged table mutation, replayable through the ingest seam.

    ``record`` always carries the row's **post-state**: for ``extend`` and
    ``close`` it is the updated record (same ``record_id``, advanced
    ``t_e``), so replay never needs to re-derive the new extent.
    """

    #: The backend generation this mutation was persisted as.
    generation: int
    #: One of :data:`MUTATION_OPS`.
    op: str
    record: TrackingRecord

    @property
    def open(self) -> bool:
        """Whether the row is an open tail row *after* this mutation."""
        return self.op in ("append_open", "extend")


@runtime_checkable
class StorageBackend(Protocol):
    """What a tracking-data store must provide (see the module docstring).

    Implementations must be safe to hand to exactly one
    :class:`~repro.tracking.table.LiveTrackingTable` at a time; the table
    is the write path (the ``context-bypass`` lint flags direct mutator
    calls outside it).
    """

    @property
    def generation(self) -> int:
        """Monotonic mutation counter; ``0`` iff the store is pristine."""
        ...

    @property
    def snapshot_generation(self) -> int:
        """The generation the bulk snapshot is current as of."""
        ...

    def append_row(self, record: TrackingRecord, *, open: bool = False) -> bool:
        """Durably append one record (idempotent on ``record_id``).

        Args:
            record: The record to persist.
            open: Whether this starts an open episode (a tail row).

        Returns:
            ``True`` if the row was appended, ``False`` for an idempotent
            redelivery of an already-stored ``record_id`` (no-op, no
            generation bump).

        Raises:
            ValueError: If ``record_id`` is already stored with a
                different ``(object_id, device_id, t_s)`` identity.
        """
        ...

    def rewrite_tail_row(self, record: TrackingRecord, *, open: bool) -> None:
        """Persist an open tail row's new extent (extend or close).

        Args:
            record: The updated record (same ``record_id``, advanced
                ``t_e``).
            open: ``True`` keeps the episode advancing (extend); ``False``
                fixes it (close).

        Raises:
            ValueError: If ``record_id`` was never appended.
        """
        ...

    def snapshot_rows(self) -> list[StoredRow]:
        """The bulk snapshot as of :attr:`snapshot_generation`.

        Rows are sorted by ``(t_s, t_e, record_id)`` — the canonical
        stream order — and are per-object consistent by construction.
        """
        ...

    def replay_since(self, generation: int) -> list[Mutation]:
        """All logged mutations with ``generation > generation`` (arg), in order."""
        ...

    def iter_rows(
        self,
        object_id: ObjectId | None = None,
        t_start: float | None = None,
        t_end: float | None = None,
    ) -> Iterator[StoredRow]:
        """Iterate current rows (snapshot ⊕ tail), filtered and time-sorted.

        Args:
            object_id: Restrict to one object's rows.
            t_start: Keep rows with ``t_e >= t_start``.
            t_end: Keep rows with ``t_s <= t_end``.

        Yields:
            Matching rows sorted by ``(t_s, t_e, record_id)``.
        """
        ...

    def compact(self) -> int:
        """Fold the WAL tail into the bulk snapshot.

        Returns:
            The number of tail mutations folded in.  Afterwards
            ``snapshot_generation == generation`` and ``replay_since``
            from the snapshot is empty.
        """
        ...

    def close(self) -> None:
        """Release the store's resources (idempotent)."""
        ...
