"""The in-memory reference backend: same semantics, zero durability.

:class:`MemoryBackend` is the protocol's executable specification — the
SQLite backend must be observationally equivalent to it (the backend test
suite runs both through one parametrized battery).  It is also the
default store beneath every :class:`~repro.tracking.table.LiveTrackingTable`,
so the refactored table keeps its original all-in-RAM behaviour unless a
durable backend is supplied.
"""

from __future__ import annotations

from typing import Iterator

from ..tracking.records import ObjectId, TrackingRecord
from .base import MUTATION_OPS, Mutation, StoredRow, row_identity

__all__ = ["MemoryBackend"]


def _sort_key(row: StoredRow) -> tuple[float, float, int]:
    return (row.record.t_s, row.record.t_e, row.record.record_id)


class MemoryBackend:
    """A :class:`~repro.storage.base.StorageBackend` held entirely in RAM.

    State is a bulk snapshot plus a mutation log, exactly like the
    durable backend, so snapshot+replay recovery paths exercise the same
    code shape against it (just without surviving the process).
    """

    def __init__(self) -> None:  # noqa: D107
        self._snapshot: list[StoredRow] = []
        self._snapshot_generation = 0
        self._wal: list[Mutation] = []
        #: current state: record_id → row (insertion-ordered).
        self._rows: dict[int, StoredRow] = {}

    # ------------------------------------------------------------------
    # Generations
    # ------------------------------------------------------------------

    @property
    def generation(self) -> int:
        """Monotonic mutation counter; ``0`` iff the store is pristine."""
        return self._snapshot_generation + len(self._wal)

    @property
    def snapshot_generation(self) -> int:
        """The generation the bulk snapshot is current as of."""
        return self._snapshot_generation

    # ------------------------------------------------------------------
    # Writes
    # ------------------------------------------------------------------

    def append_row(self, record: TrackingRecord, *, open: bool = False) -> bool:
        """Log one appended record (idempotent on ``record_id``)."""
        existing = self._rows.get(record.record_id)
        if existing is not None:
            if row_identity(existing.record) != row_identity(record):
                raise ValueError(
                    f"record {record.record_id} is already stored as "
                    f"{existing.record!r}; refusing conflicting redelivery "
                    f"of {record!r}"
                )
            return False
        op = "append_open" if open else "append"
        self._log(op, StoredRow(record, open=open))
        return True

    def rewrite_tail_row(self, record: TrackingRecord, *, open: bool) -> None:
        """Log an open tail row's new extent (extend or close)."""
        if record.record_id not in self._rows:
            raise ValueError(
                f"record {record.record_id} was never appended; "
                "cannot rewrite its tail row"
            )
        op = "extend" if open else "close"
        self._log(op, StoredRow(record, open=open))

    def _log(self, op: str, row: StoredRow) -> None:
        assert op in MUTATION_OPS
        self._wal.append(Mutation(self.generation + 1, op, row.record))
        self._rows[row.record.record_id] = row

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------

    def snapshot_rows(self) -> list[StoredRow]:
        """The bulk snapshot as of :attr:`snapshot_generation` (copy)."""
        return list(self._snapshot)

    def replay_since(self, generation: int) -> list[Mutation]:
        """All logged mutations newer than ``generation``, oldest first."""
        return [m for m in self._wal if m.generation > generation]

    def iter_rows(
        self,
        object_id: ObjectId | None = None,
        t_start: float | None = None,
        t_end: float | None = None,
    ) -> Iterator[StoredRow]:
        """Iterate current rows, filtered, in ``(t_s, t_e, record_id)`` order."""
        rows = sorted(self._rows.values(), key=_sort_key)
        for row in rows:
            if object_id is not None and row.record.object_id != object_id:
                continue
            if t_start is not None and row.record.t_e < t_start:
                continue
            if t_end is not None and row.record.t_s > t_end:
                continue
            yield row

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------

    def compact(self) -> int:
        """Fold the mutation log into the bulk snapshot."""
        folded = len(self._wal)
        self._snapshot = sorted(self._rows.values(), key=_sort_key)
        self._snapshot_generation = self.generation
        self._wal.clear()
        return folded

    def close(self) -> None:
        """Nothing to release; the store dies with the process."""
