"""Durable, pluggable storage for the OTT and live episodes.

The paper's pipeline — symbolic readings → Object Tracking Table →
AR-tree → flow queries — was reproduced entirely in RAM, so a restart
lost every open episode.  This package puts a storage seam underneath the
:class:`~repro.tracking.table.LiveTrackingTable`:

* :class:`StorageBackend` — the protocol: append / extend / close an
  episode, bulk snapshot, replay-from-generation, iterate by object or
  time (:mod:`repro.storage.base`);
* :class:`MemoryBackend` — the in-RAM reference implementation and the
  default, keeping the pre-storage behaviour bit for bit
  (:mod:`repro.storage.memory`);
* :class:`SQLiteBackend` — the durable implementation: SQLite in WAL
  mode, one transaction per mutation, open episodes as tail rows,
  idempotent ``record_id`` upserts (:mod:`repro.storage.sqlite`);
* :func:`default_live_backend` — the ``REPRO_STORAGE_BACKEND``
  environment switch CI uses to run the whole suite against either
  backend (:mod:`repro.storage.env`).

Recovery is snapshot + replay: :meth:`ARTree.build
<repro.index.artree.ARTree.build>` bulk-loads the persisted snapshot and
only the WAL tail is replayed through the live ingest seam, so a process
killed mid-ingest reopens to bit-identical top-k results.  See
``docs/storage.md`` for the backend-author guide.
"""

from .base import MUTATION_OPS, Mutation, StorageBackend, StoredRow, row_identity
from .env import ENV_VAR, default_live_backend
from .memory import MemoryBackend
from .sqlite import SQLiteBackend, sqlite_shard_stores

__all__ = [
    "MUTATION_OPS",
    "Mutation",
    "StorageBackend",
    "StoredRow",
    "row_identity",
    "ENV_VAR",
    "default_live_backend",
    "MemoryBackend",
    "SQLiteBackend",
    "sqlite_shard_stores",
]
