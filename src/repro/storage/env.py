"""Backend selection: the ``REPRO_STORAGE_BACKEND`` environment switch.

Every :class:`~repro.tracking.table.LiveTrackingTable` that is not handed
an explicit backend asks :func:`default_live_backend` for one.  With the
variable unset (or ``memory``) that is the plain in-RAM store — the
pre-storage behaviour, bit for bit.  With ``sqlite`` every live table in
the process transparently routes its mutations through a throwaway
SQLite database, which is how CI runs the *entire* core suite (including
the sharded N∈{1,2,4} equivalence tests, whose partition views each get
their own per-shard store) against the durable backend without a single
test knowing about it.

The throwaway stores use ``synchronous=OFF`` — they exist to exercise the
SQL path, not to survive a power cut — and delete their file on close.
"""

from __future__ import annotations

import os
import tempfile

from .base import StorageBackend
from .memory import MemoryBackend
from .sqlite import SQLiteBackend

__all__ = ["ENV_VAR", "default_live_backend"]

#: The environment variable naming the default backend.
ENV_VAR = "REPRO_STORAGE_BACKEND"


def default_live_backend() -> StorageBackend:
    """A fresh backend of the environment-selected kind.

    Returns:
        A pristine :class:`~repro.storage.memory.MemoryBackend` (default)
        or an ephemeral :class:`~repro.storage.sqlite.SQLiteBackend` when
        ``REPRO_STORAGE_BACKEND=sqlite``.

    Raises:
        ValueError: For an unrecognised variable value.
    """
    choice = os.environ.get(ENV_VAR, "memory").strip().lower() or "memory"
    if choice == "memory":
        return MemoryBackend()
    if choice == "sqlite":
        handle, path = tempfile.mkstemp(prefix="repro-ott-", suffix=".sqlite")
        os.close(handle)
        return SQLiteBackend(path, synchronous="OFF", ephemeral=True)
    raise ValueError(
        f"unknown {ENV_VAR} value {choice!r} (expected 'memory' or 'sqlite')"
    )
