"""A classic Guttman R-tree over 2D MBRs.

The paper indexes the indoor POIs with an R-tree ``R_P`` and builds an
in-memory *aggregate* R-tree ``R_I`` over object MBRs for the join-based
algorithms (Section 4.1).  This module provides the shared dynamic R-tree
with quadratic node splitting plus an STR bulk loader; the count-augmented
variant lives in :mod:`repro.index.aggregate`.

The join algorithms walk the tree structure explicitly (node by node), so
the node/entry types are part of the public API rather than hidden behind a
search method.
"""

from __future__ import annotations

import math
from typing import Any, Iterator, Self, Sequence

from ..geometry import Mbr

__all__ = ["RTree", "RTreeNode", "RTreeEntry"]


class RTreeEntry:
    """A slot in an R-tree node.

    Leaf entries carry an ``item`` (the indexed object); internal entries
    carry a ``child`` node.  Exactly one of the two is set.
    """

    __slots__ = ("mbr", "item", "child")

    def __init__(self, mbr: Mbr, item: Any = None, child: "RTreeNode | None" = None):
        if (item is None) == (child is None):
            raise ValueError("an entry holds either an item or a child node")
        self.mbr = mbr
        self.item = item
        self.child = child

    @property
    def is_leaf_entry(self) -> bool:
        return self.child is None

    def __repr__(self) -> str:
        kind = "leaf" if self.is_leaf_entry else "node"
        return f"RTreeEntry({kind}, {self.mbr!r})"


class RTreeNode:
    """An R-tree node: a list of entries, at one level of the tree."""

    __slots__ = ("entries", "is_leaf")

    def __init__(self, entries: list[RTreeEntry], is_leaf: bool):
        self.entries = entries
        self.is_leaf = is_leaf

    def mbr(self) -> Mbr:
        return Mbr.union_all(entry.mbr for entry in self.entries)

    def __len__(self) -> int:
        return len(self.entries)


class RTree:
    """Dynamic R-tree with Guttman quadratic splits.

    Parameters
    ----------
    max_entries:
        Node fanout; nodes overflowing it are split.
    min_entries:
        Minimum fill after a split (defaults to ``max_entries // 2``).
    """

    def __init__(self, max_entries: int = 8, min_entries: int | None = None):
        if max_entries < 2:
            raise ValueError("max_entries must be at least 2")
        self.max_entries = max_entries
        self.min_entries = (
            min_entries if min_entries is not None else max(1, max_entries // 2)
        )
        if self.min_entries > self.max_entries // 2:
            raise ValueError("min_entries may not exceed max_entries // 2")
        self.root = RTreeNode([], is_leaf=True)
        self._size = 0
        self._height = 1

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def insert(self, mbr: Mbr, item: Any) -> None:
        """Insert ``item`` with bounding box ``mbr``."""
        entry = RTreeEntry(mbr, item=item)
        split = self._insert_entry(self.root, entry, level=self._height - 1)
        if split is not None:
            left, right = split
            self.root = RTreeNode(
                [
                    RTreeEntry(left.mbr(), child=left),
                    RTreeEntry(right.mbr(), child=right),
                ],
                is_leaf=False,
            )
            self._height += 1
        self._size += 1

    @classmethod
    def bulk_load(
        cls,
        items: Sequence[tuple[Mbr, Any]],
        max_entries: int = 8,
        min_entries: int | None = None,
    ) -> Self:
        """Build a packed tree with Sort-Tile-Recursive (STR) loading.

        Produces well-filled nodes and much better MBR quality than repeated
        inserts, which matters for the join algorithms' pruning power.
        """
        tree = cls(max_entries=max_entries, min_entries=min_entries)
        if not items:
            return tree
        level = [RTreeEntry(mbr, item=item) for mbr, item in items]
        is_leaf = True
        height = 1
        while len(level) > tree.max_entries:
            level = tree._str_pack(level, is_leaf=is_leaf)
            is_leaf = False
            height += 1
        tree.root = RTreeNode(level, is_leaf=is_leaf)
        tree._size = len(items)
        tree._height = height
        return tree

    def _str_pack(
        self, entries: list[RTreeEntry], is_leaf: bool
    ) -> list[RTreeEntry]:
        """Pack ``entries`` into nodes, returning entries for the next level."""
        capacity = self.max_entries
        count = len(entries)
        node_count = math.ceil(count / capacity)
        slices = math.ceil(math.sqrt(node_count))
        entries = sorted(entries, key=lambda e: e.mbr.center.x)
        per_slice = math.ceil(count / slices)
        parents: list[RTreeEntry] = []
        for i in range(0, count, per_slice):
            vertical = sorted(
                entries[i : i + per_slice], key=lambda e: e.mbr.center.y
            )
            for j in range(0, len(vertical), capacity):
                node = RTreeNode(vertical[j : j + capacity], is_leaf=is_leaf)
                parents.append(RTreeEntry(node.mbr(), child=node))
        return parents

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def search(self, mbr: Mbr) -> list[Any]:
        """All items whose MBR intersects ``mbr``."""
        return [entry.item for entry in self.search_entries(mbr)]

    def search_entries(self, mbr: Mbr) -> list[RTreeEntry]:
        """All leaf entries whose MBR intersects ``mbr``."""
        results: list[RTreeEntry] = []
        if self._size == 0:
            return results
        stack = [self.root]
        while stack:
            node = stack.pop()
            for entry in node.entries:
                if not entry.mbr.intersects(mbr):
                    continue
                if node.is_leaf:
                    results.append(entry)
                else:
                    assert entry.child is not None
                    stack.append(entry.child)
        return results

    def items(self) -> Iterator[Any]:
        """All indexed items, in no particular order."""
        for entry in self.leaf_entries():
            yield entry.item

    def leaf_entries(self) -> Iterator[RTreeEntry]:
        stack = [self.root]
        while stack:
            node = stack.pop()
            for entry in node.entries:
                if node.is_leaf:
                    yield entry
                else:
                    assert entry.child is not None
                    stack.append(entry.child)

    def __len__(self) -> int:
        return self._size

    @property
    def height(self) -> int:
        return self._height

    # ------------------------------------------------------------------
    # Insertion internals
    # ------------------------------------------------------------------

    def _insert_entry(
        self, node: RTreeNode, entry: RTreeEntry, level: int
    ) -> tuple[RTreeNode, RTreeNode] | None:
        """Recursive insert; returns the two halves if ``node`` split."""
        if node.is_leaf:
            node.entries.append(entry)
        else:
            chosen = self._choose_subtree(node, entry.mbr)
            assert chosen.child is not None
            split = self._insert_entry(chosen.child, entry, level - 1)
            chosen.mbr = chosen.mbr.union(entry.mbr)
            if split is not None:
                left, right = split
                node.entries.remove(chosen)
                node.entries.append(RTreeEntry(left.mbr(), child=left))
                node.entries.append(RTreeEntry(right.mbr(), child=right))
        if len(node.entries) > self.max_entries:
            return self._split(node)
        return None

    @staticmethod
    def _choose_subtree(node: RTreeNode, mbr: Mbr) -> RTreeEntry:
        """Guttman's least-enlargement heuristic (area as tie breaker)."""
        return min(
            node.entries,
            key=lambda entry: (entry.mbr.enlargement(mbr), entry.mbr.area()),
        )

    def _split(self, node: RTreeNode) -> tuple[RTreeNode, RTreeNode]:
        """Quadratic split of an overflowing node."""
        entries = node.entries
        seed_a, seed_b = self._pick_seeds(entries)
        group_a = [entries[seed_a]]
        group_b = [entries[seed_b]]
        mbr_a = entries[seed_a].mbr
        mbr_b = entries[seed_b].mbr
        remaining = [
            entry for i, entry in enumerate(entries) if i not in (seed_a, seed_b)
        ]
        while remaining:
            # Force-assign when one group must absorb everything left to
            # reach the minimum fill.
            if len(group_a) + len(remaining) <= self.min_entries:
                group_a.extend(remaining)
                remaining = []
                break
            if len(group_b) + len(remaining) <= self.min_entries:
                group_b.extend(remaining)
                remaining = []
                break
            index, prefers_a = self._pick_next(remaining, mbr_a, mbr_b)
            entry = remaining.pop(index)
            if prefers_a:
                group_a.append(entry)
                mbr_a = mbr_a.union(entry.mbr)
            else:
                group_b.append(entry)
                mbr_b = mbr_b.union(entry.mbr)
        return (
            RTreeNode(group_a, is_leaf=node.is_leaf),
            RTreeNode(group_b, is_leaf=node.is_leaf),
        )

    @staticmethod
    def _pick_seeds(entries: list[RTreeEntry]) -> tuple[int, int]:
        """The pair wasting the most area when grouped together."""
        worst_pair = (0, 1)
        worst_waste = -math.inf
        for i in range(len(entries)):
            for j in range(i + 1, len(entries)):
                combined = entries[i].mbr.union(entries[j].mbr)
                waste = (
                    combined.area()
                    - entries[i].mbr.area()
                    - entries[j].mbr.area()
                )
                if waste > worst_waste:
                    worst_waste = waste
                    worst_pair = (i, j)
        return worst_pair

    @staticmethod
    def _pick_next(
        remaining: list[RTreeEntry], mbr_a: Mbr, mbr_b: Mbr
    ) -> tuple[int, bool]:
        """The entry with the strongest group preference, and the group."""
        best_index = 0
        best_difference = -math.inf
        prefers_a = True
        for i, entry in enumerate(remaining):
            growth_a = mbr_a.enlargement(entry.mbr)
            growth_b = mbr_b.enlargement(entry.mbr)
            difference = abs(growth_a - growth_b)
            if difference > best_difference:
                best_difference = difference
                best_index = i
                prefers_a = growth_a < growth_b
        return best_index, prefers_a
