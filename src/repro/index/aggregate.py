"""Count-augmented (aggregate) R-tree.

The join-based algorithms (paper, Algorithms 2 and 5) build an in-memory
R-tree ``R_I`` over object MBRs where *each node entry is augmented with a
``count`` field — the number of objects in the corresponding sub-tree*.
Those counts upper-bound a POI's flow during the join: each object
contributes at most presence 1, so a group of ``count`` objects contributes
at most ``count`` flow.

The counts are derived once after construction (the tree is static for the
lifetime of a query), which keeps the base R-tree untouched.
"""

from __future__ import annotations

from typing import Any, Sequence

from ..geometry import Mbr
from .rtree import RTree, RTreeEntry, RTreeNode

__all__ = ["AggregateRTree"]


class AggregateRTree(RTree):
    """An R-tree whose entries report the number of objects below them."""

    def __init__(self, max_entries: int = 8, min_entries: int | None = None):
        super().__init__(max_entries=max_entries, min_entries=min_entries)
        self._counts: dict[int, int] = {}
        self._counts_dirty = True

    @classmethod
    def build(
        cls,
        items: Sequence[tuple[Mbr, Any]],
        max_entries: int = 8,
        min_entries: int | None = None,
    ) -> "AggregateRTree":
        """Bulk-load ``items`` and finalize the aggregate counts."""
        tree = cls.bulk_load(items, max_entries=max_entries, min_entries=min_entries)
        tree.refresh_counts()
        return tree

    @classmethod
    def bulk_load(
        cls,
        items: Sequence[tuple[Mbr, Any]],
        max_entries: int = 8,
        min_entries: int | None = None,
    ) -> "AggregateRTree":
        tree = super().bulk_load(
            items, max_entries=max_entries, min_entries=min_entries
        )
        tree._counts_dirty = True
        return tree

    def insert(self, mbr: Mbr, item: Any) -> None:
        super().insert(mbr, item)
        self._counts_dirty = True

    def count(self, entry: RTreeEntry) -> int:
        """Objects in ``entry``'s subtree (1 for a leaf entry)."""
        if entry.is_leaf_entry:
            return 1
        if self._counts_dirty:
            self.refresh_counts()
        return self._counts[id(entry)]

    def refresh_counts(self) -> None:
        """Recompute all subtree counts bottom-up."""
        self._counts = {}
        self._count_node(self.root)
        self._counts_dirty = False

    def _count_node(self, node: RTreeNode) -> int:
        total = 0
        for entry in node.entries:
            if entry.is_leaf_entry:
                total += 1
            else:
                assert entry.child is not None
                child_count = self._count_node(entry.child)
                self._counts[id(entry)] = child_count
                total += child_count
        return total
