"""Spatial and temporal indexes: R-tree, aggregate R-tree and AR-tree."""

from .aggregate import AggregateRTree
from .artree import ARLeafEntry, ARTree
from .rtree import RTree, RTreeEntry, RTreeNode

__all__ = [
    "ARLeafEntry",
    "ARTree",
    "AggregateRTree",
    "RTree",
    "RTreeEntry",
    "RTreeNode",
]
