"""The AR-tree: an augmented temporal index over the OTT.

The paper (Section 4.1) indexes the object tracking table with an augmented
1D R-tree.  A tracking record ``rd_c`` is indexed by a leaf entry
``(t1, t2, Ptr_p, Ptr_c)`` where ``Ptr_c`` points to ``rd_c``, ``Ptr_p``
points to the object's previous record ``rd_p``, and ``(t1, t2] =
(rd_p.t_e, rd_c.t_e]`` is the *augmented tracking time interval*: it covers
both the undetected gap before ``rd_c`` and ``rd_c``'s own detection
episode.  Non-leaf entries store the minimum bounding interval of their
child node.

* A **point query** at ``t`` returns, for every object, the leaf entry whose
  augmented interval covers ``t`` — from which the tracking state (active /
  inactive) and the relevant ``rd_pre``/``rd_cov``/``rd_suc`` records follow
  directly (Section 3.1.1).
* A **range query** over ``[t_s, t_e]`` returns the chain of leaf entries
  whose augmented intervals overlap the window, yielding the start, end and
  in-between records of Table 3.

The bulk of the index is loaded bottom-up from a consistent OTT (sorted by
interval start), which packs nodes tightly.  On top of the static tree the
index keeps a small **sorted delta buffer** of recently appended leaf
entries, LSM-style: :meth:`ARTree.append_record` inserts into the delta in
O(log delta), every query consults the static tree *and* the delta, and
once the delta outgrows ``delta_threshold`` it is automatically compacted —
merged with the static entries and bulk-reloaded.  Entries of still-open
detection episodes (live ingestion; see
:class:`~repro.tracking.table.LiveTrackingTable`) are pinned in the delta,
where :meth:`ARTree.patch_tail` can cheaply replace them as the episode's
``t_e`` advances and finally closes.

Query results are returned in a deterministic total order
``(t1, t2, record_id)`` so that an incrementally maintained tree and a
from-scratch bulk load answer queries *identically* — including the
floating-point accumulation order of downstream flow sums.
"""

from __future__ import annotations

from bisect import bisect_right, insort
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterator, Protocol

from ..obs import counter, obs_enabled, span

if TYPE_CHECKING:  # pragma: no cover - typing only (avoids an import cycle
    # through repro.tracking, whose detection model uses the indoor package,
    # which indexes rooms with this package's R-tree)
    from ..tracking.records import ObjectId, TrackingRecord

__all__ = ["ARTree", "ARLeafEntry"]

#: Delta-buffer size at which :meth:`ARTree.append_record` triggers an
#: automatic compaction (open-episode entries do not count — they are
#: pinned in the delta until they close).
DEFAULT_DELTA_THRESHOLD = 256


class TrackingSource(Protocol):
    """What :meth:`ARTree.build` reads: a consistent, queryable OTT.

    Both :class:`~repro.tracking.table.ObjectTrackingTable` (frozen) and
    :class:`~repro.tracking.table.LiveTrackingTable` satisfy this.
    """

    @property
    def object_ids(self) -> list["ObjectId"]: ...

    @property
    def open_object_ids(self) -> frozenset["ObjectId"]: ...

    def records_for(self, object_id: "ObjectId") -> list["TrackingRecord"]: ...


@dataclass(frozen=True, slots=True)
class ARLeafEntry:
    """A leaf entry ``(t1, t2, Ptr_p, Ptr_c)`` of the AR-tree.

    ``predecessor`` is ``None`` for an object's first record, in which case
    the augmented interval degenerates to the record's own episode
    ``[record.t_s, record.t_e]`` (closed at the start).
    """

    t1: float
    t2: float
    predecessor: TrackingRecord | None
    record: TrackingRecord

    @property
    def object_id(self) -> ObjectId:
        """The tracked object this entry belongs to."""
        return self.record.object_id

    def covers(self, t: float) -> bool:
        """Whether the augmented interval covers time ``t``.

        The interval is ``(t1, t2]`` when a predecessor exists (``t = t1``
        belongs to the predecessor's entry) and ``[t1, t2]`` otherwise.
        """
        if self.predecessor is None:
            return self.t1 <= t <= self.t2
        return self.t1 < t <= self.t2

    def overlaps(self, t_start: float, t_end: float) -> bool:
        """Whether the augmented interval intersects ``[t_start, t_end]``."""
        return self.t1 <= t_end and self.t2 >= t_start


def _entry_key(entry: ARLeafEntry) -> tuple[float, float, int]:
    """The total order all query results are returned in.

    ``record_id`` is table-unique, so the key is a tie-free total order —
    which makes incremental (static + delta) and bulk-loaded trees return
    bit-identical result *sequences*, not just equal sets.
    """
    return (entry.t1, entry.t2, entry.record.record_id)


class _ARNode:
    """Internal AR-tree node: children plus their bounding interval."""

    __slots__ = ("t_min", "t_max", "children", "entries")

    def __init__(
        self,
        t_min: float,
        t_max: float,
        children: list["_ARNode"] | None,
        entries: list[ARLeafEntry] | None,
    ):
        self.t_min = t_min
        self.t_max = t_max
        self.children = children
        self.entries = entries

    @property
    def is_leaf(self) -> bool:
        return self.entries is not None


class ARTree:
    """Augmented temporal index: a bulk-loaded core plus an append delta."""

    def __init__(
        self,
        fanout: int = 16,
        delta_threshold: int = DEFAULT_DELTA_THRESHOLD,
    ):
        if fanout < 2:
            raise ValueError("fanout must be at least 2")
        if delta_threshold < 1:
            raise ValueError("delta_threshold must be positive")
        self.fanout = fanout
        self.delta_threshold = delta_threshold
        self._root: _ARNode | None = None
        self._size = 0
        self._by_object: dict[ObjectId, tuple[ARLeafEntry, ...]] = {}
        #: LSM-style buffer of recent entries, sorted by ``_entry_key``.
        self._delta: list[ARLeafEntry] = []
        self._delta_by_object: dict[ObjectId, list[ARLeafEntry]] = {}
        #: Objects whose tail entry is an open episode (pinned in the delta).
        self._open_objects: set[ObjectId] = set()
        #: How often the delta was merged into the static tree.
        self.compactions = 0

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def build(
        cls,
        ott: TrackingSource,
        fanout: int = 16,
        delta_threshold: int = DEFAULT_DELTA_THRESHOLD,
        object_ids: "frozenset[ObjectId] | None" = None,
    ) -> "ARTree":
        """Index a consistent OTT (frozen batch table or live table).

        A live table's open episodes land in the delta buffer (so they can
        still be patched); everything closed is bulk-loaded statically.

        Args:
            ott: The queryable tracking table to index.
            fanout: Node capacity of the bulk-loaded tree.
            delta_threshold: Closed-delta size triggering auto-compaction.
            object_ids: Index only these objects (the per-shard build seam:
                N shards can index disjoint slices of one shared frozen
                table without copying it).  ``None`` indexes everything.

        Returns:
            The packed index.

        Raises:
            ValueError: If ``fanout < 2`` or ``delta_threshold < 1``.
        """
        tree = cls(fanout=fanout, delta_threshold=delta_threshold)
        open_ids = ott.open_object_ids
        static_entries: list[ARLeafEntry] = []
        open_entries: list[ARLeafEntry] = []
        for object_id in ott.object_ids:
            if object_ids is not None and object_id not in object_ids:
                continue
            records = ott.records_for(object_id)
            previous: TrackingRecord | None = None
            for index, record in enumerate(records):
                t1 = previous.t_e if previous is not None else record.t_s
                entry = ARLeafEntry(
                    t1=t1, t2=record.t_e, predecessor=previous, record=record
                )
                is_open_tail = (
                    object_id in open_ids and index == len(records) - 1
                )
                (open_entries if is_open_tail else static_entries).append(entry)
                previous = record
        tree._bulk_load(static_entries)
        for entry in open_entries:
            tree._delta_insert(entry)
            tree._open_objects.add(entry.object_id)
        tree._size = len(static_entries) + len(open_entries)
        return tree

    def _bulk_load(self, entries: list[ARLeafEntry]) -> None:
        self._size = len(entries)
        by_object: dict[ObjectId, list[ARLeafEntry]] = {}
        for entry in entries:
            by_object.setdefault(entry.object_id, []).append(entry)
        self._by_object = {
            object_id: tuple(sorted(group, key=_entry_key))
            for object_id, group in by_object.items()
        }
        if not entries:
            self._root = None
            return
        entries = sorted(entries, key=_entry_key)
        level: list[_ARNode] = []
        for i in range(0, len(entries), self.fanout):
            chunk = entries[i : i + self.fanout]
            level.append(
                _ARNode(
                    t_min=min(entry.t1 for entry in chunk),
                    t_max=max(entry.t2 for entry in chunk),
                    children=None,
                    entries=chunk,
                )
            )
        while len(level) > 1:
            parents: list[_ARNode] = []
            for i in range(0, len(level), self.fanout):
                chunk = level[i : i + self.fanout]
                parents.append(
                    _ARNode(
                        t_min=min(node.t_min for node in chunk),
                        t_max=max(node.t_max for node in chunk),
                        children=chunk,
                        entries=None,
                    )
                )
            level = parents
        self._root = level[0]

    def __len__(self) -> int:
        return self._size

    # ------------------------------------------------------------------
    # Incremental maintenance (LSM-style delta)
    # ------------------------------------------------------------------

    @property
    def delta_size(self) -> int:
        """Leaf entries currently living in the delta buffer."""
        return len(self._delta)

    def stats_dict(self) -> dict[str, int]:
        """The index's maintenance counters, for engine stats merging."""
        return {
            "artree_delta_entries": self.delta_size,
            "artree_compactions": self.compactions,
        }

    def _delta_insert(self, entry: ARLeafEntry) -> None:
        insort(self._delta, entry, key=_entry_key)
        self._delta_by_object.setdefault(entry.object_id, []).append(entry)

    def _delta_remove(self, entry: ARLeafEntry) -> None:
        index = bisect_right(self._delta, _entry_key(entry), key=_entry_key) - 1
        while index >= 0 and self._delta[index] is not entry:
            index -= 1
        if index < 0:  # pragma: no cover - internal invariant
            raise ValueError("entry not present in the delta buffer")
        del self._delta[index]
        group = self._delta_by_object[entry.object_id]
        group.remove(entry)
        if not group:
            del self._delta_by_object[entry.object_id]

    def _tail_entry(self, object_id: ObjectId) -> ARLeafEntry | None:
        group = self._delta_by_object.get(object_id)
        if group:
            return group[-1]
        static = self._by_object.get(object_id)
        return static[-1] if static else None

    def append_record(
        self,
        record: TrackingRecord,
        predecessor: TrackingRecord | None,
        *,
        open: bool = False,
    ) -> ARLeafEntry:
        """Append one object's next tracking record to the index.

        ``predecessor`` must be the object's current last record (``None``
        for its first) — exactly the ``Ptr_p`` the new leaf entry carries;
        its augmented interval is ``(predecessor.t_e, record.t_e]``.  The
        previously open-ended tail of the object's timeline thereby closes.
        ``open=True`` marks the new entry as a still-advancing episode,
        pinned in the delta for :meth:`patch_tail`.

        Automatically compacts once the closed part of the delta exceeds
        ``delta_threshold``.

        Args:
            record: The object's next tracking record.
            predecessor: The object's current last record (``None`` for
                its first).
            open: Mark the entry as a still-advancing episode.

        Returns:
            The new leaf entry.

        Raises:
            ValueError: If the object has an unpatched open episode, the
                predecessor does not match the indexed tail, or the
                record overlaps its predecessor.
        """
        object_id = record.object_id
        if object_id in self._open_objects:
            raise ValueError(
                f"object {object_id!r} has an open episode in the index; "
                "patch_tail() must close it before the next append"
            )
        tail = self._tail_entry(object_id)
        tail_record_id = None if tail is None else tail.record.record_id
        predecessor_id = None if predecessor is None else predecessor.record_id
        if tail_record_id != predecessor_id:
            raise ValueError(
                f"object {object_id!r}: predecessor {predecessor_id!r} does "
                f"not match the indexed tail record {tail_record_id!r}"
            )
        if predecessor is not None and record.t_s < predecessor.t_e:
            raise ValueError(
                f"object {object_id!r}: record {record.record_id} "
                f"(t_s={record.t_s}) overlaps its predecessor "
                f"(t_e={predecessor.t_e})"
            )
        t1 = predecessor.t_e if predecessor is not None else record.t_s
        entry = ARLeafEntry(
            t1=t1, t2=record.t_e, predecessor=predecessor, record=record
        )
        self._delta_insert(entry)
        self._size += 1
        if open:
            self._open_objects.add(object_id)
        if len(self._delta) - len(self._open_objects) > self.delta_threshold:
            self.compact()
        return entry

    def patch_tail(
        self, record: TrackingRecord, *, open: bool
    ) -> ARLeafEntry:
        """Replace an open episode's leaf entry as its ``t_e`` advances.

        Args:
            record: The episode's updated tracking record (same
                ``record_id``, greater-or-equal ``t_e``).
            open: ``False`` closes the episode, unpinning its entry from
                the delta.

        Returns:
            The patched leaf entry.

        Raises:
            ValueError: If the object has no open episode, the record is
                not its open tail, or ``t_e`` moved backwards.
        """
        object_id = record.object_id
        if object_id not in self._open_objects:
            raise ValueError(f"object {object_id!r} has no open episode to patch")
        group = self._delta_by_object.get(object_id)
        assert group, "open episodes are pinned in the delta"
        old = group[-1]
        if old.record.record_id != record.record_id:
            raise ValueError(
                f"object {object_id!r}: record {record.record_id} is not the "
                f"open tail (record {old.record.record_id})"
            )
        if record.t_e < old.t2:
            raise ValueError(
                f"object {object_id!r}: episode end moved backwards "
                f"({record.t_e} < {old.t2})"
            )
        entry = ARLeafEntry(
            t1=old.t1, t2=record.t_e, predecessor=old.predecessor, record=record
        )
        self._delta_remove(old)
        self._delta_insert(entry)
        if not open:
            self._open_objects.discard(object_id)
            if len(self._delta) - len(self._open_objects) > self.delta_threshold:
                self.compact()
        return entry

    def compact(self) -> None:
        """Merge the closed delta entries into the static tree (rebuild).

        Open-episode entries stay in the delta — they are still mutable,
        and the static tree is immutable by construction.
        """
        with span("artree.compact"):
            open_tails = {
                object_id: self._delta_by_object[object_id][-1]
                for object_id in self._open_objects
                if object_id in self._delta_by_object
            }
            pinned = {id(entry) for entry in open_tails.values()}
            merged = [
                entry for group in self._by_object.values() for entry in group
            ]
            merged.extend(
                entry for entry in self._delta if id(entry) not in pinned
            )
            self._delta = []
            self._delta_by_object = {}
            self._bulk_load(merged)
            for entry in open_tails.values():
                self._delta_insert(entry)
            self._size = len(merged) + len(self._delta)
            self.compactions += 1
        if obs_enabled():
            counter("artree.compactions", unit="compactions").inc()

    # ------------------------------------------------------------------
    # Per-object access
    # ------------------------------------------------------------------

    def entries_for(self, object_id: ObjectId) -> tuple[ARLeafEntry, ...]:
        """One object's leaf entries in time order (empty if unknown).

        Single-object introspection (``FlowEngine.snapshot_region_of`` and
        friends) resolves states from this direct lookup in O(records of
        the object) instead of scanning every object's entries.  Static and
        delta entries are concatenated — appends only ever extend the tail,
        so the concatenation is already time-ordered.
        """
        static = self._by_object.get(object_id, ())
        delta = self._delta_by_object.get(object_id)
        if not delta:
            return tuple(static)
        return tuple(static) + tuple(delta)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def point_query(self, t: float) -> list[ARLeafEntry]:
        """All leaf entries whose augmented interval covers ``t``.

        There is at most one such entry per object.

        Args:
            t: The query time point.

        Returns:
            Matching entries in ``(t1, t2, record_id)`` order.
        """
        self._count_probe()
        results = [entry for entry in self._candidates(t, t) if entry.covers(t)]
        results.sort(key=_entry_key)
        return results

    def _count_probe(self) -> None:
        """Mirror one index query into the observability counters."""
        if obs_enabled():
            counter("artree.queries", unit="queries").inc()
            if self._delta:
                counter("artree.delta_probes", unit="probes").inc()

    def range_query(self, t_start: float, t_end: float) -> list[ARLeafEntry]:
        """All leaf entries overlapping the closed window ``[t_start, t_end]``.

        Args:
            t_start: Window start (inclusive).
            t_end: Window end (inclusive).

        Returns:
            Matching entries in ``(t1, t2, record_id)`` order; callers
            group them by object to reconstruct record chains.

        Raises:
            ValueError: If ``t_end`` precedes ``t_start``.
        """
        if t_end < t_start:
            raise ValueError("t_end precedes t_start")
        self._count_probe()
        results = [
            entry
            for entry in self._candidates(t_start, t_end)
            if entry.overlaps(t_start, t_end)
        ]
        results.sort(key=_entry_key)
        return results

    def _candidates(self, t_start: float, t_end: float) -> Iterator[ARLeafEntry]:
        for entry in self._delta:
            if entry.t1 > t_end:
                break  # the delta is sorted by t1 first
            if entry.t2 >= t_start:
                yield entry
        if self._root is None:
            return
        stack = [self._root]
        while stack:
            node = stack.pop()
            if node.t_min > t_end or node.t_max < t_start:
                continue
            if node.is_leaf:
                assert node.entries is not None
                yield from node.entries
            else:
                assert node.children is not None
                stack.extend(node.children)
