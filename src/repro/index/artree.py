"""The AR-tree: an augmented temporal index over the OTT.

The paper (Section 4.1) indexes the object tracking table with an augmented
1D R-tree.  A tracking record ``rd_c`` is indexed by a leaf entry
``(t1, t2, Ptr_p, Ptr_c)`` where ``Ptr_c`` points to ``rd_c``, ``Ptr_p``
points to the object's previous record ``rd_p``, and ``(t1, t2] =
(rd_p.t_e, rd_c.t_e]`` is the *augmented tracking time interval*: it covers
both the undetected gap before ``rd_c`` and ``rd_c``'s own detection
episode.  Non-leaf entries store the minimum bounding interval of their
child node.

* A **point query** at ``t`` returns, for every object, the leaf entry whose
  augmented interval covers ``t`` — from which the tracking state (active /
  inactive) and the relevant ``rd_pre``/``rd_cov``/``rd_suc`` records follow
  directly (Section 3.1.1).
* A **range query** over ``[t_s, t_e]`` returns the chain of leaf entries
  whose augmented intervals overlap the window, yielding the start, end and
  in-between records of Table 3.

The tree is bulk-loaded bottom-up from the frozen OTT (sorted by interval
start), which packs nodes tightly; the OTT is static during analysis, so no
dynamic maintenance is needed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterator, Sequence

if TYPE_CHECKING:  # pragma: no cover - typing only (avoids an import cycle
    # through repro.tracking, whose detection model uses the indoor package,
    # which indexes rooms with this package's R-tree)
    from ..tracking.records import ObjectId, TrackingRecord
    from ..tracking.table import ObjectTrackingTable

__all__ = ["ARTree", "ARLeafEntry"]


@dataclass(frozen=True, slots=True)
class ARLeafEntry:
    """A leaf entry ``(t1, t2, Ptr_p, Ptr_c)`` of the AR-tree.

    ``predecessor`` is ``None`` for an object's first record, in which case
    the augmented interval degenerates to the record's own episode
    ``[record.t_s, record.t_e]`` (closed at the start).
    """

    t1: float
    t2: float
    predecessor: TrackingRecord | None
    record: TrackingRecord

    @property
    def object_id(self) -> ObjectId:
        return self.record.object_id

    def covers(self, t: float) -> bool:
        """Whether the augmented interval covers time ``t``.

        The interval is ``(t1, t2]`` when a predecessor exists (``t = t1``
        belongs to the predecessor's entry) and ``[t1, t2]`` otherwise.
        """
        if self.predecessor is None:
            return self.t1 <= t <= self.t2
        return self.t1 < t <= self.t2

    def overlaps(self, t_start: float, t_end: float) -> bool:
        """Whether the augmented interval intersects ``[t_start, t_end]``."""
        return self.t1 <= t_end and self.t2 >= t_start


class _ARNode:
    """Internal AR-tree node: children plus their bounding interval."""

    __slots__ = ("t_min", "t_max", "children", "entries")

    def __init__(
        self,
        t_min: float,
        t_max: float,
        children: list["_ARNode"] | None,
        entries: list[ARLeafEntry] | None,
    ):
        self.t_min = t_min
        self.t_max = t_max
        self.children = children
        self.entries = entries

    @property
    def is_leaf(self) -> bool:
        return self.entries is not None


class ARTree:
    """Bulk-loaded augmented temporal index over an OTT."""

    def __init__(self, fanout: int = 16):
        if fanout < 2:
            raise ValueError("fanout must be at least 2")
        self.fanout = fanout
        self._root: _ARNode | None = None
        self._size = 0
        self._by_object: dict[ObjectId, tuple[ARLeafEntry, ...]] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def build(cls, ott: ObjectTrackingTable, fanout: int = 16) -> "ARTree":
        """Index a frozen OTT."""
        tree = cls(fanout=fanout)
        entries: list[ARLeafEntry] = []
        for object_id in ott.object_ids:
            previous: TrackingRecord | None = None
            for record in ott.records_for(object_id):
                t1 = previous.t_e if previous is not None else record.t_s
                entries.append(
                    ARLeafEntry(
                        t1=t1, t2=record.t_e, predecessor=previous, record=record
                    )
                )
                previous = record
        tree._bulk_load(entries)
        return tree

    def _bulk_load(self, entries: list[ARLeafEntry]) -> None:
        self._size = len(entries)
        by_object: dict[ObjectId, list[ARLeafEntry]] = {}
        for entry in entries:
            by_object.setdefault(entry.object_id, []).append(entry)
        self._by_object = {
            object_id: tuple(sorted(group, key=lambda e: (e.t1, e.t2)))
            for object_id, group in by_object.items()
        }
        if not entries:
            self._root = None
            return
        entries = sorted(entries, key=lambda entry: (entry.t1, entry.t2))
        level: list[_ARNode] = []
        for i in range(0, len(entries), self.fanout):
            chunk = entries[i : i + self.fanout]
            level.append(
                _ARNode(
                    t_min=min(entry.t1 for entry in chunk),
                    t_max=max(entry.t2 for entry in chunk),
                    children=None,
                    entries=chunk,
                )
            )
        while len(level) > 1:
            parents: list[_ARNode] = []
            for i in range(0, len(level), self.fanout):
                chunk = level[i : i + self.fanout]
                parents.append(
                    _ARNode(
                        t_min=min(node.t_min for node in chunk),
                        t_max=max(node.t_max for node in chunk),
                        children=chunk,
                        entries=None,
                    )
                )
            level = parents
        self._root = level[0]

    def __len__(self) -> int:
        return self._size

    # ------------------------------------------------------------------
    # Per-object access
    # ------------------------------------------------------------------

    def entries_for(self, object_id: ObjectId) -> tuple[ARLeafEntry, ...]:
        """One object's leaf entries in time order (empty if unknown).

        Single-object introspection (``FlowEngine.snapshot_region_of`` and
        friends) resolves states from this direct lookup in O(records of
        the object) instead of scanning every object's entries.
        """
        return self._by_object.get(object_id, ())

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def point_query(self, t: float) -> list[ARLeafEntry]:
        """All leaf entries whose augmented interval covers ``t``.

        There is at most one such entry per object.
        """
        return [entry for entry in self._candidates(t, t) if entry.covers(t)]

    def range_query(self, t_start: float, t_end: float) -> list[ARLeafEntry]:
        """All leaf entries overlapping the closed window ``[t_start, t_end]``.

        Entries are returned in ``(t1, t2)`` order; callers group them by
        object to reconstruct record chains.
        """
        if t_end < t_start:
            raise ValueError("t_end precedes t_start")
        return [
            entry
            for entry in self._candidates(t_start, t_end)
            if entry.overlaps(t_start, t_end)
        ]

    def _candidates(self, t_start: float, t_end: float) -> Iterator[ARLeafEntry]:
        if self._root is None:
            return
        stack = [self._root]
        while stack:
            node = stack.pop()
            if node.t_min > t_end or node.t_max < t_start:
                continue
            if node.is_leaf:
                assert node.entries is not None
                yield from node.entries
            else:
                assert node.children is not None
                stack.extend(node.children)
