"""Bounded LRU caching primitives shared by the evaluation layer.

The query stack memoizes two expensive artifacts — uncertainty-region
construction and presence quadrature — plus the per-POI sample grids of the
presence estimator.  All three use the same policy: a bounded
least-recently-used mapping whose capacity caps memory while keeping the
hot working set (the regions and POIs a monitor touches every tick)
resident.  A capacity of ``0`` disables a cache entirely, which the
correctness tests use to compare cached against uncached evaluation.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable, Generic, Hashable, TypeVar

__all__ = ["LruCache", "shard_cache_capacity"]

V = TypeVar("V")


def shard_cache_capacity(total: int, num_shards: int) -> int:
    """One shard's slice of a fleet-wide cache capacity.

    A sharded engine should not multiply its memory budget by N: each
    shard gets ``total // num_shards`` entries (at least 1 when caching is
    on at all), so the fleet's combined footprint stays at the monolith's.
    A disabled cache (``total <= 0``) stays disabled on every shard.

    Args:
        total: The monolithic engine's cache capacity.
        num_shards: How many shards share it.

    Returns:
        The per-shard capacity.

    Raises:
        ValueError: If ``num_shards < 1``.
    """
    if num_shards < 1:
        raise ValueError("num_shards must be positive")
    if total <= 0:
        return 0
    return max(1, total // num_shards)


class LruCache(Generic[V]):
    """A bounded mapping evicting the least-recently-used entry.

    ``capacity <= 0`` disables storage: every ``get`` misses and ``put`` is
    a no-op, so callers can keep one code path for cached and uncached
    operation.
    """

    __slots__ = ("capacity", "_entries")

    def __init__(self, capacity: int):
        self.capacity = int(capacity)
        self._entries: OrderedDict[Hashable, V] = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._entries

    @property
    def enabled(self) -> bool:
        return self.capacity > 0

    def get(self, key: Hashable, default: V | None = None) -> V | None:
        """The cached value (refreshed as most recently used), or default."""
        entries = self._entries
        if key not in entries:
            return default
        entries.move_to_end(key)
        return entries[key]

    def put(self, key: Hashable, value: V) -> None:
        """Insert/refresh an entry, evicting the LRU one when over capacity."""
        if self.capacity <= 0:
            return
        entries = self._entries
        if key in entries:
            entries.move_to_end(key)
        entries[key] = value
        while len(entries) > self.capacity:
            entries.popitem(last=False)

    def get_or_build(self, key: Hashable, builder: Callable[[], V]) -> tuple[V, bool]:
        """``(value, was_hit)`` — building and storing the value on a miss."""
        entries = self._entries
        if key in entries:
            entries.move_to_end(key)
            return entries[key], True
        value = builder()
        self.put(key, value)
        return value, False

    def clear(self) -> None:
        self._entries.clear()
