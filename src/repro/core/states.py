"""Tracking-state resolution (paper, Sections 3.1.1 and 3.2).

At a time point ``t`` an object is *active* when some tracking record
covers ``t`` and *inactive* otherwise.  Either way, up to three records
matter for the uncertainty analysis:

* ``rd_cov`` — the covering record (active state only);
* ``rd_pre`` — the record immediately before (the covering record's
  predecessor when active, the last record ending before ``t`` when
  inactive);
* ``rd_suc`` — the first record starting after ``t`` (inactive state only).

Over a time interval the relevant records form a chain, whose start and end
records per the four active/inactive combinations are listed in the paper's
Table 3.  Both resolutions are computed from AR-tree query results — the
point query hands back exactly the leaf entry whose augmented interval
covers ``t``, the range query hands back the chain.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..index import ARLeafEntry, ARTree
from ..tracking.records import ObjectId, TrackingRecord

__all__ = [
    "TrackingState",
    "SnapshotContext",
    "IntervalContext",
    "snapshot_context",
    "snapshot_contexts",
    "interval_context_from_entries",
    "interval_contexts",
]


class TrackingState(enum.Enum):
    """Whether the object is being detected at the queried time."""

    ACTIVE = "active"
    INACTIVE = "inactive"


@dataclass(frozen=True, slots=True)
class SnapshotContext:
    """The records relevant to one object at one time point."""

    object_id: ObjectId
    t: float
    rd_pre: TrackingRecord | None
    rd_cov: TrackingRecord | None
    rd_suc: TrackingRecord | None

    @property
    def state(self) -> TrackingState:
        return (
            TrackingState.ACTIVE if self.rd_cov is not None else TrackingState.INACTIVE
        )


@dataclass(frozen=True, slots=True)
class IntervalContext:
    """The record chain relevant to one object over one time window.

    ``records`` is time-ordered and spans from the Table 3 start record to
    the end record: it includes ``rd_pre(t_s)`` when the object is inactive
    at ``t_s`` and ``rd_suc(t_e)`` when inactive at ``t_e``.  Records at the
    chain boundaries may lie entirely outside the window — they then only
    anchor the boundary uncertainty pieces, not a detection episode.
    """

    object_id: ObjectId
    t_start: float
    t_end: float
    records: tuple[TrackingRecord, ...]

    def state_at(self, t: float) -> TrackingState:
        covered = any(record.covers(t) for record in self.records)
        return TrackingState.ACTIVE if covered else TrackingState.INACTIVE


def snapshot_context(entry: ARLeafEntry, t: float) -> SnapshotContext:
    """Resolve the state encoded by an AR-tree leaf entry covering ``t``."""
    record = entry.record
    if record.covers(t):
        return SnapshotContext(
            object_id=record.object_id,
            t=t,
            rd_pre=entry.predecessor,
            rd_cov=record,
            rd_suc=None,
        )
    # The augmented interval covers t but the record itself does not: t
    # falls in the undetected gap (rd_pre.t_e, record.t_s).
    return SnapshotContext(
        object_id=record.object_id,
        t=t,
        rd_pre=entry.predecessor,
        rd_cov=None,
        rd_suc=record,
    )


def snapshot_contexts(artree: ARTree, t: float) -> list[SnapshotContext]:
    """State resolution for every object trackable at time ``t``.

    Objects whose tracking history does not reach ``t`` (last record ended
    earlier, first record starts later) have no covering augmented interval
    and are — as in the paper — not part of the analysis.
    """
    return [snapshot_context(entry, t) for entry in artree.point_query(t)]


def interval_context_from_entries(
    object_id: ObjectId,
    entries: list[ARLeafEntry],
    t_start: float,
    t_end: float,
) -> IntervalContext:
    """Build one object's record chain from its overlapping leaf entries.

    ``entries`` must all belong to ``object_id`` and overlap the window;
    they are sorted in place by augmented interval.
    """
    entries.sort(key=lambda e: (e.t1, e.t2))
    records = [entry.record for entry in entries]
    first = entries[0]
    if first.predecessor is not None and first.record.t_s > t_start:
        # The chain's start record when the object is inactive at
        # t_start (Table 3): the record just before the first gap the
        # window touches.
        records.insert(0, first.predecessor)
    return IntervalContext(
        object_id=object_id,
        t_start=t_start,
        t_end=t_end,
        records=tuple(records),
    )


def interval_contexts(
    artree: ARTree, t_start: float, t_end: float
) -> list[IntervalContext]:
    """Record-chain resolution for every object relevant to the window."""
    by_object: dict[ObjectId, list[ARLeafEntry]] = {}
    for entry in artree.range_query(t_start, t_end):
        by_object.setdefault(entry.object_id, []).append(entry)
    return [
        interval_context_from_entries(object_id, entries, t_start, t_end)
        for object_id, entries in by_object.items()
    ]
