"""`ShardState` — the per-partition slice of a flow engine's state.

The paper's flow score is a per-object sum, ``Φ(p) = Σ_o φ(o)``
(Definition 2), so every stateful piece of query processing partitions
cleanly by object id.  This facade owns exactly one partition's state:

* its slice of the OTT (a partition view of the batch or live table),
* the AR-tree over that slice (bulk core + LSM-style delta),
* its own :class:`~repro.core.context.EvaluationContext` — evaluation
  parameters plus the shard's slice of the region/presence caches and the
  per-object tail epochs, so a live append rolls only this shard's
  epochs,
* the memoized per-subset POI R-trees.

The interface is deliberately narrow — partial flows and partial bounds
for both query forms, the live-ingest mutators, ``stats()`` and the obs
snapshot — because everything a monolithic :class:`~repro.core.engine.FlowEngine`
(one shard) or a :class:`~repro.core.coordinator.ShardedFlowEngine`
(N shards behind an executor) needs reduces to these calls.

**Bit-reproducible partials.**  Floating-point addition is not
associative, so per-shard *sums* could never be merged back into the
monolith's exact flows.  Instead :meth:`partial_flows` returns the raw
per-(object, POI) presence contributions, each tagged with the object's
canonical AR-tree entry key; the coordinator re-sorts all shards'
contributions on that key and accumulates them in one global pass — the
exact order (and therefore the exact float result) of the monolithic
iterative scan.

**Sound shard pruning.**  :meth:`partial_bounds` counts, per POI, the
shard's objects whose cheap candidate MBR intersects the POI box — the
join algorithms' count bound (presence never exceeds 1, Section 4.2).
A shard whose bounds are all zero for the POIs still in play cannot
contribute anything but exact zeros, so a coordinator may skip it without
perturbing a single bit of the merged flows.
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence

from ..geometry import DEFAULT_RESOLUTION
from ..index import ARTree, RTree
from ..index.artree import DEFAULT_DELTA_THRESHOLD
from ..indoor.devices import Deployment
from ..indoor.distance import IndoorDistanceOracle
from ..indoor.floorplan import FloorPlan
from ..indoor.poi import Poi, build_poi_index
from ..analysis.contracts import check_flow, contracts_enabled
from ..obs import snapshot_dict, span
from ..obs import disable as obs_disable
from ..obs import enable as obs_enable
from ..obs import reset as obs_reset
from ..storage.base import Mutation, StorageBackend
from ..tracking.records import ObjectId, TrackingRecord
from ..tracking.table import LiveTrackingTable, ObjectTrackingTable
from .caching import LruCache
from .context import (
    DEFAULT_PRESENCE_CACHE_SIZE,
    DEFAULT_REGION_CACHE_SIZE,
    EvaluationContext,
)
from .presence import PresenceEstimator
from .states import interval_context_from_entries, snapshot_context
from .stats import merge_component_stats
from .uncertainty import TopologyChecker, snapshot_mbr

__all__ = ["ShardState", "Contribution", "DEFAULT_POI_SUBSET_CACHE_SIZE"]

#: How many per-subset POI R-trees one shard memoizes (LRU).
DEFAULT_POI_SUBSET_CACHE_SIZE = 16

#: The canonical AR-tree entry order ``(t1, t2, record_id)``.
EntryKey = tuple[float, float, int]

#: One per-(object, POI) presence term of a partial flow:
#: ``(order_key, poi_id, presence)``.
Contribution = tuple[EntryKey, str, float]


class ShardState:
    """One object-partition's engine state behind a narrow facade.

    Constructed exactly like a :class:`~repro.core.engine.FlowEngine`
    (same parameters, same validation), optionally restricted to an
    object-id partition.  See the module docstring for the partial-flow
    and bound semantics.
    """

    def __init__(
        self,
        floorplan: FloorPlan,
        deployment: Deployment,
        ott: ObjectTrackingTable | LiveTrackingTable,
        pois: Sequence[Poi],
        v_max: float,
        resolution: int = DEFAULT_RESOLUTION,
        topology_check: bool = True,
        rtree_fanout: int = 8,
        artree_fanout: int = 16,
        detection_slack: float = 0.0,
        region_cache_size: int = DEFAULT_REGION_CACHE_SIZE,
        presence_cache_size: int = DEFAULT_PRESENCE_CACHE_SIZE,
        live: bool = False,
        artree_delta_threshold: int = DEFAULT_DELTA_THRESHOLD,
        object_ids: frozenset[ObjectId] | None = None,
        topology: TopologyChecker | None = None,
        storage: StorageBackend | None = None,
    ):
        if v_max <= 0:
            raise ValueError("v_max must be positive")
        if detection_slack < 0:
            raise ValueError("detection_slack must be non-negative")
        if not pois:
            raise ValueError("the engine needs at least one POI")
        self.floorplan = floorplan
        self.detection_slack = detection_slack
        self._storage = storage
        self._closed = False
        if storage is not None and not (live or isinstance(ott, LiveTrackingTable)):
            raise ValueError(
                "a storage backend needs a live shard; pass live=True or "
                "a LiveTrackingTable"
            )
        self._live: LiveTrackingTable | None
        restored_tail: list[Mutation] = []
        if storage is not None and storage.generation > 0:
            # Recovery: the store is authoritative.  Bulk-load its
            # snapshot (the AR-tree below does the same), keep the WAL
            # tail aside and replay it through the ingest seam once the
            # index and the caches exist.
            if len(ott):
                raise ValueError(
                    "recovering from a populated storage backend requires "
                    "an empty tracking table; pass records or storage, "
                    "not both"
                )
            self._live = LiveTrackingTable.restore_snapshot(storage)
            restored_tail = storage.replay_since(self._live.generation)
            table: ObjectTrackingTable | LiveTrackingTable = self._live
        else:
            if isinstance(ott, LiveTrackingTable):
                self._live = ott
            elif live:
                # A batch table allows any arrival order; replaying it
                # sorted satisfies in-order at-append validation.
                self._live = LiveTrackingTable(
                    sorted(ott, key=lambda r: (r.t_s, r.t_e, r.record_id))
                )
            else:
                self._live = None
            table = self._live if self._live is not None else ott.freeze()
            if object_ids is not None:
                table = table.partition_view(object_ids)
                if self._live is not None:
                    assert isinstance(table, LiveTrackingTable)
                    self._live = table
            if storage is not None:
                # Attach: seed the pristine store with the shard's
                # current records (open episodes preserved).
                assert isinstance(table, LiveTrackingTable)
                self._live = table.copy_into(storage)
                table = self._live
        self.ott: ObjectTrackingTable | LiveTrackingTable = table
        self.pois = list(pois)
        self.artree = ARTree.build(
            self.ott,
            fanout=artree_fanout,
            delta_threshold=artree_delta_threshold,
        )
        self.poi_tree = build_poi_index(self.pois, max_entries=rtree_fanout)
        self._subset_trees: LruCache[tuple[list[Poi], RTree]] = LruCache(
            DEFAULT_POI_SUBSET_CACHE_SIZE
        )
        self.poi_subset_trees_built = 0
        if topology is None and topology_check:
            topology = TopologyChecker(IndoorDistanceOracle(floorplan))
        self.ctx = EvaluationContext(
            deployment=deployment,
            v_max=v_max,
            estimator=PresenceEstimator(resolution=resolution),
            topology=topology if topology_check else None,
            inner_allowance=v_max * detection_slack,
            rtree_fanout=rtree_fanout,
            region_cache_size=region_cache_size,
            presence_cache_size=presence_cache_size,
        )
        if storage is not None and storage.generation > 0:
            # The context's data generation tracks the persisted counter:
            # adopt the snapshot generation, then replay the WAL tail as
            # ordinary ingest so table, AR-tree delta and cache epochs
            # advance exactly as the crashed writer's did.
            self.ctx.sync_generation(storage.snapshot_generation)
            with span("ingest.replay"):
                for mutation in restored_tail:
                    self._replay_storage_mutation(mutation)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def is_live(self) -> bool:
        """Whether the shard accepts new tracking records."""
        return self._live is not None

    @property
    def generation(self) -> int:
        """The live table's mutation counter (0 for a frozen shard)."""
        return self._live.generation if self._live is not None else 0

    @property
    def storage(self) -> StorageBackend | None:
        """The explicit storage backend this shard recovers from, if any."""
        return self._storage

    # ------------------------------------------------------------------
    # POI subsets
    # ------------------------------------------------------------------

    def resolve_pois(
        self, pois: Sequence[Poi] | None
    ) -> tuple[list[Poi], RTree]:
        """Resolve the query POI set P and its (memoized) R-tree R_P.

        Subset R-trees are memoized per ``poi_id`` tuple — stable across
        process boundaries, unlike object identity — and a hit is
        verified against the requested POIs, so passing different POIs
        under recycled ids rebuilds instead of serving a stale tree.

        Args:
            pois: The query subset, or ``None`` for the shard's universe.

        Returns:
            ``(query POIs, their R-tree)``.

        Raises:
            ValueError: If an empty subset is passed.
        """
        if pois is None:
            return self.pois, self.poi_tree
        subset = list(pois)
        if not subset:
            raise ValueError("the query POI set may not be empty")
        key = tuple(poi.poi_id for poi in subset)
        cached = self._subset_trees.get(key)
        if cached is not None and cached[0] == subset:
            return cached
        tree = build_poi_index(subset, max_entries=self.ctx.rtree_fanout)
        self.poi_subset_trees_built += 1
        self._subset_trees.put(key, (subset, tree))
        return subset, tree

    # ------------------------------------------------------------------
    # Partial flows (the merge-ready iterative scan)
    # ------------------------------------------------------------------

    def partial_flows(
        self, t: float, pois: Sequence[Poi] | None = None
    ) -> tuple[list[Contribution], int]:
        """This shard's snapshot presence contributions at ``t``.

        Args:
            t: The query instant.
            pois: Optional query POI subset (defaults to the universe).

        Returns:
            ``(contributions, candidates)`` — every positive
            per-(object, POI) presence term tagged with the object's
            canonical entry key, plus the shard's candidate-object count.
        """
        _, poi_tree = self.resolve_pois(pois)
        with span("candidates.snapshot"):
            entries = self.artree.point_query(t)
        contributions: list[Contribution] = []
        for entry in entries:
            context = snapshot_context(entry, t)
            with span("ur.snapshot"):
                region = self.ctx.snapshot_region(context)
            with span("presence.accumulate"):
                mbr = region.mbr
                if mbr is None:
                    continue
                fingerprint = self.ctx.snapshot_fingerprint(context)
                order_key = (entry.t1, entry.t2, entry.record.record_id)
                for poi in poi_tree.search(mbr):
                    presence = self.ctx.presence(region, poi, fingerprint)
                    if presence > 0.0:
                        contributions.append((order_key, poi.poi_id, presence))
        self._check_partials(contributions, len(entries))
        return contributions, len(entries)

    def partial_interval_flows(
        self,
        t_start: float,
        t_end: float,
        pois: Sequence[Poi] | None = None,
    ) -> tuple[list[Contribution], int]:
        """This shard's interval presence contributions over the window.

        Each object's contributions are tagged with its *first* (minimum)
        overlapping entry key — the object's position in the monolithic
        interval scan's enumeration order.

        Args:
            t_start: Window start (inclusive).
            t_end: Window end (inclusive).
            pois: Optional query POI subset (defaults to the universe).

        Returns:
            ``(contributions, candidates)`` as in :meth:`partial_flows`.
        """
        _, poi_tree = self.resolve_pois(pois)
        with span("candidates.interval"):
            groups: dict[ObjectId, list[Any]] = {}
            first_key: dict[ObjectId, EntryKey] = {}
            for entry in self.artree.range_query(t_start, t_end):
                object_id = entry.object_id
                if object_id not in groups:
                    groups[object_id] = []
                    first_key[object_id] = (
                        entry.t1,
                        entry.t2,
                        entry.record.record_id,
                    )
                groups[object_id].append(entry)
        contributions: list[Contribution] = []
        for object_id, entries in groups.items():
            context = interval_context_from_entries(
                object_id, entries, t_start, t_end
            )
            with span("ur.interval"):
                uncertainty = self.ctx.interval_uncertainty(context)
            with span("presence.accumulate"):
                region = uncertainty.region
                mbr = region.mbr
                if mbr is None:
                    continue
                fingerprint = self.ctx.interval_fingerprint(uncertainty)
                order_key = first_key[object_id]
                for poi in poi_tree.search(mbr):
                    presence = self.ctx.presence(region, poi, fingerprint)
                    if presence > 0.0:
                        contributions.append((order_key, poi.poi_id, presence))
        self._check_partials(contributions, len(groups))
        return contributions, len(groups)

    @staticmethod
    def _check_partials(
        contributions: Sequence[Contribution], candidates: int
    ) -> None:
        """Contract: each partial flow obeys the count bound locally."""
        if not contracts_enabled():
            return
        flows: dict[str, float] = {}
        for _, poi_id, presence in contributions:
            flows[poi_id] = flows.get(poi_id, 0.0) + presence
        for poi_id, flow in flows.items():
            check_flow(flow, candidates, poi_id=poi_id)

    # ------------------------------------------------------------------
    # Partial bounds (the join's count bound, per shard)
    # ------------------------------------------------------------------

    def partial_bounds(
        self, t: float, pois: Sequence[Poi] | None = None
    ) -> dict[str, int]:
        """Per-POI count bounds on this shard's snapshot flows at ``t``.

        Counts candidate objects whose cheap snapshot MBR (no region
        derivation) intersects each POI box; presence never exceeds 1, so
        the count dominates the shard's exact flow (Section 4.2).

        Args:
            t: The query instant.
            pois: Optional query POI subset (defaults to the universe).

        Returns:
            ``{poi_id: bound}`` containing only POIs with positive bound.
        """
        _, poi_tree = self.resolve_pois(pois)
        bounds: dict[str, int] = {}
        with span("bounds.snapshot"):
            for entry in self.artree.point_query(t):
                context = snapshot_context(entry, t)
                mbr = snapshot_mbr(context, self.ctx.deployment, self.ctx.v_max)
                if mbr is None:
                    continue
                for poi in poi_tree.search(mbr):
                    bounds[poi.poi_id] = bounds.get(poi.poi_id, 0) + 1
        return bounds

    def partial_interval_bounds(
        self,
        t_start: float,
        t_end: float,
        pois: Sequence[Poi] | None = None,
        use_segment_mbrs: bool = True,
    ) -> dict[str, int]:
        """Per-POI count bounds on this shard's interval flows.

        Mirrors the interval join's candidate matching: the overall
        trajectory MBR must intersect the POI box and, with
        ``use_segment_mbrs`` (Section 4.3.2), so must at least one tight
        per-episode MBR.

        Args:
            t_start: Window start (inclusive).
            t_end: Window end (inclusive).
            pois: Optional query POI subset (defaults to the universe).
            use_segment_mbrs: Apply the per-episode MBR refinement.

        Returns:
            ``{poi_id: bound}`` containing only POIs with positive bound.
        """
        _, poi_tree = self.resolve_pois(pois)
        bounds: dict[str, int] = {}
        with span("bounds.interval"):
            groups: dict[ObjectId, list[Any]] = {}
            for entry in self.artree.range_query(t_start, t_end):
                groups.setdefault(entry.object_id, []).append(entry)
            for object_id, entries in groups.items():
                context = interval_context_from_entries(
                    object_id, entries, t_start, t_end
                )
                with span("ur.interval"):
                    uncertainty = self.ctx.interval_uncertainty(context)
                overall_mbr = uncertainty.mbr
                if overall_mbr is None:
                    continue
                segments = (
                    tuple(uncertainty.segment_mbrs())
                    if use_segment_mbrs
                    else None
                )
                for poi_entry in poi_tree.search_entries(overall_mbr):
                    if segments is not None and not any(
                        segment.intersects(poi_entry.mbr)
                        for segment in segments
                    ):
                        continue
                    poi_id = poi_entry.item.poi_id
                    bounds[poi_id] = bounds.get(poi_id, 0) + 1
        return bounds

    # ------------------------------------------------------------------
    # Live ingestion (the coordinator seam — see the context-bypass rule)
    # ------------------------------------------------------------------

    def _require_live(self) -> LiveTrackingTable:
        if self._closed:
            # The live table still holds the closed backend; letting a
            # mutation through would surface as a storage-driver error
            # (e.g. sqlite3.ProgrammingError) instead of the documented
            # terminal state.
            raise RuntimeError(
                "engine is closed: its storage backend has been flushed "
                "and released; closing is terminal"
            )
        if self._live is None:
            raise RuntimeError(
                "this shard is frozen-batch; construct it with live=True "
                "to ingest records"
            )
        return self._live

    def ingest_batch(self, records: Iterable[TrackingRecord]) -> int:
        """Append closed records: table, AR-tree and cache epochs in step.

        Args:
            records: Closed tracking records in per-object time order.

        Records the live table reports as idempotent redeliveries (an
        already-stored ``record_id`` re-sent after a producer crash) are
        skipped without touching the index or the cache epochs.

        Returns:
            The number of records ingested (redeliveries excluded).

        Raises:
            RuntimeError: If the shard is frozen-batch.
            ValueError: If a record fails at-append validation; earlier
                records of the batch stay ingested.
        """
        live = self._require_live()
        count = 0
        with span("ingest.batch"):
            for record in records:
                predecessor = live.last_record(record.object_id)
                if not live.append(record):
                    continue
                self.artree.append_record(record, predecessor)
                self.ctx.note_append(record.object_id)
                count += 1
        return count

    def ingest_open_episode(self, record: TrackingRecord) -> None:
        """Start an open detection episode (``t_e`` still advancing).

        Args:
            record: The episode's initial extent.

        Raises:
            RuntimeError: If the shard is frozen-batch.
            ValueError: If the record fails at-append validation or the
                object already has an open episode.
        """
        live = self._require_live()
        predecessor = live.last_record(record.object_id)
        if not live.append(record, open=True):
            return  # idempotent redelivery: episode already stored
        self.artree.append_record(record, predecessor, open=True)
        self.ctx.note_append(record.object_id)

    def extend_open_episode(
        self, object_id: ObjectId, t_e: float
    ) -> TrackingRecord:
        """Advance an open episode's end time.

        Args:
            object_id: The object whose episode is open.
            t_e: The new end time (must not move backwards).

        Returns:
            The updated (still open) tracking record.

        Raises:
            RuntimeError: If the shard is frozen-batch.
            ValueError: If no episode is open or ``t_e`` retreats.
        """
        live = self._require_live()
        updated = live.extend_episode(object_id, t_e)
        self.artree.patch_tail(updated, open=True)
        self.ctx.note_append(object_id)
        return updated

    def close_open_episode(
        self, object_id: ObjectId, t_e: float | None = None
    ) -> TrackingRecord:
        """Close an open episode, freezing its extent.

        Args:
            object_id: The object whose episode is open.
            t_e: Optional final end time (defaults to the current extent).

        Returns:
            The closed tracking record.

        Raises:
            RuntimeError: If the shard is frozen-batch.
            ValueError: If no episode is open or ``t_e`` retreats.
        """
        live = self._require_live()
        closed = live.close_episode(object_id, t_e)
        self.artree.patch_tail(closed, open=False)
        self.ctx.note_append(object_id)
        return closed

    def _replay_storage_mutation(self, mutation: Mutation) -> None:
        """Recovery's ingest: one WAL mutation through the live seam.

        Identical effects to the corresponding live mutator — table (via
        :meth:`~repro.tracking.table.LiveTrackingTable.replay_mutation`,
        which skips re-persisting), AR-tree delta and cache epochs all
        advance — so a recovered shard is bitwise the shard an
        uninterrupted run would have produced.
        """
        live = self._require_live()
        record = mutation.record
        if mutation.op in ("append", "append_open"):
            predecessor = live.last_record(record.object_id)
            live.replay_mutation(mutation)
            self.artree.append_record(
                record, predecessor, open=mutation.op == "append_open"
            )
        else:
            live.replay_mutation(mutation)
            self.artree.patch_tail(record, open=mutation.op == "extend")
        self.ctx.note_append(record.object_id)

    def compact_storage(self) -> int:
        """Checkpoint: fold the live table's WAL tail into its snapshot.

        Returns:
            The number of mutations folded (see
            :meth:`~repro.tracking.table.LiveTrackingTable.checkpoint`).

        Raises:
            RuntimeError: If the shard is frozen-batch.
        """
        return self._require_live().checkpoint()

    def close_storage(self) -> int:
        """Flush and release the shard's storage backend (idempotent).

        Folds the WAL tail into the snapshot (so a reopen bulk-loads and
        replays nothing), then closes the backend's handle.  A shard
        without storage — or one already closed — is a no-op.  Closing
        is terminal for a durable shard: subsequent mutations (ingest,
        episode ops, checkpoint) raise :class:`RuntimeError` rather than
        touching the released backend; read-only queries keep working.

        Returns:
            The number of WAL mutations folded by the final checkpoint.
        """
        storage = self._storage
        if storage is None:
            return 0
        folded = 0
        live = self._live
        if live is not None:
            folded = live.checkpoint()
        storage.close()
        self._storage = None
        self._closed = True
        return folded

    # ------------------------------------------------------------------
    # Instrumentation
    # ------------------------------------------------------------------

    def stats(self) -> dict[str, int]:
        """The shard's evaluation counters, one dict per component union.

        Returns:
            The merged counters of the evaluation context, the presence
            estimator, the AR-tree and the POI subset-tree memo.
        """
        return merge_component_stats(
            self.ctx.stats_dict(),
            {"estimator_cached_pois": self.ctx.estimator.sample_cache_size},
            self.artree.stats_dict(),
            {"poi_subset_trees_built": self.poi_subset_trees_built},
        )

    def reset_stats(self) -> None:
        """Zero the evaluation counters (cache contents are kept)."""
        self.ctx.reset_stats()

    def obs_control(self, action: str) -> None:
        """Drive this process's obs state: ``enable``/``disable``/``reset``.

        Exists so a cross-process executor can broadcast obs switches to
        shard-pinned workers; in-process callers may use :mod:`repro.obs`
        directly.

        Args:
            action: One of ``"enable"``, ``"disable"``, ``"reset"``.

        Raises:
            ValueError: For an unknown action.
        """
        if action == "enable":
            obs_enable()
        elif action == "disable":
            obs_disable()
        elif action == "reset":
            obs_reset()
        else:
            raise ValueError(f"unknown obs action {action!r}")

    def obs_snapshot(self) -> dict[str, Any]:
        """This process's obs snapshot (spans + metrics), mergeable."""
        return snapshot_dict()
