"""The iterative query algorithms (paper, Algorithms 1 and 4).

The straightforward strategy: derive the uncertainty region of *every*
object relevant to the query time (point) or window (range query on the
AR-tree), look up the POIs the region's bounding box overlaps in the POI
R-tree, accumulate presence into per-POI flows, and rank.

Besides serving as the paper's baseline, the flow maps these functions
produce are the reference the join algorithms are validated against.

All functions take an :class:`~repro.core.context.EvaluationContext`,
which carries the evaluation parameters (deployment, ``v_max``, estimator,
topology, allowance) and memoizes region construction and presence
quadrature — repeated queries over the same data reuse both.

With :mod:`repro.obs` enabled, each run is traced per phase: candidate
selection (``candidates.snapshot`` / ``candidates.interval``), per-object
uncertainty-region resolution (``ur.snapshot`` / ``ur.interval``) and
presence accumulation (``presence.accumulate``); the context adds the
finer ``ur.build.<kind>`` and ``presence.quadrature`` spans underneath.
"""

from __future__ import annotations

from typing import Hashable, Sequence

from ...analysis.contracts import check_flow, contracts_enabled
from ...geometry import Region
from ...index import ARTree, RTree
from ...indoor.poi import Poi
from ...obs import span
from ..context import EvaluationContext
from ..queries import TopKResult, rank_top_k
from ..states import interval_contexts, snapshot_contexts

__all__ = [
    "snapshot_flows",
    "interval_flows",
    "iterative_snapshot",
    "iterative_interval",
]


def _accumulate(
    flows: dict[str, float],
    region: Region,
    fingerprint: Hashable | None,
    poi_tree: RTree,
    ctx: EvaluationContext,
) -> None:
    mbr = region.mbr
    if mbr is None:
        return
    for poi in poi_tree.search(mbr):
        presence = ctx.presence(region, poi, fingerprint)
        if presence > 0.0:
            flows[poi.poi_id] = flows.get(poi.poi_id, 0.0) + presence


def snapshot_flows(
    artree: ARTree,
    poi_tree: RTree,
    ctx: EvaluationContext,
    t: float,
) -> dict[str, float]:
    """``Φ_t(p)`` for every POI with non-zero flow (Definition 2)."""
    flows: dict[str, float] = {}
    candidates = 0
    with span("candidates.snapshot"):
        contexts = list(snapshot_contexts(artree, t))
    for context in contexts:
        candidates += 1
        with span("ur.snapshot"):
            region = ctx.snapshot_region(context)
        with span("presence.accumulate"):
            _accumulate(
                flows, region, ctx.snapshot_fingerprint(context), poi_tree, ctx
            )
    if contracts_enabled():
        for poi_id, flow in flows.items():
            check_flow(flow, candidates, poi_id=poi_id)
    return flows


def interval_flows(
    artree: ARTree,
    poi_tree: RTree,
    ctx: EvaluationContext,
    t_start: float,
    t_end: float,
) -> dict[str, float]:
    """``Φ_[t_s, t_e](p)`` for every POI with non-zero flow."""
    flows: dict[str, float] = {}
    candidates = 0
    with span("candidates.interval"):
        contexts = list(interval_contexts(artree, t_start, t_end))
    for context in contexts:
        candidates += 1
        with span("ur.interval"):
            uncertainty = ctx.interval_uncertainty(context)
        with span("presence.accumulate"):
            _accumulate(
                flows,
                uncertainty.region,
                ctx.interval_fingerprint(uncertainty),
                poi_tree,
                ctx,
            )
    if contracts_enabled():
        for poi_id, flow in flows.items():
            check_flow(flow, candidates, poi_id=poi_id)
    return flows


def iterative_snapshot(
    artree: ARTree,
    poi_tree: RTree,
    pois: Sequence[Poi],
    ctx: EvaluationContext,
    t: float,
    k: int,
) -> TopKResult:
    """Algorithm 1: compute every snapshot flow, then take the top k."""
    flows = snapshot_flows(artree, poi_tree, ctx, t)
    return rank_top_k(flows, pois, k)


def iterative_interval(
    artree: ARTree,
    poi_tree: RTree,
    pois: Sequence[Poi],
    ctx: EvaluationContext,
    t_start: float,
    t_end: float,
    k: int,
) -> TopKResult:
    """Algorithm 4: compute every interval flow, then take the top k."""
    flows = interval_flows(artree, poi_tree, ctx, t_start, t_end)
    return rank_top_k(flows, pois, k)
