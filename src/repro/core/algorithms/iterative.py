"""The iterative query algorithms (paper, Algorithms 1 and 4).

The straightforward strategy: derive the uncertainty region of *every*
object relevant to the query time (point) or window (range query on the
AR-tree), look up the POIs the region's bounding box overlaps in the POI
R-tree, accumulate presence into per-POI flows, and rank.

Besides serving as the paper's baseline, the flow maps these functions
produce are the reference the join algorithms are validated against.
"""

from __future__ import annotations

from typing import Sequence

from ...geometry import Region
from ...index import ARTree, RTree
from ...indoor.devices import Deployment
from ...indoor.poi import Poi
from ..presence import PresenceEstimator
from ..queries import TopKResult, rank_top_k
from ..states import interval_contexts, snapshot_contexts
from ..uncertainty import (
    TopologyChecker,
    interval_uncertainty,
    snapshot_region,
)

__all__ = [
    "snapshot_flows",
    "interval_flows",
    "iterative_snapshot",
    "iterative_interval",
]


def _accumulate(
    flows: dict[str, float],
    region: Region,
    poi_tree: RTree,
    estimator: PresenceEstimator,
) -> None:
    mbr = region.mbr
    if mbr is None:
        return
    for poi in poi_tree.search(mbr):
        presence = estimator.presence(region, poi)
        if presence > 0.0:
            flows[poi.poi_id] = flows.get(poi.poi_id, 0.0) + presence


def snapshot_flows(
    artree: ARTree,
    poi_tree: RTree,
    deployment: Deployment,
    v_max: float,
    t: float,
    estimator: PresenceEstimator,
    topology: TopologyChecker | None = None,
    inner_allowance: float = 0.0,
) -> dict[str, float]:
    """``Φ_t(p)`` for every POI with non-zero flow (Definition 2)."""
    flows: dict[str, float] = {}
    for context in snapshot_contexts(artree, t):
        region = snapshot_region(
            context, deployment, v_max, topology, inner_allowance
        )
        _accumulate(flows, region, poi_tree, estimator)
    return flows


def interval_flows(
    artree: ARTree,
    poi_tree: RTree,
    deployment: Deployment,
    v_max: float,
    t_start: float,
    t_end: float,
    estimator: PresenceEstimator,
    topology: TopologyChecker | None = None,
    inner_allowance: float = 0.0,
) -> dict[str, float]:
    """``Φ_[t_s, t_e](p)`` for every POI with non-zero flow."""
    flows: dict[str, float] = {}
    for context in interval_contexts(artree, t_start, t_end):
        uncertainty = interval_uncertainty(
            context, deployment, v_max, topology, inner_allowance
        )
        _accumulate(flows, uncertainty.region, poi_tree, estimator)
    return flows


def iterative_snapshot(
    artree: ARTree,
    poi_tree: RTree,
    pois: Sequence[Poi],
    deployment: Deployment,
    v_max: float,
    t: float,
    k: int,
    estimator: PresenceEstimator,
    topology: TopologyChecker | None = None,
    inner_allowance: float = 0.0,
) -> TopKResult:
    """Algorithm 1: compute every snapshot flow, then take the top k."""
    flows = snapshot_flows(
        artree, poi_tree, deployment, v_max, t, estimator, topology,
        inner_allowance,
    )
    return rank_top_k(flows, pois, k)


def iterative_interval(
    artree: ARTree,
    poi_tree: RTree,
    pois: Sequence[Poi],
    deployment: Deployment,
    v_max: float,
    t_start: float,
    t_end: float,
    k: int,
    estimator: PresenceEstimator,
    topology: TopologyChecker | None = None,
    inner_allowance: float = 0.0,
) -> TopKResult:
    """Algorithm 4: compute every interval flow, then take the top k."""
    flows = interval_flows(
        artree, poi_tree, deployment, v_max, t_start, t_end, estimator,
        topology, inner_allowance,
    )
    return rank_top_k(flows, pois, k)
