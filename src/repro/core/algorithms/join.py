"""The join-based query algorithms (paper, Algorithms 2, 3 and 5).

Instead of deriving every object's uncertainty region up front, the join
algorithms:

1. build an in-memory **aggregate R-tree** ``R_I`` over cheap object MBRs
   (no region derivation needed for the MBR);
2. join the POI R-tree ``R_P`` against ``R_I`` best-first, driven by a
   priority queue keyed on **flow upper bounds** — the number of objects in
   the joined ``R_I`` entries, valid because presence never exceeds 1;
3. derive uncertainty regions (the expensive part: topology-checked region
   construction and presence quadrature) *only* for objects that survive
   MBR pruning against high-priority POIs, caching them per object
   (the paper's ``H_U``);
4. stop as soon as ``k`` POIs with exactly-computed flows outrank every
   remaining upper bound.

For interval queries the improved variant (Section 4.3.2) additionally
stores a series of tight per-episode MBRs with each object and requires at
least one of them — not just the large overall trajectory box, which is
mostly dead space — to intersect a POI before the object enters its join
list.
"""

from __future__ import annotations

import heapq
from itertools import count
from typing import Callable, Hashable, Sequence

from ...analysis.contracts import check_flow, check_upper_bound, contracts_enabled
from ...geometry import Mbr, Region
from ...index import ARTree, AggregateRTree, RTree, RTreeEntry
from ...indoor.poi import Poi
from ...obs import counter, obs_enabled, span
from ..context import EvaluationContext
from ..presence import PresenceEstimator
from ..queries import RankedPoi, TopKResult, rank_top_k
from ..states import interval_contexts, snapshot_contexts
from ..uncertainty import snapshot_mbr

__all__ = ["JoinObject", "join_snapshot", "join_interval"]


class JoinObject:
    """An object as seen by the join: a cheap MBR plus a lazy region.

    The region (and with it the topology-checked constraints) is only
    built when some presence actually needs it — this laziness is the
    entire point of the join algorithms.  ``segment_mbrs`` carries the
    improved interval join's fine-grained boxes (``None`` for snapshot
    queries or when the improvement is disabled).  ``region_key`` is the
    region's presence-cache fingerprint, when known.  ``order_key`` is the
    object's position in the canonical candidate enumeration (the AR-tree
    entry order); leaf flows are accumulated in this order so the join sums
    presences exactly like the iterative baseline — and like the sharded
    merge — making all three paths bitwise comparable.
    """

    __slots__ = (
        "object_id",
        "mbr",
        "segment_mbrs",
        "region_key",
        "order_key",
        "_factory",
        "_region",
    )

    def __init__(
        self,
        object_id: str,
        mbr: Mbr,
        region_factory: Callable[[], Region],
        segment_mbrs: tuple[Mbr, ...] | None = None,
        region_key: Hashable | None = None,
        order_key: int = 0,
    ):
        self.object_id = object_id
        self.mbr = mbr
        self.segment_mbrs = segment_mbrs
        self.region_key = region_key
        self.order_key = order_key
        self._factory = region_factory
        self._region: Region | None = None

    def region(self) -> Region:
        """The uncertainty region, derived on first use (the paper's H_U)."""
        if self._region is None:
            self._region = self._factory()
        return self._region

    def matches(self, mbr: Mbr, use_segment_mbrs: bool) -> bool:
        """MBR test against a POI box, with the finer segment-MBR check."""
        if not self.mbr.intersects(mbr):
            return False
        if use_segment_mbrs and self.segment_mbrs is not None:
            return any(segment.intersects(mbr) for segment in self.segment_mbrs)
        return True


def _match_entries(
    poi_mbr: Mbr,
    candidates: Sequence[RTreeEntry],
    tree: AggregateRTree,
    use_segment_mbrs: bool,
) -> tuple[list[RTreeEntry], int]:
    """Filter R_I entries against a POI box; return (join list, count bound)."""
    matched: list[RTreeEntry] = []
    upper_bound = 0
    for entry in candidates:
        if entry.is_leaf_entry:
            if entry.item.matches(poi_mbr, use_segment_mbrs):
                matched.append(entry)
                upper_bound += 1
        elif entry.mbr.intersects(poi_mbr):
            matched.append(entry)
            upper_bound += tree.count(entry)
    return matched, upper_bound


def _topk_join(
    poi_tree: RTree,
    pois: Sequence[Poi],
    objects: Sequence[JoinObject],
    k: int,
    estimator: PresenceEstimator | None = None,
    use_segment_mbrs: bool = False,
    rtree_fanout: int = 8,
    presence: Callable[[JoinObject, Poi], float] | None = None,
) -> TopKResult:
    """The shared best-first R_P x R_I join (Algorithms 2/5 unified).

    Presence is evaluated through ``presence(obj, poi)`` when given (the
    context-based entry points pass a memoizing closure); otherwise through
    ``estimator`` directly.
    """
    if k < 1:
        raise ValueError("k must be positive")
    if presence is None:
        if estimator is None:
            raise ValueError("either an estimator or a presence function is needed")
        presence = lambda obj, poi: estimator.presence(obj.region(), poi)
    if not objects or len(poi_tree) == 0:
        return rank_top_k({}, pois, k)

    with span("join.build_ri"):
        object_tree = AggregateRTree.build(
            [(obj.mbr, obj) for obj in objects], max_entries=rtree_fanout
        )
    sequence = count()
    heap: list[
        tuple[float, int, str, int, RTreeEntry, list[RTreeEntry] | None]
    ] = []

    def push(
        entry: RTreeEntry, join_list: list[RTreeEntry] | None, priority: float
    ) -> None:
        # Tie-break: at equal priority refine bounds (kind 0) before
        # confirming exact flows (kind 1), and confirm equal exact flows in
        # poi_id order.  Both choices make the pop order — hence the
        # returned ranking — a deterministic function of the flows alone,
        # matching ``rank_top_k``'s ``(-flow, poi_id)`` order so the
        # iterative baseline and the sharded merge agree bit for bit.
        if join_list is None:
            kind, tie = 1, str(entry.item.poi_id)
        else:
            kind, tie = 0, ""
        heapq.heappush(
            heap, (-priority, kind, tie, next(sequence), entry, join_list)
        )

    for poi_entry in poi_tree.root.entries:
        join_list, upper_bound = _match_entries(
            poi_entry.mbr, object_tree.root.entries, object_tree, use_segment_mbrs
        )
        if join_list:
            push(poi_entry, join_list, upper_bound)

    with span("join.bound_refine"):
        confirmed = _drain_heap(
            heap,
            push,
            object_tree,
            k,
            use_segment_mbrs,
            presence,
        )

    if len(confirmed) < k:
        # Queue exhausted: every remaining POI has zero flow; fill the
        # k-subset deterministically.
        found = {entry.poi.poi_id for entry in confirmed}
        for poi in sorted(pois, key=lambda p: p.poi_id):
            if len(confirmed) >= k:
                break
            if poi.poi_id not in found:
                confirmed.append(RankedPoi(poi=poi, flow=0.0))
    return TopKResult(entries=tuple(confirmed[:k]))


def _drain_heap(
    heap: list[tuple[float, int, str, int, RTreeEntry, list[RTreeEntry] | None]],
    push: Callable[[RTreeEntry, list[RTreeEntry] | None, float], None],
    object_tree: AggregateRTree,
    k: int,
    use_segment_mbrs: bool,
    presence: Callable[[JoinObject, Poi], float],
) -> list[RankedPoi]:
    """The best-first refinement loop of Algorithms 2/3/5.

    Pops the highest upper bound, refines it (expand R_P/R_I entries or
    compute the exact flow) and stops once ``k`` POIs with exact flows
    outrank every remaining bound.  Split out so the whole bound-driven
    phase sits under one ``join.bound_refine`` span.
    """
    instrumented = obs_enabled()
    confirmed: list[RankedPoi] = []
    while heap and len(confirmed) < k:
        negative_priority, _, _, _, poi_entry, join_list = heapq.heappop(heap)
        if instrumented:
            counter("join.heap_pops", unit="pops").inc()
        if join_list is None:
            # Exact flow already computed and it outranks every remaining
            # upper bound: confirmed.
            confirmed.append(
                RankedPoi(poi=poi_entry.item, flow=-negative_priority)
            )
            continue
        lists_are_leaf = join_list[0].is_leaf_entry
        if poi_entry.is_leaf_entry:
            if lists_are_leaf:
                poi: Poi = poi_entry.item
                flow = 0.0
                # Canonical accumulation order (see JoinObject.order_key):
                # float addition is not associative, so summing in R-tree
                # traversal order would drift from the iterative baseline
                # in the last bits.
                for object_entry in sorted(
                    join_list, key=lambda e: e.item.order_key
                ):
                    flow += presence(object_entry.item, poi)
                if contracts_enabled():
                    # The count bound the queue scheduled this POI under
                    # must dominate the refined flow, or best-first order
                    # was wrong (Section 4.2's correctness argument).
                    check_flow(flow, len(join_list), poi_id=poi.poi_id)
                    check_upper_bound(
                        -negative_priority, flow, poi_id=poi.poi_id
                    )
                if flow > 0.0:
                    push(poi_entry, None, flow)
            else:
                children = [
                    child
                    for object_entry in join_list
                    for child in object_entry.child.entries
                ]
                refined, upper_bound = _match_entries(
                    poi_entry.mbr, children, object_tree, use_segment_mbrs
                )
                if refined:
                    push(poi_entry, refined, upper_bound)
        else:
            if lists_are_leaf:
                candidates = join_list
            else:
                candidates = [
                    child
                    for object_entry in join_list
                    for child in object_entry.child.entries
                ]
            for child_entry in poi_entry.child.entries:
                refined, upper_bound = _match_entries(
                    child_entry.mbr, candidates, object_tree, use_segment_mbrs
                )
                if refined:
                    push(child_entry, refined, upper_bound)
    return confirmed


# ----------------------------------------------------------------------
# Snapshot join (Algorithm 2)
# ----------------------------------------------------------------------


def _ctx_presence(
    ctx: EvaluationContext,
) -> Callable[[JoinObject, Poi], float]:
    """Presence through the context's memo layer, keyed per join object."""
    return lambda obj, poi: ctx.presence(obj.region(), poi, obj.region_key)


def join_snapshot(
    artree: ARTree,
    poi_tree: RTree,
    pois: Sequence[Poi],
    ctx: EvaluationContext,
    t: float,
    k: int,
) -> TopKResult:
    """Algorithm 2: aggregate-R-tree join for the snapshot query."""
    objects: list[JoinObject] = []
    with span("candidates.snapshot"):
        for order, context in enumerate(snapshot_contexts(artree, t)):
            mbr = snapshot_mbr(context, ctx.deployment, ctx.v_max)
            if mbr is None:
                continue
            objects.append(
                JoinObject(
                    object_id=context.object_id,
                    mbr=mbr,
                    region_factory=lambda sctx=context: ctx.snapshot_region(
                        sctx
                    ),
                    region_key=ctx.snapshot_fingerprint(context),
                    order_key=order,
                )
            )
    return _topk_join(
        poi_tree,
        pois,
        objects,
        k,
        rtree_fanout=ctx.rtree_fanout,
        presence=_ctx_presence(ctx),
    )


# ----------------------------------------------------------------------
# Interval join (Algorithm 5 + Section 4.3.2 improvements)
# ----------------------------------------------------------------------


def join_interval(
    artree: ARTree,
    poi_tree: RTree,
    pois: Sequence[Poi],
    ctx: EvaluationContext,
    t_start: float,
    t_end: float,
    k: int,
    use_segment_mbrs: bool = True,
) -> TopKResult:
    """Algorithm 5: the interval join, with finer per-episode MBRs.

    ``use_segment_mbrs=False`` reproduces the unimproved variant (one
    coarse MBR per object trajectory) for ablation.
    """
    objects: list[JoinObject] = []
    with span("candidates.interval"):
        for order, context in enumerate(interval_contexts(artree, t_start, t_end)):
            with span("ur.interval"):
                uncertainty = ctx.interval_uncertainty(context)
            overall_mbr = uncertainty.mbr
            if overall_mbr is None:
                continue
            segments = (
                tuple(uncertainty.segment_mbrs()) if use_segment_mbrs else None
            )
            objects.append(
                JoinObject(
                    object_id=context.object_id,
                    mbr=overall_mbr,
                    region_factory=lambda u=uncertainty: u.region,
                    segment_mbrs=segments,
                    region_key=ctx.interval_fingerprint(uncertainty),
                    order_key=order,
                )
            )
    return _topk_join(
        poi_tree,
        pois,
        objects,
        k,
        use_segment_mbrs=use_segment_mbrs,
        rtree_fanout=ctx.rtree_fanout,
        presence=_ctx_presence(ctx),
    )
