"""Query processing algorithms (paper, Section 4)."""

from .iterative import (
    interval_flows,
    iterative_interval,
    iterative_snapshot,
    snapshot_flows,
)
from .join import JoinObject, join_interval, join_snapshot

__all__ = [
    "JoinObject",
    "interval_flows",
    "iterative_interval",
    "iterative_snapshot",
    "join_interval",
    "join_snapshot",
    "snapshot_flows",
]
