"""`ShardedFlowEngine` — N object-partitioned shards behind one facade.

The paper's flow score is a per-object sum, ``Φ(p) = Σ_o φ(o)``
(Definition 2), so the engine scales out by partitioning *objects*: each
of N :class:`~repro.core.shard.ShardState` partitions owns a disjoint
slice of the tracking table (selected by a stable hash of the object id),
its own AR-tree and its own cache slice.  The coordinator fans queries
out over an :class:`Executor`, merges the shards' partial results and
re-ranks — returning **bit-identical** top-k results to a monolithic
:class:`~repro.core.engine.FlowEngine` over the same data:

* **Iterative queries** merge the shards' raw per-(object, POI) presence
  contributions, re-sorted on the canonical AR-tree entry key, and
  accumulate them in one global pass — the exact float-addition order of
  the monolithic scan.
* **Join queries** first fan out the cheap per-POI count bounds
  (Section 4.2), then refine POIs in rounds — a POI is refined while its
  summed bound still reaches the current k-th exact flow — skipping every
  shard whose bounds are all zero for the POIs still in play (a skipped
  shard could only add exact zeros).  ``shard_prunes`` in :meth:`stats`
  counts those skipped fan-outs; the refined flows go through the same
  canonical contribution merge, so ranking and flows match the monolith.

Executors are pluggable: :class:`SerialExecutor` runs the shards in the
calling process (the default; zero overhead, still prunes), and
:class:`ForkedProcessExecutor` pins each shard to a forked worker process
for real parallelism on multi-core hosts.  Live ingestion routes each
record to its owning shard and rolls only that shard's cache epochs.

Typical use::

    engine = ShardedFlowEngine(plan, deployment, ott, pois,
                               v_max=1.1, num_shards=4)
    top = engine.snapshot_topk(t=3600.0, k=10)
    print(engine.stats()["shard_prunes"])
"""

from __future__ import annotations

import multiprocessing
import zlib
from multiprocessing.connection import Connection
from pathlib import Path
from typing import Any, Callable, Iterable, Protocol, Sequence

from ..analysis.contracts import check_flow, contracts_enabled
from ..storage.base import StorageBackend
from ..storage.sqlite import sqlite_shard_stores
from ..indoor.devices import Deployment
from ..indoor.distance import IndoorDistanceOracle
from ..indoor.floorplan import FloorPlan
from ..indoor.poi import Poi
from ..obs import counter, merge_snapshot_dicts, obs_enabled, snapshot_dict, span
from ..obs import disable as obs_disable
from ..obs import enable as obs_enable
from ..obs import reset as obs_reset
from ..tracking.records import ObjectId, TrackingRecord
from ..tracking.table import LiveTrackingTable, ObjectTrackingTable
from .caching import shard_cache_capacity
from .context import DEFAULT_PRESENCE_CACHE_SIZE, DEFAULT_REGION_CACHE_SIZE
from .queries import TopKResult, rank_top_k, rank_top_k_by_density
from .shard import Contribution, ShardState
from .stats import merge_shard_stats
from .uncertainty import TopologyChecker

__all__ = [
    "Executor",
    "ForkedProcessExecutor",
    "SerialExecutor",
    "ShardCall",
    "ShardedFlowEngine",
    "shard_of",
]

_METHODS = ("join", "iterative")

#: One routed shard invocation: ``(shard index, method name, args, kwargs)``.
ShardCall = tuple[int, str, tuple[Any, ...], dict[str, Any]]


def shard_of(object_id: ObjectId, num_shards: int) -> int:
    """The shard index owning ``object_id`` (stable across processes).

    Uses CRC-32 of the id's string form rather than :func:`hash`, whose
    per-process salting (``PYTHONHASHSEED``) would scatter the same
    object to different shards in different runs.

    Args:
        object_id: The tracked object's id.
        num_shards: The partition count.

    Returns:
        An index in ``range(num_shards)``.

    Raises:
        ValueError: If ``num_shards < 1``.
    """
    if num_shards < 1:
        raise ValueError("num_shards must be positive")
    return zlib.crc32(str(object_id).encode("utf-8")) % num_shards


class Executor(Protocol):
    """Where shard calls run: in-process, forked workers, or custom.

    An executor owns N shard endpoints (index 0..N-1) and evaluates
    routed method calls against them.  The coordinator only ever talks to
    shards through this seam, so distribution strategies are swappable
    without touching query logic.
    """

    #: Whether the shards execute inside the calling process.  In-process
    #: executors share the caller's :mod:`repro.obs` state; cross-process
    #: ones keep per-worker state the coordinator must merge.
    in_process: bool

    def run(self, calls: Sequence[ShardCall]) -> list[Any]:
        """Evaluate routed calls; results align with ``calls`` by index."""
        ...

    def close(self) -> None:
        """Release executor resources (idempotent)."""
        ...


class SerialExecutor:
    """Runs every shard call sequentially in the calling process.

    The default executor: no serialization, no worker management, and the
    shards share the caller's obs tracer/registry.  Join-side shard
    pruning still applies, so even the serial deployment skips work.
    """

    in_process = True

    def __init__(self, shards: Sequence[ShardState]):
        self._shards = list(shards)

    def run(self, calls: Sequence[ShardCall]) -> list[Any]:
        """Evaluate the calls one by one, in order."""
        return [
            getattr(self._shards[index], method)(*args, **kwargs)
            for index, method, args, kwargs in calls
        ]

    def close(self) -> None:
        """Nothing to release."""


def _shard_worker(connection: Connection, shard: ShardState) -> None:
    """A forked worker's loop: serve one shard until the sentinel."""
    try:
        while True:
            message = connection.recv()
            if message is None:
                break
            method, args, kwargs = message
            try:
                payload: tuple[bool, Any] = (
                    True,
                    getattr(shard, method)(*args, **kwargs),
                )
            except Exception as exc:  # re-raised by the parent
                payload = (False, exc)
            try:
                connection.send(payload)
            except Exception:
                connection.send(
                    (
                        False,
                        RuntimeError(
                            f"shard method {method!r} produced an "
                            "unpicklable result or error"
                        ),
                    )
                )
    except EOFError:  # parent went away; exit quietly
        pass
    finally:
        connection.close()


class ForkedProcessExecutor:
    """Pins each shard to a forked worker process (POSIX only).

    Workers receive their :class:`ShardState` through fork-time
    copy-on-write memory — nothing is pickled at start-up — and serve
    method calls over a pipe, so each shard's AR-tree and caches stay
    warm in their own process.  Requests issued in one :meth:`run` batch
    execute concurrently across workers.

    Every worker accumulates its own :mod:`repro.obs` state; the
    coordinator's :meth:`ShardedFlowEngine.obs_snapshot` merges it with
    the parent's.
    """

    in_process = False

    def __init__(self, shards: Sequence[ShardState]):
        if "fork" not in multiprocessing.get_all_start_methods():
            raise RuntimeError(
                "ForkedProcessExecutor needs the 'fork' start method "
                "(POSIX); use SerialExecutor on this platform"
            )
        context = multiprocessing.get_context("fork")
        self._connections: list[Connection] = []
        self._processes: list[multiprocessing.process.BaseProcess] = []
        self._closed = False
        for shard in shards:
            parent_end, child_end = context.Pipe()
            process = context.Process(
                target=_shard_worker, args=(child_end, shard), daemon=True
            )
            process.start()
            child_end.close()
            self._connections.append(parent_end)
            self._processes.append(process)

    def run(self, calls: Sequence[ShardCall]) -> list[Any]:
        """Dispatch the batch, then collect responses in call order.

        All requests are written before any response is read, so calls
        routed to different workers overlap in wall-clock time; a
        worker's own requests stay FIFO on its pipe.  Errors are
        collected for the whole batch first (keeping every pipe in sync)
        and the first one re-raised.
        """
        if self._closed:
            raise RuntimeError("executor is closed")
        for index, method, args, kwargs in calls:
            try:
                self._connections[index].send((method, args, kwargs))
            except (BrokenPipeError, OSError) as exc:
                raise self._worker_failure(index, exc) from exc
        responses = []
        for index, _, _, _ in calls:
            try:
                responses.append(self._connections[index].recv())
            except (EOFError, OSError) as exc:
                raise self._worker_failure(index, exc) from exc
        for ok, payload in responses:
            if not ok:
                raise payload
        return [payload for _, payload in responses]

    def _worker_failure(self, index: int, exc: BaseException) -> RuntimeError:
        """A descriptive error for a worker that died mid-batch.

        The pipe raising ``EOFError``/``BrokenPipeError`` means the
        worker process itself is gone (killed, OOM, hard crash) — there
        is no original exception to surface, so name the worker and its
        exit code instead.
        """
        process = self._processes[index]
        process.join(timeout=1.0)
        return RuntimeError(
            f"shard worker {index} died mid-batch "
            f"(exit code {process.exitcode}): {exc!r}"
        )

    def close(self) -> None:
        """Send every worker the shutdown sentinel and join it.

        Workers that ignore the sentinel (wedged, or already broken) are
        terminated after the join timeout, so close() never leaves a
        zombie behind.
        """
        if self._closed:
            return
        self._closed = True
        for connection in self._connections:
            try:
                connection.send(None)
            except (BrokenPipeError, OSError):
                pass
        for process in self._processes:
            process.join(timeout=5.0)
            if process.is_alive():  # pragma: no cover - wedged worker
                process.terminate()
                process.join(timeout=1.0)
        for connection in self._connections:
            connection.close()

    def __del__(self) -> None:  # best-effort cleanup
        try:
            self.close()
        except Exception:
            pass


class ShardedFlowEngine:
    """N object-partitioned shards presenting the engine query surface.

    Construction mirrors :class:`~repro.core.engine.FlowEngine` (same
    data and evaluation parameters) plus the scale-out knobs.  The
    monolith's cache budget is *split* across shards
    (:func:`~repro.core.caching.shard_cache_capacity`), and the indoor
    topology checker is built once and shared, so an N-shard deployment
    keeps roughly the monolith's memory footprint.

    Query results are bit-identical to the monolith's — see the module
    docstring for how the merges preserve float-addition order.

    Parameters
    ----------
    floorplan, deployment, ott, pois, v_max, **engine_params:
        As for :class:`~repro.core.engine.FlowEngine`; ``engine_params``
        accepts the same keyword arguments (resolution, topology_check,
        fanouts, detection_slack, cache sizes, live,
        artree_delta_threshold).
    num_shards:
        The partition count N (``1`` reproduces the monolith exactly,
        merge path included).
    executor:
        ``"serial"`` (default), ``"process"``, or a callable mapping the
        built shard list to an :class:`Executor`.
    storage:
        Per-shard durable stores: a directory (``str`` / ``Path``) that
        gets one SQLite database per shard
        (:func:`~repro.storage.sqlite.sqlite_shard_stores` layout), or a
        ``shard_index -> StorageBackend`` factory.  Requires a live
        fleet.  Pristine stores are seeded with each shard's partition;
        populated ones recover it (``ott`` must then be empty and the
        shard count must match the one the stores were written under —
        the partition is the same ``crc32(object_id) % N``).
    """

    def __init__(
        self,
        floorplan: FloorPlan,
        deployment: Deployment,
        ott: ObjectTrackingTable | LiveTrackingTable,
        pois: Sequence[Poi],
        v_max: float,
        num_shards: int = 2,
        executor: str | Callable[[Sequence[ShardState]], Executor] = "serial",
        storage: str | Path | Callable[[int], StorageBackend] | None = None,
        **engine_params: Any,
    ):
        if num_shards < 1:
            raise ValueError("num_shards must be positive")
        self.num_shards = num_shards
        self.pois = list(pois)
        self._live = bool(engine_params.get("live", False)) or isinstance(
            ott, LiveTrackingTable
        )
        self._shard_prunes = 0
        self._generation = 0
        self._closed = False
        params = dict(engine_params)
        params["region_cache_size"] = shard_cache_capacity(
            params.get("region_cache_size", DEFAULT_REGION_CACHE_SIZE),
            num_shards,
        )
        params["presence_cache_size"] = shard_cache_capacity(
            params.get("presence_cache_size", DEFAULT_PRESENCE_CACHE_SIZE),
            num_shards,
        )
        topology: TopologyChecker | None = None
        if params.get("topology_check", True):
            # One shared oracle: the door-graph distances depend only on
            # the floor plan, not on the object partition.
            topology = TopologyChecker(IndoorDistanceOracle(floorplan))
        stores: Callable[[int], StorageBackend] | None
        if storage is None:
            stores = None
        else:
            if not self._live:
                raise ValueError(
                    "per-shard storage needs a live fleet; pass live=True "
                    "or a LiveTrackingTable"
                )
            stores = (
                storage
                if callable(storage)
                else sqlite_shard_stores(storage)
            )
        all_ids = ott.object_ids
        self._shards = [
            ShardState(
                floorplan=floorplan,
                deployment=deployment,
                ott=ott,
                pois=pois,
                v_max=v_max,
                object_ids=frozenset(
                    object_id
                    for object_id in all_ids
                    if shard_of(object_id, num_shards) == index
                ),
                topology=topology,
                storage=None if stores is None else stores(index),
                **params,
            )
            for index in range(num_shards)
        ]
        if stores is not None:
            for index, shard in enumerate(self._shards):
                for object_id in shard.ott.object_ids:
                    owner = shard_of(object_id, num_shards)
                    if owner != index:
                        raise ValueError(
                            f"shard {index}'s store holds object "
                            f"{object_id!r}, which crc32-partitions to "
                            f"shard {owner} of {num_shards}; was the store "
                            "written under a different shard count?"
                        )
            # Recovered mutations count as routed: the coordinator's
            # generation resumes at the fleet's persisted total.
            self._generation = sum(
                shard.generation for shard in self._shards
            )
        if callable(executor):
            self._executor: Executor = executor(self._shards)
        elif executor == "serial":
            self._executor = SerialExecutor(self._shards)
        elif executor == "process":
            self._executor = ForkedProcessExecutor(self._shards)
        else:
            raise ValueError(
                f"unknown executor {executor!r}; expected 'serial', "
                "'process' or a factory callable"
            )

    # ------------------------------------------------------------------
    # Introspection / lifecycle
    # ------------------------------------------------------------------

    @property
    def shards(self) -> list[ShardState]:
        """The construction-time shard states.

        Authoritative for in-process executors; with a cross-process
        executor these are the parent's pre-fork copies and do **not**
        reflect worker-side mutation.
        """
        return self._shards

    @property
    def executor(self) -> Executor:
        """The executor evaluating routed shard calls."""
        return self._executor

    @property
    def is_live(self) -> bool:
        """Whether the fleet accepts new tracking records."""
        return self._live

    @property
    def generation(self) -> int:
        """Total mutations routed through this coordinator."""
        return self._generation

    def close(self) -> None:
        """Flush every shard store, then release the executor (idempotent).

        Each shard's ``close_storage`` runs *through the executor* —
        shard-pinned workers fold and close their own stores — before
        the workers are shut down, so a ``with ShardedFlowEngine(...)``
        block never leaves forked processes or an unflushed WAL behind.
        Storage-less (or frozen-batch) fleets just release the executor.
        """
        if self._closed:
            return
        self._closed = True
        try:
            if self._live:
                self._fan_out("close_storage")
        finally:
            self._executor.close()

    def __enter__(self) -> "ShardedFlowEngine":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Merge plumbing
    # ------------------------------------------------------------------

    def _query_pois(self, pois: Sequence[Poi] | None) -> list[Poi]:
        """Resolve the query POI set P (validation mirrors the shards')."""
        if pois is None:
            return self.pois
        subset = list(pois)
        if not subset:
            raise ValueError("the query POI set may not be empty")
        return subset

    def _fan_out(self, method: str, *args: Any, **kwargs: Any) -> list[Any]:
        """Run ``method`` on every shard; results in shard order."""
        return self._executor.run(
            [(index, method, args, kwargs) for index in range(self.num_shards)]
        )

    @staticmethod
    def _merge_partials(
        results: Iterable[tuple[list[Contribution], int]],
    ) -> tuple[dict[str, float], int]:
        """Merge shards' contributions in canonical accumulation order.

        Re-sorting every contribution on its AR-tree entry key
        ``(t1, t2, record_id)`` restores the monolithic iterative scan's
        enumeration order; accumulating in that order reproduces its
        float additions bit for bit (addition is not associative, so a
        per-shard pre-sum would not).

        Returns:
            ``({poi_id: flow}, candidates)`` over the merged results.
        """
        contributions: list[Contribution] = []
        candidates = 0
        for part, count in results:
            contributions.extend(part)
            candidates += count
        # Stable sort: within one entry key all contributions belong to
        # one object and target distinct POIs, so the key alone fixes
        # every per-POI addition order.
        contributions.sort(key=lambda contribution: contribution[0])
        flows: dict[str, float] = {}
        for _, poi_id, presence in contributions:
            flows[poi_id] = flows.get(poi_id, 0.0) + presence
        if contracts_enabled():
            for poi_id, flow in flows.items():
                check_flow(flow, candidates, poi_id=poi_id)
        return flows, candidates

    @staticmethod
    def _kth_flow(exact: dict[str, float], k: int) -> float:
        """The current k-th best confirmed flow (0.0 while undersubscribed)."""
        if len(exact) < k:
            return 0.0
        return sorted(exact.values(), reverse=True)[k - 1]

    def _pruned_topk(
        self,
        query_pois: Sequence[Poi],
        k: int,
        bounds_method: str,
        bounds_args: tuple[Any, ...],
        bounds_kwargs: dict[str, Any],
        flows_method: str,
        flows_args: tuple[Any, ...],
    ) -> TopKResult:
        """The join strategy, sharded: bound, refine in rounds, prune.

        Every POI whose summed count bound still reaches the current k-th
        exact flow gets refined (``>=`` so ties are always confirmed
        exactly); each refinement round skips the shards whose bounds are
        all zero for the POIs in play — such a shard could only
        contribute exact zeros, which cannot perturb a float sum.
        Unrefined POIs are provably below the k-th flow, so ranking the
        refined exact flows zero-filled reproduces the monolithic join's
        result bit for bit.
        """
        if k < 1:
            raise ValueError("k must be positive")
        per_shard_bounds: list[dict[str, int]] = self._executor.run(
            [
                (index, bounds_method, bounds_args, bounds_kwargs)
                for index in range(self.num_shards)
            ]
        )
        total_bounds: dict[str, int] = {}
        for part in per_shard_bounds:
            for poi_id, bound in part.items():
                total_bounds[poi_id] = total_bounds.get(poi_id, 0) + bound
        exact: dict[str, float] = {}
        refined: set[str] = set()
        while True:
            if not refined:
                # Seed with the k most promising POIs by bound.
                candidates = sorted(
                    (
                        poi
                        for poi in query_pois
                        if total_bounds.get(poi.poi_id, 0) > 0
                    ),
                    key=lambda poi: (-total_bounds[poi.poi_id], poi.poi_id),
                )
                target = candidates[:k]
            else:
                kth = self._kth_flow(exact, k)
                target = [
                    poi
                    for poi in query_pois
                    if poi.poi_id not in refined
                    and total_bounds.get(poi.poi_id, 0) > 0
                    and float(total_bounds[poi.poi_id]) >= kth
                ]
            if not target:
                break
            involved = [
                index
                for index in range(self.num_shards)
                if any(
                    per_shard_bounds[index].get(poi.poi_id, 0) > 0
                    for poi in target
                )
            ]
            self._shard_prunes += self.num_shards - len(involved)
            results = self._executor.run(
                [
                    (index, flows_method, flows_args, {"pois": target})
                    for index in involved
                ]
            )
            flows, _ = self._merge_partials(results)
            for poi in target:
                refined.add(poi.poi_id)
                exact[poi.poi_id] = flows.get(poi.poi_id, 0.0)
        return rank_top_k(exact, query_pois, k)

    # ------------------------------------------------------------------
    # Top-k queries (Problems 1 and 2)
    # ------------------------------------------------------------------

    def snapshot_topk(
        self,
        t: float,
        k: int,
        pois: Sequence[Poi] | None = None,
        method: str = "join",
    ) -> TopKResult:
        """Problem 1 over the fleet — same contract as the monolith's.

        Args:
            t: The query instant.
            k: How many POIs to return.
            pois: Optional query subset P; defaults to the universe.
            method: ``"join"`` (bound + prune, default) or
                ``"iterative"`` (full fan-out); identical results.

        Returns:
            The ranked result, bit-identical to
            :meth:`FlowEngine.snapshot_topk` on the same data.

        Raises:
            ValueError: If ``method`` is unknown, ``k < 1``, or an empty
                ``pois`` sequence is passed.
        """
        if method not in _METHODS:
            raise ValueError(
                f"unknown method {method!r}; expected one of {_METHODS}"
            )
        query_pois = self._query_pois(pois)
        with span(f"query.sharded.snapshot.{method}"):
            if method == "join":
                return self._pruned_topk(
                    query_pois,
                    k,
                    "partial_bounds",
                    (t,),
                    {"pois": query_pois},
                    "partial_flows",
                    (t,),
                )
            if k < 1:
                raise ValueError("k must be positive")
            flows, _ = self._merge_partials(
                self._fan_out("partial_flows", t, pois=query_pois)
            )
            return rank_top_k(flows, query_pois, k)

    def interval_topk(
        self,
        t_start: float,
        t_end: float,
        k: int,
        pois: Sequence[Poi] | None = None,
        method: str = "join",
        use_segment_mbrs: bool = True,
    ) -> TopKResult:
        """Problem 2 over the fleet — same contract as the monolith's.

        Args:
            t_start: Window start (inclusive).
            t_end: Window end (inclusive; must not precede ``t_start``).
            k: How many POIs to return.
            pois: Optional query subset P; defaults to the universe.
            method: ``"join"`` (bound + prune, default) or ``"iterative"``.
            use_segment_mbrs: Keep the Section 4.3.2 tight per-episode
                MBR refinement in the join's bounds.

        Returns:
            The ranked result, bit-identical to
            :meth:`FlowEngine.interval_topk` on the same data.

        Raises:
            ValueError: If ``method`` is unknown, ``k < 1``, the window
                is inverted, or an empty ``pois`` sequence is passed.
        """
        if method not in _METHODS:
            raise ValueError(
                f"unknown method {method!r}; expected one of {_METHODS}"
            )
        if t_end < t_start:
            raise ValueError("t_end precedes t_start")
        query_pois = self._query_pois(pois)
        with span(f"query.sharded.interval.{method}"):
            if method == "join":
                return self._pruned_topk(
                    query_pois,
                    k,
                    "partial_interval_bounds",
                    (t_start, t_end),
                    {
                        "pois": query_pois,
                        "use_segment_mbrs": use_segment_mbrs,
                    },
                    "partial_interval_flows",
                    (t_start, t_end),
                )
            if k < 1:
                raise ValueError("k must be positive")
            flows, _ = self._merge_partials(
                self._fan_out(
                    "partial_interval_flows", t_start, t_end, pois=query_pois
                )
            )
            return rank_top_k(flows, query_pois, k)

    # ------------------------------------------------------------------
    # Flow maps and density variants
    # ------------------------------------------------------------------

    def snapshot_flows(
        self, t: float, pois: Sequence[Poi] | None = None
    ) -> dict[str, float]:
        """``Φ_t(p)`` for every query POI with positive flow (merged)."""
        query_pois = self._query_pois(pois)
        flows, _ = self._merge_partials(
            self._fan_out("partial_flows", t, pois=query_pois)
        )
        return flows

    def interval_flows(
        self, t_start: float, t_end: float, pois: Sequence[Poi] | None = None
    ) -> dict[str, float]:
        """``Φ_[t_s, t_e](p)`` for every query POI with positive flow."""
        if t_end < t_start:
            raise ValueError("t_end precedes t_start")
        query_pois = self._query_pois(pois)
        flows, _ = self._merge_partials(
            self._fan_out(
                "partial_interval_flows", t_start, t_end, pois=query_pois
            )
        )
        return flows

    def snapshot_density_topk(
        self, t: float, k: int, pois: Sequence[Poi] | None = None
    ) -> TopKResult:
        """The k POIs with the highest snapshot flow density (flow/m²)."""
        query_pois = self._query_pois(pois)
        flows = self.snapshot_flows(t, pois=query_pois)
        return rank_top_k_by_density(flows, query_pois, k)

    def interval_density_topk(
        self,
        t_start: float,
        t_end: float,
        k: int,
        pois: Sequence[Poi] | None = None,
    ) -> TopKResult:
        """The k POIs with the highest interval flow density (flow/m²)."""
        query_pois = self._query_pois(pois)
        flows = self.interval_flows(t_start, t_end, pois=query_pois)
        return rank_top_k_by_density(flows, query_pois, k)

    # ------------------------------------------------------------------
    # Live ingestion (routed to the owning shard)
    # ------------------------------------------------------------------

    def ingest(self, records: Iterable[TrackingRecord]) -> int:
        """Append closed records, each routed to its owning shard.

        Records keep their relative order within each shard; only the
        owning shard's cache epochs roll, so the other N-1 shards' memo
        layers stay fully warm.  Shards apply their sub-batches
        independently: a validation error in one shard does not undo
        records already applied elsewhere (the monolith's partial-batch
        semantics, per shard).

        Args:
            records: Closed tracking records in per-object time order.

        Returns:
            The number of records ingested.

        Raises:
            RuntimeError: If the fleet is frozen-batch.
            ValueError: If a record fails a shard's at-append validation.
        """
        self._require_live()
        routed: dict[int, list[TrackingRecord]] = {}
        for record in records:
            routed.setdefault(
                shard_of(record.object_id, self.num_shards), []
            ).append(record)
        counts = self._executor.run(
            [
                (index, "ingest_batch", (batch,), {})
                for index, batch in sorted(routed.items())
            ]
        )
        count = sum(counts)
        self._generation += count
        if obs_enabled():
            counter("engine.ingest.records", unit="records").inc(count)
        return count

    def ingest_open(self, record: TrackingRecord) -> None:
        """Start an open episode on the owning shard."""
        self._require_live()
        index = shard_of(record.object_id, self.num_shards)
        self._executor.run([(index, "ingest_open_episode", (record,), {})])
        self._generation += 1

    def extend_episode(self, object_id: ObjectId, t_e: float) -> TrackingRecord:
        """Advance an open episode's end time on the owning shard."""
        self._require_live()
        index = shard_of(object_id, self.num_shards)
        result = self._executor.run(
            [(index, "extend_open_episode", (object_id, t_e), {})]
        )
        self._generation += 1
        updated: TrackingRecord = result[0]
        return updated

    def close_episode(
        self, object_id: ObjectId, t_e: float | None = None
    ) -> TrackingRecord:
        """Close an open episode on the owning shard."""
        self._require_live()
        index = shard_of(object_id, self.num_shards)
        result = self._executor.run(
            [(index, "close_open_episode", (object_id, t_e), {})]
        )
        self._generation += 1
        closed: TrackingRecord = result[0]
        return closed

    def checkpoint(self) -> int:
        """Fold every shard store's WAL tail into its bulk snapshot.

        Runs :meth:`ShardState.compact_storage` on each shard through the
        executor (so shard-pinned workers compact their own stores).

        Returns:
            The total number of WAL mutations folded across shards.

        Raises:
            RuntimeError: If the fleet is frozen-batch.
        """
        self._require_live()
        folded = self._executor.run(
            [
                (index, "compact_storage", (), {})
                for index in range(self.num_shards)
            ]
        )
        return sum(folded)

    def _require_live(self) -> None:
        if not self._live:
            raise RuntimeError(
                "this engine is frozen-batch; construct it with live=True "
                "to ingest records"
            )

    # ------------------------------------------------------------------
    # Instrumentation
    # ------------------------------------------------------------------

    def stats(self) -> dict[str, int]:
        """Fleet-wide counters: pointwise sums plus ``shard_prunes``.

        Every monolith counter is summed across shards (cache-entry
        occupancies included — the fleet total is what budgets against
        the monolith's capacity); ``shard_prunes`` counts refinement
        rounds' skipped shard fan-outs on the join path.

        Returns:
            The merged counter dict.
        """
        merged = merge_shard_stats(self._fan_out("stats"))
        merged["shard_prunes"] = self._shard_prunes
        return merged

    def reset_stats(self) -> None:
        """Zero every shard's counters and the coordinator's own."""
        self._fan_out("reset_stats")
        self._shard_prunes = 0

    def obs_control(self, action: str) -> None:
        """Drive obs state fleet-wide: ``enable``/``disable``/``reset``.

        Applies to the coordinator's process and, for a cross-process
        executor, is broadcast to every worker.

        Args:
            action: One of ``"enable"``, ``"disable"``, ``"reset"``.

        Raises:
            ValueError: For an unknown action.
        """
        if action == "enable":
            obs_enable()
        elif action == "disable":
            obs_disable()
        elif action == "reset":
            obs_reset()
        else:
            raise ValueError(f"unknown obs action {action!r}")
        if not self._executor.in_process:
            self._fan_out("obs_control", action)

    def obs_snapshot(self) -> dict[str, Any]:
        """One mergeable obs snapshot for the whole fleet.

        In-process executors share the caller's tracer/registry, so the
        plain process snapshot already covers every shard; cross-process
        executors contribute one snapshot per worker, merged with the
        coordinator's own via
        :func:`~repro.obs.export.merge_snapshot_dicts`.
        """
        if self._executor.in_process:
            return snapshot_dict()
        return merge_snapshot_dicts(
            [snapshot_dict(), *self._fan_out("obs_snapshot")]
        )
