"""The evaluation context: query parameters + memoization + instrumentation.

Every query entry point used to thread six loose parameters (deployment,
``v_max``, presence estimator, topology checker, inner allowance, R-tree
fanout) through engine → algorithms → states → uncertainty, and every call
re-derived each object's uncertainty region from scratch.  An
:class:`EvaluationContext` bundles those parameters into one long-lived
object that additionally owns two bounded LRU memo layers:

* the **region cache** — keyed on ``(object_id, kind, quantized time
  window, params-epoch)``, it returns previously constructed uncertainty
  regions.  Interval regions are cached at *episode* granularity (one entry
  per detection/gap/lead/trail piece), so a sliding window only rebuilds
  the episodes whose effective time window actually changed — interior
  detection disks and fully covered gap ellipses are reused tick after
  tick;
* the **presence cache** — keyed on ``(region fingerprint, poi_id)``, it
  skips the grid quadrature for (region, POI) pairs already evaluated.  A
  region's fingerprint is its region-cache key (snapshot) or the tuple of
  its episode keys (interval), so identical regions share presence values
  across queries and across the iterative/join strategies.

The context also counts what the caches save: ``regions_computed``,
``region_cache_hits``, ``presence_evaluations``, ``presence_cache_hits``
and ``topology_prunes`` (indoor-reachability constraints constructed).
:meth:`FlowEngine.stats` exposes these counters and the bench harness
reports them, which is how the warm-cache speedups in ``benchmarks/`` are
measured.

Correctness notes: all cached artifacts are pure functions of the cache key
plus the context's construction parameters, which are immutable — changing
a query parameter (a new ``v_max``, another estimator resolution) means
building a fresh context (see :meth:`EvaluationContext.replace`), whose
caches start cold, so stale regions can never be served.  A context is tied
to one tracking table: reuse it only across queries over the same OTT, as
:class:`~repro.core.engine.FlowEngine` does.  When that table is *live*
(append-capable), every append must be reported via
:meth:`EvaluationContext.note_append`, which rolls the appended object's
tail epoch so its open-ended tail regions fall out of the key space —
append invalidation is surgical, never a cache flush.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Hashable, TypeVar, cast

from ..analysis.contracts import (
    check_cached_value,
    check_presence,
    check_region_fingerprint,
    contracts_enabled,
)
from ..geometry import DEFAULT_RESOLUTION, Mbr, Region
from ..indoor.devices import Deployment, Device
from ..obs import counter, obs_enabled, span
from .caching import LruCache
from .presence import PresenceEstimator
from .stats import merge_component_stats
from .uncertainty.interval import IntervalUncertainty, interval_uncertainty
from .uncertainty.snapshot import snapshot_region, snapshot_region_key

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..indoor.poi import Poi
    from .states import IntervalContext, SnapshotContext
    from .uncertainty.topology import TopologyChecker

__all__ = ["EvaluationContext", "EvaluationStats"]

_R = TypeVar("_R")

#: Default capacities; sized for monitor workloads (thousands of objects,
#: tens of POIs per region) while keeping worst-case memory modest.
DEFAULT_REGION_CACHE_SIZE = 8192
DEFAULT_PRESENCE_CACHE_SIZE = 65536


@dataclass
class EvaluationStats:
    """Instrumentation counters accumulated by an evaluation context."""

    regions_computed: int = 0
    region_cache_hits: int = 0
    presence_evaluations: int = 0
    presence_cache_hits: int = 0
    topology_prunes: int = 0

    def as_dict(self) -> dict[str, int]:
        """The counters as a plain dict (feeds ``FlowEngine.stats``)."""
        return {
            "regions_computed": self.regions_computed,
            "region_cache_hits": self.region_cache_hits,
            "presence_evaluations": self.presence_evaluations,
            "presence_cache_hits": self.presence_cache_hits,
            "topology_prunes": self.topology_prunes,
        }

    def reset(self) -> None:
        """Zero all counters."""
        self.regions_computed = 0
        self.region_cache_hits = 0
        self.presence_evaluations = 0
        self.presence_cache_hits = 0
        self.topology_prunes = 0


def _mbr_fingerprint(value: object) -> tuple[float, float, float, float] | None:
    """The (min_x, min_y, max_x, max_y) fingerprint of a cached region.

    Cached values are regions (snapshot entries) or episode regions
    (interval entries); both expose ``.mbr``.  ``None`` for empty regions
    and for cache values without an MBR (nothing to compare).
    """
    mbr = getattr(value, "mbr", None)
    if not isinstance(mbr, Mbr):
        return None
    return (mbr.min_x, mbr.min_y, mbr.max_x, mbr.max_y)


class _CountingTopology:
    """A :class:`TopologyChecker` proxy that counts constraint constructions.

    Every ring/path constraint intersected into a region is one topology
    pruning opportunity; the count feeds ``stats.topology_prunes``.
    """

    __slots__ = ("_checker", "_stats")

    def __init__(self, checker: "TopologyChecker", stats: EvaluationStats):
        self._checker = checker
        self._stats = stats

    def ring_constraint(self, device: Device, budget: float) -> Region:
        self._stats.topology_prunes += 1
        if obs_enabled():
            counter("topology.prunes", unit="constraints").inc()
        return self._checker.ring_constraint(device, budget)

    def path_constraint(
        self, device_a: Device, device_b: Device, budget: float
    ) -> Region:
        self._stats.topology_prunes += 1
        if obs_enabled():
            counter("topology.prunes", unit="constraints").inc()
        return self._checker.path_constraint(device_a, device_b, budget)


class EvaluationContext:
    """Query parameters, memo layers and counters for one tracking table.

    Parameters
    ----------
    deployment:
        The positioning-device deployment regions are derived against.
    v_max:
        Maximum indoor movement speed (m/s) — the paper's ``V_max``.
    estimator:
        The presence estimator; built from ``resolution`` when omitted.
    topology:
        Optional indoor topology checker (Section 3.3); ``None`` ablates
        the check.
    inner_allowance:
        Ring inner-exclusion relaxation in meters (sampled systems).
    rtree_fanout:
        Node capacity for per-query R-trees (POI subsets, join R_I).
    resolution:
        Presence quadrature resolution, used when ``estimator`` is omitted.
    region_cache_size, presence_cache_size:
        LRU capacities of the two memo layers; ``0`` disables a layer.
    """

    def __init__(
        self,
        deployment: Deployment,
        v_max: float,
        estimator: PresenceEstimator | None = None,
        topology: "TopologyChecker | None" = None,
        inner_allowance: float = 0.0,
        rtree_fanout: int = 8,
        resolution: int = DEFAULT_RESOLUTION,
        region_cache_size: int = DEFAULT_REGION_CACHE_SIZE,
        presence_cache_size: int = DEFAULT_PRESENCE_CACHE_SIZE,
    ):
        if v_max <= 0:
            raise ValueError("v_max must be positive")
        if inner_allowance < 0:
            raise ValueError("inner_allowance must be non-negative")
        self.deployment = deployment
        self.v_max = float(v_max)
        self.estimator = (
            estimator
            if estimator is not None
            else PresenceEstimator(resolution=resolution)
        )
        self.topology = topology
        self.inner_allowance = float(inner_allowance)
        self.rtree_fanout = rtree_fanout
        self.stats = EvaluationStats()
        self._region_cache: LruCache[object] = LruCache(region_cache_size)
        self._presence_cache: LruCache[float] = LruCache(presence_cache_size)
        # Generation counters for live ingestion (see note_append): a total
        # data generation plus a per-object tail epoch stamped into the
        # cache keys of the object's open-ended tail episodes.
        self.data_generation = 0
        self._tail_epochs: dict[Hashable, int] = {}
        self._counted_topology = (
            _CountingTopology(topology, self.stats) if topology is not None else None
        )
        # The params-epoch stamped into every cache key.  The parameters a
        # cached region depends on are fixed at construction, so within one
        # context the epoch is constant; it exists so entries from one
        # parameterisation can never be confused with another's (e.g. after
        # pickling round-trips or future in-place reconfiguration).
        self.params_epoch: Hashable = (
            round(self.v_max, 9),
            round(self.inner_allowance, 9),
            topology is not None,
            self.estimator.resolution,
        )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def replace(self, **overrides: Any) -> "EvaluationContext":
        """A fresh context (cold caches) with some parameters overridden.

        This is *the* way to change a query parameter: caches are keyed per
        context, so a replacement can never serve regions computed under
        the old parameters.

        Args:
            **overrides: Constructor keyword(s) to change (``v_max``,
                ``resolution``, ``topology``, cache sizes, …).

        Returns:
            A new :class:`EvaluationContext` with cold caches.

        Raises:
            ValueError: If an override violates a constructor constraint
                (non-positive ``v_max``, negative ``inner_allowance``).
        """
        settings: dict[str, Any] = dict(
            deployment=self.deployment,
            v_max=self.v_max,
            estimator=None if "resolution" in overrides else self.estimator,
            topology=self.topology,
            inner_allowance=self.inner_allowance,
            rtree_fanout=self.rtree_fanout,
            region_cache_size=self._region_cache.capacity,
            presence_cache_size=self._presence_cache.capacity,
        )
        settings.update(overrides)
        return EvaluationContext(**settings)

    def clear_caches(self) -> None:
        """Drop both memo layers (counters are kept; see ``reset_stats``)."""
        self._region_cache.clear()
        self._presence_cache.clear()

    def reset_stats(self) -> None:
        """Zero the evaluation counters (cache contents are kept)."""
        self.stats.reset()

    def stats_dict(self) -> dict[str, int]:
        """Counters plus current cache occupancy and data generation.

        Returns:
            The :class:`EvaluationStats` counters plus
            ``region_cache_entries``, ``presence_cache_entries`` and
            ``data_generation``.
        """
        return merge_component_stats(
            self.stats.as_dict(),
            {
                "region_cache_entries": len(self._region_cache),
                "presence_cache_entries": len(self._presence_cache),
                "data_generation": self.data_generation,
            },
        )

    # ------------------------------------------------------------------
    # Live ingestion (generation-aware cache keys)
    # ------------------------------------------------------------------

    def tail_epoch(self, object_id: Hashable) -> int:
        """The object's append epoch (0 until data is appended for it)."""
        return self._tail_epochs.get(object_id, 0)

    def note_append(self, object_id: Hashable) -> None:
        """Record that tracking data was appended for ``object_id``.

        Bumps the global :attr:`data_generation` and the object's tail
        epoch.  The epoch is stamped into the cache keys of the object's
        *trail* episodes — the only cached regions that extrapolate past
        its last record — so an append retires exactly those entries (they
        simply stop being addressable) while every other cached region
        stays valid and reusable:

        * snapshot and gap keys already encode the involved record
          boundary times, so new records produce new keys by construction;
        * detection-episode regions are the devices' constant ranges,
          independent of the appended data;
        * the former "last gap" of the object is re-derived under a gap
          key (both boundaries now known) rather than the trail key.

        Cached == uncached stays bit-identical: keys only decide reuse,
        never values.
        """
        self.data_generation += 1
        self._tail_epochs[object_id] = self._tail_epochs.get(object_id, 0) + 1

    def sync_generation(self, generation: int) -> None:
        """Fast-forward :attr:`data_generation` to a persisted counter.

        Recovery seeds a fresh context from the storage backend's
        snapshot generation, then replays the WAL tail through
        :meth:`note_append` — so after restore the context's generation
        equals the backend's persisted one, exactly as if the appends had
        happened live in this process.

        Args:
            generation: The storage generation to adopt.

        Raises:
            ValueError: If the generation would move backwards.
        """
        if generation < self.data_generation:
            raise ValueError(
                f"data_generation cannot move backwards "
                f"({generation} < {self.data_generation})"
            )
        self.data_generation = generation

    # ------------------------------------------------------------------
    # Region memo layer
    # ------------------------------------------------------------------

    def memo_region(
        self, key: tuple[Hashable, ...], builder: Callable[[], _R]
    ) -> _R:
        """Build-or-reuse one region-cache entry; counts the outcome.

        ``key`` is the parameter-free part (``(kind, object_id, quantized
        time window)``); the context stamps its params-epoch on top.

        Under ``REPRO_CONTRACTS=1`` every cache hit is verified against a
        fresh rebuild (MBR fingerprints must agree) — the PR 1 coherence
        invariant.  The verification rebuild runs outside the counters, but
        its topology constraint constructions do inflate
        ``topology_prunes``; contract mode trades stats purity for checking.

        With :mod:`repro.obs` enabled, cache-miss builds are timed under a
        ``ur.build.<kind>`` span (kind = ``snapshot`` / ``detection`` /
        ``gap`` / ``lead`` / ``trail``) and hits/misses mirrored into the
        ``ctx.region.hits`` / ``ctx.region.misses`` counters — observation
        only, never part of the cache key or the value.

        Args:
            key: The parameter-free key part; its first element names the
                region kind.
            builder: Zero-argument callable constructing the region on a
                miss.

        Returns:
            The cached or freshly built value.
        """
        build = builder
        if obs_enabled():
            kind = key[0] if key and isinstance(key[0], str) else "region"

            def build() -> _R:
                with span(f"ur.build.{kind}"):
                    return builder()

        raw, hit = self._region_cache.get_or_build(
            (key, self.params_epoch), build
        )
        value = cast(_R, raw)
        if hit:
            self.stats.region_cache_hits += 1
            if obs_enabled():
                counter("ctx.region.hits", unit="regions").inc()
            if contracts_enabled():
                check_region_fingerprint(
                    _mbr_fingerprint(value),
                    _mbr_fingerprint(builder()),
                    key=key,
                )
        else:
            self.stats.regions_computed += 1
            if obs_enabled():
                counter("ctx.region.misses", unit="regions").inc()
        return value

    def snapshot_region(self, context: "SnapshotContext") -> Region:
        """Memoized ``UR(o, t)`` for one snapshot context.

        Args:
            context: The object's snapshot state (covering / neighbouring
                records around ``t``).

        Returns:
            The (possibly topology-checked) snapshot uncertainty region.
        """
        return self.memo_region(
            snapshot_region_key(context),
            lambda: snapshot_region(
                context,
                self.deployment,
                self.v_max,
                self._counted_topology,
                self.inner_allowance,
            ),
        )

    def interval_uncertainty(self, context: "IntervalContext") -> IntervalUncertainty:
        """``UR(o, [t_s, t_e])`` with per-episode memoization.

        The episode list is reassembled per call (cheap), but each
        episode's region construction goes through the region cache — a
        sliding window therefore only computes the episodes whose effective
        window changed.

        Args:
            context: The object's interval state (records overlapping the
                window).

        Returns:
            The object's :class:`IntervalUncertainty`.
        """
        return interval_uncertainty(
            context,
            self.deployment,
            self.v_max,
            self._counted_topology,
            self.inner_allowance,
            memo=self.memo_region,
            tail_token=self.tail_epoch(context.object_id),
        )

    # ------------------------------------------------------------------
    # Presence memo layer
    # ------------------------------------------------------------------

    @staticmethod
    def snapshot_fingerprint(context: "SnapshotContext") -> tuple[Hashable, ...]:
        """The presence-cache fingerprint of a snapshot region."""
        return snapshot_region_key(context)

    @staticmethod
    def interval_fingerprint(
        uncertainty: IntervalUncertainty,
    ) -> tuple[Hashable, ...] | None:
        """The presence-cache fingerprint of an interval region.

        The fingerprint is the tuple of episode keys: two interval regions
        with identical episodes are geometrically identical, however the
        query windows producing them were positioned.
        """
        keys = tuple(episode.key for episode in uncertainty.episodes)
        if any(key is None for key in keys):
            return None
        return ("interval",) + keys

    def presence(
        self, region: Region, poi: "Poi", fingerprint: Hashable | None = None
    ) -> float:
        """Memoized presence ``area(UR ∩ p) / area(p)``.

        ``fingerprint`` identifies the region's geometry; pass ``None`` for
        regions not built through this context (no caching, still counted).

        With :mod:`repro.obs` enabled, quadrature runs are timed under a
        ``presence.quadrature`` span and hits/misses mirrored into the
        ``ctx.presence.hits`` / ``ctx.presence.misses`` counters.

        Args:
            region: The uncertainty region.
            poi: The POI to intersect it with.
            fingerprint: The region's geometry identity for caching, or
                ``None`` to evaluate uncached.

        Returns:
            The presence value in ``[0, 1]``.

        Raises:
            AssertionError: Under ``REPRO_CONTRACTS=1``, if the estimator
                returns a value outside ``[0, 1]`` or a cached value
                diverges from a fresh evaluation.
        """
        if fingerprint is None:
            self.stats.presence_evaluations += 1
            if obs_enabled():
                counter("ctx.presence.misses", unit="evaluations").inc()
                with span("presence.quadrature"):
                    value = self.estimator.presence(region, poi)
            else:
                value = self.estimator.presence(region, poi)
            return check_presence(
                value, where=f"presence in POI {poi.poi_id!r}"
            )
        key = (fingerprint, poi.poi_id, self.params_epoch)
        cached = self._presence_cache.get(key)
        if cached is not None:
            self.stats.presence_cache_hits += 1
            if obs_enabled():
                counter("ctx.presence.hits", unit="evaluations").inc()
            if contracts_enabled():
                check_cached_value(
                    cached,
                    self.estimator.presence(region, poi),
                    what=f"presence in POI {poi.poi_id!r}",
                    key=fingerprint,
                )
            return cached
        self.stats.presence_evaluations += 1
        if obs_enabled():
            counter("ctx.presence.misses", unit="evaluations").inc()
            with span("presence.quadrature"):
                fresh = self.estimator.presence(region, poi)
        else:
            fresh = self.estimator.presence(region, poi)
        value = check_presence(
            fresh, where=f"presence in POI {poi.poi_id!r}"
        )
        self._presence_cache.put(key, value)
        return value
