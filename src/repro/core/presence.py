"""Object presence (paper, Definition 1).

The presence of object ``o`` in POI ``p`` is ``area(UR ∩ p) / area(p)`` —
the fraction of the POI covered by the object's uncertainty region, a value
in ``[0, 1]`` interpretable as the probability that ``o`` was in ``p``.

The estimator samples each POI polygon on a fixed grid once (cached, LRU
bounded) and evaluates region membership vectorised; determinism of the
grid guarantees that every query algorithm assigns identical presence to
identical (object, POI) pairs, so the iterative and join algorithms return
the same flows bit for bit.  An evicted-and-resampled POI regenerates the
exact same grid, so the bound never affects results, only memory.
"""

from __future__ import annotations

import numpy as np

from ..analysis.contracts import check_presence
from ..geometry import DEFAULT_RESOLUTION, Region, polygon_grid_points
from ..indoor.poi import Poi
from .caching import LruCache

__all__ = ["PresenceEstimator"]

#: Default cap on cached per-POI sample grids.  At the default resolution a
#: grid is a few hundred KB; 1024 grids keep realistic POI universes fully
#: resident while bounding worst-case memory.
DEFAULT_MAX_CACHED_POIS = 1024


class PresenceEstimator:
    """Grid-quadrature presence with bounded per-POI sample caching."""

    def __init__(
        self,
        resolution: int = DEFAULT_RESOLUTION,
        max_cached_pois: int = DEFAULT_MAX_CACHED_POIS,
    ):
        if resolution < 1:
            raise ValueError("resolution must be positive")
        if max_cached_pois < 1:
            raise ValueError("max_cached_pois must be positive")
        self.resolution = resolution
        self._samples: LruCache[tuple[np.ndarray, np.ndarray]] = LruCache(
            max_cached_pois
        )

    @property
    def sample_cache_size(self) -> int:
        """How many POIs currently have cached sample grids."""
        return len(self._samples)

    def samples_of(self, poi: Poi) -> tuple[np.ndarray, np.ndarray]:
        """The POI's cached grid sample coordinates."""
        cached = self._samples.get(poi.poi_id)
        if cached is None:
            xs, ys, _ = polygon_grid_points(poi.polygon, self.resolution)
            cached = (xs, ys)
            self._samples.put(poi.poi_id, cached)
        return cached

    def presence(self, region: Region, poi: Poi) -> float:
        """``φ(o)`` — the fraction of ``poi`` covered by ``region``."""
        region_mbr = region.mbr
        if region_mbr is None or not region_mbr.intersects(poi.polygon.mbr):
            return 0.0
        xs, ys = self.samples_of(poi)
        inside = region.contains_many(xs, ys)
        return check_presence(
            float(inside.sum()) / float(len(xs)),
            where=f"presence in POI {poi.poi_id!r}",
        )
