"""Object presence (paper, Definition 1).

The presence of object ``o`` in POI ``p`` is ``area(UR ∩ p) / area(p)`` —
the fraction of the POI covered by the object's uncertainty region, a value
in ``[0, 1]`` interpretable as the probability that ``o`` was in ``p``.

The estimator samples each POI polygon on a fixed grid once (cached) and
evaluates region membership vectorised; determinism of the grid guarantees
that every query algorithm assigns identical presence to identical
(object, POI) pairs, so the iterative and join algorithms return the same
flows bit for bit.
"""

from __future__ import annotations

import numpy as np

from ..geometry import DEFAULT_RESOLUTION, Region, polygon_grid_points
from ..indoor.poi import Poi

__all__ = ["PresenceEstimator"]


class PresenceEstimator:
    """Grid-quadrature presence with per-POI sample caching."""

    def __init__(self, resolution: int = DEFAULT_RESOLUTION):
        if resolution < 1:
            raise ValueError("resolution must be positive")
        self.resolution = resolution
        self._samples: dict[str, tuple[np.ndarray, np.ndarray]] = {}

    def samples_of(self, poi: Poi) -> tuple[np.ndarray, np.ndarray]:
        """The POI's cached grid sample coordinates."""
        cached = self._samples.get(poi.poi_id)
        if cached is None:
            xs, ys, _ = polygon_grid_points(poi.polygon, self.resolution)
            cached = (xs, ys)
            self._samples[poi.poi_id] = cached
        return cached

    def presence(self, region: Region, poi: Poi) -> float:
        """``φ(o)`` — the fraction of ``poi`` covered by ``region``."""
        region_mbr = region.mbr
        if region_mbr is None or not region_mbr.intersects(poi.polygon.mbr):
            return 0.0
        xs, ys = self.samples_of(poi)
        inside = region.contains_many(xs, ys)
        return float(inside.sum()) / float(len(xs))
