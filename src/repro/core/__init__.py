"""The paper's core contribution: uncertainty analysis, flows and queries."""

from .algorithms import (
    JoinObject,
    interval_flows,
    iterative_interval,
    iterative_snapshot,
    join_interval,
    join_snapshot,
    snapshot_flows,
)
from .engine import FlowEngine
from .monitor import (
    SlidingIntervalTopKMonitor,
    SnapshotTopKMonitor,
    TopKUpdate,
)
from .presence import PresenceEstimator
from .queries import (
    IntervalTopKQuery,
    RankedPoi,
    SnapshotTopKQuery,
    TopKResult,
    rank_top_k,
    rank_top_k_by_density,
)
from .states import (
    IntervalContext,
    SnapshotContext,
    TrackingState,
    interval_contexts,
    snapshot_context,
    snapshot_contexts,
)
from .uncertainty import (
    Episode,
    IntervalUncertainty,
    PathReachabilityConstraint,
    ReachabilityConstraint,
    TopologyChecker,
    interval_uncertainty,
    snapshot_mbr,
    snapshot_region,
)

__all__ = [
    "Episode",
    "FlowEngine",
    "IntervalContext",
    "IntervalTopKQuery",
    "IntervalUncertainty",
    "JoinObject",
    "PathReachabilityConstraint",
    "PresenceEstimator",
    "RankedPoi",
    "ReachabilityConstraint",
    "SlidingIntervalTopKMonitor",
    "SnapshotContext",
    "SnapshotTopKMonitor",
    "SnapshotTopKQuery",
    "TopKResult",
    "TopKUpdate",
    "TopologyChecker",
    "TrackingState",
    "interval_contexts",
    "interval_flows",
    "interval_uncertainty",
    "iterative_interval",
    "iterative_snapshot",
    "join_interval",
    "join_snapshot",
    "rank_top_k",
    "rank_top_k_by_density",
    "snapshot_context",
    "snapshot_contexts",
    "snapshot_flows",
    "snapshot_mbr",
    "snapshot_region",
]
