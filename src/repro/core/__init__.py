"""The paper's core contribution: uncertainty analysis, flows and queries."""

from .algorithms import (
    JoinObject,
    interval_flows,
    iterative_interval,
    iterative_snapshot,
    join_interval,
    join_snapshot,
    snapshot_flows,
)
from .caching import LruCache, shard_cache_capacity
from .context import EvaluationContext, EvaluationStats
from .coordinator import (
    Executor,
    ForkedProcessExecutor,
    SerialExecutor,
    ShardedFlowEngine,
    shard_of,
)
from .engine import FlowEngine, LiveFlowEngine
from .monitor import (
    MonitorableEngine,
    SlidingIntervalTopKMonitor,
    SnapshotTopKMonitor,
    TopKUpdate,
)
from .presence import PresenceEstimator
from .shard import ShardState
from .stats import merge_component_stats, merge_shard_stats
from .queries import (
    IntervalTopKQuery,
    RankedPoi,
    SnapshotTopKQuery,
    TopKResult,
    rank_top_k,
    rank_top_k_by_density,
)
from .states import (
    IntervalContext,
    SnapshotContext,
    TrackingState,
    interval_context_from_entries,
    interval_contexts,
    snapshot_context,
    snapshot_contexts,
)
from .uncertainty import (
    Episode,
    IntervalUncertainty,
    PathReachabilityConstraint,
    ReachabilityConstraint,
    TopologyChecker,
    interval_uncertainty,
    snapshot_mbr,
    snapshot_region,
    snapshot_region_key,
)

__all__ = [
    "Episode",
    "EvaluationContext",
    "EvaluationStats",
    "Executor",
    "FlowEngine",
    "ForkedProcessExecutor",
    "IntervalContext",
    "IntervalTopKQuery",
    "IntervalUncertainty",
    "JoinObject",
    "LiveFlowEngine",
    "LruCache",
    "MonitorableEngine",
    "PathReachabilityConstraint",
    "PresenceEstimator",
    "RankedPoi",
    "ReachabilityConstraint",
    "SerialExecutor",
    "ShardState",
    "ShardedFlowEngine",
    "SlidingIntervalTopKMonitor",
    "SnapshotContext",
    "SnapshotTopKMonitor",
    "SnapshotTopKQuery",
    "TopKResult",
    "TopKUpdate",
    "TopologyChecker",
    "TrackingState",
    "interval_context_from_entries",
    "interval_contexts",
    "interval_flows",
    "interval_uncertainty",
    "iterative_interval",
    "iterative_snapshot",
    "join_interval",
    "join_snapshot",
    "merge_component_stats",
    "merge_shard_stats",
    "rank_top_k",
    "rank_top_k_by_density",
    "shard_cache_capacity",
    "shard_of",
    "snapshot_context",
    "snapshot_contexts",
    "snapshot_flows",
    "snapshot_mbr",
    "snapshot_region",
    "snapshot_region_key",
]
