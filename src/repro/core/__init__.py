"""The paper's core contribution: uncertainty analysis, flows and queries."""

from .algorithms import (
    JoinObject,
    interval_flows,
    iterative_interval,
    iterative_snapshot,
    join_interval,
    join_snapshot,
    snapshot_flows,
)
from .caching import LruCache
from .context import EvaluationContext, EvaluationStats
from .engine import FlowEngine, LiveFlowEngine
from .monitor import (
    SlidingIntervalTopKMonitor,
    SnapshotTopKMonitor,
    TopKUpdate,
)
from .presence import PresenceEstimator
from .queries import (
    IntervalTopKQuery,
    RankedPoi,
    SnapshotTopKQuery,
    TopKResult,
    rank_top_k,
    rank_top_k_by_density,
)
from .states import (
    IntervalContext,
    SnapshotContext,
    TrackingState,
    interval_context_from_entries,
    interval_contexts,
    snapshot_context,
    snapshot_contexts,
)
from .uncertainty import (
    Episode,
    IntervalUncertainty,
    PathReachabilityConstraint,
    ReachabilityConstraint,
    TopologyChecker,
    interval_uncertainty,
    snapshot_mbr,
    snapshot_region,
    snapshot_region_key,
)

__all__ = [
    "Episode",
    "EvaluationContext",
    "EvaluationStats",
    "FlowEngine",
    "IntervalContext",
    "IntervalTopKQuery",
    "IntervalUncertainty",
    "JoinObject",
    "LiveFlowEngine",
    "LruCache",
    "PathReachabilityConstraint",
    "PresenceEstimator",
    "RankedPoi",
    "ReachabilityConstraint",
    "SlidingIntervalTopKMonitor",
    "SnapshotContext",
    "SnapshotTopKMonitor",
    "SnapshotTopKQuery",
    "TopKResult",
    "TopKUpdate",
    "TopologyChecker",
    "TrackingState",
    "interval_context_from_entries",
    "interval_contexts",
    "interval_flows",
    "interval_uncertainty",
    "iterative_interval",
    "iterative_snapshot",
    "join_interval",
    "join_snapshot",
    "rank_top_k",
    "rank_top_k_by_density",
    "snapshot_context",
    "snapshot_contexts",
    "snapshot_flows",
    "snapshot_mbr",
    "snapshot_region",
    "snapshot_region_key",
]
