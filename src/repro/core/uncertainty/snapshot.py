"""Snapshot uncertainty regions ``UR(o, t)`` (paper, Section 3.1.2).

Two cases:

* **Active** — a record covers ``t``: the object is inside ``dev_cov``'s
  range, further constrained by the ring reachable since it left
  ``dev_pre``::

      UR(o, t) = Ring(dev_pre, V_max * (t - rd_pre.t_e))  ∩  dev_cov.range

* **Inactive** — ``t`` falls in an undetected gap: the intersection of the
  ring it can have reached from ``dev_pre`` and the ring from which it can
  still reach ``dev_suc`` in time::

      UR(o, t) = Ring(dev_pre, V_max * (t - rd_pre.t_e))
               ∩ Ring(dev_suc, V_max * (rd_suc.t_s - t))

An optional :class:`~repro.core.uncertainty.topology.TopologyChecker`
intersects the corresponding indoor-reachability constraints (Section 3.3).
Objects whose first record covers ``t`` have no ``rd_pre``; their region is
simply the covering range.
"""

from __future__ import annotations

from typing import Hashable

from ...geometry import Circle, Mbr, Region, Ring, intersect_all
from ...indoor.devices import Deployment
from ...tracking.records import DeviceId
from ..states import SnapshotContext
from .topology import TopologyChecker

__all__ = ["snapshot_region", "snapshot_region_key", "snapshot_mbr"]

#: Cache keys quantize times to this many decimals (microseconds): times
#: closer than that produce indistinguishable regions at any realistic
#: ``v_max``, so they may share one cache entry.
TIME_QUANTUM_DECIMALS = 6


def quantize_time(t: float) -> float:
    """A time value rounded to the cache-key quantum."""
    return round(float(t), TIME_QUANTUM_DECIMALS)


def snapshot_region_key(context: SnapshotContext) -> tuple[Hashable, ...]:
    """The region-cache key of ``UR(o, t)`` (without the params-epoch).

    The key encodes everything the region depends on besides the evaluation
    parameters — the involved devices and the (quantized) record boundary
    times — so equal keys imply geometrically identical regions even across
    distinct tracking tables.
    """
    qt = quantize_time
    return (
        "snapshot",
        context.object_id,
        qt(context.t),
        None
        if context.rd_pre is None
        else (context.rd_pre.device_id, qt(context.rd_pre.t_e)),
        None if context.rd_cov is None else context.rd_cov.device_id,
        None
        if context.rd_suc is None
        else (context.rd_suc.device_id, qt(context.rd_suc.t_s)),
    )


def snapshot_region(
    context: SnapshotContext,
    deployment: Deployment,
    v_max: float,
    topology: TopologyChecker | None = None,
    inner_allowance: float = 0.0,
) -> Region:
    """Derive ``UR(o, t)`` for one object from its snapshot context.

    ``inner_allowance`` relaxes the rings' inner exclusion by that many
    meters.  The paper's model assumes *continuous* detection, under which
    an undetected object is certainly outside every range; with a sampled
    positioning system the object may penetrate a range by up to
    ``2 * V_max * sampling_interval`` between ticks without being seen, so
    engines over sampled data pass that as the allowance to stay sound.
    The outer ring boundary is unaffected (it is sound either way).
    """
    if v_max <= 0:
        raise ValueError("v_max must be positive")
    t = context.t
    parts: list[Region] = []
    if context.rd_cov is not None:
        dev_cov = deployment.device(context.rd_cov.device_id)
        parts.append(dev_cov.range)
        if context.rd_pre is not None:
            # Travel bound since leaving dev_pre.  The paper intersects
            # Ring(dev_pre, ...) here; with distinct (disjoint) devices the
            # ring's inner exclusion is vacuous inside dev_cov's range, but
            # when the object left and RE-ENTERED the same device it would
            # wrongly cut out the range interior — so the active case uses
            # the ring's outer disk (distance to the range <= budget) only.
            dev_pre = deployment.device(context.rd_pre.device_id)
            budget = max(0.0, v_max * (t - context.rd_pre.t_e))
            parts.append(dev_pre.range.expanded(budget))
            if topology is not None:
                parts.append(topology.ring_constraint(dev_pre, budget))
    else:
        if context.rd_pre is None or context.rd_suc is None:
            raise ValueError(
                f"object {context.object_id!r}: an inactive snapshot context "
                "needs both rd_pre and rd_suc"
            )
        _append_ring(
            parts,
            deployment,
            context.rd_pre.device_id,
            v_max * (t - context.rd_pre.t_e),
            topology,
            inner_allowance,
        )
        _append_ring(
            parts,
            deployment,
            context.rd_suc.device_id,
            v_max * (context.rd_suc.t_s - t),
            topology,
            inner_allowance,
        )
    return intersect_all(parts)


def slack_ring(range_circle: Circle, budget: float, inner_allowance: float) -> Ring:
    """``Ring(dev, budget)`` with the inner boundary pulled in by the
    allowance; the outer boundary stays at ``r + budget``."""
    budget = max(0.0, budget)
    allowance = min(max(0.0, inner_allowance), range_circle.radius)
    return Ring(
        Circle(range_circle.center, range_circle.radius - allowance),
        budget + allowance,
    )


def _append_ring(
    parts: list[Region],
    deployment: Deployment,
    device_id: DeviceId,
    budget: float,
    topology: TopologyChecker | None,
    inner_allowance: float = 0.0,
) -> None:
    device = deployment.device(device_id)
    budget = max(0.0, budget)
    parts.append(slack_ring(device.range, budget, inner_allowance))
    if topology is not None:
        parts.append(topology.ring_constraint(device, budget))


def snapshot_mbr(
    context: SnapshotContext, deployment: Deployment, v_max: float
) -> Mbr | None:
    """A cheap sound MBR for ``UR(o, t)`` without building the region.

    This is what the join algorithm inserts into the aggregate R-tree
    (paper, Algorithm 2, lines 5–10): the covering range's MBR when active;
    when inactive, the boxes of the two rings — the paper merges them, we
    intersect (the region lies in both rings, so the intersection is sound
    and tighter).  ``None`` when the boxes are disjoint, which only happens
    for inconsistent data — such an object can contribute no flow.
    """
    t = context.t
    if context.rd_cov is not None:
        return deployment.device(context.rd_cov.device_id).range.mbr
    assert context.rd_pre is not None and context.rd_suc is not None
    pre = deployment.device(context.rd_pre.device_id)
    suc = deployment.device(context.rd_suc.device_id)
    box_pre = pre.range.mbr.expanded(max(0.0, v_max * (t - context.rd_pre.t_e)))
    box_suc = suc.range.mbr.expanded(max(0.0, v_max * (context.rd_suc.t_s - t)))
    return box_pre.intersection(box_suc)
