"""Interval uncertainty regions ``UR(o, [t_s, t_e])`` (paper, Section 3.2).

The region over a window is a union of per-episode pieces derived from the
object's record chain (the paper's four cases, Table 3 and Figures 4–7,
unified):

* **detection episodes** — for every record whose detection interval
  intersects the window, the device's detection disk (the object was
  provably inside it);
* **gap episodes** — for every undetected gap between consecutive records
  that intersects the window, the extended ellipse
  ``Theta(dev_i, dev_j, rd_i.t_e, rd_j.t_s)``; when the window boundary
  falls *inside* the gap, the ellipse is intersected with the paper's
  boundary rings (``Theta_s ∩ Ring_s`` / ``Theta_e ∩ Ring_e`` of Cases
  2–4);
* **lead/trail episodes** — when the chain has no record before ``t_s``
  (or after ``t_e``), the ring reachable from the first (last) detection
  bounds the uncovered window part.

Each episode keeps its own MBR; the list of episode MBRs is exactly the
"series of much tighter MBRs" of the improved join algorithm (Section
4.3.2) — one small box per consecutive-record pair instead of one large
trajectory box full of dead space.

An optional :class:`TopologyChecker` intersects the indoor-reachability
constraints into every episode (Section 3.3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Hashable

from ...geometry import (
    EmptyRegion,
    ExtendedEllipse,
    Mbr,
    Region,
    Ring,
    intersect_all,
    union_all,
)
from ...indoor.devices import Deployment, Device
from ...tracking.records import ObjectId, TrackingRecord
from ..states import IntervalContext
from .snapshot import quantize_time, slack_ring
from .topology import TopologyChecker

__all__ = ["Episode", "IntervalUncertainty", "interval_uncertainty"]

#: A region memo hook: ``memo(key, builder) -> region``.  Keys are
#: parameter-free tuples ``(kind, object_id, quantized time window ...)``;
#: an :class:`~repro.core.context.EvaluationContext` passes its region
#: cache here, stamping its params-epoch onto the key.
RegionMemo = Callable[[tuple[Hashable, ...], Callable[[], Region]], Region]


@dataclass(frozen=True)
class Episode:
    """One piece of an interval uncertainty region with its own MBR.

    ``key`` is the episode's region-cache key (``None`` for episodes built
    outside the caching layer, e.g. in direct low-level use); the tuple of
    a region's episode keys is its presence-cache fingerprint.
    """

    kind: str  # "detection" | "gap" | "lead" | "trail"
    region: Region
    key: tuple[Hashable, ...] | None = None

    @property
    def mbr(self) -> Mbr | None:
        return self.region.mbr


class IntervalUncertainty:
    """``UR(o, [t_s, t_e])`` as a union of episodes."""

    def __init__(
        self,
        object_id: ObjectId,
        t_start: float,
        t_end: float,
        episodes: list[Episode],
    ):
        self.object_id = object_id
        self.t_start = t_start
        self.t_end = t_end
        self.episodes = tuple(episodes)
        self._region: Region | None = None

    @property
    def region(self) -> Region:
        """The full uncertainty region (built lazily, cached)."""
        if self._region is None:
            parts = [episode.region for episode in self.episodes]
            self._region = union_all(parts) if parts else EmptyRegion()
        return self._region

    @property
    def mbr(self) -> Mbr | None:
        """One overall bounding box (the coarse pre-improvement MBR)."""
        boxes = self.segment_mbrs()
        return Mbr.union_all(boxes) if boxes else None

    def segment_mbrs(self) -> list[Mbr]:
        """Per-episode MBRs — the finer boxes of the improved join."""
        return [episode.mbr for episode in self.episodes if episode.mbr is not None]


def interval_uncertainty(
    context: IntervalContext,
    deployment: Deployment,
    v_max: float,
    topology: TopologyChecker | None = None,
    inner_allowance: float = 0.0,
    memo: RegionMemo | None = None,
    tail_token: Hashable = None,
) -> IntervalUncertainty:
    """Derive the interval uncertainty region from a record chain.

    ``inner_allowance`` relaxes ring inner exclusions for sampled
    positioning systems; see
    :func:`repro.core.uncertainty.snapshot.snapshot_region`.

    ``memo`` memoizes *episode* region construction.  Episode keys encode
    only the involved devices and (quantized) effective time windows, not
    the query window itself — so when a sliding window advances, interior
    episodes (detection disks, fully covered gap ellipses) hit the memo and
    only episodes cut by a window boundary are rebuilt.

    ``tail_token`` is stamped into the *trail* episode's key — the only
    episode kind whose geometry extrapolates beyond the object's last
    record.  Live ingestion passes the object's per-append tail epoch here
    (see :meth:`repro.core.context.EvaluationContext.note_append`), so an
    append retires exactly the appended object's open-ended tail regions
    from the memo while every interior episode stays reusable.
    """
    if v_max <= 0:
        raise ValueError("v_max must be positive")
    t_start, t_end = context.t_start, context.t_end
    records = context.records
    object_id = context.object_id
    episodes: list[Episode] = []

    for record in records:
        if record.overlaps(t_start, t_end):
            device = deployment.device(record.device_id)
            # The episode region is the device's (constant) detection disk:
            # the key needs no time component at all.
            key = ("detection", object_id, record.device_id)
            region = _memoized(memo, key, lambda device=device: device.range)
            episodes.append(Episode(kind="detection", region=region, key=key))

    for current, following in zip(records, records[1:]):
        episode = _gap_episode(
            current,
            following,
            t_start,
            t_end,
            deployment,
            v_max,
            topology,
            inner_allowance,
            object_id,
            memo,
        )
        if episode is not None:
            episodes.append(episode)

    first, last = records[0], records[-1]
    if first.t_s > t_start:
        # No record precedes the window start (otherwise the chain would
        # begin with it): bound the uncovered head by the ring reachable
        # backwards from the first detection.
        episodes.append(
            _boundary_ring_episode(
                "lead",
                deployment.device(first.device_id),
                v_max * (first.t_s - t_start),
                topology,
                inner_allowance,
                object_id,
                memo,
            )
        )
    if last.t_e < t_end:
        episodes.append(
            _boundary_ring_episode(
                "trail",
                deployment.device(last.device_id),
                v_max * (t_end - last.t_e),
                topology,
                inner_allowance,
                object_id,
                memo,
                tail_token,
            )
        )
    return IntervalUncertainty(context.object_id, t_start, t_end, episodes)


def _memoized(
    memo: RegionMemo | None,
    key: tuple[Hashable, ...],
    builder: Callable[[], Region],
) -> Region:
    return memo(key, builder) if memo is not None else builder()


def _gap_episode(
    current: TrackingRecord,
    following: TrackingRecord,
    t_start: float,
    t_end: float,
    deployment: Deployment,
    v_max: float,
    topology: TopologyChecker | None,
    inner_allowance: float = 0.0,
    object_id: ObjectId | None = None,
    memo: RegionMemo | None = None,
) -> Episode | None:
    """The extended-ellipse piece for one undetected gap, if it matters."""
    gap_start, gap_end = current.t_e, following.t_s
    if gap_end <= gap_start:
        return None  # back-to-back records: no undetected gap
    overlap_start = max(gap_start, t_start)
    overlap_end = min(gap_end, t_end)
    # A zero-length overlap is kept when the window itself is degenerate
    # (t_start == t_end inside the gap): the episode then reduces to the
    # snapshot uncertainty region at that instant, keeping the interval
    # query consistent with the snapshot query in the limit.
    if overlap_start > overlap_end:
        return None
    if overlap_start == overlap_end and not (
        t_start == t_end and gap_start < t_start < gap_end
    ):
        return None
    device_a = deployment.device(current.device_id)
    device_b = deployment.device(following.device_id)
    # The region is fully determined by the devices, the gap boundaries and
    # the part of the gap the window covers — NOT by the window ends
    # themselves, so interior gaps stay cache-stable under sliding windows.
    key = (
        "gap",
        object_id,
        device_a.device_id,
        device_b.device_id,
        quantize_time(gap_start),
        quantize_time(gap_end),
        quantize_time(overlap_start),
        quantize_time(overlap_end),
    )

    def build() -> Region:
        total_budget = v_max * (gap_end - gap_start)
        # Cheap Euclidean predicates first, indoor-distance constraints
        # last: the intersection evaluates parts left to right on a
        # shrinking point set, so the expensive topology checks only see
        # survivors.
        parts: list[Region] = [
            ExtendedEllipse(device_a.range, device_b.range, total_budget)
        ]
        topo_parts: list[Region] = []
        if topology is not None:
            topo_parts.append(
                topology.path_constraint(device_a, device_b, total_budget)
            )
        if overlap_end < gap_end:
            # The window ends inside the gap (Cases 3 and 4): the object
            # cannot have moved farther from dev_a than the time elapsed
            # allows — Theta_e ∩ Ring_e.
            budget = v_max * (overlap_end - gap_start)
            parts.append(slack_ring(device_a.range, budget, inner_allowance))
            if topology is not None:
                topo_parts.append(topology.ring_constraint(device_a, budget))
        if overlap_start > gap_start:
            # The window starts inside the gap (Cases 2 and 4): the object
            # must still reach dev_b in the remaining time — Theta_s ∩
            # Ring_s.
            budget = v_max * (gap_end - overlap_start)
            parts.append(slack_ring(device_b.range, budget, inner_allowance))
            if topology is not None:
                topo_parts.append(topology.ring_constraint(device_b, budget))
        return intersect_all(parts + topo_parts)

    return Episode(kind="gap", region=_memoized(memo, key, build), key=key)


def _boundary_ring_episode(
    kind: str,
    device: Device,
    budget: float,
    topology: TopologyChecker | None,
    inner_allowance: float = 0.0,
    object_id: ObjectId | None = None,
    memo: RegionMemo | None = None,
    tail_token: Hashable = None,
) -> Episode:
    budget = max(0.0, budget)
    key = (kind, object_id, device.device_id, quantize_time(budget), tail_token)

    def build() -> Region:
        parts: list[Region] = [slack_ring(device.range, budget, inner_allowance)]
        if topology is not None:
            parts.append(topology.ring_constraint(device, budget))
        return intersect_all(parts)

    return Episode(kind=kind, region=_memoized(memo, key, build), key=key)
