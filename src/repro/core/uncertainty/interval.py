"""Interval uncertainty regions ``UR(o, [t_s, t_e])`` (paper, Section 3.2).

The region over a window is a union of per-episode pieces derived from the
object's record chain (the paper's four cases, Table 3 and Figures 4–7,
unified):

* **detection episodes** — for every record whose detection interval
  intersects the window, the device's detection disk (the object was
  provably inside it);
* **gap episodes** — for every undetected gap between consecutive records
  that intersects the window, the extended ellipse
  ``Theta(dev_i, dev_j, rd_i.t_e, rd_j.t_s)``; when the window boundary
  falls *inside* the gap, the ellipse is intersected with the paper's
  boundary rings (``Theta_s ∩ Ring_s`` / ``Theta_e ∩ Ring_e`` of Cases
  2–4);
* **lead/trail episodes** — when the chain has no record before ``t_s``
  (or after ``t_e``), the ring reachable from the first (last) detection
  bounds the uncovered window part.

Each episode keeps its own MBR; the list of episode MBRs is exactly the
"series of much tighter MBRs" of the improved join algorithm (Section
4.3.2) — one small box per consecutive-record pair instead of one large
trajectory box full of dead space.

An optional :class:`TopologyChecker` intersects the indoor-reachability
constraints into every episode (Section 3.3).
"""

from __future__ import annotations

from dataclasses import dataclass

from ...geometry import (
    EmptyRegion,
    ExtendedEllipse,
    Mbr,
    Region,
    Ring,
    intersect_all,
    union_all,
)
from ...indoor.devices import Deployment, Device
from ...tracking.records import ObjectId, TrackingRecord
from ..states import IntervalContext
from .snapshot import slack_ring
from .topology import TopologyChecker

__all__ = ["Episode", "IntervalUncertainty", "interval_uncertainty"]


@dataclass(frozen=True)
class Episode:
    """One piece of an interval uncertainty region with its own MBR."""

    kind: str  # "detection" | "gap" | "lead" | "trail"
    region: Region

    @property
    def mbr(self) -> Mbr | None:
        return self.region.mbr


class IntervalUncertainty:
    """``UR(o, [t_s, t_e])`` as a union of episodes."""

    def __init__(
        self,
        object_id: ObjectId,
        t_start: float,
        t_end: float,
        episodes: list[Episode],
    ):
        self.object_id = object_id
        self.t_start = t_start
        self.t_end = t_end
        self.episodes = tuple(episodes)
        self._region: Region | None = None

    @property
    def region(self) -> Region:
        """The full uncertainty region (built lazily, cached)."""
        if self._region is None:
            parts = [episode.region for episode in self.episodes]
            self._region = union_all(parts) if parts else EmptyRegion()
        return self._region

    @property
    def mbr(self) -> Mbr | None:
        """One overall bounding box (the coarse pre-improvement MBR)."""
        boxes = self.segment_mbrs()
        return Mbr.union_all(boxes) if boxes else None

    def segment_mbrs(self) -> list[Mbr]:
        """Per-episode MBRs — the finer boxes of the improved join."""
        return [episode.mbr for episode in self.episodes if episode.mbr is not None]


def interval_uncertainty(
    context: IntervalContext,
    deployment: Deployment,
    v_max: float,
    topology: TopologyChecker | None = None,
    inner_allowance: float = 0.0,
) -> IntervalUncertainty:
    """Derive the interval uncertainty region from a record chain.

    ``inner_allowance`` relaxes ring inner exclusions for sampled
    positioning systems; see
    :func:`repro.core.uncertainty.snapshot.snapshot_region`.
    """
    if v_max <= 0:
        raise ValueError("v_max must be positive")
    t_start, t_end = context.t_start, context.t_end
    records = context.records
    episodes: list[Episode] = []

    for record in records:
        if record.overlaps(t_start, t_end):
            device = deployment.device(record.device_id)
            episodes.append(Episode(kind="detection", region=device.range))

    for current, following in zip(records, records[1:]):
        episode = _gap_episode(
            current,
            following,
            t_start,
            t_end,
            deployment,
            v_max,
            topology,
            inner_allowance,
        )
        if episode is not None:
            episodes.append(episode)

    first, last = records[0], records[-1]
    if first.t_s > t_start:
        # No record precedes the window start (otherwise the chain would
        # begin with it): bound the uncovered head by the ring reachable
        # backwards from the first detection.
        episodes.append(
            _boundary_ring_episode(
                "lead",
                deployment.device(first.device_id),
                v_max * (first.t_s - t_start),
                topology,
                inner_allowance,
            )
        )
    if last.t_e < t_end:
        episodes.append(
            _boundary_ring_episode(
                "trail",
                deployment.device(last.device_id),
                v_max * (t_end - last.t_e),
                topology,
                inner_allowance,
            )
        )
    return IntervalUncertainty(context.object_id, t_start, t_end, episodes)


def _gap_episode(
    current: TrackingRecord,
    following: TrackingRecord,
    t_start: float,
    t_end: float,
    deployment: Deployment,
    v_max: float,
    topology: TopologyChecker | None,
    inner_allowance: float = 0.0,
) -> Episode | None:
    """The extended-ellipse piece for one undetected gap, if it matters."""
    gap_start, gap_end = current.t_e, following.t_s
    if gap_end <= gap_start:
        return None  # back-to-back records: no undetected gap
    overlap_start = max(gap_start, t_start)
    overlap_end = min(gap_end, t_end)
    # A zero-length overlap is kept when the window itself is degenerate
    # (t_start == t_end inside the gap): the episode then reduces to the
    # snapshot uncertainty region at that instant, keeping the interval
    # query consistent with the snapshot query in the limit.
    if overlap_start > overlap_end:
        return None
    if overlap_start == overlap_end and not (
        t_start == t_end and gap_start < t_start < gap_end
    ):
        return None
    device_a = deployment.device(current.device_id)
    device_b = deployment.device(following.device_id)
    total_budget = v_max * (gap_end - gap_start)
    # Cheap Euclidean predicates first, indoor-distance constraints last:
    # the intersection evaluates parts left to right on a shrinking point
    # set, so the expensive topology checks only see survivors.
    parts: list[Region] = [
        ExtendedEllipse(device_a.range, device_b.range, total_budget)
    ]
    topo_parts: list[Region] = []
    if topology is not None:
        topo_parts.append(
            topology.path_constraint(device_a, device_b, total_budget)
        )
    if overlap_end < gap_end:
        # The window ends inside the gap (Cases 3 and 4): the object cannot
        # have moved farther from dev_a than the time elapsed allows —
        # Theta_e ∩ Ring_e.
        budget = v_max * (overlap_end - gap_start)
        parts.append(slack_ring(device_a.range, budget, inner_allowance))
        if topology is not None:
            topo_parts.append(topology.ring_constraint(device_a, budget))
    if overlap_start > gap_start:
        # The window starts inside the gap (Cases 2 and 4): the object must
        # still reach dev_b in the remaining time — Theta_s ∩ Ring_s.
        budget = v_max * (gap_end - overlap_start)
        parts.append(slack_ring(device_b.range, budget, inner_allowance))
        if topology is not None:
            topo_parts.append(topology.ring_constraint(device_b, budget))
    return Episode(kind="gap", region=intersect_all(parts + topo_parts))


def _boundary_ring_episode(
    kind: str,
    device: Device,
    budget: float,
    topology: TopologyChecker | None,
    inner_allowance: float = 0.0,
) -> Episode:
    budget = max(0.0, budget)
    parts: list[Region] = [slack_ring(device.range, budget, inner_allowance)]
    if topology is not None:
        parts.append(topology.ring_constraint(device, budget))
    return Episode(kind=kind, region=intersect_all(parts))
