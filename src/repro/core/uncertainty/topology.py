"""The indoor topology check (paper, Section 3.3).

An uncertainty region derived from Euclidean speed bounds may contain parts
of the indoor space the object could not actually reach: walking happens
through doors, so the *indoor* distance — which always dominates the
Euclidean one — is the binding constraint.  The paper excludes the parts of
a region whose indoor distance from the involved devices exceeds the
corresponding maximum travel distance (Figure 8).

We implement the check as additional constraint regions intersected with
the Euclidean primitives, at per-point granularity:

* :class:`ReachabilityConstraint` — points whose indoor distance to a
  device range is within a budget (tightens rings, Figure 8(a));
* :class:`PathReachabilityConstraint` — points through which a path from
  one device range to another fits the budget (tightens extended ellipses,
  Figure 8(b)).

Per-point constraints subsume the paper's part-wise exclusion: every point
of an excluded disconnected part violates the distance bound, and points of
*kept* parts that are individually unreachable are pruned too.  Because the
indoor metric dominates the Euclidean metric, both constraints only ever
shrink regions — soundness (the true position stays inside) is preserved,
which the test suite verifies against simulated ground truth.

Distance fields from device centers are cached in :class:`TopologyChecker`;
a deployment is small and static, so the cache converges quickly.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from ...geometry import Mbr, Point, Region
from ...indoor.devices import Device
from ...indoor.distance import IndoorDistanceOracle, PointDistanceField

if TYPE_CHECKING:  # pragma: no cover - typing only
    from numpy.typing import NDArray

__all__ = [
    "ReachabilityConstraint",
    "PathReachabilityConstraint",
    "TopologyChecker",
]


class ReachabilityConstraint(Region):
    """Points ``p`` with ``max(0, indoor_dist(center, p) - radius) <= budget``.

    ``radius`` discounts the device's detection radius: the object starts
    from (or must reach) the range *boundary*, while the distance field is
    anchored at the range center.
    """

    __slots__ = ("field", "radius", "budget", "_mbr")

    def __init__(self, field: PointDistanceField, radius: float, budget: float):
        if radius < 0 or budget < 0:
            raise ValueError("radius and budget must be non-negative")
        self.field = field
        self.radius = radius
        self.budget = budget
        # Indoor distance dominates Euclidean distance, so the Euclidean
        # disk of the same reach bounds the constraint region.
        reach = radius + budget
        self._mbr = Mbr.around(field.source, reach, reach)

    @property
    def mbr(self) -> Mbr:
        return self._mbr

    def contains(self, point: Point) -> bool:
        return self.field.distance_to(point) - self.radius <= self.budget + 1e-9

    def contains_many(
        self, xs: "NDArray[np.float64]", ys: "NDArray[np.float64]"
    ) -> "NDArray[np.bool_]":
        distances = self.field.distances_to_many(xs, ys)
        result: "NDArray[np.bool_]" = (
            distances - self.radius <= self.budget + 1e-9
        )
        return result


class PathReachabilityConstraint(Region):
    """Points on an indoor path between two ranges within a total budget.

    Contains ``p`` iff ``max(0, d_a(p) - r_a) + max(0, d_b(p) - r_b) <=
    budget`` where ``d_a``/``d_b`` are indoor distances from the two device
    centers — the indoor-metric analogue of the extended ellipse.
    """

    __slots__ = ("field_a", "radius_a", "field_b", "radius_b", "budget", "_mbr")

    def __init__(
        self,
        field_a: PointDistanceField,
        radius_a: float,
        field_b: PointDistanceField,
        radius_b: float,
        budget: float,
    ):
        if budget < 0:
            raise ValueError("budget must be non-negative")
        self.field_a = field_a
        self.radius_a = radius_a
        self.field_b = field_b
        self.radius_b = radius_b
        self.budget = budget
        reach_a = radius_a + budget
        reach_b = radius_b + budget
        box_a = Mbr.around(field_a.source, reach_a, reach_a)
        box_b = Mbr.around(field_b.source, reach_b, reach_b)
        self._mbr = box_a.intersection(box_b)

    @property
    def mbr(self) -> Mbr | None:
        return self._mbr

    def contains(self, point: Point) -> bool:
        total = max(0.0, self.field_a.distance_to(point) - self.radius_a) + max(
            0.0, self.field_b.distance_to(point) - self.radius_b
        )
        return total <= self.budget + 1e-9

    def contains_many(
        self, xs: "NDArray[np.float64]", ys: "NDArray[np.float64]"
    ) -> "NDArray[np.bool_]":
        if self._mbr is None:
            return np.zeros(len(xs), dtype=bool)
        part_a = np.maximum(
            self.field_a.distances_to_many(xs, ys) - self.radius_a, 0.0
        )
        part_b = np.maximum(
            self.field_b.distances_to_many(xs, ys) - self.radius_b, 0.0
        )
        result: "NDArray[np.bool_]" = part_a + part_b <= self.budget + 1e-9
        return result


class TopologyChecker:
    """Factory for topology constraints with per-device field caching."""

    def __init__(self, oracle: IndoorDistanceOracle):
        self.oracle = oracle
        self._fields: dict[object, PointDistanceField] = {}

    def field_of(self, device: Device) -> PointDistanceField:
        field = self._fields.get(device.device_id)
        if field is None:
            field = self.oracle.field_from(device.center)
            self._fields[device.device_id] = field
        return field

    def ring_constraint(self, device: Device, budget: float) -> Region:
        """Indoor-reachability tightening of ``Ring(device, budget)``."""
        return ReachabilityConstraint(
            self.field_of(device), device.radius, max(0.0, budget)
        )

    def path_constraint(
        self, device_a: Device, device_b: Device, budget: float
    ) -> Region:
        """Indoor-reachability tightening of ``Theta(device_a, device_b, ...)``."""
        return PathReachabilityConstraint(
            self.field_of(device_a),
            device_a.radius,
            self.field_of(device_b),
            device_b.radius,
            max(0.0, budget),
        )
