"""Uncertainty-region derivation (paper, Section 3)."""

from .interval import Episode, IntervalUncertainty, interval_uncertainty
from .snapshot import snapshot_mbr, snapshot_region, snapshot_region_key
from .topology import (
    PathReachabilityConstraint,
    ReachabilityConstraint,
    TopologyChecker,
)

__all__ = [
    "Episode",
    "IntervalUncertainty",
    "PathReachabilityConstraint",
    "ReachabilityConstraint",
    "TopologyChecker",
    "interval_uncertainty",
    "snapshot_mbr",
    "snapshot_region",
    "snapshot_region_key",
]
