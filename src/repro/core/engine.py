"""`FlowEngine` — the library's main entry point.

Wraps a floor plan, a device deployment, an OTT and a POI set into one
query-ready object: indexes are built once (AR-tree over the OTT, R-tree
over the POIs, door graph + distance oracle for the topology check) and the
two top-k queries are exposed with both processing strategies.

The engine holds one long-lived :class:`EvaluationContext` carrying the
evaluation parameters and the region/presence memo layers, so repeated
ad-hoc queries and monitor ticks reuse previously computed uncertainty
regions and presence values; :meth:`FlowEngine.stats` reports what the
caches saved.

Typical use::

    engine = FlowEngine(plan, deployment, ott, pois, v_max=1.1)
    top = engine.snapshot_topk(t=3600.0, k=10)
    for row in top:
        print(row.poi.name, row.flow)
    print(engine.stats())  # cache hits, regions computed, ...
"""

from __future__ import annotations

from typing import Sequence

from ..geometry import DEFAULT_RESOLUTION, Region
from ..index import ARTree, RTree
from ..indoor.devices import Deployment
from ..indoor.distance import IndoorDistanceOracle
from ..indoor.floorplan import FloorPlan
from ..indoor.poi import Poi, build_poi_index
from ..tracking.records import ObjectId
from ..tracking.table import ObjectTrackingTable
from .algorithms.iterative import (
    interval_flows,
    iterative_interval,
    iterative_snapshot,
    snapshot_flows,
)
from .algorithms.join import join_interval, join_snapshot
from .context import (
    DEFAULT_PRESENCE_CACHE_SIZE,
    DEFAULT_REGION_CACHE_SIZE,
    EvaluationContext,
)
from .presence import PresenceEstimator
from .queries import TopKResult, rank_top_k_by_density
from .states import interval_context_from_entries, snapshot_context
from .uncertainty import IntervalUncertainty, TopologyChecker

__all__ = ["FlowEngine"]

_METHODS = ("join", "iterative")


class FlowEngine:
    """Query engine for frequently-visited-POI analysis.

    Parameters
    ----------
    floorplan, deployment, ott, pois:
        The indoor space, its positioning devices, the (frozen or
        freezable) tracking table and the POI universe.
    v_max:
        Maximum indoor movement speed (m/s) — the paper's ``V_max``.
    resolution:
        Presence quadrature resolution (grid cells along the longer POI
        side).
    topology_check:
        Apply the indoor topology check (Section 3.3).  Disable to ablate.
    rtree_fanout, artree_fanout:
        Index node capacities.
    detection_slack:
        Detection latency of the positioning system, in seconds.  The
        paper's model assumes continuous detection; sampled systems may
        miss an object's presence inside a range for up to roughly twice
        the sampling period, during which the rings' inner exclusions
        would be unsound.  Setting this to ``2 * sampling_interval``
        relaxes those exclusions by ``v_max * detection_slack`` meters.
        ``0.0`` (default) reproduces the paper's idealised model exactly.
    region_cache_size, presence_cache_size:
        LRU capacities of the evaluation context's memo layers; ``0``
        disables a layer (useful to compare cached against uncached
        evaluation — results are identical either way).
    """

    def __init__(
        self,
        floorplan: FloorPlan,
        deployment: Deployment,
        ott: ObjectTrackingTable,
        pois: Sequence[Poi],
        v_max: float,
        resolution: int = DEFAULT_RESOLUTION,
        topology_check: bool = True,
        rtree_fanout: int = 8,
        artree_fanout: int = 16,
        detection_slack: float = 0.0,
        region_cache_size: int = DEFAULT_REGION_CACHE_SIZE,
        presence_cache_size: int = DEFAULT_PRESENCE_CACHE_SIZE,
    ):
        if v_max <= 0:
            raise ValueError("v_max must be positive")
        if detection_slack < 0:
            raise ValueError("detection_slack must be non-negative")
        if not pois:
            raise ValueError("the engine needs at least one POI")
        self.floorplan = floorplan
        self.ott = ott.freeze()
        self.pois = list(pois)
        self.artree = ARTree.build(self.ott, fanout=artree_fanout)
        self.poi_tree = build_poi_index(self.pois, max_entries=rtree_fanout)
        self.detection_slack = detection_slack
        self.ctx = EvaluationContext(
            deployment=deployment,
            v_max=v_max,
            estimator=PresenceEstimator(resolution=resolution),
            topology=(
                TopologyChecker(IndoorDistanceOracle(floorplan))
                if topology_check
                else None
            ),
            inner_allowance=v_max * detection_slack,
            rtree_fanout=rtree_fanout,
            region_cache_size=region_cache_size,
            presence_cache_size=presence_cache_size,
        )
        self._pois_by_id = {poi.poi_id: poi for poi in self.pois}

    # ------------------------------------------------------------------
    # Evaluation parameters (delegated to the long-lived context)
    # ------------------------------------------------------------------

    @property
    def deployment(self) -> Deployment:
        return self.ctx.deployment

    @property
    def v_max(self) -> float:
        return self.ctx.v_max

    @property
    def estimator(self) -> PresenceEstimator:
        return self.ctx.estimator

    @property
    def topology(self) -> TopologyChecker | None:
        return self.ctx.topology

    @property
    def inner_allowance(self) -> float:
        return self.ctx.inner_allowance

    @property
    def rtree_fanout(self) -> int:
        return self.ctx.rtree_fanout

    # ------------------------------------------------------------------
    # Instrumentation
    # ------------------------------------------------------------------

    def stats(self) -> dict[str, int]:
        """Evaluation counters and cache occupancy since the last reset.

        Keys: ``regions_computed``, ``region_cache_hits``,
        ``presence_evaluations``, ``presence_cache_hits``,
        ``topology_prunes``, ``region_cache_entries``,
        ``presence_cache_entries``, ``estimator_cached_pois``.
        """
        stats = self.ctx.stats_dict()
        stats["estimator_cached_pois"] = self.ctx.estimator.sample_cache_size
        return stats

    def reset_stats(self) -> None:
        """Zero the evaluation counters (cache contents are kept)."""
        self.ctx.reset_stats()

    # ------------------------------------------------------------------
    # POI subsets
    # ------------------------------------------------------------------

    def _query_pois(
        self, pois: Sequence[Poi] | None
    ) -> tuple[list[Poi], RTree]:
        """Resolve the query POI set P and its R-tree R_P."""
        if pois is None:
            return self.pois, self.poi_tree
        subset = list(pois)
        if not subset:
            raise ValueError("the query POI set may not be empty")
        return subset, build_poi_index(subset, max_entries=self.ctx.rtree_fanout)

    # ------------------------------------------------------------------
    # Top-k queries (Problems 1 and 2)
    # ------------------------------------------------------------------

    def snapshot_topk(
        self,
        t: float,
        k: int,
        pois: Sequence[Poi] | None = None,
        method: str = "join",
    ) -> TopKResult:
        """Problem 1: the k POIs most visited at time point ``t``."""
        query_pois, poi_tree = self._query_pois(pois)
        if method == "join":
            return join_snapshot(self.artree, poi_tree, query_pois, self.ctx, t, k)
        if method == "iterative":
            return iterative_snapshot(
                self.artree, poi_tree, query_pois, self.ctx, t, k
            )
        raise ValueError(f"unknown method {method!r}; expected one of {_METHODS}")

    def interval_topk(
        self,
        t_start: float,
        t_end: float,
        k: int,
        pois: Sequence[Poi] | None = None,
        method: str = "join",
        use_segment_mbrs: bool = True,
    ) -> TopKResult:
        """Problem 2: the k POIs most visited during ``[t_start, t_end]``."""
        query_pois, poi_tree = self._query_pois(pois)
        if method == "join":
            return join_interval(
                self.artree,
                poi_tree,
                query_pois,
                self.ctx,
                t_start,
                t_end,
                k,
                use_segment_mbrs=use_segment_mbrs,
            )
        if method == "iterative":
            return iterative_interval(
                self.artree, poi_tree, query_pois, self.ctx, t_start, t_end, k
            )
        raise ValueError(f"unknown method {method!r}; expected one of {_METHODS}")

    # ------------------------------------------------------------------
    # Flow maps (full Φ for analysis / validation)
    # ------------------------------------------------------------------

    def snapshot_flows(
        self, t: float, pois: Sequence[Poi] | None = None
    ) -> dict[str, float]:
        """``Φ_t(p)`` for every query POI with non-zero flow."""
        _, poi_tree = self._query_pois(pois)
        return snapshot_flows(self.artree, poi_tree, self.ctx, t)

    def interval_flows(
        self, t_start: float, t_end: float, pois: Sequence[Poi] | None = None
    ) -> dict[str, float]:
        """``Φ_[t_s, t_e](p)`` for every query POI with non-zero flow."""
        _, poi_tree = self._query_pois(pois)
        return interval_flows(self.artree, poi_tree, self.ctx, t_start, t_end)

    # ------------------------------------------------------------------
    # Density variants (area-normalised ranking; cf. paper Section 6.2)
    # ------------------------------------------------------------------

    def snapshot_density_topk(
        self, t: float, k: int, pois: Sequence[Poi] | None = None
    ) -> TopKResult:
        """The k POIs with the highest snapshot flow *density* (flow/m²).

        Density ranking needs every POI's exact flow, so it always uses the
        iterative flow computation; the returned entries carry densities in
        their ``flow`` field.
        """
        query_pois, _ = self._query_pois(pois)
        flows = self.snapshot_flows(t, pois=query_pois)
        return rank_top_k_by_density(flows, query_pois, k)

    def interval_density_topk(
        self,
        t_start: float,
        t_end: float,
        k: int,
        pois: Sequence[Poi] | None = None,
    ) -> TopKResult:
        """The k POIs with the highest interval flow density (flow/m²)."""
        query_pois, _ = self._query_pois(pois)
        flows = self.interval_flows(t_start, t_end, pois=query_pois)
        return rank_top_k_by_density(flows, query_pois, k)

    # ------------------------------------------------------------------
    # Uncertainty-region introspection
    # ------------------------------------------------------------------

    def snapshot_region_of(self, object_id: ObjectId, t: float) -> Region | None:
        """``UR(o, t)`` for one object, or ``None`` if not trackable at t.

        Resolved through the AR-tree's per-object entry lookup, so the cost
        is O(records of the object), independent of the population size.
        """
        for entry in self.artree.entries_for(object_id):
            if entry.covers(t):
                return self.ctx.snapshot_region(snapshot_context(entry, t))
        return None

    def interval_region_of(
        self, object_id: ObjectId, t_start: float, t_end: float
    ) -> IntervalUncertainty | None:
        """``UR(o, [t_s, t_e])`` for one object, or ``None`` if irrelevant.

        Like :meth:`snapshot_region_of`, resolved per object rather than by
        scanning every object relevant to the window.
        """
        if t_end < t_start:
            raise ValueError("t_end precedes t_start")
        entries = [
            entry
            for entry in self.artree.entries_for(object_id)
            if entry.overlaps(t_start, t_end)
        ]
        if not entries:
            return None
        context = interval_context_from_entries(
            object_id, entries, t_start, t_end
        )
        return self.ctx.interval_uncertainty(context)
