"""`FlowEngine` — the library's main entry point.

Wraps a floor plan, a device deployment, an OTT and a POI set into one
query-ready object: indexes are built once (AR-tree over the OTT, R-tree
over the POIs, door graph + distance oracle for the topology check) and the
two top-k queries are exposed with both processing strategies.

The engine holds one long-lived :class:`EvaluationContext` carrying the
evaluation parameters and the region/presence memo layers, so repeated
ad-hoc queries and monitor ticks reuse previously computed uncertainty
regions and presence values; :meth:`FlowEngine.stats` reports what the
caches saved.

Typical use::

    engine = FlowEngine(plan, deployment, ott, pois, v_max=1.1)
    top = engine.snapshot_topk(t=3600.0, k=10)
    for row in top:
        print(row.poi.name, row.flow)
    print(engine.stats())  # cache hits, regions computed, ...

A **live** engine (``live=True``, a :class:`LiveTrackingTable`, or the
:class:`LiveFlowEngine` convenience subclass) additionally accepts new
tracking records while serving queries: :meth:`FlowEngine.ingest` appends
through the live table's at-append validation, maintains the AR-tree
incrementally (delta buffer + automatic compaction) and rolls the
appended objects' cache epochs — no index rebuild, no cache flush.
Results after an ingest are identical to a freshly built engine over the
union of records.
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence

from ..geometry import DEFAULT_RESOLUTION, Region
from ..index import ARTree, RTree
from ..index.artree import DEFAULT_DELTA_THRESHOLD
from ..indoor.devices import Deployment
from ..indoor.floorplan import FloorPlan
from ..indoor.poi import Poi
from ..obs import counter, obs_enabled, span
from ..storage.base import StorageBackend
from ..tracking.records import ObjectId, TrackingRecord
from ..tracking.table import LiveTrackingTable, ObjectTrackingTable
from .algorithms.iterative import (
    interval_flows,
    iterative_interval,
    iterative_snapshot,
    snapshot_flows,
)
from .algorithms.join import join_interval, join_snapshot
from .context import (
    DEFAULT_PRESENCE_CACHE_SIZE,
    DEFAULT_REGION_CACHE_SIZE,
    EvaluationContext,
)
from .presence import PresenceEstimator
from .queries import TopKResult, rank_top_k_by_density
from .shard import DEFAULT_POI_SUBSET_CACHE_SIZE, ShardState
from .states import interval_context_from_entries, snapshot_context
from .uncertainty import IntervalUncertainty, TopologyChecker

__all__ = ["FlowEngine", "LiveFlowEngine", "DEFAULT_POI_SUBSET_CACHE_SIZE"]

_METHODS = ("join", "iterative")


class FlowEngine:
    """Query engine for frequently-visited-POI analysis.

    Parameters
    ----------
    floorplan, deployment, ott, pois:
        The indoor space, its positioning devices, the (frozen or
        freezable) tracking table and the POI universe.
    v_max:
        Maximum indoor movement speed (m/s) — the paper's ``V_max``.
    resolution:
        Presence quadrature resolution (grid cells along the longer POI
        side).
    topology_check:
        Apply the indoor topology check (Section 3.3).  Disable to ablate.
    rtree_fanout, artree_fanout:
        Index node capacities.
    detection_slack:
        Detection latency of the positioning system, in seconds.  The
        paper's model assumes continuous detection; sampled systems may
        miss an object's presence inside a range for up to roughly twice
        the sampling period, during which the rings' inner exclusions
        would be unsound.  Setting this to ``2 * sampling_interval``
        relaxes those exclusions by ``v_max * detection_slack`` meters.
        ``0.0`` (default) reproduces the paper's idealised model exactly.
    region_cache_size, presence_cache_size:
        LRU capacities of the evaluation context's memo layers; ``0``
        disables a layer (useful to compare cached against uncached
        evaluation — results are identical either way).
    live:
        Keep the tracking table append-capable: :meth:`ingest` (and the
        open-episode methods) accept new records after construction.
        Implied when ``ott`` is a :class:`LiveTrackingTable`; a plain
        table is re-validated into one record by record.
    artree_delta_threshold:
        Delta-buffer size at which the live AR-tree auto-compacts.
    storage:
        A :class:`~repro.storage.base.StorageBackend` the live table
        writes through to (requires ``live=True`` or a live table).  A
        pristine backend is seeded with ``ott``'s records; a populated
        one **recovers** — ``ott`` must then be empty, the AR-tree
        bulk-loads the persisted snapshot and only the WAL tail is
        replayed through the ingest seam, reproducing the crashed
        writer's state bit for bit.  :meth:`checkpoint` folds the tail
        into the snapshot so later reopens replay nothing.
    """

    def __init__(
        self,
        floorplan: FloorPlan,
        deployment: Deployment,
        ott: ObjectTrackingTable | LiveTrackingTable,
        pois: Sequence[Poi],
        v_max: float,
        resolution: int = DEFAULT_RESOLUTION,
        topology_check: bool = True,
        rtree_fanout: int = 8,
        artree_fanout: int = 16,
        detection_slack: float = 0.0,
        region_cache_size: int = DEFAULT_REGION_CACHE_SIZE,
        presence_cache_size: int = DEFAULT_PRESENCE_CACHE_SIZE,
        live: bool = False,
        artree_delta_threshold: int = DEFAULT_DELTA_THRESHOLD,
        storage: StorageBackend | None = None,
    ):
        # The engine is the degenerate one-shard deployment: all state —
        # table, indexes, caches, epochs — lives in a single ShardState,
        # the same facade an N-shard coordinator fans out over.
        self._shard = ShardState(
            floorplan=floorplan,
            deployment=deployment,
            ott=ott,
            pois=pois,
            v_max=v_max,
            resolution=resolution,
            topology_check=topology_check,
            rtree_fanout=rtree_fanout,
            artree_fanout=artree_fanout,
            detection_slack=detection_slack,
            region_cache_size=region_cache_size,
            presence_cache_size=presence_cache_size,
            live=live,
            artree_delta_threshold=artree_delta_threshold,
            storage=storage,
        )
        self.floorplan = floorplan
        self.detection_slack = detection_slack
        self._closed = False

    # ------------------------------------------------------------------
    # Shard-owned state (the engine is its single shard)
    # ------------------------------------------------------------------

    @property
    def shard(self) -> ShardState:
        """The engine's single :class:`ShardState` (owns all state)."""
        return self._shard

    @property
    def ott(self) -> ObjectTrackingTable | LiveTrackingTable:
        """The indexed tracking table (live when the engine is live)."""
        return self._shard.ott

    @property
    def pois(self) -> list[Poi]:
        """The engine's POI universe."""
        return self._shard.pois

    @property
    def artree(self) -> ARTree:
        """The AR-tree over the OTT."""
        return self._shard.artree

    @property
    def poi_tree(self) -> RTree:
        """The POI R-tree ``R_P`` over the full universe."""
        return self._shard.poi_tree

    @property
    def ctx(self) -> EvaluationContext:
        """The long-lived evaluation context (parameters + memo layers)."""
        return self._shard.ctx

    @property
    def poi_subset_trees_built(self) -> int:
        """How many per-subset POI R-trees were actually built."""
        return self._shard.poi_subset_trees_built

    @property
    def _live(self) -> LiveTrackingTable | None:
        return self._shard._live

    # ------------------------------------------------------------------
    # Evaluation parameters (delegated to the long-lived context)
    # ------------------------------------------------------------------

    @property
    def deployment(self) -> Deployment:
        """The positioning-device deployment regions are derived against."""
        return self.ctx.deployment

    @property
    def v_max(self) -> float:
        """Maximum indoor movement speed (m/s) — the paper's ``V_max``."""
        return self.ctx.v_max

    @property
    def estimator(self) -> PresenceEstimator:
        """The presence (grid quadrature) estimator in use."""
        return self.ctx.estimator

    @property
    def topology(self) -> TopologyChecker | None:
        """The indoor topology checker, or ``None`` when ablated."""
        return self.ctx.topology

    @property
    def inner_allowance(self) -> float:
        """Ring inner-exclusion relaxation in meters (``v_max * slack``)."""
        return self.ctx.inner_allowance

    @property
    def rtree_fanout(self) -> int:
        """Node capacity for per-query R-trees (POI subsets, join R_I)."""
        return self.ctx.rtree_fanout

    # ------------------------------------------------------------------
    # Live ingestion
    # ------------------------------------------------------------------

    @property
    def is_live(self) -> bool:
        """Whether the engine accepts new tracking records (see ``live``)."""
        return self._shard.is_live

    @property
    def generation(self) -> int:
        """The live table's mutation counter (0 for a frozen-batch engine)."""
        return self._shard.generation

    @property
    def storage(self) -> StorageBackend | None:
        """The durable storage backend, if one was attached (see ``storage``)."""
        return self._shard.storage

    def checkpoint(self) -> int:
        """Fold the storage backend's WAL tail into its bulk snapshot.

        After a checkpoint, reopening the store bulk-loads everything
        into the AR-tree's static core and replays nothing.  Cheap to
        call periodically; queries before and after are bit-identical.

        Returns:
            The number of WAL mutations folded in.

        Raises:
            RuntimeError: If the engine is frozen-batch.
        """
        self._require_live()
        return self._shard.compact_storage()

    def close(self) -> None:
        """Flush and release the engine's storage backend (idempotent).

        A dropped live engine with a durable backend would otherwise
        leave an unflushed WAL tail behind — recoverable (that is the
        WAL's point) but slow to reopen.  ``close()`` folds the tail
        into the snapshot and closes the backend handle; engines without
        storage (or frozen-batch ones) close as a no-op.  After closing,
        further ingest against a durable engine fails — closing is
        terminal, not a pause.
        """
        if self._closed:
            return
        self._closed = True
        if self._shard.is_live and self._shard.storage is not None:
            self._shard.close_storage()

    def __enter__(self) -> "FlowEngine":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def _require_live(self) -> None:
        if not self._shard.is_live:
            raise RuntimeError(
                "this engine is frozen-batch; construct it with live=True "
                "(or LiveFlowEngine) to ingest records"
            )

    def ingest(self, records: Iterable[TrackingRecord]) -> int:
        """Append closed tracking records to a live engine; returns the count.

        Each record is validated by the live table (per-object ordering and
        non-overlap, at append time), indexed incrementally in the AR-tree
        and reported to the evaluation context, which rolls the object's
        tail-episode cache epoch.  Subsequent queries — including a monitor
        :meth:`~repro.core.monitor.SnapshotTopKMonitor.advance` at an
        unchanged instant — see the new data immediately and return exactly
        what a freshly built engine over the union of records would.

        Records are applied one by one: if one fails validation, the
        records before it remain ingested and the error propagates.

        Args:
            records: Closed tracking records, in per-object chronological
                order (each object's appends must not overlap or run
                backwards in time).

        Returns:
            The number of records ingested.

        Raises:
            RuntimeError: If the engine is frozen-batch (``live=False``).
            ValueError: If a record fails the live table's at-append
                validation; earlier records of the batch stay ingested.
        """
        self._require_live()
        count = self._shard.ingest_batch(records)
        if obs_enabled():
            counter("engine.ingest.records", unit="records").inc(count)
        return count

    def ingest_open(self, record: TrackingRecord) -> None:
        """Start an open detection episode (``t_e`` still advancing).

        The record enters table and index like a normal append but stays
        patchable: :meth:`extend_episode` advances its end time and
        :meth:`close_episode` fixes it.

        Args:
            record: The episode's initial extent (``t_e`` may equal
                ``t_s``; it will be advanced by :meth:`extend_episode`).

        Raises:
            RuntimeError: If the engine is frozen-batch.
            ValueError: If the record fails at-append validation or the
                object already has an open episode.
        """
        self._require_live()
        self._shard.ingest_open_episode(record)

    def extend_episode(self, object_id: ObjectId, t_e: float) -> TrackingRecord:
        """Advance an open episode's end time.

        Args:
            object_id: The object whose episode is open.
            t_e: The new end time (must not move backwards).

        Returns:
            The updated (still open) tracking record.

        Raises:
            RuntimeError: If the engine is frozen-batch.
            ValueError: If the object has no open episode or ``t_e``
                retreats.
        """
        self._require_live()
        return self._shard.extend_open_episode(object_id, t_e)

    def close_episode(
        self, object_id: ObjectId, t_e: float | None = None
    ) -> TrackingRecord:
        """Close an open episode, freezing its extent.

        Args:
            object_id: The object whose episode is open.
            t_e: Optional final end time; defaults to the episode's
                current extent.

        Returns:
            The closed tracking record.

        Raises:
            RuntimeError: If the engine is frozen-batch.
            ValueError: If the object has no open episode or ``t_e``
                retreats.
        """
        self._require_live()
        return self._shard.close_open_episode(object_id, t_e)

    # ------------------------------------------------------------------
    # Instrumentation
    # ------------------------------------------------------------------

    def stats(self) -> dict[str, int]:
        """Evaluation counters and cache occupancy since the last reset.

        These counters are part of the engine's semantics (tests assert
        on them); the :mod:`repro.obs` layer observes *around* them and
        never feeds into them.

        Returns:
            A dict with the keys ``regions_computed``,
            ``region_cache_hits``, ``presence_evaluations``,
            ``presence_cache_hits``, ``topology_prunes``,
            ``region_cache_entries``, ``presence_cache_entries``,
            ``data_generation``, ``estimator_cached_pois``,
            ``poi_subset_trees_built``, ``artree_delta_entries``,
            ``artree_compactions``.
        """
        return self._shard.stats()

    def reset_stats(self) -> None:
        """Zero the evaluation counters (cache contents are kept)."""
        self._shard.reset_stats()

    # ------------------------------------------------------------------
    # POI subsets
    # ------------------------------------------------------------------

    def _query_pois(
        self, pois: Sequence[Poi] | None
    ) -> tuple[list[Poi], RTree]:
        """Resolve the query POI set P and its R-tree R_P.

        Subset R-trees are memoized (per ``poi_id`` tuple, verified
        against the members), so a monitor or dashboard re-querying the
        same subset builds its R_P exactly once.  ``poi_subset_trees_built``
        in :meth:`stats` counts the actual builds.
        """
        return self._shard.resolve_pois(pois)

    # ------------------------------------------------------------------
    # Top-k queries (Problems 1 and 2)
    # ------------------------------------------------------------------

    def snapshot_topk(
        self,
        t: float,
        k: int,
        pois: Sequence[Poi] | None = None,
        method: str = "join",
    ) -> TopKResult:
        """Problem 1: the k POIs most visited at time point ``t``.

        Args:
            t: The query instant (same clock as the tracking records).
            k: How many POIs to return.
            pois: Optional query subset P; defaults to the engine's full
                POI universe.  Subset R-trees are memoized per identity.
            method: ``"join"`` (Algorithm 2, default) or ``"iterative"``
                (Algorithm 1) — both return identical rankings.

        Returns:
            The ranked :class:`~repro.core.queries.TopKResult`; flows are
            exact for every returned POI.

        Raises:
            ValueError: If ``method`` is unknown, ``k < 1``, or an empty
                ``pois`` sequence is passed.
        """
        if method not in _METHODS:
            raise ValueError(
                f"unknown method {method!r}; expected one of {_METHODS}"
            )
        query_pois, poi_tree = self._query_pois(pois)
        with span(f"query.snapshot.{method}"):
            if method == "join":
                return join_snapshot(
                    self.artree, poi_tree, query_pois, self.ctx, t, k
                )
            return iterative_snapshot(
                self.artree, poi_tree, query_pois, self.ctx, t, k
            )

    def interval_topk(
        self,
        t_start: float,
        t_end: float,
        k: int,
        pois: Sequence[Poi] | None = None,
        method: str = "join",
        use_segment_mbrs: bool = True,
    ) -> TopKResult:
        """Problem 2: the k POIs most visited during ``[t_start, t_end]``.

        Args:
            t_start: Window start (inclusive).
            t_end: Window end (inclusive; must not precede ``t_start``).
            k: How many POIs to return.
            pois: Optional query subset P; defaults to the full universe.
            method: ``"join"`` (Algorithm 5, default) or ``"iterative"``
                (Algorithm 4) — identical rankings either way.
            use_segment_mbrs: Keep the Section 4.3.2 improvement (tight
                per-episode MBRs) on; set ``False`` to ablate it.

        Returns:
            The ranked :class:`~repro.core.queries.TopKResult`.

        Raises:
            ValueError: If ``method`` is unknown, ``k < 1``, the window
                is inverted, or an empty ``pois`` sequence is passed.
        """
        if method not in _METHODS:
            raise ValueError(
                f"unknown method {method!r}; expected one of {_METHODS}"
            )
        query_pois, poi_tree = self._query_pois(pois)
        with span(f"query.interval.{method}"):
            if method == "join":
                return join_interval(
                    self.artree,
                    poi_tree,
                    query_pois,
                    self.ctx,
                    t_start,
                    t_end,
                    k,
                    use_segment_mbrs=use_segment_mbrs,
                )
            return iterative_interval(
                self.artree, poi_tree, query_pois, self.ctx, t_start, t_end, k
            )

    # ------------------------------------------------------------------
    # Flow maps (full Φ for analysis / validation)
    # ------------------------------------------------------------------

    def snapshot_flows(
        self, t: float, pois: Sequence[Poi] | None = None
    ) -> dict[str, float]:
        """``Φ_t(p)`` for every query POI with non-zero flow.

        Args:
            t: The query instant.
            pois: Optional query subset; defaults to the full universe.

        Returns:
            ``{poi_id: flow}`` containing only POIs with positive flow.
        """
        _, poi_tree = self._query_pois(pois)
        return snapshot_flows(self.artree, poi_tree, self.ctx, t)

    def interval_flows(
        self, t_start: float, t_end: float, pois: Sequence[Poi] | None = None
    ) -> dict[str, float]:
        """``Φ_[t_s, t_e](p)`` for every query POI with non-zero flow.

        Args:
            t_start: Window start (inclusive).
            t_end: Window end (inclusive).
            pois: Optional query subset; defaults to the full universe.

        Returns:
            ``{poi_id: flow}`` containing only POIs with positive flow.
        """
        _, poi_tree = self._query_pois(pois)
        return interval_flows(self.artree, poi_tree, self.ctx, t_start, t_end)

    # ------------------------------------------------------------------
    # Density variants (area-normalised ranking; cf. paper Section 6.2)
    # ------------------------------------------------------------------

    def snapshot_density_topk(
        self, t: float, k: int, pois: Sequence[Poi] | None = None
    ) -> TopKResult:
        """The k POIs with the highest snapshot flow *density* (flow/m²).

        Density ranking needs every POI's exact flow, so it always uses the
        iterative flow computation; the returned entries carry densities in
        their ``flow`` field.

        Args:
            t: The query instant.
            k: How many POIs to return.
            pois: Optional query subset; defaults to the full universe.

        Returns:
            The ranked result; each entry's ``flow`` is flow per m².

        Raises:
            ValueError: If ``k < 1`` or an empty ``pois`` is passed.
        """
        query_pois, _ = self._query_pois(pois)
        flows = self.snapshot_flows(t, pois=query_pois)
        return rank_top_k_by_density(flows, query_pois, k)

    def interval_density_topk(
        self,
        t_start: float,
        t_end: float,
        k: int,
        pois: Sequence[Poi] | None = None,
    ) -> TopKResult:
        """The k POIs with the highest interval flow density (flow/m²).

        Args:
            t_start: Window start (inclusive).
            t_end: Window end (inclusive).
            k: How many POIs to return.
            pois: Optional query subset; defaults to the full universe.

        Returns:
            The ranked result; each entry's ``flow`` is flow per m².

        Raises:
            ValueError: If ``k < 1`` or an empty ``pois`` is passed.
        """
        query_pois, _ = self._query_pois(pois)
        flows = self.interval_flows(t_start, t_end, pois=query_pois)
        return rank_top_k_by_density(flows, query_pois, k)

    # ------------------------------------------------------------------
    # Uncertainty-region introspection
    # ------------------------------------------------------------------

    def snapshot_region_of(self, object_id: ObjectId, t: float) -> Region | None:
        """``UR(o, t)`` for one object, or ``None`` if not trackable at t.

        Resolved through the AR-tree's per-object entry lookup, so the cost
        is O(records of the object), independent of the population size.

        Args:
            object_id: The tracked object.
            t: The query instant.

        Returns:
            The (possibly topology-checked) uncertainty region, or
            ``None`` when no detection episode makes the object
            trackable at ``t``.
        """
        for entry in self.artree.entries_for(object_id):
            if entry.covers(t):
                return self.ctx.snapshot_region(snapshot_context(entry, t))
        return None

    def interval_region_of(
        self, object_id: ObjectId, t_start: float, t_end: float
    ) -> IntervalUncertainty | None:
        """``UR(o, [t_s, t_e])`` for one object, or ``None`` if irrelevant.

        Like :meth:`snapshot_region_of`, resolved per object rather than by
        scanning every object relevant to the window.

        Args:
            object_id: The tracked object.
            t_start: Window start (inclusive).
            t_end: Window end (inclusive).

        Returns:
            The object's :class:`IntervalUncertainty` (episodes, region,
            MBRs), or ``None`` when none of its records overlap the
            window.

        Raises:
            ValueError: If ``t_end`` precedes ``t_start``.
        """
        if t_end < t_start:
            raise ValueError("t_end precedes t_start")
        entries = [
            entry
            for entry in self.artree.entries_for(object_id)
            if entry.overlaps(t_start, t_end)
        ]
        if not entries:
            return None
        context = interval_context_from_entries(
            object_id, entries, t_start, t_end
        )
        return self.ctx.interval_uncertainty(context)


class LiveFlowEngine(FlowEngine):
    """A :class:`FlowEngine` that is append-capable from construction.

    The streaming entry point: start from an empty (or pre-loaded)
    :class:`~repro.tracking.table.LiveTrackingTable` and feed arriving
    records through :meth:`FlowEngine.ingest` while queries and monitors
    run against the always-current state::

        engine = LiveFlowEngine(plan, deployment, pois, v_max=1.1)
        engine.ingest(first_batch)
        monitor = SnapshotTopKMonitor(engine, k=10)
        update = monitor.tick(t=now, records=next_batch)
    """

    def __init__(
        self,
        floorplan: FloorPlan,
        deployment: Deployment,
        pois: Sequence[Poi],
        v_max: float,
        ott: ObjectTrackingTable | LiveTrackingTable | None = None,
        **engine_kwargs: Any,
    ):
        if ott is None:
            ott = LiveTrackingTable()
        super().__init__(
            floorplan, deployment, ott, pois, v_max, live=True, **engine_kwargs
        )
