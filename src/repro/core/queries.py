"""Query and result types for the top-k indoor POI queries.

The paper formulates two problems (Section 2.2):

* **Snapshot Top-k Indoor POIs Query** — given POIs ``P``, a time point
  ``t`` and ``k``, return the ``k`` POIs with the highest snapshot flow
  ``Φ_t(p)``.
* **Interval Top-k Indoor POIs Query** — the same with interval flow
  ``Φ_[t_s, t_e](p)``.

Flows are weighted counts: each object contributes its presence (a value in
``[0, 1]``) to every POI its uncertainty region overlaps (Definition 2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Mapping, Sequence, overload

from ..indoor.poi import Poi

__all__ = [
    "SnapshotTopKQuery",
    "IntervalTopKQuery",
    "RankedPoi",
    "TopKResult",
    "rank_top_k",
    "rank_top_k_by_density",
]


@dataclass(frozen=True, slots=True)
class SnapshotTopKQuery:
    """Parameters of Problem 1 (snapshot top-k).

    Attributes:
        t: The query instant, on the tracking records' clock.
        k: Result size; must be positive (enforced at construction).

    Raises:
        ValueError: If ``k < 1``.
    """

    t: float
    k: int

    def __post_init__(self) -> None:
        if self.k < 1:
            raise ValueError("k must be positive")


@dataclass(frozen=True, slots=True)
class IntervalTopKQuery:
    """Parameters of Problem 2 (interval top-k).

    Attributes:
        t_start: Window start (inclusive).
        t_end: Window end (inclusive; may equal ``t_start``).
        k: Result size; must be positive.

    Raises:
        ValueError: If ``k < 1`` or the window is inverted.
    """

    t_start: float
    t_end: float
    k: int

    def __post_init__(self) -> None:
        if self.k < 1:
            raise ValueError("k must be positive")
        if self.t_end < self.t_start:
            raise ValueError("t_end precedes t_start")


@dataclass(frozen=True, slots=True)
class RankedPoi:
    """One result row: a POI and its flow value.

    Attributes:
        poi: The ranked point of interest.
        flow: Its exact flow — or flow *density* (per m²) when produced
            by a density ranking.
    """

    poi: Poi
    flow: float


@dataclass(frozen=True, slots=True)
class TopKResult:
    """The ranked top-k POIs, highest flow first.

    Supports ``len``, iteration and indexing/slicing over its entries;
    the :attr:`pois`, :attr:`poi_ids` and :attr:`flows` properties give
    column views for comparisons and assertions.

    Attributes:
        entries: The ranked rows, ties broken by POI id.
    """

    entries: tuple[RankedPoi, ...]

    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self) -> Iterator[RankedPoi]:
        return iter(self.entries)

    @overload
    def __getitem__(self, index: int) -> RankedPoi: ...

    @overload
    def __getitem__(self, index: slice) -> tuple[RankedPoi, ...]: ...

    def __getitem__(self, index: int | slice) -> RankedPoi | tuple[RankedPoi, ...]:
        return self.entries[index]

    @property
    def pois(self) -> list[Poi]:
        """The ranked POIs, best first."""
        return [entry.poi for entry in self.entries]

    @property
    def poi_ids(self) -> list[str]:
        """The ranked POI ids, best first."""
        return [entry.poi.poi_id for entry in self.entries]

    @property
    def flows(self) -> list[float]:
        """The flow values, aligned with :attr:`poi_ids`."""
        return [entry.flow for entry in self.entries]


def rank_top_k(
    flows: Mapping[str, float], pois: Sequence[Poi], k: int
) -> TopKResult:
    """The ``k`` highest-flow POIs (ties broken by POI id, deterministic).

    POIs absent from ``flows`` count as zero flow, so the result always has
    ``min(k, len(pois))`` entries, as the problem definitions require a
    k-subset of ``P``.

    Args:
        flows: ``{poi_id: flow}`` (typically from the iterative
            algorithms; POIs may be missing).
        pois: The query POI universe P.
        k: Result size.

    Returns:
        The ranked :class:`TopKResult`.

    Raises:
        ValueError: If ``k < 1``.
    """
    if k < 1:
        raise ValueError("k must be positive")
    ordered = sorted(
        pois, key=lambda poi: (-flows.get(poi.poi_id, 0.0), poi.poi_id)
    )
    return TopKResult(
        entries=tuple(
            RankedPoi(poi=poi, flow=flows.get(poi.poi_id, 0.0))
            for poi in ordered[:k]
        )
    )


def rank_top_k_by_density(
    flows: Mapping[str, float], pois: Sequence[Poi], k: int
) -> TopKResult:
    """The ``k`` POIs with the highest *flow density* (flow per m²).

    The area-normalised variant of the top-k ranking — the indoor analogue
    of the outdoor density queries the paper relates to (Section 6.2).
    Plain flow favours large POIs (more area to intersect uncertainty
    regions); density surfaces small-but-crowded spots instead.  The
    ``flow`` field of each returned entry carries the density value.

    Args:
        flows: ``{poi_id: flow}`` with *exact* flows (density ranking is
            meaningless over upper bounds).
        pois: The query POI universe P.
        k: Result size.

    Returns:
        The ranked result; zero-area POIs rank as zero density.

    Raises:
        ValueError: If ``k < 1``.
    """
    if k < 1:
        raise ValueError("k must be positive")

    def density(poi: Poi) -> float:
        area = poi.area()
        if area <= 0.0:
            return 0.0
        return flows.get(poi.poi_id, 0.0) / area

    ordered = sorted(pois, key=lambda poi: (-density(poi), poi.poi_id))
    return TopKResult(
        entries=tuple(
            RankedPoi(poi=poi, flow=density(poi)) for poi in ordered[:k]
        )
    )
