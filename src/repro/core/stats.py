"""Counter-dict merging shared by engine stats and shard merging.

Every stateful component (:class:`~repro.core.context.EvaluationContext`,
the AR-tree, the POI subset-tree memo) reports its counters as a flat
``dict[str, int]``.  Two merge shapes recur:

* **union** — one engine composes the *disjoint* counter sets of its
  nested components into one stats dict; a duplicate key means two
  components claim the same counter, which is a bug, not data.
* **sum** — a coordinator folds the *identical* counter sets of N shards
  into fleet-wide totals, pointwise.

Both used to be hand-copied key lists; keeping them here means a counter
added to a component shows up in ``FlowEngine.stats()`` and in
``ShardedFlowEngine.stats()`` without touching either.
"""

from __future__ import annotations

from typing import Iterable, Mapping

__all__ = ["merge_component_stats", "merge_shard_stats"]


def merge_component_stats(*parts: Mapping[str, int]) -> dict[str, int]:
    """Union disjoint component counter dicts into one stats dict.

    Args:
        *parts: One counter dict per component.

    Returns:
        A single dict holding every component's counters.

    Raises:
        ValueError: If two components report the same counter name.
    """
    merged: dict[str, int] = {}
    for part in parts:
        for key, value in part.items():
            if key in merged:
                raise ValueError(
                    f"stats key {key!r} reported by two components"
                )
            merged[key] = value
    return merged


def merge_shard_stats(parts: Iterable[Mapping[str, int]]) -> dict[str, int]:
    """Sum per-shard stats dicts pointwise into fleet-wide totals.

    Shards are homogeneous, so the key sets normally coincide; a key
    missing from some shard simply contributes zero.

    Args:
        parts: One stats dict per shard.

    Returns:
        The pointwise sum over all shards (empty if ``parts`` is empty).
    """
    merged: dict[str, int] = {}
    for part in parts:
        for key, value in part.items():
            merged[key] = merged.get(key, 0) + value
    return merged
