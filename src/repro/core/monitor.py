"""Continuous top-k monitoring (extension; cf. the paper's Section 7
outlook on continuous queries).

A building operator rarely asks one query — they watch a dashboard.  The
monitors re-evaluate a top-k query as time advances and report *changes*:

* :class:`SnapshotTopKMonitor` — tracks Problem 1 at the current instant;
* :class:`SlidingIntervalTopKMonitor` — tracks Problem 2 over a sliding
  window ``[now - window, now]``.

Each tick is one engine query, but ticks are far from full recomputes: the
engine's long-lived :class:`~repro.core.context.EvaluationContext` memoizes
region construction and presence quadrature, so a sliding-interval tick
only rebuilds the uncertainty episodes whose effective time window actually
changed (interior detection disks and fully covered gap ellipses are served
from the region cache) and re-evaluates presence only for regions whose
geometry moved.  ``monitor.stats()`` (a :meth:`FlowEngine.stats` passthrough)
shows the hit rates.  The value added on top is the change tracking — which
POIs entered and left the top-k, and how ranks moved — which is what
downstream alerting consumes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Protocol, Sequence

from ..indoor.poi import Poi
from ..obs import counter, obs_enabled, span
from ..tracking.records import TrackingRecord
from .queries import TopKResult

__all__ = [
    "MonitorableEngine",
    "TopKUpdate",
    "SnapshotTopKMonitor",
    "SlidingIntervalTopKMonitor",
]


class MonitorableEngine(Protocol):
    """What a monitor needs from its engine.

    Both the monolithic :class:`~repro.core.engine.FlowEngine` and the
    :class:`~repro.core.coordinator.ShardedFlowEngine` satisfy this, so
    monitors tick unchanged over one shard or a fleet.
    """

    def snapshot_topk(
        self,
        t: float,
        k: int,
        pois: Sequence[Poi] | None = None,
        method: str = "join",
    ) -> TopKResult: ...

    def interval_topk(
        self,
        t_start: float,
        t_end: float,
        k: int,
        pois: Sequence[Poi] | None = None,
        method: str = "join",
        use_segment_mbrs: bool = True,
    ) -> TopKResult: ...

    def ingest(self, records: Iterable[TrackingRecord]) -> int: ...

    def stats(self) -> dict[str, int]: ...


@dataclass(frozen=True, slots=True)
class TopKUpdate:
    """One monitoring tick: the fresh result plus what changed."""

    t: float
    result: TopKResult
    entered: tuple[str, ...]
    exited: tuple[str, ...]
    rank_changes: tuple[tuple[str, int, int], ...]
    """(poi_id, previous_rank, new_rank) for POIs staying in the top-k;
    ranks are 1-based."""

    @property
    def changed(self) -> bool:
        """Whether this tick's top-k differs from the previous tick's."""
        return bool(self.entered or self.exited or self.rank_changes)


class _BaseMonitor:
    def __init__(
        self,
        engine: MonitorableEngine,
        k: int,
        pois: Sequence[Poi] | None = None,
        method: str = "join",
    ):
        if k < 1:
            raise ValueError("k must be positive")
        self.engine = engine
        self.k = k
        self.pois = pois
        self.method = method
        self._last_t: float | None = None
        self._last_ranks: dict[str, int] = {}

    def _evaluate(self, t: float) -> TopKResult:  # pragma: no cover - abstract
        raise NotImplementedError

    def advance(self, t: float) -> TopKUpdate:
        """Move the monitor to time ``t`` and report changes.

        Time must not run backwards; re-evaluating the same instant is
        allowed (and reports no changes unless the data changed).

        Args:
            t: The tick's evaluation time.

        Returns:
            The fresh result plus which POIs entered/exited the top-k and
            how ranks moved.  The very first tick reports every POI as
            "entered".

        Raises:
            ValueError: If ``t`` precedes the previous tick's time.
        """
        if self._last_t is not None and t < self._last_t:
            raise ValueError(
                f"monitor time went backwards: {t} < {self._last_t}"
            )
        with span("monitor.tick"):
            result = self._evaluate(t)
        new_ranks = {
            entry.poi.poi_id: rank
            for rank, entry in enumerate(result.entries, start=1)
        }
        entered = tuple(
            poi_id for poi_id in new_ranks if poi_id not in self._last_ranks
        )
        exited = tuple(
            poi_id for poi_id in self._last_ranks if poi_id not in new_ranks
        )
        rank_changes = tuple(
            (poi_id, self._last_ranks[poi_id], rank)
            for poi_id, rank in new_ranks.items()
            if poi_id in self._last_ranks and self._last_ranks[poi_id] != rank
        )
        # The very first tick reports everything as "entered" by design —
        # downstream consumers initialise their dashboards from it.
        self._last_t = t
        self._last_ranks = new_ranks
        update = TopKUpdate(
            t=t,
            result=result,
            entered=entered,
            exited=exited,
            rank_changes=rank_changes,
        )
        if obs_enabled():
            counter("monitor.ticks", unit="ticks").inc()
            if update.changed:
                counter("monitor.changed_ticks", unit="ticks").inc()
        return update

    def ingest(self, records: Iterable[TrackingRecord]) -> int:
        """Feed newly arrived records to the (live) engine.

        The next :meth:`advance` — even at an unchanged ``t`` — reports the
        flow changes the new records cause.

        Args:
            records: Closed tracking records, per-object chronological.

        Returns:
            The number of records ingested.

        Raises:
            RuntimeError: If the engine is frozen-batch.
            ValueError: If a record fails at-append validation.
        """
        return self.engine.ingest(records)

    def tick(
        self, t: float, records: Iterable[TrackingRecord] = ()
    ) -> TopKUpdate:
        """One dashboard tick: ingest what arrived, then advance to ``t``.

        With no arrivals this is a plain :meth:`advance`, so the method
        also works on a frozen-batch engine.

        Args:
            t: The tick's evaluation time.
            records: Records that arrived since the last tick (optional).

        Returns:
            The tick's :class:`TopKUpdate`.

        Raises:
            RuntimeError: If records are passed to a frozen-batch engine.
            ValueError: If ``t`` runs backwards or a record fails
                validation.
        """
        arrived = list(records)
        if arrived:
            self.engine.ingest(arrived)
        return self.advance(t)

    def run(self, times: Sequence[float]) -> list[TopKUpdate]:
        """Advance through ``times`` and collect all updates.

        Args:
            times: Tick times, non-decreasing.

        Returns:
            One :class:`TopKUpdate` per tick, in order.

        Raises:
            ValueError: If the times run backwards.
        """
        return [self.advance(t) for t in times]

    def stats(self) -> dict[str, int]:
        """The engine's evaluation counters (cache hits, regions built).

        Returns:
            The :meth:`FlowEngine.stats` dict of the monitored engine.
        """
        return self.engine.stats()


class SnapshotTopKMonitor(_BaseMonitor):
    """Continuous Problem 1: the top-k POIs *right now*."""

    def _evaluate(self, t: float) -> TopKResult:
        return self.engine.snapshot_topk(
            t, self.k, pois=self.pois, method=self.method
        )


class SlidingIntervalTopKMonitor(_BaseMonitor):
    """Continuous Problem 2 over a trailing window ``[t - window, t]``."""

    def __init__(
        self,
        engine: MonitorableEngine,
        k: int,
        window_seconds: float,
        pois: Sequence[Poi] | None = None,
        method: str = "join",
    ):
        super().__init__(engine, k, pois=pois, method=method)
        if window_seconds <= 0:
            raise ValueError("window_seconds must be positive")
        self.window_seconds = window_seconds

    def _evaluate(self, t: float) -> TopKResult:
        return self.engine.interval_topk(
            t - self.window_seconds, t, self.k, pois=self.pois, method=self.method
        )
