"""Benchmark harness: datasets, timing and series collection.

The paper's evaluation (Section 5) reports query running time against one
varied parameter per figure, with all other parameters at their defaults
(Table 4).  :class:`BenchContext` provides exactly that: lazily built,
cached datasets/engines per parameter setting, and a timing helper that
reports the median of repeated runs.

Populations are scaled by ``scale`` (default 0.1, i.e. ``|O|`` = 100
against the paper's 1000): this Python substrate is not the authors' Java
testbed, and the figures' *shapes* — which algorithm wins, how cost moves
with each parameter — are preserved at smaller populations while keeping
the full suite laptop-sized.  Run with ``--scale 1.0`` to match the
paper's populations exactly.
"""

from __future__ import annotations

import statistics
import time
from dataclasses import dataclass, field, replace
from typing import Callable

from ..core.engine import FlowEngine
from ..datagen import (
    CphConfig,
    Dataset,
    SyntheticConfig,
    build_cph_dataset,
    build_synthetic_dataset,
)

__all__ = ["BenchContext", "SeriesPoint", "FigureResult"]


@dataclass(frozen=True)
class SeriesPoint:
    """One x-position of a figure: the varied value and both timings."""

    param: float | int
    iterative_ms: float
    join_ms: float

    @property
    def speedup(self) -> float:
        """Iterative time over join time (>1 means the join wins)."""
        if self.join_ms <= 0.0:
            return float("inf")
        return self.iterative_ms / self.join_ms


@dataclass(frozen=True)
class FigureResult:
    """A reproduced figure: its series plus provenance."""

    figure_id: str
    title: str
    param_name: str
    points: tuple[SeriesPoint, ...]
    scale: float

    def as_rows(self) -> list[tuple]:
        return [
            (p.param, round(p.iterative_ms, 2), round(p.join_ms, 2))
            for p in self.points
        ]


class BenchContext:
    """Cached datasets/engines plus timing for one benchmarking session."""

    def __init__(
        self,
        scale: float = 0.1,
        repeats: int = 3,
        synthetic_base: SyntheticConfig | None = None,
        cph_base: CphConfig | None = None,
        default_k: int = 10,
        default_poi_percent: float = 60.0,
        default_window_minutes: float = 10.0,
    ):
        if scale <= 0:
            raise ValueError("scale must be positive")
        if repeats < 1:
            raise ValueError("repeats must be positive")
        self.scale = scale
        self.repeats = repeats
        self.synthetic_base = (
            synthetic_base if synthetic_base is not None else SyntheticConfig()
        )
        self.cph_base = cph_base if cph_base is not None else CphConfig()
        self.default_k = default_k
        self.default_poi_percent = default_poi_percent
        self.default_window_minutes = default_window_minutes
        self._datasets: dict[tuple, Dataset] = {}
        self._engines: dict[tuple, FlowEngine] = {}

    # ------------------------------------------------------------------
    # Datasets and engines (cached)
    # ------------------------------------------------------------------

    def synthetic(
        self,
        detection_range: float | None = None,
        num_objects: int | None = None,
    ) -> tuple[Dataset, FlowEngine]:
        """The synthetic workload at the context's scale."""
        config = self.synthetic_base.scaled(self.scale)
        if detection_range is not None:
            config = replace(config, detection_range=detection_range)
        if num_objects is not None:
            config = replace(
                config, num_objects=max(1, round(num_objects * self.scale))
            )
        key = ("synthetic", config.detection_range, config.num_objects)
        return self._get(key, lambda: build_synthetic_dataset(config))

    def cph(self) -> tuple[Dataset, FlowEngine]:
        """The simulated CPH workload at the context's scale."""
        config = self.cph_base.scaled(self.scale * 10.0)
        key = ("cph", config.num_passengers)
        return self._get(key, lambda: build_cph_dataset(config))

    def _get(
        self, key: tuple, builder: Callable[[], Dataset]
    ) -> tuple[Dataset, FlowEngine]:
        dataset = self._datasets.get(key)
        if dataset is None:
            dataset = builder()
            self._datasets[key] = dataset
        engine = self._engines.get(key)
        if engine is None:
            engine = dataset.engine()
            self._engines[key] = engine
        return dataset, engine

    # ------------------------------------------------------------------
    # Timing
    # ------------------------------------------------------------------

    def time_ms(self, run: Callable[[], object]) -> float:
        """Median wall-clock milliseconds over ``repeats`` runs."""
        samples = []
        for _ in range(self.repeats):
            started = time.perf_counter()
            run()
            samples.append((time.perf_counter() - started) * 1000.0)
        return statistics.median(samples)

    def compare_methods(self, run: Callable[[str], object]) -> tuple[float, float]:
        """Time ``run('iterative')`` and ``run('join')``."""
        iterative_ms = self.time_ms(lambda: run("iterative"))
        join_ms = self.time_ms(lambda: run("join"))
        return iterative_ms, join_ms

    # ------------------------------------------------------------------
    # Cache instrumentation
    # ------------------------------------------------------------------

    def collect_stats(
        self, engine: FlowEngine, run: Callable[[], object]
    ) -> dict[str, int]:
        """``FlowEngine.stats()`` attributable to one execution of ``run``.

        The engine's counters are reset, ``run`` executes once, and the
        fresh counter values are returned — cache *contents* are left
        untouched, so calling this twice measures a cold then a warm run.
        """
        engine.reset_stats()
        run()
        return engine.stats()

    def timed_stats(
        self, engine: FlowEngine, run: Callable[[], object]
    ) -> tuple[float, dict[str, int]]:
        """``(median ms, stats)`` for one workload.

        The stats come from one instrumented execution of ``run``; the
        timing is the median of the ``repeats`` executions that follow it
        (warm-cache, matching how the monitors run in steady state).
        """
        stats = self.collect_stats(engine, run)
        return self.time_ms(run), stats
