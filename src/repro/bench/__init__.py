"""Benchmark harness reproducing the paper's evaluation (Section 5)."""

from .ablations import ABLATIONS, AblationRow
from .figures import FIGURES, FigureSpec, run_figure
from .harness import BenchContext, FigureResult, SeriesPoint
from .reporting import (
    format_ablation,
    format_figure,
    format_stats,
    print_ablation,
    print_figure,
    print_stats,
)

__all__ = [
    "ABLATIONS",
    "AblationRow",
    "BenchContext",
    "FIGURES",
    "FigureResult",
    "FigureSpec",
    "SeriesPoint",
    "format_ablation",
    "format_figure",
    "format_stats",
    "print_ablation",
    "print_figure",
    "print_stats",
    "run_figure",
]
