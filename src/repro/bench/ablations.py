"""Ablation studies for the design choices DESIGN.md calls out.

Each ablation compares the default design against a variant:

* ``ablation_segment_mbrs`` — the interval join with and without the
  per-episode MBR improvement (paper, Section 4.3.2);
* ``ablation_topology_check`` — queries with and without the indoor
  topology check, reporting both cost and result impact (how much flow the
  Euclidean-only analysis over-credits);
* ``ablation_grid_resolution`` — presence quadrature resolution vs cost
  and flow-value convergence;
* ``ablation_rtree_fanout`` — aggregate R-tree fanout vs join cost.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from .harness import BenchContext

__all__ = [
    "AblationRow",
    "ablation_segment_mbrs",
    "ablation_topology_check",
    "ablation_grid_resolution",
    "ablation_rtree_fanout",
    "ABLATIONS",
]


@dataclass(frozen=True)
class AblationRow:
    """One variant of an ablation: a label, a timing, and extra metrics."""

    label: str
    time_ms: float
    metrics: dict


def ablation_segment_mbrs(ctx: BenchContext) -> list[AblationRow]:
    """Interval join: one trajectory MBR vs per-episode MBRs.

    Run on both workloads: the improvement pays off when episodes are
    localised relative to the queried POIs (the CPH case — long dwells,
    sparse radios); on dense uniform movement the finer checks can be pure
    overhead, which the rows make visible.
    """
    rows = []
    for workload, (dataset, engine) in (
        ("synthetic", ctx.synthetic()),
        ("cph", ctx.cph()),
    ):
        pois = dataset.poi_subset(ctx.default_poi_percent)
        start, end = dataset.window(ctx.default_window_minutes)
        for label, improved in (("coarse-mbr", False), ("segment-mbrs", True)):
            time_ms = ctx.time_ms(
                lambda improved=improved, engine=engine: engine.interval_topk(
                    start,
                    end,
                    ctx.default_k,
                    pois=pois,
                    method="join",
                    use_segment_mbrs=improved,
                )
            )
            rows.append(AblationRow(f"{workload}/{label}", time_ms, {}))
    return rows


def ablation_topology_check(ctx: BenchContext) -> list[AblationRow]:
    """Topology check on/off: cost and flow over-crediting."""
    dataset, _ = ctx.synthetic()
    t = dataset.mid_time()
    rows = []
    flows_by_label = {}
    for label, enabled in (("euclidean-only", False), ("topology-checked", True)):
        engine = dataset.engine(topology_check=enabled)
        time_ms = ctx.time_ms(lambda engine=engine: engine.snapshot_flows(t))
        flows = engine.snapshot_flows(t)
        flows_by_label[label] = flows
        rows.append(
            AblationRow(label, time_ms, {"total_flow": round(sum(flows.values()), 2)})
        )
    # The Euclidean-only analysis credits unreachable space: report the
    # excess (candidate false-positive mass, cf. paper Figure 8).
    excess = sum(flows_by_label["euclidean-only"].values()) - sum(
        flows_by_label["topology-checked"].values()
    )
    rows.append(AblationRow("overcredit", 0.0, {"flow_excess": round(excess, 2)}))
    return rows


def ablation_grid_resolution(
    ctx: BenchContext, resolutions: Sequence[int] = (8, 16, 32, 64)
) -> list[AblationRow]:
    """Presence quadrature resolution: cost vs flow convergence."""
    dataset, _ = ctx.synthetic()
    t = dataset.mid_time()
    reference_engine = dataset.engine(resolution=96)
    reference = reference_engine.snapshot_flows(t)
    rows = []
    for resolution in resolutions:
        engine = dataset.engine(resolution=resolution)
        time_ms = ctx.time_ms(lambda engine=engine: engine.snapshot_flows(t))
        flows = engine.snapshot_flows(t)
        keys = set(reference) | set(flows)
        max_error = max(
            (abs(flows.get(k, 0.0) - reference.get(k, 0.0)) for k in keys),
            default=0.0,
        )
        rows.append(
            AblationRow(
                f"resolution={resolution}",
                time_ms,
                {"max_flow_error_vs_96": round(max_error, 4)},
            )
        )
    return rows


def ablation_rtree_fanout(
    ctx: BenchContext, fanouts: Sequence[int] = (4, 8, 16, 32)
) -> list[AblationRow]:
    """Aggregate R-tree fanout: effect on the join's pruning/cost."""
    dataset, _ = ctx.synthetic()
    t = dataset.mid_time()
    rows = []
    for fanout in fanouts:
        engine = dataset.engine(rtree_fanout=fanout)
        pois = dataset.poi_subset(ctx.default_poi_percent)
        time_ms = ctx.time_ms(
            lambda engine=engine, pois=pois: engine.snapshot_topk(
                t, ctx.default_k, pois=pois, method="join"
            )
        )
        rows.append(AblationRow(f"fanout={fanout}", time_ms, {}))
    return rows


ABLATIONS = {
    "ablation_segment_mbrs": ablation_segment_mbrs,
    "ablation_topology_check": ablation_topology_check,
    "ablation_grid_resolution": ablation_grid_resolution,
    "ablation_rtree_fanout": ablation_rtree_fanout,
}
