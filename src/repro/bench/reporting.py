"""Plain-text reporting of reproduced figures, ablations and cache stats."""

from __future__ import annotations

from typing import Iterable, Mapping, TextIO

from .ablations import AblationRow
from .harness import FigureResult

__all__ = [
    "format_figure",
    "format_ablation",
    "format_stats",
    "print_figure",
    "print_ablation",
    "print_stats",
]


def format_figure(result: FigureResult) -> str:
    """An aligned table with one row per parameter value."""
    header = (
        f"{result.figure_id}: {result.title}   (|O| scale {result.scale:g})"
    )
    columns = f"{result.param_name:>14} | {'iterative (ms)':>14} | {'join (ms)':>10} | {'speedup':>7}"
    rule = "-" * len(columns)
    lines = [header, columns, rule]
    for point in result.points:
        lines.append(
            f"{point.param!s:>14} | {point.iterative_ms:>14.2f} | "
            f"{point.join_ms:>10.2f} | {point.speedup:>6.2f}x"
        )
    return "\n".join(lines)


def format_ablation(name: str, rows: Iterable[AblationRow]) -> str:
    lines = [name, f"{'variant':>20} | {'time (ms)':>10} | metrics", "-" * 60]
    for row in rows:
        metrics = ", ".join(f"{k}={v}" for k, v in row.metrics.items()) or "-"
        lines.append(f"{row.label:>20} | {row.time_ms:>10.2f} | {metrics}")
    return "\n".join(lines)


def format_stats(name: str, stats: Mapping[str, int]) -> str:
    """One evaluation-counter report (``FlowEngine.stats()`` output).

    Alongside the raw counters the derived hit rates are shown — the
    headline numbers for judging what the context's memo layers save.
    """
    lines = [name, f"{'counter':>24} | {'value':>10}", "-" * 37]
    for key, value in stats.items():
        lines.append(f"{key:>24} | {value:>10}")
    region_total = stats.get("regions_computed", 0) + stats.get(
        "region_cache_hits", 0
    )
    presence_total = stats.get("presence_evaluations", 0) + stats.get(
        "presence_cache_hits", 0
    )
    if region_total:
        rate = 100.0 * stats.get("region_cache_hits", 0) / region_total
        lines.append(f"{'region hit rate':>24} | {rate:>9.1f}%")
    if presence_total:
        rate = 100.0 * stats.get("presence_cache_hits", 0) / presence_total
        lines.append(f"{'presence hit rate':>24} | {rate:>9.1f}%")
    return "\n".join(lines)


def print_figure(result: FigureResult, stream: TextIO | None = None) -> None:
    print(format_figure(result), file=stream)
    print(file=stream)


def print_ablation(
    name: str, rows: Iterable[AblationRow], stream: TextIO | None = None
) -> None:
    print(format_ablation(name, rows), file=stream)
    print(file=stream)


def print_stats(
    name: str, stats: Mapping[str, int], stream: TextIO | None = None
) -> None:
    print(format_stats(name, stats), file=stream)
    print(file=stream)
