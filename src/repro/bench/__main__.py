"""CLI entry point: regenerate the paper's evaluation figures.

Examples::

    python -m repro.bench --figure fig10a
    python -m repro.bench --all --scale 0.1 --repeats 3
    python -m repro.bench --ablation ablation_segment_mbrs
    python -m repro.bench --list
"""

from __future__ import annotations

import argparse
import sys

from .ablations import ABLATIONS
from .figures import FIGURES, run_figure
from .harness import BenchContext
from .reporting import print_ablation, print_figure


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Reproduce the paper's evaluation figures.",
    )
    parser.add_argument(
        "--figure",
        action="append",
        default=None,
        help="figure id to run (repeatable); see --list",
    )
    parser.add_argument(
        "--ablation",
        action="append",
        default=None,
        help="ablation id to run (repeatable); see --list",
    )
    parser.add_argument(
        "--all", action="store_true", help="run every figure and ablation"
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=0.1,
        help="population scale vs the paper's |O| (default 0.1)",
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=3,
        help="timing repeats per point (median is reported; default 3)",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="sweep a 3-value subset of each parameter range",
    )
    parser.add_argument(
        "--list", action="store_true", help="list figures and ablations"
    )
    return parser


def _quick_params(values: tuple) -> tuple:
    if len(values) <= 3:
        return values
    return (values[0], values[len(values) // 2], values[-1])


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list:
        print("figures:")
        for spec in FIGURES.values():
            print(f"  {spec.figure_id:8s} {spec.title}")
        print("ablations:")
        for name in ABLATIONS:
            print(f"  {name}")
        return 0

    figure_ids = list(args.figure or [])
    ablation_ids = list(args.ablation or [])
    if args.all:
        figure_ids = list(FIGURES)
        ablation_ids = list(ABLATIONS)
    if not figure_ids and not ablation_ids:
        build_parser().print_help()
        return 2

    ctx = BenchContext(scale=args.scale, repeats=args.repeats)
    for figure_id in figure_ids:
        spec = FIGURES.get(figure_id)
        if spec is None:
            print(f"unknown figure {figure_id!r}", file=sys.stderr)
            return 2
        params = _quick_params(spec.default_params) if args.quick else None
        print_figure(run_figure(figure_id, ctx, params))
    for name in ablation_ids:
        runner = ABLATIONS.get(name)
        if runner is None:
            print(f"unknown ablation {name!r}", file=sys.stderr)
            return 2
        print_ablation(name, runner(ctx))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
