"""One reproduction routine per evaluation figure (paper, Section 5).

Every figure in the paper's experimental study has a registry entry here
mapping its id (``fig10a`` ... ``fig14c``) to a routine that sweeps the
figure's parameter and times both query algorithms, producing the same
series the paper plots.  The expected shapes are recorded in
``EXPERIMENTS.md``; the harness prints measured rows for comparison.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from ..datagen import (
    PAPER_DETECTION_RANGES,
    PAPER_K_VALUES,
    PAPER_OBJECT_COUNTS,
    PAPER_POI_PERCENTAGES,
    PAPER_WINDOW_MINUTES,
)
from .harness import BenchContext, FigureResult, SeriesPoint

__all__ = ["FIGURES", "FigureSpec", "run_figure"]


@dataclass(frozen=True)
class FigureSpec:
    """A reproducible evaluation figure."""

    figure_id: str
    title: str
    param_name: str
    default_params: tuple
    runner: Callable[[BenchContext, tuple], FigureResult]

    def run(
        self, ctx: BenchContext, params: Sequence | None = None
    ) -> FigureResult:
        values = tuple(params) if params is not None else self.default_params
        return self.runner(ctx, values)


def _result(ctx, spec_id, title, param_name, points) -> FigureResult:
    return FigureResult(
        figure_id=spec_id,
        title=title,
        param_name=param_name,
        points=tuple(points),
        scale=ctx.scale,
    )


# ----------------------------------------------------------------------
# Synthetic, snapshot (Figure 10) and detection range (Figure 11)
# ----------------------------------------------------------------------


#: Each measurement runs the query at several anchors spread over the data
#: to smooth out both timer noise and the luck of a single query time.
_ANCHOR_FRACTIONS = (0.3, 0.5, 0.7)


def _snapshot_anchors(dataset) -> list[float]:
    start, end = dataset.time_span()
    return [start + f * (end - start) for f in _ANCHOR_FRACTIONS]


def _interval_anchors(dataset, minutes: float) -> list[tuple[float, float]]:
    start, end = dataset.time_span()
    half = minutes * 60.0 / 2.0
    windows = []
    for fraction in _ANCHOR_FRACTIONS:
        middle = start + fraction * (end - start)
        windows.append((max(start, middle - half), min(end, middle + half)))
    return windows


def _snapshot_point(ctx, dataset, engine, k, pois):
    anchors = _snapshot_anchors(dataset)

    def run(method):
        for t in anchors:
            engine.snapshot_topk(t, k, pois=pois, method=method)

    iterative_ms, join_ms = ctx.compare_methods(run)
    return iterative_ms / len(anchors), join_ms / len(anchors)


def _interval_point(ctx, dataset, engine, k, pois, minutes):
    windows = _interval_anchors(dataset, minutes)

    def run(method):
        for start, end in windows:
            engine.interval_topk(start, end, k, pois=pois, method=method)

    iterative_ms, join_ms = ctx.compare_methods(run)
    return iterative_ms / len(windows), join_ms / len(windows)


def _run_fig10a(ctx: BenchContext, params) -> FigureResult:
    dataset, engine = ctx.synthetic()
    pois = dataset.poi_subset(ctx.default_poi_percent)
    points = []
    for k in params:
        iterative_ms, join_ms = _snapshot_point(ctx, dataset, engine, k, pois)
        points.append(SeriesPoint(k, iterative_ms, join_ms))
    return _result(
        ctx, "fig10a", "Snapshot query, synthetic: effect of k", "k", points
    )


def _run_fig10b(ctx: BenchContext, params) -> FigureResult:
    dataset, engine = ctx.synthetic()
    points = []
    for percent in params:
        pois = dataset.poi_subset(percent)
        iterative_ms, join_ms = _snapshot_point(
            ctx, dataset, engine, ctx.default_k, pois
        )
        points.append(SeriesPoint(percent, iterative_ms, join_ms))
    return _result(
        ctx, "fig10b", "Snapshot query, synthetic: effect of |P|", "|P| (%)", points
    )


def _run_fig11a(ctx: BenchContext, params) -> FigureResult:
    points = []
    for detection_range in params:
        dataset, engine = ctx.synthetic(detection_range=detection_range)
        pois = dataset.poi_subset(ctx.default_poi_percent)
        iterative_ms, join_ms = _snapshot_point(
            ctx, dataset, engine, ctx.default_k, pois
        )
        points.append(SeriesPoint(detection_range, iterative_ms, join_ms))
    return _result(
        ctx,
        "fig11a",
        "Snapshot query, synthetic: effect of detection range",
        "range (m)",
        points,
    )


def _run_fig11b(ctx: BenchContext, params) -> FigureResult:
    points = []
    for detection_range in params:
        dataset, engine = ctx.synthetic(detection_range=detection_range)
        pois = dataset.poi_subset(ctx.default_poi_percent)
        iterative_ms, join_ms = _interval_point(
            ctx, dataset, engine, ctx.default_k, pois, ctx.default_window_minutes
        )
        points.append(SeriesPoint(detection_range, iterative_ms, join_ms))
    return _result(
        ctx,
        "fig11b",
        "Interval query, synthetic: effect of detection range",
        "range (m)",
        points,
    )


# ----------------------------------------------------------------------
# Synthetic, interval (Figure 12)
# ----------------------------------------------------------------------


def _run_fig12a(ctx: BenchContext, params) -> FigureResult:
    dataset, engine = ctx.synthetic()
    pois = dataset.poi_subset(ctx.default_poi_percent)
    points = []
    for k in params:
        iterative_ms, join_ms = _interval_point(
            ctx, dataset, engine, k, pois, ctx.default_window_minutes
        )
        points.append(SeriesPoint(k, iterative_ms, join_ms))
    return _result(
        ctx, "fig12a", "Interval query, synthetic: effect of k", "k", points
    )


def _run_fig12b(ctx: BenchContext, params) -> FigureResult:
    dataset, engine = ctx.synthetic()
    points = []
    for percent in params:
        pois = dataset.poi_subset(percent)
        iterative_ms, join_ms = _interval_point(
            ctx, dataset, engine, ctx.default_k, pois, ctx.default_window_minutes
        )
        points.append(SeriesPoint(percent, iterative_ms, join_ms))
    return _result(
        ctx, "fig12b", "Interval query, synthetic: effect of |P|", "|P| (%)", points
    )


def _run_fig12c(ctx: BenchContext, params) -> FigureResult:
    points = []
    for num_objects in params:
        dataset, engine = ctx.synthetic(num_objects=num_objects)
        pois = dataset.poi_subset(ctx.default_poi_percent)
        iterative_ms, join_ms = _interval_point(
            ctx, dataset, engine, ctx.default_k, pois, ctx.default_window_minutes
        )
        points.append(SeriesPoint(num_objects, iterative_ms, join_ms))
    return _result(
        ctx,
        "fig12c",
        "Interval query, synthetic: effect of |O|",
        "|O| (pre-scale)",
        points,
    )


def _run_fig12d(ctx: BenchContext, params) -> FigureResult:
    dataset, engine = ctx.synthetic()
    pois = dataset.poi_subset(ctx.default_poi_percent)
    points = []
    for minutes in params:
        iterative_ms, join_ms = _interval_point(
            ctx, dataset, engine, ctx.default_k, pois, minutes
        )
        points.append(SeriesPoint(minutes, iterative_ms, join_ms))
    return _result(
        ctx,
        "fig12d",
        "Interval query, synthetic: effect of t_e - t_s",
        "window (min)",
        points,
    )


# ----------------------------------------------------------------------
# CPH (Figures 13 and 14)
# ----------------------------------------------------------------------


def _run_fig13a(ctx: BenchContext, params) -> FigureResult:
    dataset, engine = ctx.cph()
    pois = dataset.poi_subset(ctx.default_poi_percent)
    points = []
    for k in params:
        iterative_ms, join_ms = _snapshot_point(ctx, dataset, engine, k, pois)
        points.append(SeriesPoint(k, iterative_ms, join_ms))
    return _result(ctx, "fig13a", "Snapshot query, CPH: effect of k", "k", points)


def _run_fig13b(ctx: BenchContext, params) -> FigureResult:
    dataset, engine = ctx.cph()
    points = []
    for percent in params:
        pois = dataset.poi_subset(percent)
        iterative_ms, join_ms = _snapshot_point(
            ctx, dataset, engine, ctx.default_k, pois
        )
        points.append(SeriesPoint(percent, iterative_ms, join_ms))
    return _result(
        ctx, "fig13b", "Snapshot query, CPH: effect of |P|", "|P| (%)", points
    )


def _run_fig14a(ctx: BenchContext, params) -> FigureResult:
    dataset, engine = ctx.cph()
    pois = dataset.poi_subset(ctx.default_poi_percent)
    points = []
    for k in params:
        iterative_ms, join_ms = _interval_point(
            ctx, dataset, engine, k, pois, ctx.default_window_minutes
        )
        points.append(SeriesPoint(k, iterative_ms, join_ms))
    return _result(ctx, "fig14a", "Interval query, CPH: effect of k", "k", points)


def _run_fig14b(ctx: BenchContext, params) -> FigureResult:
    dataset, engine = ctx.cph()
    points = []
    for percent in params:
        pois = dataset.poi_subset(percent)
        iterative_ms, join_ms = _interval_point(
            ctx, dataset, engine, ctx.default_k, pois, ctx.default_window_minutes
        )
        points.append(SeriesPoint(percent, iterative_ms, join_ms))
    return _result(
        ctx, "fig14b", "Interval query, CPH: effect of |P|", "|P| (%)", points
    )


def _run_fig14c(ctx: BenchContext, params) -> FigureResult:
    dataset, engine = ctx.cph()
    pois = dataset.poi_subset(ctx.default_poi_percent)
    points = []
    for minutes in params:
        iterative_ms, join_ms = _interval_point(
            ctx, dataset, engine, ctx.default_k, pois, minutes
        )
        points.append(SeriesPoint(minutes, iterative_ms, join_ms))
    return _result(
        ctx,
        "fig14c",
        "Interval query, CPH: effect of t_e - t_s",
        "window (min)",
        points,
    )


FIGURES: dict[str, FigureSpec] = {
    spec.figure_id: spec
    for spec in (
        FigureSpec("fig10a", "Snapshot / synthetic / k", "k", PAPER_K_VALUES, _run_fig10a),
        FigureSpec("fig10b", "Snapshot / synthetic / |P|", "|P| (%)", PAPER_POI_PERCENTAGES, _run_fig10b),
        FigureSpec("fig11a", "Snapshot / synthetic / range", "range (m)", PAPER_DETECTION_RANGES, _run_fig11a),
        FigureSpec("fig11b", "Interval / synthetic / range", "range (m)", PAPER_DETECTION_RANGES, _run_fig11b),
        FigureSpec("fig12a", "Interval / synthetic / k", "k", PAPER_K_VALUES, _run_fig12a),
        FigureSpec("fig12b", "Interval / synthetic / |P|", "|P| (%)", PAPER_POI_PERCENTAGES, _run_fig12b),
        FigureSpec("fig12c", "Interval / synthetic / |O|", "|O|", PAPER_OBJECT_COUNTS, _run_fig12c),
        FigureSpec("fig12d", "Interval / synthetic / window", "window (min)", PAPER_WINDOW_MINUTES, _run_fig12d),
        FigureSpec("fig13a", "Snapshot / CPH / k", "k", PAPER_K_VALUES, _run_fig13a),
        FigureSpec("fig13b", "Snapshot / CPH / |P|", "|P| (%)", PAPER_POI_PERCENTAGES, _run_fig13b),
        FigureSpec("fig14a", "Interval / CPH / k", "k", PAPER_K_VALUES, _run_fig14a),
        FigureSpec("fig14b", "Interval / CPH / |P|", "|P| (%)", PAPER_POI_PERCENTAGES, _run_fig14b),
        FigureSpec("fig14c", "Interval / CPH / window", "window (min)", PAPER_WINDOW_MINUTES, _run_fig14c),
    )
}


def run_figure(
    figure_id: str, ctx: BenchContext, params: Sequence | None = None
) -> FigureResult:
    """Run one registered figure by id."""
    spec = FIGURES.get(figure_id)
    if spec is None:
        raise KeyError(
            f"unknown figure {figure_id!r}; known: {sorted(FIGURES)}"
        )
    return spec.run(ctx, params)
